//! Facade crate for the Muse reproduction: re-exports every workspace crate
//! under one roof so examples and integration tests can `use muse_suite::*`.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

pub use muse_chase as chase;
pub use muse_cliogen as cliogen;
pub use muse_lint as lint;
pub use muse_mapping as mapping;
pub use muse_nr as nr;
pub use muse_query as query;
pub use muse_scenarios as scenarios;
pub use muse_wizard as wizard;
