//! A full wizard session (Sec. V) on the Mondial scenario: generate the
//! candidate mappings Clio-style, disambiguate all seven ambiguous mappings
//! with Muse-D, then design every grouping function with Muse-G — with an
//! oracle designer who wants the `G2` grouping semantics and the first
//! interpretation everywhere.
//!
//! Run with: `cargo run --release --example wizard_session`
//! (set `MUSE_SCALE=0.1` via the environment for a faster run).

use muse_suite::cliogen::{desired_grouping, GroupingStrategy};
use muse_suite::mapping::ambiguity::or_groups;
use muse_suite::wizard::{OracleDesigner, Session};

fn main() {
    let scale: f64 = std::env::var("MUSE_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    let scenarios = muse_suite::scenarios::all_scenarios();
    let mondial = scenarios.iter().find(|s| s.name == "Mondial").unwrap();

    println!("Generating the Mondial instance (scale {scale}) and mappings…");
    let instance = mondial.instance(mondial.default_scale * scale, 1);
    println!(
        "Instance: {} tuples, {:.2} MB",
        instance.total_tuples(),
        instance.approx_bytes() as f64 / 1_000_000.0
    );
    let mappings = mondial.mappings().unwrap();
    let ambiguous = mappings.iter().filter(|m| m.is_ambiguous()).count();
    println!(
        "{} candidate mappings, {ambiguous} ambiguous.\n",
        mappings.len()
    );

    // The oracle designer: first interpretation for every ambiguity, G2
    // grouping semantics for every nested set.
    let mut oracle = OracleDesigner::new(&mondial.source_schema, &mondial.target_schema);
    for m in &mappings {
        if m.is_ambiguous() {
            let picks = vec![vec![0usize]; or_groups(m).len()];
            oracle
                .intended_choices
                .insert(m.name.clone(), picks.clone());
            // After selection the mapping keeps a derived name `m#k`.
            let selected = muse_suite::mapping::ambiguity::select_multi(m, &picks).unwrap();
            for sel in selected {
                intend_groupings(&mut oracle, mondial, &sel);
            }
        } else {
            intend_groupings(&mut oracle, mondial, m);
        }
    }

    let session = Session::new(
        &mondial.source_schema,
        &mondial.target_schema,
        &mondial.source_constraints,
    )
    .with_instance(&instance);
    let report = session
        .run(&mappings, &mut oracle)
        .expect("session completes");

    println!("Session finished:");
    println!("  {} final mappings", report.mappings.len());
    println!(
        "  {} Muse-D questions ({} encoded interpretations resolved)",
        report.disambiguations.len(),
        report
            .disambiguations
            .iter()
            .map(|d| d.alternatives_encoded)
            .sum::<usize>()
    );
    println!(
        "  {} grouping functions designed with {} Muse-G questions",
        report.groupings.len(),
        report
            .groupings
            .iter()
            .map(|(_, g)| g.questions)
            .sum::<usize>()
    );
    let real: usize = report.groupings.iter().map(|(_, g)| g.real_examples).sum();
    let synth: usize = report
        .groupings
        .iter()
        .map(|(_, g)| g.synthetic_examples)
        .sum();
    println!(
        "  examples: {real} real, {synth} synthetic ({:.0}% real), total example time {:?}",
        100.0 * real as f64 / (real + synth).max(1) as f64,
        report.total_example_time()
    );
    println!("  total questions: {}", report.total_questions());

    // Show one finished mapping.
    let sample = report
        .mappings
        .iter()
        .find(|m| !m.groupings.is_empty())
        .expect("some mapping has groupings");
    println!(
        "\nA finished mapping:\n{}",
        muse_suite::mapping::print(sample)
    );
}

fn intend_groupings(
    oracle: &mut OracleDesigner<'_>,
    scenario: &muse_suite::scenarios::Scenario,
    m: &muse_suite::mapping::Mapping,
) {
    let filled = m.filled_target_sets(&scenario.target_schema).unwrap();
    for sk in filled {
        let desired = desired_grouping(
            m,
            &sk,
            GroupingStrategy::G2,
            &scenario.source_schema,
            &scenario.target_schema,
        )
        .unwrap();
        oracle.intend_grouping(m.name.clone(), sk, desired);
    }
}
