//! Quickstart: define two schemas, write a mapping in the paper's concrete
//! syntax, chase a source instance, and print the universal solution.
//!
//! Run with: `cargo run --example quickstart`

use muse_suite::chase::chase;
use muse_suite::mapping::parse;
use muse_suite::nr::{display, Field, InstanceBuilder, Schema, Ty, Value};

fn main() {
    // Source: a flat company database.
    let compdb = Schema::new(
        "CompDB",
        vec![
            Field::new(
                "Companies",
                Ty::set_of(vec![
                    Field::new("cid", Ty::Int),
                    Field::new("cname", Ty::Str),
                    Field::new("location", Ty::Str),
                ]),
            ),
            Field::new(
                "Employees",
                Ty::set_of(vec![
                    Field::new("eid", Ty::Str),
                    Field::new("ename", Ty::Str),
                ]),
            ),
        ],
    )
    .expect("valid source schema");

    // Target: organizations with nested project sets, plus employees.
    let orgdb = Schema::new(
        "OrgDB",
        vec![
            Field::new(
                "Orgs",
                Ty::set_of(vec![
                    Field::new("oname", Ty::Str),
                    Field::new("Projects", Ty::set_of(vec![Field::new("pname", Ty::Str)])),
                ]),
            ),
            Field::new(
                "Employees",
                Ty::set_of(vec![
                    Field::new("eid", Ty::Str),
                    Field::new("ename", Ty::Str),
                ]),
            ),
        ],
    )
    .expect("valid target schema");

    // Mappings in the paper's syntax: companies become orgs (projects
    // grouped by company name), employees migrate unchanged.
    let mappings = parse(
        "
        m1: for c in CompDB.Companies
            exists o in OrgDB.Orgs
            where c.cname = o.oname
            group o.Projects by (c.cname)

        m2: for e in CompDB.Employees
            exists e1 in OrgDB.Employees
            where e.eid = e1.eid and e.ename = e1.ename
        ",
    )
    .expect("mappings parse");
    for m in &mappings {
        m.validate(&compdb, &orgdb).expect("mappings validate");
    }

    // A small source instance.
    let mut b = InstanceBuilder::new(&compdb);
    b.push_top(
        "Companies",
        vec![Value::int(111), Value::str("IBM"), Value::str("Almaden")],
    );
    b.push_top(
        "Companies",
        vec![Value::int(112), Value::str("IBM"), Value::str("NY")],
    );
    b.push_top(
        "Companies",
        vec![Value::int(113), Value::str("SBC"), Value::str("SF")],
    );
    b.push_top("Employees", vec![Value::str("e14"), Value::str("Smith")]);
    let source = b.finish().expect("valid instance");

    println!("Source instance:");
    println!("{}", display::render(&compdb, &source));

    // Chase: the canonical universal solution.
    let target = chase(&compdb, &orgdb, &source, &mappings).expect("chase succeeds");
    println!("Universal solution (note both IBMs share one Projects set):");
    println!("{}", display::render(&orgdb, &target));
}
