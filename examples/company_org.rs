//! The paper's running example, end to end: Fig. 1 (the CompDB → OrgDB
//! scenario), Fig. 2 (the chase of {m1, m2, m3}), and Fig. 3 (Muse-G
//! probing cid, cname, location when the designer has SKProjs(cname) in
//! mind).
//!
//! Run with: `cargo run --example company_org`

use muse_suite::chase::chase;
use muse_suite::mapping::{parse, PathRef};
use muse_suite::nr::{display, Constraints, Field, InstanceBuilder, Schema, SetPath, Ty, Value};
use muse_suite::wizard::{MuseG, OracleDesigner};

fn compdb() -> Schema {
    Schema::new(
        "CompDB",
        vec![
            Field::new(
                "Companies",
                Ty::set_of(vec![
                    Field::new("cid", Ty::Int),
                    Field::new("cname", Ty::Str),
                    Field::new("location", Ty::Str),
                ]),
            ),
            Field::new(
                "Projects",
                Ty::set_of(vec![
                    Field::new("pid", Ty::Str),
                    Field::new("pname", Ty::Str),
                    Field::new("cid", Ty::Int),
                    Field::new("manager", Ty::Str),
                ]),
            ),
            Field::new(
                "Employees",
                Ty::set_of(vec![
                    Field::new("eid", Ty::Str),
                    Field::new("ename", Ty::Str),
                    Field::new("contact", Ty::Str),
                ]),
            ),
        ],
    )
    .unwrap()
}

fn orgdb() -> Schema {
    Schema::new(
        "OrgDB",
        vec![
            Field::new(
                "Orgs",
                Ty::set_of(vec![
                    Field::new("oname", Ty::Str),
                    Field::new(
                        "Projects",
                        Ty::set_of(vec![
                            Field::new("pname", Ty::Str),
                            Field::new("manager", Ty::Str),
                        ]),
                    ),
                ]),
            ),
            Field::new(
                "Employees",
                Ty::set_of(vec![
                    Field::new("eid", Ty::Str),
                    Field::new("ename", Ty::Str),
                ]),
            ),
        ],
    )
    .unwrap()
}

fn main() {
    let (src, tgt) = (compdb(), orgdb());

    // Fig. 1: the three mappings (m2 with Clio's default all-attribute
    // grouping function).
    let mut mappings = parse(
        "
        m1: for c in CompDB.Companies
            exists o in OrgDB.Orgs
            where c.cname = o.oname
            group o.Projects by (c.cid, c.cname, c.location)

        m2: for c in CompDB.Companies, p in CompDB.Projects, e in CompDB.Employees
            satisfy p.cid = c.cid and e.eid = p.manager
            exists o in OrgDB.Orgs, p1 in o.Projects, e1 in OrgDB.Employees
            satisfy p1.manager = e1.eid
            where c.cname = o.oname and e.eid = e1.eid and e.ename = e1.ename
              and p.pname = p1.pname

        m3: for e in CompDB.Employees
            exists e1 in OrgDB.Employees
            where e.eid = e1.eid and e.ename = e1.ename
        ",
    )
    .unwrap();
    for m in &mut mappings {
        m.ensure_default_groupings(&tgt, &src).unwrap();
    }

    // The Fig. 2 source instance.
    let mut b = InstanceBuilder::new(&src);
    b.push_top(
        "Companies",
        vec![Value::int(111), Value::str("IBM"), Value::str("Almaden")],
    );
    b.push_top(
        "Companies",
        vec![Value::int(112), Value::str("SBC"), Value::str("NY")],
    );
    b.push_top(
        "Projects",
        vec![
            Value::str("p1"),
            Value::str("DBSearch"),
            Value::int(111),
            Value::str("e14"),
        ],
    );
    b.push_top(
        "Projects",
        vec![
            Value::str("p2"),
            Value::str("WebSearch"),
            Value::int(111),
            Value::str("e15"),
        ],
    );
    b.push_top(
        "Employees",
        vec![Value::str("e14"), Value::str("Smith"), Value::str("x2292")],
    );
    b.push_top(
        "Employees",
        vec![Value::str("e15"), Value::str("Anna"), Value::str("x2283")],
    );
    b.push_top(
        "Employees",
        vec![Value::str("e16"), Value::str("Brown"), Value::str("x2567")],
    );
    let source = b.finish().unwrap();

    println!("=== Fig. 2: chasing the source with {{m1, m2, m3}} ===\n");
    let solution = chase(&src, &tgt, &source, &mappings).unwrap();
    println!("{}", display::render(&tgt, &solution));

    // Fig. 3: Muse-G designs SKProjs for m2; the designer has
    // SKProjs(cname) in mind. A verbose designer prints each question the
    // way the figure shows them, then defers to the oracle.
    println!("=== Fig. 3: Muse-G probes for m2 (designer wants SKProjs(cname)) ===\n");
    struct Narrating<'a> {
        oracle: OracleDesigner<'a>,
        src: Schema,
        tgt: Schema,
    }
    impl muse_suite::wizard::Designer for Narrating<'_> {
        fn pick_scenario(
            &mut self,
            q: &muse_suite::wizard::GroupingQuestion,
        ) -> Result<muse_suite::wizard::ScenarioChoice, muse_suite::wizard::WizardError> {
            println!("{}", q.render(&self.src, &self.tgt));
            let choice = self.oracle.pick_scenario(q)?;
            println!(
                "Designer picks Scenario {}.\n",
                match choice {
                    muse_suite::wizard::ScenarioChoice::First => 1,
                    muse_suite::wizard::ScenarioChoice::Second => 2,
                }
            );
            Ok(choice)
        }
        fn fill_choices(
            &mut self,
            _q: &muse_suite::wizard::DisambiguationQuestion,
        ) -> Result<Vec<Vec<usize>>, muse_suite::wizard::WizardError> {
            unreachable!("no ambiguous mappings here")
        }
    }

    let cons = Constraints::none();
    let museg = MuseG::new(&src, &tgt, &cons).with_instance(&source);
    let mut oracle = OracleDesigner::new(&src, &tgt);
    let sk = SetPath::parse("Orgs.Projects");
    oracle.intend_grouping("m2", sk.clone(), vec![PathRef::new(0, "cname")]);
    let mut designer = Narrating {
        oracle,
        src: src.clone(),
        tgt: tgt.clone(),
    };

    let outcome = museg
        .design_grouping(&mappings[1], &sk, &mut designer)
        .unwrap();
    println!("=== Result ===");
    println!(
        "Inferred grouping: SKProjs({})",
        outcome
            .grouping
            .iter()
            .map(|r| mappings[1].source_ref_name(r))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "{} questions over poss of size {}; {} real / {} synthetic examples.",
        outcome.questions, outcome.poss_size, outcome.real_examples, outcome.synthetic_examples
    );
}
