//! Fig. 4: Muse-D disambiguates the mapping `ma`, where a project's
//! supervisor (and email) can come from the manager or from the tech lead.
//!
//! Run with: `cargo run --example disambiguation`

use muse_suite::chase::chase_one;
use muse_suite::mapping::parse_one;
use muse_suite::nr::{display, Constraints, Field, InstanceBuilder, Schema, Ty, Value};
use muse_suite::wizard::{Designer, MuseD, ScriptedDesigner};

fn main() {
    // Fig. 4(a): the source and target schemas.
    let src = Schema::new(
        "CompDB",
        vec![
            Field::new(
                "Projects",
                Ty::set_of(vec![
                    Field::new("pid", Ty::Str),
                    Field::new("pname", Ty::Str),
                    Field::new("manager", Ty::Str),
                    Field::new("tech-lead", Ty::Str),
                ]),
            ),
            Field::new(
                "Employees",
                Ty::set_of(vec![
                    Field::new("eid", Ty::Str),
                    Field::new("ename", Ty::Str),
                    Field::new("contact", Ty::Str),
                ]),
            ),
        ],
    )
    .unwrap();
    let tgt = Schema::new(
        "OrgDB",
        vec![Field::new(
            "Projects",
            Ty::set_of(vec![
                Field::new("pname", Ty::Str),
                Field::new("supervisor", Ty::Str),
                Field::new("email", Ty::Str),
            ]),
        )],
    )
    .unwrap();

    // The ambiguous mapping, with its two or-groups.
    let ma = parse_one(
        "ma: for p in CompDB.Projects, e1 in CompDB.Employees, e2 in CompDB.Employees
             satisfy e1.eid = p.manager and e2.eid = p.tech-lead
             exists p1 in OrgDB.Projects
             where p.pname = p1.pname
               and (e1.ename = p1.supervisor or e2.ename = p1.supervisor)
               and (e1.contact = p1.email or e2.contact = p1.email)",
    )
    .unwrap();
    ma.validate(&src, &tgt).unwrap();
    println!(
        "`ma` is ambiguous: {} or-groups encoding {} interpretations.\n",
        muse_suite::mapping::ambiguity::or_groups(&ma).len(),
        muse_suite::lint::ambiguity::alternatives_count(&ma),
    );

    // The Fig. 4(b) source instance.
    let mut b = InstanceBuilder::new(&src);
    b.push_top(
        "Projects",
        vec![
            Value::str("P1"),
            Value::str("DB"),
            Value::str("e4"),
            Value::str("e5"),
        ],
    );
    b.push_top(
        "Employees",
        vec![Value::str("e4"), Value::str("Jon"), Value::str("jon@ibm")],
    );
    b.push_top(
        "Employees",
        vec![Value::str("e5"), Value::str("Anna"), Value::str("anna@ibm")],
    );
    let real = b.finish().unwrap();

    let cons = Constraints::none();
    let mused = MuseD::new(&src, &tgt, &cons).with_instance(&real);

    // Show the single compact question (Fig. 4(b)).
    let q = mused.question(&ma).unwrap();
    println!("{}", q.render(&src, &tgt));

    // The designer picks Anna for supervisor and jon@ibm for email.
    let mut designer = ScriptedDesigner::default();
    designer.choices.push_back(vec![vec![1], vec![0]]);
    let outcome = mused.disambiguate(&ma, &mut designer).unwrap();
    let selected = &outcome.selected[0];
    println!(
        "Selected interpretation:\n{}",
        muse_suite::mapping::print(selected)
    );

    // And what it exchanges.
    let target = chase_one(&src, &tgt, &real, selected).unwrap();
    println!("Chase of the source under the selected mapping:");
    println!("{}", display::render(&tgt, &target));

    // The inner/outer option (Sec. IV "More options"): should employees
    // that appear in no project still be exchanged? That question applies
    // to mappings where one variable's tuples feed target elements on
    // their own, e.g. this employee-migrating join.
    let tgt2 = Schema::new(
        "OrgDB2",
        vec![
            Field::new("Projects", Ty::set_of(vec![Field::new("pname", Ty::Str)])),
            Field::new(
                "Employees",
                Ty::set_of(vec![
                    Field::new("eid", Ty::Str),
                    Field::new("ename", Ty::Str),
                ]),
            ),
        ],
    )
    .unwrap();
    let join = parse_one(
        "mj: for p in CompDB.Projects, e in CompDB.Employees
             satisfy e.eid = p.manager
             exists p1 in OrgDB2.Projects, f in OrgDB2.Employees
             where p.pname = p1.pname and e.eid = f.eid and e.ename = f.ename",
    )
    .unwrap();
    join.validate(&src, &tgt2).unwrap();
    let mused2 = MuseD::new(&src, &tgt2, &cons);
    let mut outer = ScriptedDesigner::default();
    outer.joins.push_back(muse_suite::wizard::JoinChoice::Outer);
    let companion = mused2.design_join(&join, 1, &mut outer).unwrap();
    match companion {
        Some(c) => println!(
            "Designer chose the outer interpretation; Muse adds the companion:\n{}",
            muse_suite::mapping::print(&c)
        ),
        None => println!("Designer kept the inner interpretation."),
    }
    let _: &mut dyn Designer = &mut outer;
}
