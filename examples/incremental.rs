//! Incremental Muse-G (Sec. III-C): a designer returns to a finished
//! mapping and refines its grouping function without restarting the wizard
//! — "group more" merges nested sets, "group less" splits them.
//!
//! Run with: `cargo run --example incremental`

use muse_suite::chase::chase_one;
use muse_suite::mapping::{parse_one, Grouping, PathRef};
use muse_suite::nr::{display, Constraints, Field, InstanceBuilder, Schema, SetPath, Ty, Value};
use muse_suite::wizard::museg::incremental::{group_less, group_more};
use muse_suite::wizard::{MuseG, OracleDesigner};

fn main() {
    let src = Schema::new(
        "S",
        vec![Field::new(
            "Companies",
            Ty::set_of(vec![
                Field::new("cid", Ty::Int),
                Field::new("cname", Ty::Str),
                Field::new("location", Ty::Str),
            ]),
        )],
    )
    .unwrap();
    let tgt = Schema::new(
        "T",
        vec![Field::new(
            "Orgs",
            Ty::set_of(vec![
                Field::new("oname", Ty::Str),
                Field::new("Branches", Ty::set_of(vec![Field::new("site", Ty::Str)])),
            ]),
        )],
    )
    .unwrap();

    // The mapping as designed last week: branches grouped per (cname,
    // location) — one branch list per company per city.
    let mut m = parse_one(
        "m: for c in S.Companies
            exists o in T.Orgs, b in o.Branches
            where c.cname = o.oname and c.location = b.site
            group o.Branches by (c.cname, c.location)",
    )
    .unwrap();
    m.validate(&src, &tgt).unwrap();

    let mut bld = InstanceBuilder::new(&src);
    for (cid, cname, loc) in [
        (1, "IBM", "Almaden"),
        (2, "IBM", "NY"),
        (3, "SBC", "SF"),
        (4, "SBC", "SF"),
    ] {
        bld.push_top(
            "Companies",
            vec![Value::int(cid), Value::str(cname), Value::str(loc)],
        );
    }
    let inst = bld.finish().unwrap();

    let sk = SetPath::parse("Orgs.Branches");
    println!("Current design: group Branches by (cname, location):\n");
    let j = chase_one(&src, &tgt, &inst, &m).unwrap();
    println!("{}", display::render(&tgt, &j));

    // "Group more": the designer now wants one branch list per company —
    // merge the per-location sets. Only the two current arguments are
    // probed; cid is never asked about.
    let cons = Constraints::none();
    let wizard = MuseG::new(&src, &tgt, &cons).with_instance(&inst);
    let mut oracle = OracleDesigner::new(&src, &tgt);
    oracle.intend_grouping("m", sk.clone(), vec![PathRef::new(0, "cname")]);
    let refined = group_more(&wizard, &m, &sk, &mut oracle).unwrap();
    println!(
        "Group more ({} questions, current args only) -> SKBranches({})",
        refined.questions,
        refined
            .grouping
            .iter()
            .map(|r| m.source_ref_name(r))
            .collect::<Vec<_>>()
            .join(", ")
    );
    m.set_grouping(sk.clone(), Grouping::new(refined.grouping));
    let j = chase_one(&src, &tgt, &inst, &m).unwrap();
    println!("\n{}", display::render(&tgt, &j));

    // "Group less": later still, split again by cid.
    let mut oracle = OracleDesigner::new(&src, &tgt);
    oracle.intend_grouping(
        "m",
        sk.clone(),
        vec![PathRef::new(0, "cid"), PathRef::new(0, "cname")],
    );
    let refined = group_less(&wizard, &m, &sk, &mut oracle).unwrap();
    println!(
        "Group less ({} questions, remaining attributes only) -> SKBranches({})",
        refined.questions,
        refined
            .grouping
            .iter()
            .map(|r| m.source_ref_name(r))
            .collect::<Vec<_>>()
            .join(", ")
    );
    m.set_grouping(sk, Grouping::new(refined.grouping));
    let j = chase_one(&src, &tgt, &inst, &m).unwrap();
    println!("\n{}", display::render(&tgt, &j));
}
