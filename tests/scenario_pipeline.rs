//! End-to-end pipeline per evaluation scenario: generate an instance,
//! generate candidate mappings Clio-style, run the full wizard session
//! (Muse-D then Muse-G), and check that the finished mappings chase the
//! instance into a valid target.

use muse_suite::chase::chase;
use muse_suite::cliogen::{desired_grouping, GroupingStrategy};
use muse_suite::mapping::ambiguity::{or_groups, select_multi};
use muse_suite::wizard::{OracleDesigner, Session};

fn run_scenario(name: &str, scale: f64) {
    let scenarios = muse_suite::scenarios::all_scenarios();
    let scenario = scenarios.iter().find(|s| s.name == name).unwrap();
    let instance = scenario.instance(scale, 11);
    let mappings = scenario.mappings().unwrap();

    // Oracle: first interpretation everywhere, G3 grouping semantics.
    let mut oracle = OracleDesigner::new(&scenario.source_schema, &scenario.target_schema);
    let mut resolved = Vec::new();
    for m in &mappings {
        if m.is_ambiguous() {
            let picks = vec![vec![0usize]; or_groups(m).len()];
            oracle
                .intended_choices
                .insert(m.name.clone(), picks.clone());
            resolved.extend(select_multi(m, &picks).unwrap());
        } else {
            resolved.push(m.clone());
        }
    }
    for m in &resolved {
        for sk in m.filled_target_sets(&scenario.target_schema).unwrap() {
            let desired = desired_grouping(
                m,
                &sk,
                GroupingStrategy::G3,
                &scenario.source_schema,
                &scenario.target_schema,
            )
            .unwrap();
            oracle.intend_grouping(m.name.clone(), sk, desired);
        }
    }

    let session = Session::new(
        &scenario.source_schema,
        &scenario.target_schema,
        &scenario.source_constraints,
    )
    .with_instance(&instance);
    let report = session.run(&mappings, &mut oracle).unwrap();

    // Every final mapping validates and the whole Σ chases cleanly.
    for m in &report.mappings {
        m.validate(&scenario.source_schema, &scenario.target_schema)
            .unwrap_or_else(|e| panic!("{name}/{}: {e}", m.name));
        assert!(!m.is_ambiguous());
    }
    let target = chase(
        &scenario.source_schema,
        &scenario.target_schema,
        &instance,
        &report.mappings,
    )
    .unwrap();
    target.validate(&scenario.target_schema).unwrap();
    assert!(!target.is_empty(), "{name}: chase produced data");
    assert!(
        report.total_questions() > 0,
        "{name}: the wizard asked questions"
    );
}

#[test]
fn mondial_pipeline() {
    run_scenario("Mondial", 0.04);
}

#[test]
fn dblp_pipeline() {
    run_scenario("DBLP", 0.02);
}

#[test]
fn tpch_pipeline() {
    run_scenario("TPCH", 0.02);
}

#[test]
fn amalgam_pipeline() {
    run_scenario("Amalgam", 0.03);
}
