//! The fleet harness: every seeded synthetic scenario must clear the same
//! bars the four hand-built scenarios clear, per scenario —
//!
//! 1. **lint**: zero errors, and clean under the plan (`MUSE-P`) and
//!    termination (`MUSE-T`) passes — synthetic scenarios are weakly
//!    acyclic and cartesian-free by construction, checked seed by seed;
//! 2. **differential**: the parallel chase agrees with the serial chase —
//!    isomorphic, render-identical, and `chase.*` counter-identical; and
//!    (seeds 0..64) plan-driven evaluation returns byte-identical rows to
//!    the reference evaluator for every mapping query;
//! 3. **wizard property**: a G1/G2/G3 oracle session terminates without
//!    error, stays within the `MUSE-A003` question bounds for every
//!    grouping it designs, and its final mappings chase to a valid target.
//!
//! The seed range is sharded across CI workers via `MUSE_FLEET_SEEDS=lo..hi`
//! (default `0..16`, so the tier-1 run stays fast); the CI `fleet` job's
//! shards sum to ≥1000 distinct seeds. `MUSE_FLEET_SCALE` scales the
//! generated instances (default 0.25).

use muse_obs::Metrics;
use muse_suite::chase::{chase, chase_par_with, chase_with, isomorphic};
use muse_suite::cliogen::{desired_grouping, GroupingStrategy};
use muse_suite::lint::budget::question_budget;
use muse_suite::lint::{lint, LintInput};
use muse_suite::mapping::ambiguity::{self, or_groups, select_multi};
use muse_suite::mapping::Mapping;
use muse_suite::nr::display;
use muse_suite::scenarios::synth::SynthCfg;
use muse_suite::scenarios::Scenario;
use muse_suite::wizard::{OracleDesigner, Session};

fn seed_range() -> std::ops::Range<u64> {
    let spec = std::env::var("MUSE_FLEET_SEEDS").unwrap_or_else(|_| "0..16".into());
    let (lo, hi) = spec
        .split_once("..")
        .unwrap_or_else(|| panic!("MUSE_FLEET_SEEDS={spec:?}: expected lo..hi"));
    let lo: u64 = lo.trim().parse().expect("MUSE_FLEET_SEEDS lower bound");
    let hi: u64 = hi.trim().parse().expect("MUSE_FLEET_SEEDS upper bound");
    assert!(lo < hi, "MUSE_FLEET_SEEDS={spec:?}: empty range");
    lo..hi
}

fn fleet_scale() -> f64 {
    std::env::var("MUSE_FLEET_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25)
}

/// The injective homomorphism search recurses once per target tuple; give
/// the whole fleet loop a roomy stack.
fn with_big_stack(f: impl FnOnce() + Send + 'static) {
    std::thread::Builder::new()
        .stack_size(256 * 1024 * 1024)
        .spawn(f)
        .expect("spawn big-stack thread")
        .join()
        .expect("fleet body panicked");
}

/// Chase-ready mappings: first interpretation of every or-group, default
/// groupings filled in.
fn ready_mappings(s: &Scenario) -> Vec<Mapping> {
    s.mappings()
        .expect("scenario mappings generate")
        .iter()
        .map(|m| {
            let mut m = if m.is_ambiguous() {
                let picks = vec![0usize; ambiguity::or_groups(m).len()];
                ambiguity::select(m, &picks).expect("first interpretation")
            } else {
                m.clone()
            };
            m.ensure_default_groupings(&s.target_schema, &s.source_schema)
                .expect("default groupings");
            m
        })
        .collect()
}

/// An oracle wanting `strategy` groupings and the first interpretation of
/// every or-group — the designer `muse scenario --strategy` simulates.
fn oracle_for<'a>(scenario: &'a Scenario, strategy: GroupingStrategy) -> OracleDesigner<'a> {
    let mappings = scenario.mappings().unwrap();
    let mut oracle = OracleDesigner::new(&scenario.source_schema, &scenario.target_schema);
    for m in &mappings {
        let resolved = if m.is_ambiguous() {
            let picks = vec![vec![0usize]; or_groups(m).len()];
            oracle
                .intended_choices
                .insert(m.name.clone(), picks.clone());
            select_multi(m, &picks).unwrap()
        } else {
            vec![m.clone()]
        };
        for sel in resolved {
            for sk in sel.filled_target_sets(&scenario.target_schema).unwrap() {
                let desired = desired_grouping(
                    &sel,
                    &sk,
                    strategy,
                    &scenario.source_schema,
                    &scenario.target_schema,
                )
                .unwrap();
                oracle.intend_grouping(sel.name.clone(), sk, desired);
            }
        }
    }
    oracle
}

fn check_lint(s: &Scenario) {
    let mappings = s.mappings().unwrap();
    let report = lint(&LintInput {
        source_schema: &s.source_schema,
        source_constraints: &s.source_constraints,
        target_schema: &s.target_schema,
        target_constraints: &s.target_constraints,
        mappings: &mappings,
    });
    assert!(
        report.is_clean(),
        "{}: lint errors\n{}",
        s.name,
        report.render()
    );
    // P/T-clean: the generator never emits cartesian products, dead joins,
    // or non-weakly-acyclic constraint graphs, so the plan and termination
    // passes must stay below warning severity on every seed.
    for d in &report.diagnostics {
        let plan_or_term = d.code.starts_with("MUSE-P") || d.code.starts_with("MUSE-T");
        assert!(
            !(plan_or_term && d.severity >= muse_suite::lint::Severity::Warning),
            "{}: plan/termination pass not clean\n{}",
            s.name,
            d.render()
        );
    }
}

/// Plan-driven evaluation must return byte-identical rows to the reference
/// evaluator — on every mapping query of the scenario, over the generated
/// instance.
fn check_plan_differential(s: &Scenario, scale: f64, seed: u64) {
    let source = s.instance(scale, seed);
    let hints = muse_suite::query::SelectivityHints::from_constraints(
        &s.source_schema,
        &s.source_constraints,
    );
    for m in ready_mappings(s) {
        let q = m.source_query();
        let reference = muse_suite::query::evaluate_all(&s.source_schema, &source, &q)
            .unwrap_or_else(|e| panic!("{}/{}: reference eval: {e}", s.name, m.name));
        let plan = muse_suite::query::plan_query(&s.source_schema, &q, Some(&hints))
            .unwrap_or_else(|e| panic!("{}/{}: plan: {e}", s.name, m.name));
        let planned = muse_suite::query::evaluate_all_planned_with(
            &s.source_schema,
            &source,
            &q,
            Some(&plan),
            muse_obs::Budget::unlimited_ref(),
            Metrics::disabled_ref(),
        )
        .unwrap_or_else(|e| panic!("{}/{}: planned eval: {e}", s.name, m.name))
        .into_value();
        assert_eq!(
            reference, planned,
            "{}/{}: plan-driven rows differ from the reference evaluator",
            s.name, m.name
        );
    }
}

fn check_differential(s: &Scenario, scale: f64, seed: u64) {
    let source = s.instance(scale, seed);
    source
        .validate(&s.source_schema)
        .unwrap_or_else(|e| panic!("{}: invalid source instance: {e}", s.name));
    s.source_constraints
        .validate_instance(&s.source_schema, &source)
        .unwrap_or_else(|e| panic!("{}: source constraints violated: {e}", s.name));

    let mappings = ready_mappings(s);
    let serial_m = Metrics::enabled();
    let serial = chase_with(
        &s.source_schema,
        &s.target_schema,
        &source,
        &mappings,
        &serial_m,
    )
    .unwrap_or_else(|e| panic!("{}: serial chase: {e}", s.name));
    assert!(!serial.is_empty(), "{}: chased an empty instance", s.name);

    let par_m = Metrics::enabled();
    let par = chase_par_with(
        &s.source_schema,
        &s.target_schema,
        &source,
        &mappings,
        4,
        &par_m,
    )
    .unwrap_or_else(|e| panic!("{}: parallel chase: {e}", s.name));

    assert_eq!(
        display::render(&s.target_schema, &serial),
        display::render(&s.target_schema, &par),
        "{}: parallel render differs from serial",
        s.name
    );
    assert!(
        isomorphic(&serial, &par),
        "{}: parallel result not isomorphic to serial",
        s.name
    );
    let (sm, pm) = (serial_m.snapshot(), par_m.snapshot());
    for key in [
        "chase.mappings",
        "chase.bindings",
        "chase.steps",
        "chase.tuples_emitted",
        "chase.dedup_hits",
    ] {
        assert_eq!(
            sm.counter(key),
            pm.counter(key),
            "{}: counter {key} diverged",
            s.name
        );
    }
}

fn check_wizard_property(s: &Scenario, scale: f64, seed: u64, strategy: GroupingStrategy) {
    let instance = s.instance(scale, seed);
    let mappings = s.mappings().unwrap();
    let mut oracle = oracle_for(s, strategy);
    let session = Session::new(&s.source_schema, &s.target_schema, &s.source_constraints)
        .with_instance(&instance);
    let out = session
        .run(&mappings, &mut oracle)
        .unwrap_or_else(|e| panic!("{} ({strategy:?}): wizard failed: {e}", s.name));
    assert!(
        out.warnings.is_empty(),
        "{}: unbudgeted session degraded: {:?}",
        s.name,
        out.warnings
    );

    for (mname, g) in &out.groupings {
        let m = out
            .mappings
            .iter()
            .find(|m| &m.name == mname)
            .unwrap_or_else(|| panic!("{}: no final mapping named {mname}", s.name));
        let budget = question_budget(m, &s.source_schema, &s.source_constraints)
            .unwrap_or_else(|e| panic!("{}/{mname}: budget failed: {e:?}", s.name));
        assert!(
            g.questions <= budget.upper,
            "{}/{}/{}: {} questions > predicted upper bound {}",
            s.name,
            mname,
            g.sk,
            g.questions,
            budget.upper
        );
        assert!(
            g.questions >= budget.lower.min(1),
            "{}/{}/{}: {} questions < predicted lower bound {}",
            s.name,
            mname,
            g.sk,
            g.questions,
            budget.lower
        );
    }

    let target = chase(&s.source_schema, &s.target_schema, &instance, &out.mappings)
        .unwrap_or_else(|e| panic!("{}: final chase failed: {e}", s.name));
    target
        .validate(&s.target_schema)
        .unwrap_or_else(|e| panic!("{}: corrupt chased target: {e}", s.name));
}

#[test]
fn fleet_passes_lint_differential_and_wizard_property() {
    let range = seed_range();
    let scale = fleet_scale();
    with_big_stack(move || {
        let strategies = [
            GroupingStrategy::G1,
            GroupingStrategy::G2,
            GroupingStrategy::G3,
        ];
        let mut checked = 0u64;
        for seed in range {
            let s = Scenario::synthetic(SynthCfg::from_seed(seed));
            check_lint(&s);
            check_differential(&s, scale, seed);
            if seed < 64 {
                check_plan_differential(&s, scale, seed);
            }
            check_wizard_property(&s, scale, seed, strategies[(seed % 3) as usize]);
            checked += 1;
        }
        eprintln!("fleet: {checked} scenarios passed lint + differential + wizard property");
    });
}
