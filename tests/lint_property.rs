//! The lint/wizard contract, checked empirically: a bundle the analyzer
//! passes without errors really does chase and survive both wizards, and
//! the Muse-G question counts the wizard reports stay inside the bounds
//! pass 3 (`MUSE-A003`) predicted. Seeds come from the in-tree SplitMix64
//! generator, so every run checks the same cases.

use muse_obs::Rng;
use muse_suite::chase::chase;
use muse_suite::cliogen::{desired_grouping, GroupingStrategy};
use muse_suite::lint::budget::question_budget;
use muse_suite::lint::{lint, LintInput};
use muse_suite::mapping::ambiguity::{or_groups, select_multi};
use muse_suite::scenarios::Scenario;
use muse_suite::wizard::{OracleDesigner, Session};

fn lint_scenario(scenario: &Scenario) -> muse_suite::lint::LintReport {
    let mappings = scenario.mappings().unwrap();
    let input = LintInput {
        source_schema: &scenario.source_schema,
        source_constraints: &scenario.source_constraints,
        target_schema: &scenario.target_schema,
        target_constraints: &scenario.target_constraints,
        mappings: &mappings,
    };
    lint(&input)
}

/// An oracle wanting `strategy` groupings and the first interpretation of
/// every or-group — the same designer `muse scenario --strategy` simulates.
fn oracle_for<'a>(scenario: &'a Scenario, strategy: GroupingStrategy) -> OracleDesigner<'a> {
    let mappings = scenario.mappings().unwrap();
    let mut oracle = OracleDesigner::new(&scenario.source_schema, &scenario.target_schema);
    for m in &mappings {
        let resolved = if m.is_ambiguous() {
            let picks = vec![vec![0usize]; or_groups(m).len()];
            oracle
                .intended_choices
                .insert(m.name.clone(), picks.clone());
            select_multi(m, &picks).unwrap()
        } else {
            vec![m.clone()]
        };
        for sel in resolved {
            for sk in sel.filled_target_sets(&scenario.target_schema).unwrap() {
                let desired = desired_grouping(
                    &sel,
                    &sk,
                    strategy,
                    &scenario.source_schema,
                    &scenario.target_schema,
                )
                .unwrap();
                oracle.intend_grouping(sel.name.clone(), sk, desired);
            }
        }
    }
    oracle
}

/// Lint-clean bundles run end-to-end: no `WizardError`, a valid chased
/// target, and per-set Muse-G question counts within the `MUSE-A003`
/// budget computed on the resolved mapping.
fn check_scenario(scenario: &Scenario, seed: u64, strategy: GroupingStrategy) {
    let report = lint_scenario(scenario);
    assert!(
        report.is_clean(),
        "{}: lint errors\n{}",
        scenario.name,
        report.render()
    );

    let instance = scenario.instance(scenario.default_scale * 0.02, seed);
    let mappings = scenario.mappings().unwrap();
    let mut oracle = oracle_for(scenario, strategy);
    let session = Session::new(
        &scenario.source_schema,
        &scenario.target_schema,
        &scenario.source_constraints,
    )
    .with_instance(&instance);
    let out = session
        .run(&mappings, &mut oracle)
        .unwrap_or_else(|e| panic!("{} seed {seed}: wizard failed: {e}", scenario.name));

    // The wizard never asks more than pass 3's worst case, nor fewer than
    // its best case, for any grouping it actually designed.
    for (mname, g) in &out.groupings {
        let m = out
            .mappings
            .iter()
            .find(|m| &m.name == mname)
            .unwrap_or_else(|| panic!("{}: no final mapping named {mname}", scenario.name));
        let budget = question_budget(m, &scenario.source_schema, &scenario.source_constraints)
            .unwrap_or_else(|e| panic!("{}/{}: budget failed: {e:?}", scenario.name, mname));
        assert!(
            g.questions <= budget.upper,
            "{}/{}/{}: {} questions > predicted upper bound {}",
            scenario.name,
            mname,
            g.sk,
            g.questions,
            budget.upper
        );
        assert!(
            g.questions >= budget.lower.min(1),
            "{}/{}/{}: {} questions < predicted lower bound {}",
            scenario.name,
            mname,
            g.sk,
            g.questions,
            budget.lower
        );
    }

    let target = chase(
        &scenario.source_schema,
        &scenario.target_schema,
        &instance,
        &out.mappings,
    )
    .unwrap_or_else(|e| panic!("{} seed {seed}: chase failed: {e}", scenario.name));
    target.validate(&scenario.target_schema).unwrap();
}

#[test]
fn lint_clean_bundles_survive_the_wizards() {
    let mut rng = Rng::new(0x4d55_5345); // "MUSE"
    let strategies = [
        GroupingStrategy::G1,
        GroupingStrategy::G2,
        GroupingStrategy::G3,
    ];
    for scenario in muse_suite::scenarios::all_scenarios() {
        for round in 0..2u64 {
            let seed = rng.next_u64();
            let strategy = strategies[(rng.next_u64() % 3) as usize];
            let _ = round;
            check_scenario(&scenario, seed, strategy);
        }
    }
}
