//! The file-based design path (`muse design`): schema files in the
//! `muse_nr::text` syntax + correspondence arrows + TSV data reproduce the
//! paper's Fig. 1 generation and drive a full wizard session.

use std::path::Path;

use muse_suite::cliogen::Correspondence;
use muse_suite::cliogen::{generate, ScenarioSpec};
use muse_suite::mapping::PathRef;
use muse_suite::nr::text::parse_schema;
use muse_suite::nr::{tsv, SetPath};
use muse_suite::wizard::{OracleDesigner, Session};

fn read(path: &str) -> String {
    std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join(path))
        .unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn example_schema_files_generate_fig1_mappings() {
    let (src, src_cons) = parse_schema(&read("examples/schemas/compdb.schema")).unwrap();
    let (tgt, tgt_cons) = parse_schema(&read("examples/schemas/orgdb.schema")).unwrap();
    let corrs: Vec<Correspondence> = read("examples/schemas/arrows.txt")
        .lines()
        .filter_map(|l| {
            let l = l.split('#').next().unwrap_or("").trim();
            l.split_once("->")
                .map(|(a, b)| Correspondence::new(a.trim(), b.trim()))
        })
        .collect();
    assert_eq!(corrs.len(), 4);

    let spec = ScenarioSpec {
        source_schema: &src,
        source_constraints: &src_cons,
        target_schema: &tgt,
        target_constraints: &tgt_cons,
        correspondences: &corrs,
    };
    let ms = generate(&spec).unwrap();
    assert_eq!(ms.len(), 3, "m1, m2, m3 as in Fig. 1");
    assert!(ms.iter().all(|m| !m.is_ambiguous()));
}

#[test]
fn tsv_data_supports_a_full_session() {
    let (src, src_cons) = parse_schema(&read("examples/schemas/compdb.schema")).unwrap();
    let (tgt, tgt_cons) = parse_schema(&read("examples/schemas/orgdb.schema")).unwrap();
    let instance = tsv::load_dir(
        &src,
        &Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/schemas/data"),
    )
    .unwrap();
    instance.validate(&src).unwrap();
    src_cons.validate_instance(&src, &instance).unwrap();
    assert_eq!(instance.total_tuples(), 8);

    let corrs = vec![
        Correspondence::new("Companies.cname", "Orgs.oname"),
        Correspondence::new("Projects.pname", "Orgs.Projects.pname"),
        Correspondence::new("Employees.eid", "Employees.eid"),
        Correspondence::new("Employees.ename", "Employees.ename"),
    ];
    let spec = ScenarioSpec {
        source_schema: &src,
        source_constraints: &src_cons,
        target_schema: &tgt,
        target_constraints: &tgt_cons,
        correspondences: &corrs,
    };
    let mappings = generate(&spec).unwrap();

    // Oracle wants Projects grouped by company name in every mapping that
    // fills it.
    let mut oracle = OracleDesigner::new(&src, &tgt);
    for m in &mappings {
        for sk in m.filled_target_sets(&tgt).unwrap() {
            // The source variable over Companies differs per mapping.
            let comp_var = m
                .source_vars
                .iter()
                .position(|v| v.set == SetPath::parse("Companies"))
                .unwrap_or(0);
            oracle.intend_grouping(m.name.clone(), sk, vec![PathRef::new(comp_var, "cname")]);
        }
    }
    let session = Session::new(&src, &tgt, &src_cons).with_instance(&instance);
    let report = session.run(&mappings, &mut oracle).unwrap();
    assert_eq!(report.mappings.len(), 3);
    // The real instance contains two IBM companies, so at least one probe
    // found a real example.
    let real: usize = report.groupings.iter().map(|(_, g)| g.real_examples).sum();
    assert!(real >= 1);
    for m in &report.mappings {
        m.validate(&src, &tgt).unwrap();
    }
}
