//! Randomized tests of the core guarantees, across crates:
//!
//! * the chase is idempotent and produces universal solutions,
//! * Thm. 3.2 (grouping by a key ≡ grouping by any superset) holds on
//!   arbitrary key-valid instances,
//! * Muse-G always infers a grouping with the *same effect* as whatever
//!   grouping the oracle designer had in mind, asking at most |poss|
//!   questions (Cor. 3.3),
//! * Muse-D selection round-trips through the chase,
//! * probe examples are always small and constraint-valid.
//!
//! Driven by the deterministic SplitMix64 generator, so every run checks
//! the same cases.

use muse_obs::Rng;

use muse_suite::chase::{chase, chase_one, find_homomorphism, homomorphically_equivalent};
use muse_suite::mapping::{parse_one, Grouping, Mapping, PathRef};
use muse_suite::nr::{
    Constraints, Field, Instance, InstanceBuilder, Key, Schema, SetPath, Ty, Value,
};
use muse_suite::wizard::{Designer, MuseG, OracleDesigner};

/// Source: one relation `R(k, x, y, z)` with key `k`; values of x/y/z come
/// from tiny domains so groupings genuinely collide.
fn source() -> Schema {
    Schema::new(
        "S",
        vec![Field::new(
            "R",
            Ty::set_of(vec![
                Field::new("k", Ty::Int),
                Field::new("x", Ty::Int),
                Field::new("y", Ty::Int),
                Field::new("z", Ty::Int),
            ]),
        )],
    )
    .unwrap()
}

/// Target: `Out(v, Kids(w))`.
fn target() -> Schema {
    Schema::new(
        "T",
        vec![Field::new(
            "Out",
            Ty::set_of(vec![
                Field::new("v", Ty::Int),
                Field::new("Kids", Ty::set_of(vec![Field::new("w", Ty::Int)])),
            ]),
        )],
    )
    .unwrap()
}

fn mapping() -> Mapping {
    parse_one(
        "m: for r in S.R
            exists o in T.Out, c in o.Kids
            where r.x = o.v and r.y = c.w
            group o.Kids by ()",
    )
    .unwrap()
}

fn keyed() -> Constraints {
    Constraints {
        keys: vec![Key::new(SetPath::parse("R"), vec!["k"])],
        fds: vec![],
        fks: vec![],
    }
}

/// Up to 8 rows with unique keys and low-entropy payload.
fn random_rows(rng: &mut Rng) -> Vec<(i64, i64, i64)> {
    (0..rng.index(8))
        .map(|_| (rng.range(0, 4), rng.range(0, 4), rng.range(0, 3)))
        .collect()
}

fn instance_of(rows: &[(i64, i64, i64)]) -> Instance {
    let s = source();
    let mut b = InstanceBuilder::new(&s);
    for (i, (x, y, z)) in rows.iter().enumerate() {
        b.push_top(
            "R",
            vec![
                Value::int(i as i64),
                Value::int(*x),
                Value::int(*y),
                Value::int(*z),
            ],
        );
    }
    b.finish().unwrap()
}

fn with_grouping(attrs: &[&str]) -> Mapping {
    let mut m = mapping();
    let args = attrs.iter().map(|a| PathRef::new(0, *a)).collect();
    m.set_grouping(SetPath::parse("Out.Kids"), Grouping::new(args));
    m
}

/// A random subset of {k, x, y, z} as a grouping intention.
fn random_grouping_subset(rng: &mut Rng) -> Vec<&'static str> {
    let mut v: Vec<&'static str> = (0..rng.index(4))
        .map(|_| *rng.pick(&["k", "x", "y", "z"]))
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Chasing with Σ ∪ Σ adds nothing (idempotence of the canonical universal
/// solution).
#[test]
fn chase_is_idempotent() {
    let mut rng = Rng::new(0x1DE0);
    for case in 0..64 {
        let rows = random_rows(&mut rng);
        let g = random_grouping_subset(&mut rng);
        let (s, t) = (source(), target());
        let i = instance_of(&rows);
        let m = with_grouping(&g);
        let once = chase_one(&s, &t, &i, &m).unwrap();
        let twice = chase(&s, &t, &i, &[m.clone(), m]).unwrap();
        assert_eq!(once.total_tuples(), twice.total_tuples(), "case {case}");
        assert!(homomorphically_equivalent(&once, &twice), "case {case}");
    }
}

/// The chase result maps homomorphically into the chase of any superset
/// instance (monotonicity / universality flavor).
#[test]
fn chase_is_monotone() {
    let mut rng = Rng::new(0x30203);
    for case in 0..64 {
        let rows = random_rows(&mut rng);
        let extra = random_rows(&mut rng);
        let g = random_grouping_subset(&mut rng);
        let (s, t) = (source(), target());
        let m = with_grouping(&g);
        let small = instance_of(&rows);
        let mut all = rows.clone();
        all.extend(extra);
        let big = instance_of(&all);
        let j_small = chase_one(&s, &t, &small, &m).unwrap();
        let j_big = chase_one(&s, &t, &big, &m).unwrap();
        assert!(find_homomorphism(&j_small, &j_big).is_some(), "case {case}");
    }
}

/// Thm. 3.2: when K is a key of poss, SK(K) has the same effect as
/// SK(K ∪ W) on every key-valid instance.
#[test]
fn theorem_3_2_key_superset() {
    let mut rng = Rng::new(0x3_2);
    for case in 0..64 {
        let rows = random_rows(&mut rng);
        let w = random_grouping_subset(&mut rng);
        let (s, t) = (source(), target());
        let i = instance_of(&rows); // keys are unique by construction
        let m_key = with_grouping(&["k"]);
        let mut with_w = vec!["k"];
        with_w.extend(w);
        with_w.sort_unstable();
        with_w.dedup();
        let m_sup = with_grouping(&with_w);
        let a = chase_one(&s, &t, &i, &m_key).unwrap();
        let b = chase_one(&s, &t, &i, &m_sup).unwrap();
        assert!(
            homomorphically_equivalent(&a, &b),
            "case {case}: SK(k) vs SK({with_w:?})"
        );
    }
}

/// The wizard's central guarantee: for any intended grouping and any
/// key-valid real instance, the inferred grouping has the same effect
/// as the intention on that instance, with at most |poss| questions.
#[test]
fn museg_infers_same_effect_grouping() {
    let mut rng = Rng::new(0x9A4E);
    for case in 0..64 {
        let rows = random_rows(&mut rng);
        let intent = random_grouping_subset(&mut rng);
        let (s, t) = (source(), target());
        let i = instance_of(&rows);
        let cons = keyed();
        let m = mapping();
        let sk = SetPath::parse("Out.Kids");
        let desired: Vec<PathRef> = intent.iter().map(|a| PathRef::new(0, *a)).collect();

        let museg = MuseG::new(&s, &t, &cons).with_instance(&i);
        let mut oracle = OracleDesigner::new(&s, &t);
        oracle.intend_grouping("m", sk.clone(), desired.clone());
        let out = museg.design_grouping(&m, &sk, &mut oracle).unwrap();
        assert!(out.questions <= out.poss_size, "case {case}: Cor. 3.3");

        let mut intended = m.clone();
        intended.set_grouping(sk.clone(), Grouping::new(desired));
        let mut inferred = m.clone();
        inferred.set_grouping(sk, Grouping::new(out.grouping));
        let a = chase_one(&s, &t, &i, &intended).unwrap();
        let b = chase_one(&s, &t, &i, &inferred).unwrap();
        assert!(homomorphically_equivalent(&a, &b), "case {case}");
    }
}

/// Probe examples always satisfy the source constraints and contain at
/// most two tuples per relation.
#[test]
fn probe_examples_are_small_and_valid() {
    struct Checking<'a> {
        inner: OracleDesigner<'a>,
        schema: Schema,
        cons: Constraints,
    }
    impl Designer for Checking<'_> {
        fn pick_scenario(
            &mut self,
            q: &muse_suite::wizard::GroupingQuestion,
        ) -> Result<muse_suite::wizard::ScenarioChoice, muse_suite::wizard::WizardError> {
            q.example.instance.validate(&self.schema).unwrap();
            self.cons
                .validate_instance(&self.schema, &q.example.instance)
                .unwrap();
            for id in q.example.instance.set_ids() {
                assert!(q.example.instance.set_len(id) <= 2);
            }
            self.inner.pick_scenario(q)
        }
        fn fill_choices(
            &mut self,
            _q: &muse_suite::wizard::DisambiguationQuestion,
        ) -> Result<Vec<Vec<usize>>, muse_suite::wizard::WizardError> {
            unreachable!()
        }
    }
    let mut rng = Rng::new(0x9_20BE);
    for _case in 0..64 {
        let rows = random_rows(&mut rng);
        let intent = random_grouping_subset(&mut rng);
        let (s, t) = (source(), target());
        let i = instance_of(&rows);
        let cons = keyed();
        let m = mapping();
        let sk = SetPath::parse("Out.Kids");
        let desired: Vec<PathRef> = intent.iter().map(|a| PathRef::new(0, *a)).collect();
        let museg = MuseG::new(&s, &t, &cons).with_instance(&i);
        let mut oracle = OracleDesigner::new(&s, &t);
        oracle.intend_grouping("m", sk.clone(), desired);
        let mut checking = Checking {
            inner: oracle,
            schema: s.clone(),
            cons: cons.clone(),
        };
        museg.design_grouping(&m, &sk, &mut checking).unwrap();
    }
}

/// Muse-D: for every interpretation of an ambiguous mapping, selecting its
/// choice indices recovers a mapping with the same chase result.
#[test]
fn mused_selection_round_trips_over_random_instances() {
    use muse_suite::mapping::ambiguity::interpretations;
    use muse_suite::wizard::{MuseD, ScriptedDesigner};

    let src = Schema::new(
        "S",
        vec![Field::new(
            "R",
            Ty::set_of(vec![
                Field::new("k", Ty::Int),
                Field::new("x", Ty::Int),
                Field::new("y", Ty::Int),
            ]),
        )],
    )
    .unwrap();
    let tgt = Schema::new(
        "T",
        vec![Field::new(
            "Out",
            Ty::set_of(vec![Field::new("v", Ty::Int)]),
        )],
    )
    .unwrap();
    let ma = parse_one(
        "ma: for r in S.R
             exists o in T.Out
             where (r.x = o.v or r.y = o.v)",
    )
    .unwrap();
    let cons = Constraints::none();
    let mused = MuseD::new(&src, &tgt, &cons);

    // A check instance where x and y genuinely differ.
    let mut b = InstanceBuilder::new(&src);
    b.push_top("R", vec![Value::int(0), Value::int(1), Value::int(2)]);
    b.push_top("R", vec![Value::int(1), Value::int(3), Value::int(3)]);
    let check = b.finish().unwrap();

    for (k, intended) in interpretations(&ma).iter().enumerate() {
        let mut scripted = ScriptedDesigner::default();
        scripted.choices.push_back(vec![vec![k]]);
        let out = mused.disambiguate(&ma, &mut scripted).unwrap();
        let a = chase_one(&src, &tgt, &check, intended).unwrap();
        let b = chase_one(&src, &tgt, &check, &out.selected[0]).unwrap();
        assert!(homomorphically_equivalent(&a, &b), "interpretation {k}");
    }
}
