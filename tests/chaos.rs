//! Chaos differential: the full pipeline under deterministic fault
//! injection must either produce exactly the fault-free result or degrade
//! cleanly (a truncated-but-valid result, or a typed error) — never panic
//! the process, never emit a corrupt instance.
//!
//! Plans come from fixed seeds plus one spec-based plan per scenario, and
//! CI additionally exports `MUSE_FAULTS` so the whole suite runs once with
//! a plan armed from the environment (`muse_fault::arm_from_env`).

use std::sync::Mutex;

use muse_fault::{arm_scoped, parse_spec, plan_from_seed, FaultPlan};
use muse_obs::{Budget, Metrics, Outcome};
use muse_suite::chase::{chase_budget_with, chase_par_budget_with, chase_with, fingerprint};
use muse_suite::cliogen::{desired_grouping, GroupingStrategy};
use muse_suite::mapping::ambiguity::{or_groups, select_multi};
use muse_suite::scenarios::Scenario;
use muse_suite::wizard::{OracleDesigner, Session, WizardError};

/// Fault arming is process-global: every test that touches instrumented
/// points serializes on this lock (poisoning ignored — a failed test must
/// not cascade).
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

struct PipelineResult {
    /// Final mappings in concrete syntax.
    mappings_text: String,
    /// Fingerprint of the chased target (of the complete or partial value).
    target_fp: u64,
    /// Graceful-degradation warnings the session collected.
    warnings: usize,
    /// Whether the final chase truncated.
    chase_truncated: bool,
}

/// One full wizard-plus-chase pipeline. Never panics: every failure mode is
/// a `WizardError` or a truncated `Outcome`.
fn run_pipeline(scenario: &Scenario, scale: f64) -> Result<PipelineResult, WizardError> {
    let instance = scenario.instance(scale, 11);
    let mappings = scenario.mappings().expect("scenario mappings generate");

    let mut oracle = OracleDesigner::new(&scenario.source_schema, &scenario.target_schema);
    let mut resolved = Vec::new();
    for m in &mappings {
        if m.is_ambiguous() {
            let picks = vec![vec![0usize]; or_groups(m).len()];
            oracle
                .intended_choices
                .insert(m.name.clone(), picks.clone());
            resolved.extend(select_multi(m, &picks).expect("selection"));
        } else {
            resolved.push(m.clone());
        }
    }
    for m in &resolved {
        for sk in m
            .filled_target_sets(&scenario.target_schema)
            .expect("filled sets")
        {
            let desired = desired_grouping(
                m,
                &sk,
                GroupingStrategy::G3,
                &scenario.source_schema,
                &scenario.target_schema,
            )
            .expect("strategy grouping");
            oracle.intend_grouping(m.name.clone(), sk, desired);
        }
    }

    let session = Session::new(
        &scenario.source_schema,
        &scenario.target_schema,
        &scenario.source_constraints,
    )
    .with_instance(&instance);
    let report = session.run(&mappings, &mut oracle)?;

    // The finished mappings must be valid no matter what was injected.
    for m in &report.mappings {
        m.validate(&scenario.source_schema, &scenario.target_schema)
            .unwrap_or_else(|e| panic!("{}/{}: invalid mapping: {e}", scenario.name, m.name));
    }

    let outcome = chase_budget_with(
        &scenario.source_schema,
        &scenario.target_schema,
        &instance,
        &report.mappings,
        Budget::unlimited_ref(),
        &Metrics::disabled(),
    )
    .map_err(WizardError::Chase)?;
    let chase_truncated = !outcome.is_complete();
    let target = outcome.into_value();
    // Complete or truncated, the produced instance must be valid.
    target
        .validate(&scenario.target_schema)
        .unwrap_or_else(|e| panic!("{}: corrupt chased instance: {e}", scenario.name));

    Ok(PipelineResult {
        mappings_text: muse_suite::mapping::printer::print_all(&report.mappings),
        target_fp: fingerprint(&target),
        warnings: report.warnings.len(),
        chase_truncated,
    })
}

/// A chase-ready Σ: every ambiguous mapping resolved to its first
/// interpretation.
fn resolved_mappings(scenario: &Scenario) -> Vec<muse_suite::mapping::Mapping> {
    let mut out = Vec::new();
    for m in scenario.mappings().unwrap() {
        if m.is_ambiguous() {
            let picks = vec![vec![0usize]; or_groups(&m).len()];
            out.extend(select_multi(&m, &picks).unwrap());
        } else {
            out.push(m);
        }
    }
    out
}

fn scenario_scale(name: &str) -> f64 {
    match name {
        "Mondial" => 0.02,
        "DBLP" => 0.01,
        "TPCH" => 0.01,
        s if s.starts_with("Synth-") => 0.25,
        _ => 0.02,
    }
}

/// Run the matrix: every scenario under every plan — the four hand-built
/// scenarios plus a couple of fleet members, so injected faults also hit
/// generated shapes (or-groups, deep chains). Asserts the differential
/// contract against a fault-free baseline per scenario.
fn chaos_matrix(plans: &[(String, FaultPlan)]) {
    let mut scenarios = muse_suite::scenarios::all_scenarios();
    scenarios.extend(muse_suite::scenarios::synth::fleet(2, 40));
    for scenario in &scenarios {
        let scale = scenario_scale(&scenario.name);
        let baseline = run_pipeline(scenario, scale)
            .unwrap_or_else(|e| panic!("{}: fault-free pipeline failed: {e}", scenario.name));
        assert_eq!(baseline.warnings, 0, "{}: clean baseline", scenario.name);
        assert!(!baseline.chase_truncated);

        for (label, plan) in plans {
            let guard = arm_scoped(plan.clone());
            let result = run_pipeline(scenario, scale);
            let stats = muse_fault::stats().expect("armed");
            drop(guard);

            match result {
                Ok(r) => {
                    if r.warnings == 0 && !r.chase_truncated && stats.injected == 0 {
                        // Nothing fired (the plan targeted points this
                        // pipeline never hit): byte-identical results.
                        assert_eq!(
                            r.mappings_text, baseline.mappings_text,
                            "{}/{label}: identical mappings when no fault fired",
                            scenario.name
                        );
                        assert_eq!(
                            r.target_fp, baseline.target_fp,
                            "{}/{label}: identical target when no fault fired",
                            scenario.name
                        );
                    }
                    // Faults fired: validity was already asserted inside
                    // run_pipeline; truncated results need not match.
                }
                Err(e) => {
                    // A typed error is an accepted degradation; a panic
                    // would have aborted the test instead.
                    eprintln!("{}/{label}: clean error under faults: {e}", scenario.name);
                }
            }
        }
    }
}

#[test]
fn seeded_fault_plans_degrade_cleanly() {
    let _g = lock();
    let mut plans: Vec<(String, FaultPlan)> = vec![
        ("seed:7x3".into(), plan_from_seed(7, 3)),
        ("seed:1042x2".into(), plan_from_seed(1042, 2)),
        (
            "probe+binding".into(),
            parse_spec("wizard.probe:deadline@1;chase.binding:deadline@3").unwrap(),
        ),
        // Sticky storage faults: the offline pipeline owns no storage, so
        // none of these may ever fire — the run must stay byte-identical.
        // (The serve crate's own degraded-mode tests cover the firing side.)
        (
            "sticky-wal-io".into(),
            parse_spec(
                "serve.wal.append:iox*;serve.wal.fsync:iox*;serve.wal.compact:iox*;serve.wal.open:iox*",
            )
            .unwrap(),
        ),
    ];
    // CI exports MUSE_FAULTS so the matrix also covers an env-armed plan.
    if let Ok(spec) = std::env::var("MUSE_FAULTS") {
        if !spec.trim().is_empty() {
            plans.push((
                format!("env:{spec}"),
                parse_spec(&spec).expect("MUSE_FAULTS parses"),
            ));
        }
    }
    chaos_matrix(&plans);
}

#[test]
fn injected_par_panic_falls_back_to_identical_serial_output() {
    let _g = lock();
    let scenarios = muse_suite::scenarios::all_scenarios();
    let scenario = scenarios.iter().find(|s| s.name == "Mondial").unwrap();
    let instance = scenario.instance(0.02, 11);
    let mappings = resolved_mappings(scenario);

    let serial = chase_with(
        &scenario.source_schema,
        &scenario.target_schema,
        &instance,
        &mappings,
        &Metrics::disabled(),
    )
    .unwrap();

    let metrics = Metrics::enabled();
    let plan = parse_spec("chase.fire_unit:panic@1").unwrap();
    let guard = arm_scoped(plan);
    let outcome = chase_par_budget_with(
        &scenario.source_schema,
        &scenario.target_schema,
        &instance,
        &mappings,
        4,
        Budget::unlimited_ref(),
        &metrics,
    )
    .unwrap();
    let stats = muse_fault::stats().expect("armed");
    drop(guard);

    assert_eq!(stats.injected, 1, "the panic fired exactly once");
    let Outcome::Complete(par_target) = outcome else {
        panic!("one-shot panic must not truncate the retried chase");
    };
    assert_eq!(
        fingerprint(&par_target),
        fingerprint(&serial),
        "serial fallback must be byte-identical to the serial chase"
    );
    let s = metrics.snapshot();
    assert_eq!(s.counter("chase.par_fallbacks"), 1);
    assert!(s.counter("par.panics") >= 1, "worker panic was isolated");
}

#[test]
fn worker_panic_in_phase_one_also_falls_back() {
    let _g = lock();
    let scenarios = muse_suite::scenarios::all_scenarios();
    let scenario = scenarios.iter().find(|s| s.name == "Amalgam").unwrap();
    let instance = scenario.instance(0.02, 11);
    let mappings = resolved_mappings(scenario);

    let serial = chase_with(
        &scenario.source_schema,
        &scenario.target_schema,
        &instance,
        &mappings,
        &Metrics::disabled(),
    )
    .unwrap();

    let metrics = Metrics::enabled();
    let guard = arm_scoped(parse_spec("par.worker:panic@1").unwrap());
    let outcome = chase_par_budget_with(
        &scenario.source_schema,
        &scenario.target_schema,
        &instance,
        &mappings,
        4,
        Budget::unlimited_ref(),
        &metrics,
    )
    .unwrap();
    drop(guard);

    let Outcome::Complete(par_target) = outcome else {
        panic!("one-shot panic must not truncate the retried chase");
    };
    assert_eq!(fingerprint(&par_target), fingerprint(&serial));
    assert_eq!(metrics.snapshot().counter("chase.par_fallbacks"), 1);
}
