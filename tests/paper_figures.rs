//! Integration tests pinning the paper's worked figures (Figs. 1–4)
//! through the public facade, end to end across crates.

use muse_suite::chase::{chase, chase_one, homomorphically_equivalent, isomorphic};
use muse_suite::mapping::{parse, parse_one, PathRef};
use muse_suite::nr::{display, Constraints, Field, InstanceBuilder, Schema, SetPath, Ty, Value};
use muse_suite::wizard::{MuseD, MuseG, OracleDesigner, ScriptedDesigner};

fn compdb() -> Schema {
    Schema::new(
        "CompDB",
        vec![
            Field::new(
                "Companies",
                Ty::set_of(vec![
                    Field::new("cid", Ty::Int),
                    Field::new("cname", Ty::Str),
                    Field::new("location", Ty::Str),
                ]),
            ),
            Field::new(
                "Projects",
                Ty::set_of(vec![
                    Field::new("pid", Ty::Str),
                    Field::new("pname", Ty::Str),
                    Field::new("cid", Ty::Int),
                    Field::new("manager", Ty::Str),
                ]),
            ),
            Field::new(
                "Employees",
                Ty::set_of(vec![
                    Field::new("eid", Ty::Str),
                    Field::new("ename", Ty::Str),
                    Field::new("contact", Ty::Str),
                ]),
            ),
        ],
    )
    .unwrap()
}

fn orgdb() -> Schema {
    Schema::new(
        "OrgDB",
        vec![
            Field::new(
                "Orgs",
                Ty::set_of(vec![
                    Field::new("oname", Ty::Str),
                    Field::new(
                        "Projects",
                        Ty::set_of(vec![
                            Field::new("pname", Ty::Str),
                            Field::new("manager", Ty::Str),
                        ]),
                    ),
                ]),
            ),
            Field::new(
                "Employees",
                Ty::set_of(vec![
                    Field::new("eid", Ty::Str),
                    Field::new("ename", Ty::Str),
                ]),
            ),
        ],
    )
    .unwrap()
}

fn fig1_mappings(src: &Schema, tgt: &Schema) -> Vec<muse_suite::mapping::Mapping> {
    let mut ms = parse(
        "
        m1: for c in CompDB.Companies
            exists o in OrgDB.Orgs
            where c.cname = o.oname
            group o.Projects by (c.cid, c.cname, c.location)
        m2: for c in CompDB.Companies, p in CompDB.Projects, e in CompDB.Employees
            satisfy p.cid = c.cid and e.eid = p.manager
            exists o in OrgDB.Orgs, p1 in o.Projects, e1 in OrgDB.Employees
            satisfy p1.manager = e1.eid
            where c.cname = o.oname and e.eid = e1.eid and e.ename = e1.ename
              and p.pname = p1.pname
        m3: for e in CompDB.Employees
            exists e1 in OrgDB.Employees
            where e.eid = e1.eid and e.ename = e1.ename
        ",
    )
    .unwrap();
    for m in &mut ms {
        m.ensure_default_groupings(tgt, src).unwrap();
        m.validate(src, tgt).unwrap();
    }
    ms
}

fn fig2_source(src: &Schema) -> muse_suite::nr::Instance {
    let mut b = InstanceBuilder::new(src);
    b.push_top(
        "Companies",
        vec![Value::int(111), Value::str("IBM"), Value::str("Almaden")],
    );
    b.push_top(
        "Companies",
        vec![Value::int(112), Value::str("SBC"), Value::str("NY")],
    );
    b.push_top(
        "Projects",
        vec![
            Value::str("p1"),
            Value::str("DBSearch"),
            Value::int(111),
            Value::str("e14"),
        ],
    );
    b.push_top(
        "Projects",
        vec![
            Value::str("p2"),
            Value::str("WebSearch"),
            Value::int(111),
            Value::str("e15"),
        ],
    );
    b.push_top(
        "Employees",
        vec![Value::str("e14"), Value::str("Smith"), Value::str("x2292")],
    );
    b.push_top(
        "Employees",
        vec![Value::str("e15"), Value::str("Anna"), Value::str("x2283")],
    );
    b.push_top(
        "Employees",
        vec![Value::str("e16"), Value::str("Brown"), Value::str("x2567")],
    );
    b.finish().unwrap()
}

/// Fig. 2: the solution shape — 4 Org tuples, 3 Employees, 4 Projects sets
/// of sizes {0, 0, 1, 1}, rendered with the SetIDs the paper shows.
#[test]
fn fig2_solution_shape() {
    let (src, tgt) = (compdb(), orgdb());
    let j = chase(&src, &tgt, &fig2_source(&src), &fig1_mappings(&src, &tgt)).unwrap();
    j.validate(&tgt).unwrap();
    let text = display::render(&tgt, &j);
    for needle in [
        "Projects=SKProjects(111,IBM,Almaden)",
        "Projects=SKProjects(112,SBC,NY)",
        "(pname=DBSearch, manager=e14)",
        "(pname=WebSearch, manager=e15)",
        "(eid=e16, ename=Brown)",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}

/// The chase result is a universal solution: it maps homomorphically into a
/// hand-built alternative solution with extra tuples and merged groups.
#[test]
fn fig2_solution_is_universal() {
    let (src, tgt) = (compdb(), orgdb());
    let j = chase(&src, &tgt, &fig2_source(&src), &fig1_mappings(&src, &tgt)).unwrap();

    // A fatter solution: one IBM org holding both projects, plus junk.
    let mut b = InstanceBuilder::new(&tgt);
    let ibm = b.group("Orgs.Projects", vec![Value::str("IBM")]);
    b.push(ibm, vec![Value::str("DBSearch"), Value::str("e14")]);
    b.push(ibm, vec![Value::str("WebSearch"), Value::str("e15")]);
    let sbc = b.group("Orgs.Projects", vec![Value::str("SBC")]);
    let junk = b.group("Orgs.Projects", vec![Value::str("junk")]);
    b.push(junk, vec![Value::str("Extra"), Value::str("e99")]);
    b.push_top("Orgs", vec![Value::str("IBM"), Value::Set(ibm)]);
    b.push_top("Orgs", vec![Value::str("SBC"), Value::Set(sbc)]);
    b.push_top("Orgs", vec![Value::str("Junk"), Value::Set(junk)]);
    for (eid, en) in [
        ("e14", "Smith"),
        ("e15", "Anna"),
        ("e16", "Brown"),
        ("e99", "X"),
    ] {
        b.push_top("Employees", vec![Value::str(eid), Value::str(en)]);
    }
    let fat = b.finish().unwrap();

    assert!(muse_suite::chase::find_homomorphism(&j, &fat).is_some());
    // But not the other way (the fat solution has junk).
    assert!(muse_suite::chase::find_homomorphism(&fat, &j).is_none());
}

/// Fig. 3: with SKProjs(cname) in mind and the scripted answers 2/1/2 on
/// the Companies attributes, Muse-G recovers exactly SKProjs(cname); the
/// inferred mapping has the same effect as the intended one.
#[test]
fn fig3_museg_infers_cname() {
    let (src, tgt) = (compdb(), orgdb());
    let ms = fig1_mappings(&src, &tgt);
    let cons = Constraints::none();
    let real = fig2_source(&src);
    let museg = MuseG::new(&src, &tgt, &cons).with_instance(&real);
    let sk = SetPath::parse("Orgs.Projects");

    let mut oracle = OracleDesigner::new(&src, &tgt);
    oracle.intend_grouping("m2", sk.clone(), vec![PathRef::new(0, "cname")]);
    let out = museg.design_grouping(&ms[1], &sk, &mut oracle).unwrap();
    assert_eq!(out.grouping, vec![PathRef::new(0, "cname")]);

    // Same effect as the intention, checked by chasing the real source.
    let mut intended = ms[1].clone();
    intended.set_grouping(
        sk.clone(),
        muse_suite::mapping::Grouping::new(vec![PathRef::new(0, "cname")]),
    );
    let mut inferred = ms[1].clone();
    inferred.set_grouping(sk, muse_suite::mapping::Grouping::new(out.grouping));
    let i = fig2_source(&src);
    let a = chase_one(&src, &tgt, &i, &intended).unwrap();
    let b = chase_one(&src, &tgt, &i, &inferred).unwrap();
    assert!(homomorphically_equivalent(&a, &b));
    assert!(isomorphic(&a, &b));
}

/// Fig. 4: Muse-D's one-question disambiguation with real data.
#[test]
fn fig4_mused_selection() {
    let src = Schema::new(
        "CompDB",
        vec![
            Field::new(
                "Projects",
                Ty::set_of(vec![
                    Field::new("pid", Ty::Str),
                    Field::new("pname", Ty::Str),
                    Field::new("manager", Ty::Str),
                    Field::new("tech-lead", Ty::Str),
                ]),
            ),
            Field::new(
                "Employees",
                Ty::set_of(vec![
                    Field::new("eid", Ty::Str),
                    Field::new("ename", Ty::Str),
                    Field::new("contact", Ty::Str),
                ]),
            ),
        ],
    )
    .unwrap();
    let tgt = Schema::new(
        "OrgDB",
        vec![Field::new(
            "Projects",
            Ty::set_of(vec![
                Field::new("pname", Ty::Str),
                Field::new("supervisor", Ty::Str),
                Field::new("email", Ty::Str),
            ]),
        )],
    )
    .unwrap();
    let ma = parse_one(
        "ma: for p in CompDB.Projects, e1 in CompDB.Employees, e2 in CompDB.Employees
             satisfy e1.eid = p.manager and e2.eid = p.tech-lead
             exists p1 in OrgDB.Projects
             where p.pname = p1.pname
               and (e1.ename = p1.supervisor or e2.ename = p1.supervisor)
               and (e1.contact = p1.email or e2.contact = p1.email)",
    )
    .unwrap();

    let mut b = InstanceBuilder::new(&src);
    b.push_top(
        "Projects",
        vec![
            Value::str("P1"),
            Value::str("DB"),
            Value::str("e4"),
            Value::str("e5"),
        ],
    );
    b.push_top(
        "Employees",
        vec![Value::str("e4"), Value::str("Jon"), Value::str("jon@ibm")],
    );
    b.push_top(
        "Employees",
        vec![Value::str("e5"), Value::str("Anna"), Value::str("anna@ibm")],
    );
    let real = b.finish().unwrap();

    let cons = Constraints::none();
    let mused = MuseD::new(&src, &tgt, &cons).with_instance(&real);
    let q = mused.question(&ma).unwrap();
    assert!(q.example.real);
    assert_eq!(q.example.instance.total_tuples(), 3);
    assert_eq!(q.choices.len(), 2);
    // The choice values are the real ones from Fig. 4(b).
    assert_eq!(
        q.choices[0].values,
        vec![Value::str("Jon"), Value::str("Anna")]
    );
    assert_eq!(
        q.choices[1].values,
        vec![Value::str("jon@ibm"), Value::str("anna@ibm")]
    );

    // Picking Anna + jon@ibm selects the paper's interpretation, and its
    // chase fills the blanks consistently.
    let mut scripted = ScriptedDesigner::default();
    scripted.choices.push_back(vec![vec![1], vec![0]]);
    let out = mused.disambiguate(&ma, &mut scripted).unwrap();
    let j = chase_one(&src, &tgt, &real, &out.selected[0]).unwrap();
    let projs = j.root_id("Projects").unwrap();
    let t: Vec<_> = j.tuples(projs).collect();
    assert_eq!(t.len(), 1);
    assert_eq!(t[0][1], Value::str("Anna"));
    assert_eq!(t[0][2], Value::str("jon@ibm"));
}
