//! Pool edge cases: empty input, serial degeneration, more threads than
//! items, and — the robustness contract — a panicking worker that no
//! longer aborts the process.

use muse_obs::Metrics;
use muse_par::{scope_map, try_scope_map};

#[test]
fn empty_item_list_returns_empty() {
    for threads in [0, 1, 4, 64] {
        let out = scope_map(0, threads, &Metrics::disabled(), |i| i);
        assert_eq!(out, Vec::<usize>::new());
        let tried = try_scope_map(0, threads, &Metrics::disabled(), |i| i);
        assert!(tried.is_empty());
    }
}

#[test]
fn single_thread_matches_serial_map() {
    let out = scope_map(17, 1, &Metrics::disabled(), |i| i * 3);
    assert_eq!(out, (0..17).map(|i| i * 3).collect::<Vec<_>>());
}

#[test]
fn more_threads_than_items() {
    // 64 requested workers over 5 items: the pool must clamp and still
    // produce all results in index order.
    let m = Metrics::enabled();
    let out = scope_map(5, 64, &m, |i| i + 100);
    assert_eq!(out, vec![100, 101, 102, 103, 104]);
    let snap = m.snapshot();
    assert!(snap.counter("par.workers") <= 5, "workers clamp to items");
}

#[test]
fn panicking_worker_is_isolated_not_fatal() {
    let m = Metrics::enabled();
    let results = try_scope_map(8, 4, &m, |i| {
        if i == 3 {
            panic!("unit {i} poisoned");
        }
        i * 2
    });
    assert_eq!(results.len(), 8);
    for (i, r) in results.iter().enumerate() {
        if i == 3 {
            let p = r.as_ref().expect_err("item 3 must be poisoned");
            assert_eq!(p.item, 3);
            assert!(
                p.message().contains("unit 3 poisoned"),
                "got: {}",
                p.message()
            );
        } else {
            assert_eq!(*r.as_ref().expect("healthy item"), i * 2);
        }
    }
    assert_eq!(m.snapshot().counter("par.panics"), 1);
}

#[test]
fn panicking_worker_isolated_even_single_threaded() {
    let m = Metrics::enabled();
    let results = try_scope_map(3, 1, &m, |i| {
        if i == 1 {
            panic!("inline poison");
        }
        i
    });
    assert!(results[0].is_ok() && results[2].is_ok());
    assert!(results[1].is_err());
    assert_eq!(m.snapshot().counter("par.panics"), 1);
}

#[test]
fn scope_map_still_propagates_panics() {
    // The legacy contract: scope_map re-raises after all workers join, so
    // the panic payload (the lowest-index one) reaches the caller.
    let caught = std::panic::catch_unwind(|| {
        scope_map(6, 3, &Metrics::disabled(), |i| {
            if i % 2 == 1 {
                panic!("odd item {i}");
            }
            i
        })
    });
    let payload = caught.expect_err("panic must propagate");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert_eq!(msg, "odd item 1", "lowest-index panic wins");
}
