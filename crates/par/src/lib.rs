//! **muse-par** — the zero-external-dependency parallel execution layer.
//!
//! Everything multi-core in the workspace goes through this crate: the
//! parallel chase partitions its firings over [`scope_map`], the bench
//! binaries run independent scenarios concurrently with it, and the CLI's
//! `muse scenario all --threads N` drives whole wizard sessions through it.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** [`scope_map`] returns results *indexed by input
//!    position*, never by completion order. Any worker may compute any
//!    item, but the caller always observes the same vector — so a
//!    deterministic serial computation stays deterministic when
//!    parallelised, whatever the scheduler does.
//! 2. **Zero dependencies.** `std::thread::scope` + atomics only; no
//!    rayon, no channels. The whole pool is ~60 lines and is trivially
//!    auditable.
//! 3. **Observability.** Runs report through [`muse_obs::Metrics`]:
//!    `par.rounds` (parallel rounds executed), `par.workers` (worker
//!    threads launched across rounds), `par.items` (work items processed
//!    in parallel rounds), `par.steal_ns` (nanoseconds workers spent
//!    acquiring work from the shared cursor) and `par.panics` (worker
//!    panics caught by the isolation wrapper).
//! 4. **Panic isolation.** [`try_scope_map`] catches a panicking item in
//!    its own slot (`Err(WorkerPanic)`) instead of unwinding through the
//!    pool, so a poisoned unit degrades the computation rather than
//!    aborting the process; [`scope_map`] keeps the legacy
//!    propagate-on-panic contract on top of it.
//!
//! Thread counts resolve through [`resolve_threads`]: an explicit request
//! (a `--threads N` flag) beats the `MUSE_THREADS` environment variable,
//! which beats the serial default of 1. A count of `0` means "one worker
//! per available core".

pub mod pool;

pub use pool::{chunks, scope_map, try_scope_map, WorkerPanic};

/// Thread count requested via the `MUSE_THREADS` environment variable, if
/// set to something parseable.
pub fn env_threads() -> Option<usize> {
    std::env::var("MUSE_THREADS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
}

/// Resolve the effective thread count: `explicit` (e.g. a `--threads` CLI
/// flag) beats `MUSE_THREADS`, which beats the serial default of 1. The
/// value `0` (either source) resolves to the number of available cores.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    match explicit.or_else(env_threads) {
        Some(0) => available_parallelism(),
        Some(n) => n,
        None => 1,
    }
}

/// Number of hardware threads available to this process (1 when the
/// platform cannot tell).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_beats_default() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(Some(0)) >= 1);
    }

    #[test]
    fn available_parallelism_is_positive() {
        assert!(available_parallelism() >= 1);
    }
}
