//! The scoped worker pool: an index-ordered, panic-isolated parallel map.
//!
//! [`scope_map`] runs `f(0), f(1), …, f(n-1)` over a pool of scoped
//! threads that pull item indices from a shared atomic cursor (the
//! cheapest possible form of work stealing — every idle worker "steals"
//! the next unclaimed index). Results land in per-item slots, so the
//! returned vector is ordered by *input index*, not completion order:
//! callers get deterministic output no matter how the scheduler
//! interleaves the workers.
//!
//! Panic isolation: [`try_scope_map`] wraps every item in `catch_unwind`,
//! so one poisoned unit reports as an `Err(WorkerPanic)` in its slot
//! instead of aborting the process; caught panics count under
//! `par.panics`. [`scope_map`] keeps the original propagate-on-panic
//! contract by resuming the first caught unwind after all workers join.

use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use muse_obs::{faultpoints, Metrics};

/// A panic caught inside a worker, reported in the item's result slot.
pub struct WorkerPanic {
    /// Input index of the item whose closure panicked.
    pub item: usize,
    payload: Box<dyn Any + Send + 'static>,
}

impl WorkerPanic {
    /// Best-effort human-readable panic message.
    pub fn message(&self) -> String {
        if let Some(s) = self.payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = self.payload.downcast_ref::<String>() {
            s.clone()
        } else if let Some(p) = self.payload.downcast_ref::<muse_fault::InjectedPanic>() {
            p.to_string()
        } else {
            "<non-string panic payload>".to_owned()
        }
    }

    /// The raw panic payload, for downcasting.
    pub fn payload(&self) -> &(dyn Any + Send) {
        &*self.payload
    }

    /// Re-raise the caught panic on the current thread.
    pub fn resume(self) -> ! {
        resume_unwind(self.payload)
    }
}

impl std::fmt::Debug for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WorkerPanic {{ item: {}, message: {:?} }}",
            self.item,
            self.message()
        )
    }
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker panicked on item {}: {}",
            self.item,
            self.message()
        )
    }
}

/// Map `f` over `0..n_items` with up to `threads` scoped worker threads,
/// returning per-item results in index order; a panicking closure yields
/// `Err(WorkerPanic)` in its slot instead of unwinding through the pool.
///
/// With `threads <= 1` (or fewer than two items) the closures run inline
/// on the caller's thread — still panic-isolated, but without the
/// `par.rounds`/`par.workers`/`par.items`/`par.steal_ns` metrics the
/// parallel rounds record. Caught panics always count under `par.panics`.
pub fn try_scope_map<T, F>(
    n_items: usize,
    threads: usize,
    metrics: &Metrics,
    f: F,
) -> Vec<Result<T, WorkerPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let run_one = |i: usize| -> Result<T, WorkerPanic> {
        match catch_unwind(AssertUnwindSafe(|| {
            // Non-panic fault kinds have no budget to trip here; only
            // injected panics are meaningful at the pool boundary.
            let _ = muse_fault::point(faultpoints::PAR_WORKER);
            f(i)
        })) {
            Ok(v) => Ok(v),
            Err(payload) => {
                metrics.incr("par.panics");
                Err(WorkerPanic { item: i, payload })
            }
        }
    };

    let workers = threads.min(n_items);
    if workers <= 1 {
        return (0..n_items).map(run_one).collect();
    }
    metrics.incr("par.rounds");
    metrics.add("par.workers", workers as u64);
    metrics.add("par.items", n_items as u64);
    let steal_ns = metrics.counter("par.steal_ns");
    let timed = metrics.is_enabled();

    let cursor = AtomicUsize::new(0);
    // One slot per item; each is locked exactly once (the cursor hands every
    // index to exactly one worker), so the mutexes never contend.
    let slots: Vec<Mutex<Option<Result<T, WorkerPanic>>>> =
        (0..n_items).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let start = timed.then(Instant::now);
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if let Some(t0) = start {
                    steal_ns.add(t0.elapsed().as_nanos() as u64);
                }
                if i >= n_items {
                    break;
                }
                let value = run_one(i);
                let prev = slots[i].lock().expect("slot poisoned").replace(value);
                debug_assert!(prev.is_none(), "item {i} claimed twice");
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("every claimed slot is filled")
        })
        .collect()
}

/// Map `f` over `0..n_items` with up to `threads` scoped worker threads,
/// returning the results in index order.
///
/// With `threads <= 1` (or fewer than two items) the closure runs inline
/// on the caller's thread and no metrics are recorded — the serial path
/// stays exactly the serial path. Parallel rounds record `par.rounds`,
/// `par.workers`, `par.items` and `par.steal_ns` through `metrics`.
///
/// A panic in `f` propagates to the caller once every worker has joined
/// (the lowest-index caught panic is resumed); callers that need to
/// *survive* a poisoned unit use [`try_scope_map`] instead.
pub fn scope_map<T, F>(n_items: usize, threads: usize, metrics: &Metrics, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.min(n_items);
    if workers <= 1 {
        // Inline fast path: no isolation wrapper, panics unwind directly.
        return (0..n_items).map(f).collect();
    }
    let mut out = Vec::with_capacity(n_items);
    for result in try_scope_map(n_items, threads, metrics, f) {
        match result {
            Ok(v) => out.push(v),
            Err(p) => p.resume(),
        }
    }
    out
}

/// Split `0..len` into at most `parts` contiguous ranges of near-equal
/// size (the first `len % parts` ranges are one longer). Used to chunk a
/// mapping's bindings across workers; concatenating the ranges in order
/// re-yields `0..len`, which is what keeps the parallel chase's merge
/// deterministic.
pub fn chunks(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_ordered() {
        for threads in [1, 2, 4, 9] {
            let out = scope_map(20, threads, &Metrics::disabled(), |i| i * i);
            assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn serial_fallback_handles_empty_and_single() {
        assert_eq!(
            scope_map(0, 8, &Metrics::disabled(), |i| i),
            Vec::<usize>::new()
        );
        assert_eq!(scope_map(1, 8, &Metrics::disabled(), |i| i + 1), vec![1]);
    }

    #[test]
    fn parallel_rounds_report_metrics() {
        let m = Metrics::enabled();
        let _ = scope_map(16, 4, &m, |i| i);
        let snap = m.snapshot();
        assert_eq!(snap.counter("par.rounds"), 1);
        assert_eq!(snap.counter("par.workers"), 4);
        assert_eq!(snap.counter("par.items"), 16);
        // steal_ns was touched (it may legitimately be 0 on a fast clock,
        // but the key must exist).
        assert!(snap.counters.contains_key("par.steal_ns"));
    }

    #[test]
    fn serial_rounds_report_nothing() {
        let m = Metrics::enabled();
        let _ = scope_map(16, 1, &m, |i| i);
        assert_eq!(m.snapshot().counter("par.rounds"), 0);
    }

    #[test]
    fn workers_share_the_load() {
        // All items complete even with far more items than workers.
        let sum: usize = scope_map(1000, 3, &Metrics::disabled(), |i| i).iter().sum();
        assert_eq!(sum, 999 * 1000 / 2);
    }

    #[test]
    fn chunks_cover_exactly() {
        for (len, parts) in [(0, 4), (1, 4), (7, 3), (8, 3), (9, 3), (100, 7), (3, 10)] {
            let cs = chunks(len, parts);
            let mut covered = 0;
            for (i, c) in cs.iter().enumerate() {
                assert_eq!(c.start, covered, "len={len} parts={parts} chunk {i}");
                covered = c.end;
            }
            assert_eq!(covered, len, "len={len} parts={parts}");
            if len > 0 {
                assert!(cs.len() <= parts.max(1));
                let sizes: Vec<usize> = cs.iter().map(ExactSizeIterator::len).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "near-equal sizes: {sizes:?}");
            }
        }
    }
}
