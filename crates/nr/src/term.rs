//! Interned Skolem terms: SetIDs and labeled nulls.
//!
//! In the NR model, a value of type `SetOf τ` is represented by a *SetID*
//! with an associated set of element values. Mappings compute SetIDs with
//! grouping (Skolem) functions such as `SKProjs(c.cid, c.cname)`; labeled
//! nulls such as `N1` stand for unknown atomic values. Both are represented
//! here as interned terms so that the chase is deterministic (re-running it
//! is a no-op) and homomorphisms can map term to term.

use std::collections::HashMap;
use std::fmt;

use crate::instance::Value;
use crate::schema::SetPath;

/// Identifier of a set value (a nested set occurrence) within one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetId(pub(crate) u32);

impl SetId {
    /// The raw index (stable within a single [`TermStore`]).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a labeled null within one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NullId(pub(crate) u32);

impl NullId {
    /// The raw index (stable within a single [`TermStore`]).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The Skolem term behind a [`SetId`]: `SK<set>(args…)`.
///
/// Top-level sets use an empty argument list; so does a nested set grouped by
/// the empty grouping function `SK()` (one global group). Different set
/// paths always denote different terms, matching the paper's convention that
/// every nested set in the target schema has a different SetID name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Term {
    /// The set type this SetID instantiates.
    pub set: SetPath,
    /// Grouping-function arguments (source values).
    pub args: Vec<Value>,
}

/// The term behind a labeled null: a Skolemized unknown `N_tag(args…)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NullTerm {
    /// Human-readable provenance tag (e.g. `m1.o.address`).
    pub tag: String,
    /// Values the null is a function of (the source binding).
    pub args: Vec<Value>,
}

/// Interner for SetIDs and labeled nulls. Each [`crate::Instance`] owns one.
#[derive(Debug, Clone, Default)]
pub struct TermStore {
    sets: Vec<Term>,
    set_index: HashMap<Term, SetId>,
    nulls: Vec<NullTerm>,
    null_index: HashMap<NullTerm, NullId>,
    fresh: u64,
}

impl TermStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a set term, returning its id (existing or new).
    pub fn set_id(&mut self, set: SetPath, args: Vec<Value>) -> SetId {
        let term = Term { set, args };
        if let Some(&id) = self.set_index.get(&term) {
            return id;
        }
        let id = SetId(self.sets.len() as u32);
        self.sets.push(term.clone());
        self.set_index.insert(term, id);
        id
    }

    /// Intern a labeled null, returning its id (existing or new).
    pub fn null_id(&mut self, tag: impl Into<String>, args: Vec<Value>) -> NullId {
        let term = NullTerm {
            tag: tag.into(),
            args,
        };
        if let Some(&id) = self.null_index.get(&term) {
            return id;
        }
        let id = NullId(self.nulls.len() as u32);
        self.nulls.push(term.clone());
        self.null_index.insert(term, id);
        id
    }

    /// A brand-new null, distinct from all others in this store.
    pub fn fresh_null(&mut self) -> NullId {
        self.fresh += 1;
        let n = self.fresh;
        self.null_id(format!("_fresh{n}"), Vec::new())
    }

    /// Look up the term of a set id.
    pub fn set_term(&self, id: SetId) -> &Term {
        &self.sets[id.index()]
    }

    /// Look up the term of a null id.
    pub fn null_term(&self, id: NullId) -> &NullTerm {
        &self.nulls[id.index()]
    }

    /// Number of interned set terms.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Number of interned nulls.
    pub fn null_count(&self) -> usize {
        self.nulls.len()
    }

    /// All interned set ids, in interning (ascending id) order.
    pub fn all_set_ids(&self) -> impl Iterator<Item = SetId> {
        (0..self.sets.len() as u32).map(SetId)
    }

    /// All interned null ids, in interning (ascending id) order.
    pub fn all_null_ids(&self) -> impl Iterator<Item = NullId> {
        (0..self.nulls.len() as u32).map(NullId)
    }

    /// All set ids whose term instantiates the given set path.
    pub fn set_ids_of(&self, path: &SetPath) -> Vec<SetId> {
        (0..self.sets.len() as u32)
            .map(SetId)
            .filter(|id| &self.set_term(*id).set == path)
            .collect()
    }

    /// Render a set id as `SKProjects(arg,…)` like the paper does, with
    /// nested ids rendered recursively.
    pub fn render_set(&self, id: SetId) -> String {
        let t = self.set_term(id);
        if t.args.is_empty() && t.set.depth() == 1 {
            // Top-level sets are just their name.
            return t.set.to_string();
        }
        format!("SK{}({})", t.set.label(), self.render_args(&t.args))
    }

    /// Render a null id as `N_tag(arg,…)`.
    pub fn render_null(&self, id: NullId) -> String {
        let t = self.null_term(id);
        if t.args.is_empty() {
            format!("N[{}]", t.tag)
        } else {
            format!("N[{}]({})", t.tag, self.render_args(&t.args))
        }
    }

    fn render_args(&self, args: &[Value]) -> String {
        let parts: Vec<String> = args.iter().map(|v| self.render_value(v)).collect();
        parts.join(",")
    }

    /// Render an arbitrary value using this store for ids.
    pub fn render_value(&self, v: &Value) -> String {
        match v {
            Value::Atom(a) => a.to_string(),
            Value::Null(n) => self.render_null(*n),
            Value::Set(s) => self.render_set(*s),
            Value::Choice(l, inner) => format!("{l}:{}", self.render_value(inner)),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SK{}/{}", self.set.label(), self.args.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;

    #[test]
    fn interning_dedups() {
        let mut st = TermStore::new();
        let p = SetPath::parse("Orgs.Projects");
        let a = st.set_id(p.clone(), vec![Value::Atom(Atom::int(1))]);
        let b = st.set_id(p.clone(), vec![Value::Atom(Atom::int(1))]);
        let c = st.set_id(p.clone(), vec![Value::Atom(Atom::int(2))]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(st.set_count(), 2);
        assert_eq!(st.set_ids_of(&p), vec![a, c]);
    }

    #[test]
    fn nulls_intern_and_fresh_are_distinct() {
        let mut st = TermStore::new();
        let n1 = st.null_id("m1.o.address", vec![Value::Atom(Atom::str("IBM"))]);
        let n2 = st.null_id("m1.o.address", vec![Value::Atom(Atom::str("IBM"))]);
        let n3 = st.null_id("m1.o.address", vec![Value::Atom(Atom::str("SBC"))]);
        assert_eq!(n1, n2);
        assert_ne!(n1, n3);
        let f1 = st.fresh_null();
        let f2 = st.fresh_null();
        assert_ne!(f1, f2);
    }

    #[test]
    fn rendering() {
        let mut st = TermStore::new();
        let top = st.set_id(SetPath::parse("Orgs"), vec![]);
        assert_eq!(st.render_set(top), "Orgs");
        let nested = st.set_id(
            SetPath::parse("Orgs.Projects"),
            vec![Value::Atom(Atom::int(111)), Value::Atom(Atom::str("IBM"))],
        );
        assert_eq!(st.render_set(nested), "SKProjects(111,IBM)");
        let n = st.null_id("addr", vec![]);
        assert_eq!(st.render_null(n), "N[addr]");
    }
}
