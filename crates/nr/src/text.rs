//! A concrete text syntax for schemas and their constraints, in the spirit
//! of the paper's Fig. 1, so scenarios can live in plain files:
//!
//! ```text
//! schema CompDB
//!   Companies: set of {
//!     cid: int
//!     cname: string
//!     location: string
//!   }
//!   Projects: set of {
//!     pid: string
//!     pname: string
//!     cid: int
//!     manager: string
//!   }
//!
//! keys
//!   Companies(cid)
//!   Projects(pid)
//!
//! fds
//!   Companies: location -> cname
//!
//! refs
//!   Projects(cid) -> Companies(cid)
//! ```
//!
//! Nested sets are written inline: `Authors: set of { name: string }` may
//! appear among a record's fields; constraint sections address them by
//! dotted path (`article.Authors(name)`). Comments run from `#` to end of
//! line. [`print_schema`] renders the same syntax back;
//! `parse_schema(print_schema(..)) ` round-trips.

use std::fmt::Write as _;

use crate::constraints::{Constraints, Fd, ForeignKey, Key};
use crate::error::NrError;
use crate::schema::{Schema, SetPath};
use crate::types::{Field, Ty};

/// Parse a schema file: the `schema` section plus optional `keys`, `fds`
/// and `refs` sections.
///
/// ```
/// let (schema, constraints) = muse_nr::text::parse_schema(
///     "schema S
///        Companies: set of {
///          cid: int
///          cname: string
///        }
///      keys
///        Companies(cid)",
/// )
/// .unwrap();
/// assert_eq!(schema.name, "S");
/// assert_eq!(constraints.keys.len(), 1);
/// ```
pub fn parse_schema(text: &str) -> Result<(Schema, Constraints), NrError> {
    let mut p = Parser::new(text);
    p.expect_word("schema")?;
    let name = p.word()?;
    let mut root_fields = Vec::new();
    while !p.at_end() && !p.peek_section() {
        root_fields.push(p.field()?);
    }
    let schema = Schema::new(name, root_fields)?;

    let mut cons = Constraints::none();
    while !p.at_end() {
        let section = p.word()?;
        match section.as_str() {
            "keys" => {
                while !p.at_end() && !p.peek_section() {
                    let (set, attrs) = p.path_attrs()?;
                    cons.keys.push(Key { set, attrs });
                }
            }
            "fds" => {
                while !p.at_end() && !p.peek_section() {
                    // `Set: a b -> c d`
                    let set = SetPath::parse(&p.word()?);
                    p.expect_punct(':')?;
                    let mut lhs = Vec::new();
                    loop {
                        let w = p.word()?;
                        if w == "->" {
                            break;
                        }
                        lhs.push(w);
                    }
                    let mut rhs = Vec::new();
                    while !p.at_end()
                        && !p.peek_section()
                        && !p.peek_path_attrs()
                        // A plain word followed by `:` starts the next FD's
                        // set path, not another rhs attribute.
                        && (rhs.is_empty() || !p.peek_fd_start())
                    {
                        match p.try_plain_word() {
                            Some(w) => rhs.push(w),
                            None => break,
                        }
                    }
                    cons.fds.push(Fd { set, lhs, rhs });
                }
            }
            "refs" => {
                while !p.at_end() && !p.peek_section() {
                    let (from, from_attrs) = p.path_attrs()?;
                    p.expect_word("->")?;
                    let (to, to_attrs) = p.path_attrs()?;
                    if from_attrs.len() != to_attrs.len() {
                        return Err(NrError::BadConstraint {
                            set: from,
                            attr: "referential attribute lists differ in length".into(),
                        });
                    }
                    cons.fks.push(ForeignKey {
                        from,
                        from_attrs,
                        to,
                        to_attrs,
                    });
                }
            }
            other => {
                return Err(NrError::UnknownPath(format!("unknown section `{other}`")));
            }
        }
    }
    cons.validate_against_schema(&schema)?;
    Ok((schema, cons))
}

/// Render a schema (and constraints) in the same syntax.
pub fn print_schema(schema: &Schema, cons: &Constraints) -> String {
    let mut out = String::new();
    writeln!(out, "schema {}", schema.name).unwrap();
    if let Ty::Rcd(fields) = schema.root() {
        for f in fields {
            print_field(&mut out, f, 1);
        }
    }
    if !cons.keys.is_empty() {
        writeln!(out, "\nkeys").unwrap();
        for k in &cons.keys {
            writeln!(out, "  {}({})", k.set, k.attrs.join(" ")).unwrap();
        }
    }
    if !cons.fds.is_empty() {
        writeln!(out, "\nfds").unwrap();
        for f in &cons.fds {
            writeln!(
                out,
                "  {}: {} -> {}",
                f.set,
                f.lhs.join(" "),
                f.rhs.join(" ")
            )
            .unwrap();
        }
    }
    if !cons.fks.is_empty() {
        writeln!(out, "\nrefs").unwrap();
        for f in &cons.fks {
            writeln!(
                out,
                "  {}({}) -> {}({})",
                f.from,
                f.from_attrs.join(" "),
                f.to,
                f.to_attrs.join(" ")
            )
            .unwrap();
        }
    }
    out
}

fn print_field(out: &mut String, f: &Field, depth: usize) {
    let pad = "  ".repeat(depth);
    match &f.ty {
        Ty::Str => writeln!(out, "{pad}{}: string", f.label).unwrap(),
        Ty::Int => writeln!(out, "{pad}{}: int", f.label).unwrap(),
        Ty::Set(el) => {
            writeln!(out, "{pad}{}: set of {{", f.label).unwrap();
            if let Ty::Rcd(fields) = el.as_ref() {
                for inner in fields {
                    print_field(out, inner, depth + 1);
                }
            }
            writeln!(out, "{pad}}}").unwrap();
        }
        Ty::Rcd(fields) => {
            writeln!(out, "{pad}{}: {{", f.label).unwrap();
            for inner in fields {
                print_field(out, inner, depth + 1);
            }
            writeln!(out, "{pad}}}").unwrap();
        }
        Ty::Choice(fields) => {
            writeln!(out, "{pad}{}: choice {{", f.label).unwrap();
            for inner in fields {
                print_field(out, inner, depth + 1);
            }
            writeln!(out, "{pad}}}").unwrap();
        }
    }
}

/// Tiny whitespace tokenizer with `#` comments.
struct Parser {
    tokens: Vec<String>,
    pos: usize,
}

impl Parser {
    fn new(text: &str) -> Self {
        let mut tokens = Vec::new();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("");
            let mut cur = String::new();
            for ch in line.chars() {
                match ch {
                    '{' | '}' | ':' | '(' | ')' => {
                        if !cur.is_empty() {
                            tokens.push(std::mem::take(&mut cur));
                        }
                        tokens.push(ch.to_string());
                    }
                    c if c.is_whitespace() => {
                        if !cur.is_empty() {
                            tokens.push(std::mem::take(&mut cur));
                        }
                    }
                    c => cur.push(c),
                }
            }
            if !cur.is_empty() {
                tokens.push(cur);
            }
        }
        Parser { tokens, pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn peek_section(&self) -> bool {
        matches!(self.peek(), Some("keys") | Some("fds") | Some("refs"))
    }

    /// Lookahead: `word (`, the start of a `Set(attrs)` item.
    fn peek_path_attrs(&self) -> bool {
        self.tokens.get(self.pos + 1).map(String::as_str) == Some("(")
    }

    /// Lookahead: `word :`, the start of the next `Set: lhs -> rhs` FD.
    fn peek_fd_start(&self) -> bool {
        self.tokens.get(self.pos + 1).map(String::as_str) == Some(":")
    }

    fn word(&mut self) -> Result<String, NrError> {
        let t = self
            .tokens
            .get(self.pos)
            .ok_or_else(|| NrError::UnknownPath("unexpected end of schema text".into()))?
            .clone();
        self.pos += 1;
        Ok(t)
    }

    fn try_plain_word(&mut self) -> Option<String> {
        match self.peek() {
            Some(w) if !matches!(w, "{" | "}" | ":" | "(" | ")") => {
                let w = w.to_owned();
                self.pos += 1;
                Some(w)
            }
            _ => None,
        }
    }

    fn expect_word(&mut self, w: &str) -> Result<(), NrError> {
        let got = self.word()?;
        if got == w {
            Ok(())
        } else {
            Err(NrError::UnknownPath(format!(
                "expected `{w}`, found `{got}`"
            )))
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), NrError> {
        self.expect_word(&c.to_string())
    }

    /// `label : type` where type is `int`, `string`, or `set of { … }`.
    fn field(&mut self) -> Result<Field, NrError> {
        let label = self.word()?;
        self.expect_punct(':')?;
        let ty = self.ty()?;
        Ok(Field::new(label, ty))
    }

    fn ty(&mut self) -> Result<Ty, NrError> {
        match self.word()?.as_str() {
            "int" => Ok(Ty::Int),
            "string" => Ok(Ty::Str),
            "set" => {
                self.expect_word("of")?;
                self.expect_punct('{')?;
                let mut fields = Vec::new();
                while self.peek() != Some("}") {
                    fields.push(self.field()?);
                }
                self.expect_punct('}')?;
                Ok(Ty::set_of(fields))
            }
            "choice" => {
                self.expect_punct('{')?;
                let mut fields = Vec::new();
                while self.peek() != Some("}") {
                    fields.push(self.field()?);
                }
                self.expect_punct('}')?;
                Ok(Ty::Choice(fields))
            }
            other => Err(NrError::UnknownPath(format!("unknown type `{other}`"))),
        }
    }

    /// `Path(attr attr …)`.
    fn path_attrs(&mut self) -> Result<(SetPath, Vec<String>), NrError> {
        let path = SetPath::parse(&self.word()?);
        self.expect_punct('(')?;
        let mut attrs = Vec::new();
        while self.peek() != Some(")") {
            attrs.push(self.word()?);
        }
        self.expect_punct(')')?;
        Ok((path, attrs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COMPDB: &str = "
        # The paper's Fig. 1 source schema.
        schema CompDB
          Companies: set of {
            cid: int
            cname: string
            location: string
          }
          Projects: set of {
            pid: string
            pname: string
            cid: int
            manager: string
          }
          Employees: set of {
            eid: string
            ename: string
            contact: string
          }

        keys
          Companies(cid)
          Projects(pid)
          Employees(eid)

        refs
          Projects(cid) -> Companies(cid)
          Projects(manager) -> Employees(eid)
    ";

    #[test]
    fn parses_fig1_schema() {
        let (schema, cons) = parse_schema(COMPDB).unwrap();
        assert_eq!(schema.name, "CompDB");
        assert_eq!(schema.top_level_sets().len(), 3);
        assert_eq!(
            schema.attributes(&SetPath::parse("Projects")).unwrap(),
            vec!["pid", "pname", "cid", "manager"]
        );
        assert_eq!(cons.keys.len(), 3);
        assert_eq!(cons.fks.len(), 2);
    }

    #[test]
    fn nested_sets_parse() {
        let text = "
            schema Dblp
              article: set of {
                key: string
                title: string
                Authors: set of {
                  name: string
                }
              }
            keys
              article(key)
        ";
        let (schema, cons) = parse_schema(text).unwrap();
        assert!(schema.has_set(&SetPath::parse("article.Authors")));
        assert_eq!(cons.keys.len(), 1);
    }

    #[test]
    fn round_trips() {
        let (schema, cons) = parse_schema(COMPDB).unwrap();
        let text = print_schema(&schema, &cons);
        let (schema2, cons2) = parse_schema(&text).unwrap();
        assert_eq!(schema, schema2);
        assert_eq!(cons, cons2);
    }

    #[test]
    fn fds_parse_and_round_trip() {
        let text = "
            schema S
              R: set of {
                a: string
                b: string
                c: string
              }
            fds
              R: a b -> c
        ";
        let (schema, cons) = parse_schema(text).unwrap();
        assert_eq!(cons.fds.len(), 1);
        assert_eq!(cons.fds[0].lhs, vec!["a", "b"]);
        assert_eq!(cons.fds[0].rhs, vec!["c"]);
        let (s2, c2) = parse_schema(&print_schema(&schema, &cons)).unwrap();
        assert_eq!(schema, s2);
        assert_eq!(cons, c2);
    }

    #[test]
    fn consecutive_fds_parse_and_round_trip() {
        let text = "
            schema S
              R: set of {
                a: string
                b: string
                c: string
              }
              T: set of {
                x: string
                y: string
              }
            fds
              R: a -> b c
              T: x -> y
        ";
        let (schema, cons) = parse_schema(text).unwrap();
        assert_eq!(cons.fds.len(), 2);
        assert_eq!(cons.fds[0].rhs, vec!["b", "c"]);
        assert_eq!(cons.fds[1].set.to_string(), "T");
        assert_eq!(cons.fds[1].rhs, vec!["y"]);
        let (s2, c2) = parse_schema(&print_schema(&schema, &cons)).unwrap();
        assert_eq!(schema, s2);
        assert_eq!(cons, c2);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_schema("nope").is_err());
        assert!(parse_schema("schema S\n  A: set of { x: float }").is_err());
        // Constraint on unknown attribute.
        let bad = "
            schema S
              A: set of { x: int }
            keys
              A(nope)
        ";
        assert!(matches!(
            parse_schema(bad),
            Err(NrError::BadConstraint { .. })
        ));
        // Mismatched ref arity.
        let bad_ref = "
            schema S
              A: set of { x: int }
              B: set of { y: int }
            refs
              A(x) -> B()
        ";
        assert!(parse_schema(bad_ref).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "
            # header comment
            schema S

              A: set of {  # trailing
                x: int
              }
        ";
        let (schema, _) = parse_schema(text).unwrap();
        assert_eq!(schema.top_level_sets().len(), 1);
    }
}
