//! Schema constraints: keys, functional dependencies and referential
//! constraints, plus instance validation and a reusable FD engine.
//!
//! A *key* of a nested set `N` is a minimal set of attributes of `N` that
//! functionally determines all attributes of `N`. Keys and FDs are enforced
//! across all occurrences of a set path (the relational reading, which is
//! what the paper's source schemas use). A *referential constraint* (like
//! `f1`, `f2` in Fig. 1) requires every `from` tuple's attribute projection
//! to appear among the `to` tuples.

use std::collections::BTreeSet;

use crate::error::NrError;
use crate::instance::{Instance, Value};
use crate::schema::{Schema, SetPath};

pub mod fdset;

/// A key constraint on a nested set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Key {
    /// The constrained set.
    pub set: SetPath,
    /// The key attributes.
    pub attrs: Vec<String>,
}

impl Key {
    /// Construct a key.
    pub fn new(set: SetPath, attrs: Vec<&str>) -> Self {
        Key {
            set,
            attrs: attrs.into_iter().map(str::to_owned).collect(),
        }
    }
}

/// A functional dependency `lhs → rhs` on a nested set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fd {
    /// The constrained set.
    pub set: SetPath,
    /// Determinant attributes.
    pub lhs: Vec<String>,
    /// Determined attributes.
    pub rhs: Vec<String>,
}

impl Fd {
    /// Construct an FD.
    pub fn new(set: SetPath, lhs: Vec<&str>, rhs: Vec<&str>) -> Self {
        Fd {
            set,
            lhs: lhs.into_iter().map(str::to_owned).collect(),
            rhs: rhs.into_iter().map(str::to_owned).collect(),
        }
    }
}

/// A referential (inclusion) constraint between two nested sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing set.
    pub from: SetPath,
    /// Referencing attributes (positionally matched with `to_attrs`).
    pub from_attrs: Vec<String>,
    /// Referenced set.
    pub to: SetPath,
    /// Referenced attributes.
    pub to_attrs: Vec<String>,
}

impl ForeignKey {
    /// Construct a referential constraint.
    pub fn new(from: SetPath, from_attrs: Vec<&str>, to: SetPath, to_attrs: Vec<&str>) -> Self {
        assert_eq!(
            from_attrs.len(),
            to_attrs.len(),
            "FK attribute lists must align"
        );
        ForeignKey {
            from,
            from_attrs: from_attrs.into_iter().map(str::to_owned).collect(),
            to,
            to_attrs: to_attrs.into_iter().map(str::to_owned).collect(),
        }
    }
}

/// All declared constraints of a schema.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Constraints {
    /// Declared keys.
    pub keys: Vec<Key>,
    /// Declared functional dependencies (beyond keys).
    pub fds: Vec<Fd>,
    /// Declared referential constraints.
    pub fks: Vec<ForeignKey>,
}

impl Constraints {
    /// No constraints.
    pub fn none() -> Self {
        Self::default()
    }

    /// Keys declared on a given set.
    pub fn keys_of(&self, set: &SetPath) -> Vec<&Key> {
        self.keys.iter().filter(|k| &k.set == set).collect()
    }

    /// FDs declared on a given set (not counting keys).
    pub fn fds_of(&self, set: &SetPath) -> Vec<&Fd> {
        self.fds.iter().filter(|f| &f.set == set).collect()
    }

    /// Referential constraints leaving a given set.
    pub fn fks_from(&self, set: &SetPath) -> Vec<&ForeignKey> {
        self.fks.iter().filter(|f| &f.from == set).collect()
    }

    /// All FDs on a set, with each key expanded to `key → all attributes`.
    pub fn all_fds_of(&self, schema: &Schema, set: &SetPath) -> Result<Vec<Fd>, NrError> {
        let attrs = schema.attributes(set)?;
        let mut out: Vec<Fd> = self.fds_of(set).into_iter().cloned().collect();
        for k in self.keys_of(set) {
            out.push(Fd {
                set: set.clone(),
                lhs: k.attrs.clone(),
                rhs: attrs.clone(),
            });
        }
        Ok(out)
    }

    /// Check that all constraints mention only attributes that exist.
    pub fn validate_against_schema(&self, schema: &Schema) -> Result<(), NrError> {
        let check = |set: &SetPath, attrs: &[String]| -> Result<(), NrError> {
            let known = schema.attributes(set)?;
            for a in attrs {
                if !known.contains(a) {
                    return Err(NrError::BadConstraint {
                        set: set.clone(),
                        attr: a.clone(),
                    });
                }
            }
            Ok(())
        };
        for k in &self.keys {
            check(&k.set, &k.attrs)?;
        }
        for f in &self.fds {
            check(&f.set, &f.lhs)?;
            check(&f.set, &f.rhs)?;
        }
        for fk in &self.fks {
            check(&fk.from, &fk.from_attrs)?;
            check(&fk.to, &fk.to_attrs)?;
        }
        Ok(())
    }

    /// Validate an instance against every declared constraint.
    pub fn validate_instance(&self, schema: &Schema, inst: &Instance) -> Result<(), NrError> {
        for key in &self.keys {
            let attrs = schema.attributes(&key.set)?;
            if !fd_holds(schema, inst, &key.set, &key.attrs, &attrs)? {
                return Err(NrError::KeyViolation {
                    set: key.set.clone(),
                    key: key.attrs.clone(),
                });
            }
        }
        for fd in &self.fds {
            if !fd_holds(schema, inst, &fd.set, &fd.lhs, &fd.rhs)? {
                return Err(NrError::FdViolation {
                    set: fd.set.clone(),
                    lhs: fd.lhs.clone(),
                });
            }
        }
        for fk in &self.fks {
            if !fk_holds(schema, inst, fk)? {
                return Err(NrError::ReferentialViolation {
                    from: fk.from.clone(),
                    to: fk.to.clone(),
                });
            }
        }
        Ok(())
    }
}

fn project(
    schema: &Schema,
    set: &SetPath,
    tuple: &[Value],
    attrs: &[String],
) -> Result<Vec<Value>, NrError> {
    attrs
        .iter()
        .map(|a| {
            let idx = schema.attr_index(set, a)?;
            Ok(tuple[idx].clone())
        })
        .collect()
}

/// Does `lhs → rhs` hold across all tuples of `set` in `inst`?
pub fn fd_holds(
    schema: &Schema,
    inst: &Instance,
    set: &SetPath,
    lhs: &[String],
    rhs: &[String],
) -> Result<bool, NrError> {
    let mut seen: std::collections::BTreeMap<Vec<Value>, Vec<Value>> = Default::default();
    for (_, t) in inst.tuples_of_path(set) {
        let l = project(schema, set, t, lhs)?;
        let r = project(schema, set, t, rhs)?;
        if let Some(prev) = seen.get(&l) {
            if prev != &r {
                return Ok(false);
            }
        } else {
            seen.insert(l, r);
        }
    }
    Ok(true)
}

fn fk_holds(schema: &Schema, inst: &Instance, fk: &ForeignKey) -> Result<bool, NrError> {
    let mut targets: BTreeSet<Vec<Value>> = BTreeSet::new();
    for (_, t) in inst.tuples_of_path(&fk.to) {
        targets.insert(project(schema, &fk.to, t, &fk.to_attrs)?);
    }
    for (_, t) in inst.tuples_of_path(&fk.from) {
        let proj = project(schema, &fk.from, t, &fk.from_attrs)?;
        if !targets.contains(&proj) {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Field, Ty};

    fn compdb() -> (Schema, Constraints) {
        let schema = Schema::new(
            "CompDB",
            vec![
                Field::new(
                    "Companies",
                    Ty::set_of(vec![
                        Field::new("cid", Ty::Int),
                        Field::new("cname", Ty::Str),
                        Field::new("location", Ty::Str),
                    ]),
                ),
                Field::new(
                    "Projects",
                    Ty::set_of(vec![
                        Field::new("pid", Ty::Str),
                        Field::new("pname", Ty::Str),
                        Field::new("cid", Ty::Int),
                        Field::new("manager", Ty::Str),
                    ]),
                ),
                Field::new(
                    "Employees",
                    Ty::set_of(vec![
                        Field::new("eid", Ty::Str),
                        Field::new("ename", Ty::Str),
                        Field::new("contact", Ty::Str),
                    ]),
                ),
            ],
        )
        .unwrap();
        let companies = SetPath::parse("Companies");
        let projects = SetPath::parse("Projects");
        let employees = SetPath::parse("Employees");
        let constraints = Constraints {
            keys: vec![Key::new(companies.clone(), vec!["cid"])],
            fds: vec![],
            fks: vec![
                ForeignKey::new(projects.clone(), vec!["cid"], companies, vec!["cid"]),
                ForeignKey::new(projects, vec!["manager"], employees, vec!["eid"]),
            ],
        };
        (schema, constraints)
    }

    fn fig2_instance(schema: &Schema) -> Instance {
        let mut i = Instance::new(schema);
        let comps = i.root_id("Companies").unwrap();
        i.insert(
            comps,
            vec![Value::int(111), Value::str("IBM"), Value::str("Almaden")],
        );
        i.insert(
            comps,
            vec![Value::int(112), Value::str("SBC"), Value::str("NY")],
        );
        let projs = i.root_id("Projects").unwrap();
        i.insert(
            projs,
            vec![
                Value::str("p1"),
                Value::str("DBSearch"),
                Value::int(111),
                Value::str("e14"),
            ],
        );
        i.insert(
            projs,
            vec![
                Value::str("p2"),
                Value::str("WebSearch"),
                Value::int(111),
                Value::str("e15"),
            ],
        );
        let emps = i.root_id("Employees").unwrap();
        i.insert(
            emps,
            vec![Value::str("e14"), Value::str("Smith"), Value::str("x2292")],
        );
        i.insert(
            emps,
            vec![Value::str("e15"), Value::str("Anna"), Value::str("x2283")],
        );
        i.insert(
            emps,
            vec![Value::str("e16"), Value::str("Brown"), Value::str("x2567")],
        );
        i
    }

    #[test]
    fn fig2_instance_satisfies_all_constraints() {
        let (schema, cons) = compdb();
        cons.validate_against_schema(&schema).unwrap();
        let inst = fig2_instance(&schema);
        inst.validate(&schema).unwrap();
        cons.validate_instance(&schema, &inst).unwrap();
    }

    #[test]
    fn key_violation_detected() {
        let (schema, cons) = compdb();
        let mut inst = fig2_instance(&schema);
        let comps = inst.root_id("Companies").unwrap();
        // Same cid, different name: violates key(cid).
        inst.insert(
            comps,
            vec![Value::int(111), Value::str("Other"), Value::str("SF")],
        );
        assert!(matches!(
            cons.validate_instance(&schema, &inst),
            Err(NrError::KeyViolation { .. })
        ));
    }

    #[test]
    fn fk_violation_detected() {
        let (schema, cons) = compdb();
        let mut inst = fig2_instance(&schema);
        let projs = inst.root_id("Projects").unwrap();
        // cid 999 references no company.
        inst.insert(
            projs,
            vec![
                Value::str("p9"),
                Value::str("Ghost"),
                Value::int(999),
                Value::str("e14"),
            ],
        );
        assert!(matches!(
            cons.validate_instance(&schema, &inst),
            Err(NrError::ReferentialViolation { .. })
        ));
    }

    #[test]
    fn fd_validation() {
        let (schema, _) = compdb();
        let inst = fig2_instance(&schema);
        let comps = SetPath::parse("Companies");
        // cname -> location holds on this instance (IBM->Almaden, SBC->NY).
        assert!(fd_holds(
            &schema,
            &inst,
            &comps,
            &["cname".into()],
            &["location".into()]
        )
        .unwrap());
        // location -> cid holds here too (each location unique).
        assert!(fd_holds(
            &schema,
            &inst,
            &comps,
            &["location".into()],
            &["cid".into()]
        )
        .unwrap());
    }

    #[test]
    fn fd_violation_detected_via_constraints() {
        let (schema, _) = compdb();
        let mut inst = fig2_instance(&schema);
        let comps = inst.root_id("Companies").unwrap();
        inst.insert(
            comps,
            vec![Value::int(113), Value::str("IBM"), Value::str("SF")],
        );
        let cons = Constraints {
            keys: vec![],
            fds: vec![Fd::new(
                SetPath::parse("Companies"),
                vec!["cname"],
                vec!["location"],
            )],
            fks: vec![],
        };
        assert!(matches!(
            cons.validate_instance(&schema, &inst),
            Err(NrError::FdViolation { .. })
        ));
    }

    #[test]
    fn bad_constraint_attr_rejected() {
        let (schema, _) = compdb();
        let cons = Constraints {
            keys: vec![Key::new(SetPath::parse("Companies"), vec!["nope"])],
            fds: vec![],
            fks: vec![],
        };
        assert!(matches!(
            cons.validate_against_schema(&schema),
            Err(NrError::BadConstraint { .. })
        ));
    }

    #[test]
    fn all_fds_expand_keys() {
        let (schema, cons) = compdb();
        let fds = cons
            .all_fds_of(&schema, &SetPath::parse("Companies"))
            .unwrap();
        assert_eq!(fds.len(), 1);
        assert_eq!(fds[0].lhs, vec!["cid"]);
        assert_eq!(fds[0].rhs, vec!["cid", "cname", "location"]);
    }
}
