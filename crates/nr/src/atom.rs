//! Atomic values: the leaves of the nested relational model.

use std::fmt;
use std::sync::Arc;

/// An atomic (scalar) value of type `String` or `Int`.
///
/// Strings are reference-counted so tuples can be cloned cheaply during the
/// chase and during example construction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Atom {
    /// An integer constant.
    Int(i64),
    /// A string constant.
    Str(Arc<str>),
}

impl Atom {
    /// Build a string atom.
    pub fn str(s: impl AsRef<str>) -> Self {
        Atom::Str(Arc::from(s.as_ref()))
    }

    /// Build an integer atom.
    pub fn int(i: i64) -> Self {
        Atom::Int(i)
    }

    /// True if this atom is a string.
    pub fn is_str(&self) -> bool {
        matches!(self, Atom::Str(_))
    }

    /// View the string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Atom::Str(s) => Some(s),
            Atom::Int(_) => None,
        }
    }

    /// View the integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Atom::Int(i) => Some(*i),
            Atom::Str(_) => None,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Int(i) => write!(f, "{i}"),
            Atom::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Atom {
    fn from(i: i64) -> Self {
        Atom::Int(i)
    }
}

impl From<&str> for Atom {
    fn from(s: &str) -> Self {
        Atom::str(s)
    }
}

impl From<String> for Atom {
    fn from(s: String) -> Self {
        Atom::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let a = Atom::str("IBM");
        assert!(a.is_str());
        assert_eq!(a.as_str(), Some("IBM"));
        assert_eq!(a.as_int(), None);
        let b = Atom::int(42);
        assert!(!b.is_str());
        assert_eq!(b.as_int(), Some(42));
        assert_eq!(b.as_str(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Atom::str("x").to_string(), "x");
        assert_eq!(Atom::int(-7).to_string(), "-7");
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut v = vec![Atom::str("b"), Atom::int(2), Atom::str("a"), Atom::int(1)];
        v.sort();
        assert_eq!(
            v,
            vec![Atom::int(1), Atom::int(2), Atom::str("a"), Atom::str("b")]
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Atom::from(3i64), Atom::int(3));
        assert_eq!(Atom::from("hi"), Atom::str("hi"));
        assert_eq!(Atom::from(String::from("hi")), Atom::str("hi"));
    }
}
