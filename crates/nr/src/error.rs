//! Error type for the nested relational model.

use std::fmt;

use crate::schema::SetPath;

/// Errors raised while building or validating schemas and instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NrError {
    /// A path did not resolve to anything in the schema.
    UnknownPath(String),
    /// A path resolved to a type of the wrong kind (e.g. expected a set).
    NotASet(String),
    /// A record label was not found in the record at the given path.
    UnknownField { path: String, field: String },
    /// A tuple's arity did not match its record type.
    ArityMismatch {
        path: String,
        expected: usize,
        got: usize,
    },
    /// A value had the wrong type for its field.
    TypeMismatch { path: String, field: String },
    /// A key constraint was violated by an instance.
    KeyViolation { set: SetPath, key: Vec<String> },
    /// A functional dependency was violated by an instance.
    FdViolation { set: SetPath, lhs: Vec<String> },
    /// A referential constraint was violated by an instance.
    ReferentialViolation { from: SetPath, to: SetPath },
    /// A constraint mentions an attribute that the set does not have.
    BadConstraint { set: SetPath, attr: String },
    /// A set id was used with an instance that does not know it.
    UnknownSetId,
    /// Duplicate root or field label in a schema.
    DuplicateLabel(String),
}

impl fmt::Display for NrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NrError::UnknownPath(p) => write!(f, "unknown path `{p}`"),
            NrError::NotASet(p) => write!(f, "path `{p}` does not denote a set type"),
            NrError::UnknownField { path, field } => {
                write!(f, "record at `{path}` has no field `{field}`")
            }
            NrError::ArityMismatch {
                path,
                expected,
                got,
            } => {
                write!(f, "tuple for `{path}` has arity {got}, expected {expected}")
            }
            NrError::TypeMismatch { path, field } => {
                write!(f, "value for `{path}.{field}` has the wrong type")
            }
            NrError::KeyViolation { set, key } => {
                write!(f, "key ({}) violated in set `{set}`", key.join(","))
            }
            NrError::FdViolation { set, lhs } => {
                write!(
                    f,
                    "functional dependency with lhs ({}) violated in `{set}`",
                    lhs.join(",")
                )
            }
            NrError::ReferentialViolation { from, to } => {
                write!(f, "referential constraint from `{from}` to `{to}` violated")
            }
            NrError::BadConstraint { set, attr } => {
                write!(
                    f,
                    "constraint on `{set}` mentions unknown attribute `{attr}`"
                )
            }
            NrError::UnknownSetId => write!(f, "set id does not belong to this instance"),
            NrError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl std::error::Error for NrError {}
