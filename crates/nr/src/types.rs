//! The NR type grammar:
//! `τ ::= String | Int | SetOf τ | Rcd[l1:τ1,…,ln:τn] | Choice[l1:τ1,…,ln:τn]`.

use std::fmt;

/// A labeled component of a record or choice type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// The element label.
    pub label: String,
    /// The element type.
    pub ty: Ty,
}

impl Field {
    /// Construct a field.
    pub fn new(label: impl Into<String>, ty: Ty) -> Self {
        Field {
            label: label.into(),
            ty,
        }
    }
}

/// A type in the nested relational model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// Atomic string type.
    Str,
    /// Atomic integer type.
    Int,
    /// An unordered, repeatable collection of `τ` values. Each value of this
    /// type is identified by a *SetID* and carries a (possibly empty) set of
    /// element values.
    Set(Box<Ty>),
    /// A record: a set of label/value pairs, one per field.
    Rcd(Vec<Field>),
    /// A choice: exactly one of the labeled alternatives is present.
    Choice(Vec<Field>),
}

impl Ty {
    /// A set of records — the common shape `Set of Rcd[...]`.
    pub fn set_of(fields: Vec<Field>) -> Ty {
        Ty::Set(Box::new(Ty::Rcd(fields)))
    }

    /// True for the atomic types `String` and `Int`.
    pub fn is_atomic(&self) -> bool {
        matches!(self, Ty::Str | Ty::Int)
    }

    /// True for `SetOf` types.
    pub fn is_set(&self) -> bool {
        matches!(self, Ty::Set(_))
    }

    /// The element type of a set, if this is a set.
    pub fn set_element(&self) -> Option<&Ty> {
        match self {
            Ty::Set(t) => Some(t),
            _ => None,
        }
    }

    /// The fields of a record, if this is a record.
    pub fn rcd_fields(&self) -> Option<&[Field]> {
        match self {
            Ty::Rcd(fs) => Some(fs),
            _ => None,
        }
    }

    /// Look up a field by label in a record or choice type.
    pub fn field(&self, label: &str) -> Option<&Field> {
        match self {
            Ty::Rcd(fs) | Ty::Choice(fs) => fs.iter().find(|f| f.label == label),
            _ => None,
        }
    }

    /// Position of a field by label in a record or choice type.
    pub fn field_index(&self, label: &str) -> Option<usize> {
        match self {
            Ty::Rcd(fs) | Ty::Choice(fs) => fs.iter().position(|f| f.label == label),
            _ => None,
        }
    }

    /// Labels of atomic fields in a record type, in declaration order.
    ///
    /// This is the notion of "attributes" of a nested set used throughout
    /// the paper: the scalar elements of the set's element record.
    pub fn atomic_labels(&self) -> Vec<&str> {
        match self {
            Ty::Rcd(fs) => fs
                .iter()
                .filter(|f| f.ty.is_atomic())
                .map(|f| f.label.as_str())
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Labels of set-typed fields in a record type, in declaration order.
    pub fn set_labels(&self) -> Vec<&str> {
        match self {
            Ty::Rcd(fs) => fs
                .iter()
                .filter(|f| f.ty.is_set())
                .map(|f| f.label.as_str())
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Checks the *strict alternation* property assumed in the paper's
    /// exposition: every set's element is a record, and records contain only
    /// atomic or set fields (no record-in-record, no choice).
    pub fn is_strictly_alternating(&self) -> bool {
        fn rcd_ok(ty: &Ty) -> bool {
            match ty {
                Ty::Rcd(fs) => fs.iter().all(|f| match &f.ty {
                    Ty::Str | Ty::Int => true,
                    Ty::Set(el) => rcd_ok(el),
                    _ => false,
                }),
                _ => false,
            }
        }
        match self {
            Ty::Set(el) => rcd_ok(el),
            Ty::Rcd(_) => rcd_ok(self),
            _ => false,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Str => write!(f, "String"),
            Ty::Int => write!(f, "Int"),
            Ty::Set(t) => write!(f, "SetOf {t}"),
            Ty::Rcd(fs) => {
                write!(f, "Rcd[")?;
                for (i, fld) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}: {}", fld.label, fld.ty)?;
                }
                write!(f, "]")
            }
            Ty::Choice(fs) => {
                write!(f, "Choice[")?;
                for (i, fld) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}: {}", fld.label, fld.ty)?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp_rcd() -> Ty {
        Ty::Rcd(vec![
            Field::new("cid", Ty::Int),
            Field::new("cname", Ty::Str),
            Field::new("location", Ty::Str),
        ])
    }

    #[test]
    fn field_lookup() {
        let t = comp_rcd();
        assert_eq!(t.field("cname").map(|f| &f.ty), Some(&Ty::Str));
        assert_eq!(t.field_index("location"), Some(2));
        assert!(t.field("nope").is_none());
    }

    #[test]
    fn atomic_and_set_labels() {
        let org = Ty::Rcd(vec![
            Field::new("oname", Ty::Str),
            Field::new("Projects", Ty::set_of(vec![Field::new("pname", Ty::Str)])),
        ]);
        assert_eq!(org.atomic_labels(), vec!["oname"]);
        assert_eq!(org.set_labels(), vec!["Projects"]);
    }

    #[test]
    fn strict_alternation() {
        let ok = Ty::set_of(vec![
            Field::new("a", Ty::Int),
            Field::new("Kids", Ty::set_of(vec![Field::new("b", Ty::Str)])),
        ]);
        assert!(ok.is_strictly_alternating());

        let nested_rcd = Ty::set_of(vec![Field::new(
            "inner",
            Ty::Rcd(vec![Field::new("x", Ty::Int)]),
        )]);
        assert!(!nested_rcd.is_strictly_alternating());

        let choice = Ty::set_of(vec![Field::new(
            "c",
            Ty::Choice(vec![Field::new("x", Ty::Int)]),
        )]);
        assert!(!choice.is_strictly_alternating());
    }

    #[test]
    fn display_round() {
        let t = Ty::set_of(vec![Field::new("x", Ty::Int)]);
        assert_eq!(t.to_string(), "SetOf Rcd[x: Int]");
    }
}
