//! Deterministic, human-readable rendering of instances, in the nested style
//! of the paper's Fig. 2 (tuples indented under their set, nested sets shown
//! by their SetID with contents indented below).

use std::fmt::Write as _;

use crate::instance::{Instance, Value};
use crate::schema::{Schema, SetPath};
use crate::term::SetId;

/// Render an entire instance as an indented tree. Output is deterministic
/// (sets and tuples are iterated in their ordered containers), which makes it
/// suitable for golden tests.
pub fn render(schema: &Schema, inst: &Instance) -> String {
    let mut out = String::new();
    for (label, id) in inst.roots() {
        let path = SetPath::new([label]);
        writeln!(out, "{label}:").unwrap();
        render_set(schema, inst, &path, id, 1, &mut out);
    }
    out
}

/// Render a single set (with nested contents) as an indented tree.
pub fn render_set_tree(schema: &Schema, inst: &Instance, id: SetId) -> String {
    let path = inst.store().set_term(id).set.clone();
    let mut out = String::new();
    writeln!(out, "{}:", inst.store().render_set(id)).unwrap();
    render_set(schema, inst, &path, id, 1, &mut out);
    out
}

fn render_set(
    schema: &Schema,
    inst: &Instance,
    path: &SetPath,
    id: SetId,
    depth: usize,
    out: &mut String,
) {
    let indent = "  ".repeat(depth);
    let fields = schema
        .element_record(path)
        .ok()
        .and_then(|r| r.rcd_fields())
        .map(|fs| fs.to_vec())
        .unwrap_or_default();
    if inst.set_len(id) == 0 {
        writeln!(out, "{indent}(empty)").unwrap();
        return;
    }
    for tuple in inst.tuples(id) {
        let mut parts = Vec::with_capacity(tuple.len());
        for (i, v) in tuple.iter().enumerate() {
            let label = fields.get(i).map(|f| f.label.as_str()).unwrap_or("?");
            match v {
                Value::Set(sid) => parts.push(format!("{label}={}", inst.store().render_set(*sid))),
                other => parts.push(format!("{label}={}", inst.store().render_value(other))),
            }
        }
        writeln!(out, "{indent}({})", parts.join(", ")).unwrap();
        // Expand nested sets beneath the tuple.
        for (i, v) in tuple.iter().enumerate() {
            if let Value::Set(sid) = v {
                let label = fields.get(i).map(|f| f.label.as_str()).unwrap_or("?");
                let child = path.child(label);
                writeln!(out, "{indent}  {}:", inst.store().render_set(*sid)).unwrap();
                render_set(schema, inst, &child, *sid, depth + 2, out);
            }
        }
    }
}

/// A byte-identity-faithful canonical dump: every interned term in id
/// order, every set's tuples in value order, then the roots. Two instances
/// dump equal **iff** their full state — including `TermStore` null/SetID
/// numbering — is equal. `Debug` cannot serve here: the store's term index
/// is a `HashMap`, whose formatting order varies per instance.
pub fn dump(inst: &Instance) -> String {
    let mut out = String::new();
    let store = inst.store();
    for id in store.all_set_ids() {
        let t = store.set_term(id);
        writeln!(out, "set#{} {} {:?}", id.index(), t.set, t.args).unwrap();
    }
    for id in store.all_null_ids() {
        let t = store.null_term(id);
        writeln!(out, "null#{} {} {:?}", id.index(), t.tag, t.args).unwrap();
    }
    for id in inst.set_ids() {
        writeln!(out, "tuples#{}:", id.index()).unwrap();
        for tuple in inst.tuples(id) {
            writeln!(out, "  {tuple:?}").unwrap();
        }
    }
    for (label, id) in inst.roots() {
        writeln!(out, "root {label} -> {}", id.index()).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Field, Ty};

    #[test]
    fn renders_nested_tree() {
        let schema = Schema::new(
            "OrgDB",
            vec![Field::new(
                "Orgs",
                Ty::set_of(vec![
                    Field::new("oname", Ty::Str),
                    Field::new("Projects", Ty::set_of(vec![Field::new("pname", Ty::Str)])),
                ]),
            )],
        )
        .unwrap();
        let mut inst = Instance::new(&schema);
        let orgs = inst.root_id("Orgs").unwrap();
        let projs = inst.group(SetPath::parse("Orgs.Projects"), vec![Value::str("IBM")]);
        inst.insert(orgs, vec![Value::str("IBM"), Value::Set(projs)]);
        inst.insert(projs, vec![Value::str("DBSearch")]);

        let text = render(&schema, &inst);
        assert!(text.contains("Orgs:"), "got: {text}");
        assert!(text.contains("oname=IBM"), "got: {text}");
        assert!(text.contains("Projects=SKProjects(IBM)"), "got: {text}");
        assert!(text.contains("pname=DBSearch"), "got: {text}");
    }

    #[test]
    fn renders_empty_sets() {
        let schema = Schema::new(
            "S",
            vec![Field::new("A", Ty::set_of(vec![Field::new("x", Ty::Int)]))],
        )
        .unwrap();
        let inst = Instance::new(&schema);
        let text = render(&schema, &inst);
        assert!(text.contains("(empty)"));
    }

    #[test]
    fn render_single_set_tree() {
        let schema = Schema::new(
            "S",
            vec![Field::new("A", Ty::set_of(vec![Field::new("x", Ty::Int)]))],
        )
        .unwrap();
        let mut inst = Instance::new(&schema);
        let a = inst.root_id("A").unwrap();
        inst.insert(a, vec![Value::int(7)]);
        let text = render_set_tree(&schema, &inst, a);
        assert!(text.contains("(x=7)"));
    }
}
