//! Loading and saving instances as TSV files — one file per top-level set,
//! named `<SetLabel>.tsv`, with a header row naming the attributes. This is
//! how the CLI lets a designer bring their own "familiar source instance".
//!
//! The format covers *flat* sets (atomic fields only), which is what all
//! relational sources look like; nested sets must be built through the API.
//! `\N` denotes a labeled null.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::atom::Atom;
use crate::error::NrError;
use crate::instance::{Instance, Value};
use crate::schema::Schema;
use crate::types::Ty;

/// Load `dir/<SetLabel>.tsv` for every top-level set of `schema`. Missing
/// files yield empty sets; unknown columns or non-flat sets are errors.
pub fn load_dir(schema: &Schema, dir: &Path) -> Result<Instance, std::io::Error> {
    let mut inst = Instance::new(schema);
    for path in schema.top_level_sets() {
        let file = dir.join(format!("{}.tsv", path.label()));
        if !file.exists() {
            continue;
        }
        let text = fs::read_to_string(&file)?;
        load_set(schema, &mut inst, path.label(), &text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: {e}", file.display()),
            )
        })?;
    }
    Ok(inst)
}

/// Load one set's rows from TSV text (header row first).
pub fn load_set(
    schema: &Schema,
    inst: &mut Instance,
    set_label: &str,
    text: &str,
) -> Result<(), NrError> {
    let set_path = crate::schema::SetPath::new([set_label]);
    let rcd = schema.element_record(&set_path)?;
    let fields = rcd.rcd_fields().expect("element record");
    if fields.iter().any(|f| !f.ty.is_atomic()) {
        return Err(NrError::NotASet(format!(
            "{set_label} has nested sets; TSV supports flat sets only"
        )));
    }
    let root = inst
        .root_id(set_label)
        .ok_or_else(|| NrError::UnknownPath(set_label.to_owned()))?;

    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header: Vec<&str> = match lines.next() {
        Some(h) => h.split('\t').map(str::trim).collect(),
        None => return Ok(()),
    };
    // Map each schema field to its column.
    let mut col_of = Vec::with_capacity(fields.len());
    for f in fields {
        let col =
            header
                .iter()
                .position(|h| *h == f.label)
                .ok_or_else(|| NrError::UnknownField {
                    path: set_label.to_owned(),
                    field: f.label.clone(),
                })?;
        col_of.push(col);
    }

    for (line_no, line) in lines.enumerate() {
        let cells: Vec<&str> = line.split('\t').map(str::trim).collect();
        let mut tuple = Vec::with_capacity(fields.len());
        for (f, &col) in fields.iter().zip(&col_of) {
            let cell = cells.get(col).copied().unwrap_or("");
            let value = if cell == "\\N" {
                Value::Null(inst.store_mut().fresh_null())
            } else {
                match f.ty {
                    Ty::Int => {
                        Value::int(cell.parse::<i64>().map_err(|_| NrError::TypeMismatch {
                            path: format!("{set_label} row {}", line_no + 2),
                            field: f.label.clone(),
                        })?)
                    }
                    _ => Value::str(cell),
                }
            };
            tuple.push(value);
        }
        inst.insert(root, tuple);
    }
    Ok(())
}

/// Render one flat top-level set as TSV text (header row first).
pub fn save_set(schema: &Schema, inst: &Instance, set_label: &str) -> Result<String, NrError> {
    let set_path = crate::schema::SetPath::new([set_label]);
    let rcd = schema.element_record(&set_path)?;
    let fields = rcd.rcd_fields().expect("element record");
    if fields.iter().any(|f| !f.ty.is_atomic()) {
        return Err(NrError::NotASet(format!(
            "{set_label} has nested sets; TSV supports flat sets only"
        )));
    }
    let root = inst
        .root_id(set_label)
        .ok_or_else(|| NrError::UnknownPath(set_label.to_owned()))?;
    let mut out = String::new();
    let header: Vec<&str> = fields.iter().map(|f| f.label.as_str()).collect();
    writeln!(out, "{}", header.join("\t")).unwrap();
    for tuple in inst.tuples(root) {
        let cells: Vec<String> = tuple
            .iter()
            .map(|v| match v {
                Value::Atom(Atom::Str(s)) => s.to_string(),
                Value::Atom(Atom::Int(i)) => i.to_string(),
                Value::Null(_) => "\\N".to_owned(),
                other => inst.store().render_value(other),
            })
            .collect();
        writeln!(out, "{}", cells.join("\t")).unwrap();
    }
    Ok(out)
}

/// Save every flat top-level set of `inst` into `dir` (created on demand).
/// Non-flat sets are skipped.
pub fn save_dir(schema: &Schema, inst: &Instance, dir: &Path) -> Result<(), std::io::Error> {
    fs::create_dir_all(dir)?;
    for path in schema.top_level_sets() {
        match save_set(schema, inst, path.label()) {
            Ok(text) => fs::write(dir.join(format!("{}.tsv", path.label())), text)?,
            Err(NrError::NotASet(_)) => continue,
            Err(e) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    e.to_string(),
                ))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Field;

    fn schema() -> Schema {
        Schema::new(
            "S",
            vec![Field::new(
                "Companies",
                Ty::set_of(vec![
                    Field::new("cid", Ty::Int),
                    Field::new("cname", Ty::Str),
                ]),
            )],
        )
        .unwrap()
    }

    #[test]
    fn load_and_save_round_trip() {
        let s = schema();
        let mut inst = Instance::new(&s);
        load_set(&s, &mut inst, "Companies", "cid\tcname\n1\tIBM\n2\tSBC\n").unwrap();
        assert_eq!(inst.total_tuples(), 2);
        inst.validate(&s).unwrap();
        let text = save_set(&s, &inst, "Companies").unwrap();
        let mut inst2 = Instance::new(&s);
        load_set(&s, &mut inst2, "Companies", &text).unwrap();
        assert_eq!(inst2.total_tuples(), 2);
        assert_eq!(save_set(&s, &inst2, "Companies").unwrap(), text);
    }

    #[test]
    fn header_order_may_differ_from_schema() {
        let s = schema();
        let mut inst = Instance::new(&s);
        load_set(&s, &mut inst, "Companies", "cname\tcid\nIBM\t1\n").unwrap();
        let root = inst.root_id("Companies").unwrap();
        let t = inst.tuples(root).next().unwrap();
        assert_eq!(t[0], Value::int(1));
        assert_eq!(t[1], Value::str("IBM"));
    }

    #[test]
    fn nulls_load_as_labeled_nulls() {
        let s = schema();
        let mut inst = Instance::new(&s);
        load_set(&s, &mut inst, "Companies", "cid\tcname\n1\t\\N\n").unwrap();
        let root = inst.root_id("Companies").unwrap();
        let t = inst.tuples(root).next().unwrap();
        assert!(matches!(t[1], Value::Null(_)));
    }

    #[test]
    fn bad_int_is_reported() {
        let s = schema();
        let mut inst = Instance::new(&s);
        let err = load_set(&s, &mut inst, "Companies", "cid\tcname\nxyz\tIBM\n").unwrap_err();
        assert!(matches!(err, NrError::TypeMismatch { .. }));
    }

    #[test]
    fn missing_column_is_reported() {
        let s = schema();
        let mut inst = Instance::new(&s);
        let err = load_set(&s, &mut inst, "Companies", "cid\n1\n").unwrap_err();
        assert!(matches!(err, NrError::UnknownField { .. }));
    }

    #[test]
    fn nested_sets_rejected() {
        let s = Schema::new(
            "S",
            vec![Field::new(
                "Orgs",
                Ty::set_of(vec![
                    Field::new("oname", Ty::Str),
                    Field::new("Kids", Ty::set_of(vec![Field::new("x", Ty::Int)])),
                ]),
            )],
        )
        .unwrap();
        let mut inst = Instance::new(&s);
        assert!(load_set(&s, &mut inst, "Orgs", "oname\nX\n").is_err());
    }

    #[test]
    fn dir_round_trip() {
        let s = schema();
        let mut inst = Instance::new(&s);
        load_set(&s, &mut inst, "Companies", "cid\tcname\n7\tAcme\n").unwrap();
        let dir = std::env::temp_dir().join(format!("muse-tsv-test-{}", std::process::id()));
        save_dir(&s, &inst, &dir).unwrap();
        let loaded = load_dir(&s, &dir).unwrap();
        assert_eq!(loaded.total_tuples(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
