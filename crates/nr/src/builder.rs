//! Ergonomic construction of instances for tests, examples and generators.

use crate::error::NrError;
use crate::instance::{Instance, Tuple, Value};
use crate::schema::{Schema, SetPath};
use crate::term::SetId;

/// A builder that accumulates tuples into an [`Instance`] and validates the
/// result against the schema on [`InstanceBuilder::finish`].
///
/// Mistakes in the chainable `push_top` calls (an unknown root label) are
/// deferred: the first one is remembered and reported by
/// [`InstanceBuilder::finish`], so builder chains stay ergonomic without any
/// panicking path. Use [`InstanceBuilder::try_push_top`] to observe the
/// error at the call site instead.
#[derive(Debug)]
pub struct InstanceBuilder<'s> {
    schema: &'s Schema,
    inst: Instance,
    deferred: Option<NrError>,
}

impl<'s> InstanceBuilder<'s> {
    /// Start building an instance of `schema`.
    pub fn new(schema: &'s Schema) -> Self {
        InstanceBuilder {
            schema,
            inst: Instance::new(schema),
            deferred: None,
        }
    }

    /// Append a tuple to a top-level set, by label. An unknown label is
    /// recorded and surfaced by [`InstanceBuilder::finish`].
    pub fn push_top(&mut self, root: &str, tuple: Tuple) -> &mut Self {
        if let Err(e) = self.try_push_top(root, tuple) {
            self.deferred.get_or_insert(e);
        }
        self
    }

    /// Append a tuple to a top-level set, reporting an unknown root label at
    /// the call site.
    pub fn try_push_top(&mut self, root: &str, tuple: Tuple) -> Result<(), NrError> {
        let id = self
            .inst
            .root_id(root)
            .ok_or_else(|| NrError::UnknownPath(format!("{}.{root}", self.schema.name)))?;
        self.inst.insert(id, tuple);
        Ok(())
    }

    /// Intern a nested set grouped by `args` (creating it empty if new).
    pub fn group(&mut self, path: &str, args: Vec<Value>) -> SetId {
        self.inst.group(SetPath::parse(path), args)
    }

    /// Append a tuple to the set identified by `id`.
    pub fn push(&mut self, id: SetId, tuple: Tuple) -> &mut Self {
        self.inst.insert(id, tuple);
        self
    }

    /// Read access to the instance under construction.
    pub fn instance(&self) -> &Instance {
        &self.inst
    }

    /// Validate against the schema and return the instance. A deferred
    /// `push_top` error takes precedence over validation failures.
    pub fn finish(self) -> Result<Instance, NrError> {
        if let Some(e) = self.deferred {
            return Err(e);
        }
        self.inst.validate(self.schema)?;
        Ok(self.inst)
    }

    /// Return the instance without validating (for deliberately invalid
    /// test fixtures). Deferred `push_top` errors are discarded.
    pub fn finish_unchecked(self) -> Instance {
        self.inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Field, Ty};

    fn schema() -> Schema {
        Schema::new(
            "S",
            vec![Field::new(
                "Orgs",
                Ty::set_of(vec![
                    Field::new("oname", Ty::Str),
                    Field::new("Projects", Ty::set_of(vec![Field::new("pname", Ty::Str)])),
                ]),
            )],
        )
        .unwrap()
    }

    #[test]
    fn build_nested() {
        let s = schema();
        let mut b = InstanceBuilder::new(&s);
        let projs = b.group("Orgs.Projects", vec![Value::str("IBM")]);
        b.push(projs, vec![Value::str("DB")]);
        b.push_top("Orgs", vec![Value::str("IBM"), Value::Set(projs)]);
        let inst = b.finish().unwrap();
        assert_eq!(inst.total_tuples(), 2);
    }

    #[test]
    fn unknown_root_is_deferred_to_finish() {
        let s = schema();
        let mut b = InstanceBuilder::new(&s);
        b.push_top("Nope", vec![]);
        match b.finish() {
            Err(NrError::UnknownPath(p)) => assert_eq!(p, "S.Nope"),
            other => panic!("expected UnknownPath, got {other:?}"),
        }
    }

    #[test]
    fn try_push_top_reports_at_call_site() {
        let s = schema();
        let mut b = InstanceBuilder::new(&s);
        assert!(matches!(
            b.try_push_top("Nope", vec![]),
            Err(NrError::UnknownPath(_))
        ));
    }

    #[test]
    fn finish_validates() {
        let s = schema();
        let mut b = InstanceBuilder::new(&s);
        b.push_top("Orgs", vec![Value::str("IBM")]); // missing Projects field
        assert!(b.finish().is_err());
    }

    #[test]
    fn finish_unchecked_skips_validation() {
        let s = schema();
        let mut b = InstanceBuilder::new(&s);
        b.push_top("Orgs", vec![Value::str("IBM")]);
        let inst = b.finish_unchecked();
        assert_eq!(inst.total_tuples(), 1);
    }
}
