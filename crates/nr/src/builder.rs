//! Ergonomic construction of instances for tests, examples and generators.

use crate::error::NrError;
use crate::instance::{Instance, Tuple, Value};
use crate::schema::{Schema, SetPath};
use crate::term::SetId;

/// A builder that accumulates tuples into an [`Instance`] and validates the
/// result against the schema on [`InstanceBuilder::finish`].
#[derive(Debug)]
pub struct InstanceBuilder<'s> {
    schema: &'s Schema,
    inst: Instance,
}

impl<'s> InstanceBuilder<'s> {
    /// Start building an instance of `schema`.
    pub fn new(schema: &'s Schema) -> Self {
        InstanceBuilder { schema, inst: Instance::new(schema) }
    }

    /// Append a tuple to a top-level set, by label.
    pub fn push_top(&mut self, root: &str, tuple: Tuple) -> &mut Self {
        let id = self
            .inst
            .root_id(root)
            .unwrap_or_else(|| panic!("no top-level set `{root}` in schema `{}`", self.schema.name));
        self.inst.insert(id, tuple);
        self
    }

    /// Intern a nested set grouped by `args` (creating it empty if new).
    pub fn group(&mut self, path: &str, args: Vec<Value>) -> SetId {
        self.inst.group(SetPath::parse(path), args)
    }

    /// Append a tuple to the set identified by `id`.
    pub fn push(&mut self, id: SetId, tuple: Tuple) -> &mut Self {
        self.inst.insert(id, tuple);
        self
    }

    /// Read access to the instance under construction.
    pub fn instance(&self) -> &Instance {
        &self.inst
    }

    /// Validate against the schema and return the instance.
    pub fn finish(self) -> Result<Instance, NrError> {
        self.inst.validate(self.schema)?;
        Ok(self.inst)
    }

    /// Return the instance without validating (for deliberately invalid
    /// test fixtures).
    pub fn finish_unchecked(self) -> Instance {
        self.inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Field, Ty};

    fn schema() -> Schema {
        Schema::new(
            "S",
            vec![Field::new(
                "Orgs",
                Ty::set_of(vec![
                    Field::new("oname", Ty::Str),
                    Field::new("Projects", Ty::set_of(vec![Field::new("pname", Ty::Str)])),
                ]),
            )],
        )
        .unwrap()
    }

    #[test]
    fn build_nested() {
        let s = schema();
        let mut b = InstanceBuilder::new(&s);
        let projs = b.group("Orgs.Projects", vec![Value::str("IBM")]);
        b.push(projs, vec![Value::str("DB")]);
        b.push_top("Orgs", vec![Value::str("IBM"), Value::Set(projs)]);
        let inst = b.finish().unwrap();
        assert_eq!(inst.total_tuples(), 2);
    }

    #[test]
    #[should_panic(expected = "no top-level set")]
    fn unknown_root_panics() {
        let s = schema();
        let mut b = InstanceBuilder::new(&s);
        b.push_top("Nope", vec![]);
    }

    #[test]
    fn finish_validates() {
        let s = schema();
        let mut b = InstanceBuilder::new(&s);
        b.push_top("Orgs", vec![Value::str("IBM")]); // missing Projects field
        assert!(b.finish().is_err());
    }

    #[test]
    fn finish_unchecked_skips_validation() {
        let s = schema();
        let mut b = InstanceBuilder::new(&s);
        b.push_top("Orgs", vec![Value::str("IBM")]);
        let inst = b.finish_unchecked();
        assert_eq!(inst.total_tuples(), 1);
    }
}
