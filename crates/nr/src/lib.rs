//! Nested relational (NR) model of Popa et al., as used by Muse (ICDE 2008).
//!
//! The NR model generalizes the relational model: relations are sets of
//! records, and a set of records may itself be nested inside a record,
//! forming hierarchies. This crate provides:
//!
//! * [`Ty`] / [`Schema`] — the type grammar `String | Int | SetOf τ |
//!   Rcd[l1:τ1,…] | Choice[l1:τ1,…]` with named roots,
//! * [`SetPath`] — stable addresses for nested set types,
//! * [`Instance`] / [`Value`] / [`Tuple`] — data, including *SetIDs*
//!   (interned Skolem terms identifying nested sets) and labeled nulls,
//! * [`constraints`] — keys, functional dependencies (with closure and
//!   candidate-key computation) and referential constraints, plus instance
//!   validation against all three.
//!
//! Everything downstream (query evaluation, the chase, mapping generation and
//! the Muse wizards) is built on these types.

pub mod atom;
pub mod builder;
pub mod constraints;
pub mod display;
pub mod error;
pub mod instance;
pub mod schema;
pub mod term;
pub mod text;
pub mod tsv;
pub mod types;

pub use atom::Atom;
pub use builder::InstanceBuilder;
pub use constraints::{Constraints, Fd, ForeignKey, Key};
pub use error::NrError;
pub use instance::{Instance, Tuple, Value};
pub use schema::{Schema, SetPath};
pub use term::{NullId, SetId, Term, TermStore};
pub use types::{Field, Ty};
