//! Instances of nested relational schemas.

use std::collections::{BTreeMap, BTreeSet};

use crate::atom::Atom;
use crate::error::NrError;
use crate::schema::{Schema, SetPath};
use crate::term::{NullId, SetId, TermStore};
use crate::types::Ty;

/// A value in an instance: an atomic constant, a labeled null, a SetID, or a
/// choice (one labeled alternative).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Atomic constant.
    Atom(Atom),
    /// Labeled null (unknown value introduced by the chase).
    Null(NullId),
    /// Reference to a nested set by its SetID.
    Set(SetId),
    /// One alternative of a `Choice` type.
    Choice(String, Box<Value>),
}

impl Value {
    /// Shorthand for a string atom.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Atom(Atom::str(s))
    }

    /// Shorthand for an integer atom.
    pub fn int(i: i64) -> Value {
        Value::Atom(Atom::int(i))
    }

    /// The atom inside, if this value is atomic.
    pub fn as_atom(&self) -> Option<&Atom> {
        match self {
            Value::Atom(a) => Some(a),
            _ => None,
        }
    }

    /// The set id inside, if this value is a set reference.
    pub fn as_set(&self) -> Option<SetId> {
        match self {
            Value::Set(s) => Some(*s),
            _ => None,
        }
    }

    /// True for constants (atoms); false for nulls and set references.
    pub fn is_constant(&self) -> bool {
        matches!(self, Value::Atom(_))
    }

    /// Approximate in-memory footprint in bytes, used to report instance
    /// sizes comparable to the paper's "Size of I" column.
    pub fn approx_bytes(&self) -> usize {
        match self {
            Value::Atom(Atom::Int(_)) => 8,
            Value::Atom(Atom::Str(s)) => s.len().max(8),
            Value::Null(_) | Value::Set(_) => 8,
            Value::Choice(l, v) => l.len() + v.approx_bytes(),
        }
    }
}

/// A record value: one field value per field of the element record type.
pub type Tuple = Vec<Value>;

/// An instance: for every SetID, the set of tuples it contains, plus the
/// distinguished SetIDs of the top-level sets. Ordered containers keep all
/// iteration (and therefore all Muse output) deterministic.
#[derive(Debug, Clone, Default)]
pub struct Instance {
    store: TermStore,
    sets: BTreeMap<SetId, BTreeSet<Tuple>>,
    roots: BTreeMap<String, SetId>,
}

impl Instance {
    /// Empty instance with one (empty) top-level set per set-typed root field
    /// of `schema`.
    pub fn new(schema: &Schema) -> Self {
        let mut inst = Instance::default();
        for path in schema.top_level_sets() {
            let id = inst.store.set_id(path.clone(), Vec::new());
            inst.sets.entry(id).or_default();
            inst.roots.insert(path.label().to_owned(), id);
        }
        inst
    }

    /// The term store (SetIDs / nulls) of this instance.
    pub fn store(&self) -> &TermStore {
        &self.store
    }

    /// Mutable access to the term store.
    pub fn store_mut(&mut self) -> &mut TermStore {
        &mut self.store
    }

    /// SetID of a top-level set by label.
    pub fn root_id(&self, label: &str) -> Option<SetId> {
        self.roots.get(label).copied()
    }

    /// Top-level (label, SetID) pairs in label order.
    pub fn roots(&self) -> impl Iterator<Item = (&str, SetId)> {
        self.roots.iter().map(|(l, id)| (l.as_str(), *id))
    }

    /// Intern (or find) the SetID for `set` grouped by `args`, registering an
    /// empty set of tuples for it if new.
    pub fn group(&mut self, set: SetPath, args: Vec<Value>) -> SetId {
        let id = self.store.set_id(set, args);
        self.sets.entry(id).or_default();
        id
    }

    /// Insert a tuple into the set identified by `id`. Returns `true` if the
    /// tuple was not already present (set semantics).
    pub fn insert(&mut self, id: SetId, tuple: Tuple) -> bool {
        self.sets.entry(id).or_default().insert(tuple)
    }

    /// Remove a tuple from the set identified by `id`. Returns `true` if
    /// the tuple was present. The set (and its SetID) stay registered —
    /// removal perturbs contents, never term identity.
    pub fn remove(&mut self, id: SetId, tuple: &Tuple) -> bool {
        self.sets.get_mut(&id).is_some_and(|s| s.remove(tuple))
    }

    /// The tuples of a set (empty if the id is unknown).
    pub fn tuples(&self, id: SetId) -> impl Iterator<Item = &Tuple> {
        self.sets.get(&id).into_iter().flatten()
    }

    /// Number of tuples in one set.
    pub fn set_len(&self, id: SetId) -> usize {
        self.sets.get(&id).map_or(0, BTreeSet::len)
    }

    /// All registered SetIDs in id order.
    pub fn set_ids(&self) -> impl Iterator<Item = SetId> + '_ {
        self.sets.keys().copied()
    }

    /// All SetIDs instantiating a given set path.
    pub fn set_ids_of(&self, path: &SetPath) -> Vec<SetId> {
        self.sets
            .keys()
            .copied()
            .filter(|id| &self.store.set_term(*id).set == path)
            .collect()
    }

    /// Iterate over every tuple of every set instantiating `path`, together
    /// with the SetID that contains it.
    pub fn tuples_of_path<'a>(
        &'a self,
        path: &SetPath,
    ) -> impl Iterator<Item = (SetId, &'a Tuple)> + 'a {
        let ids = self.set_ids_of(path);
        ids.into_iter()
            .flat_map(move |id| self.tuples(id).map(move |t| (id, t)))
    }

    /// Total number of tuples across all sets.
    pub fn total_tuples(&self) -> usize {
        self.sets.values().map(BTreeSet::len).sum()
    }

    /// Approximate in-memory data size in bytes (for "Size of I" reporting).
    pub fn approx_bytes(&self) -> usize {
        self.sets
            .values()
            .flat_map(|ts| ts.iter())
            .map(|t| t.iter().map(Value::approx_bytes).sum::<usize>())
            .sum()
    }

    /// True when no set contains any tuple.
    pub fn is_empty(&self) -> bool {
        self.sets.values().all(BTreeSet::is_empty)
    }

    /// Check that this instance conforms to `schema`: every SetID's path
    /// exists, tuples have the element record's arity, atomic fields hold
    /// atoms or nulls, and set-typed fields hold SetIDs of the right child
    /// path that are registered in this instance.
    pub fn validate(&self, schema: &Schema) -> Result<(), NrError> {
        for (&id, tuples) in &self.sets {
            let path = self.store.set_term(id).set.clone();
            let rcd = schema.element_record(&path)?;
            let fields = rcd.rcd_fields().expect("element record");
            for tuple in tuples {
                if tuple.len() != fields.len() {
                    return Err(NrError::ArityMismatch {
                        path: path.to_string(),
                        expected: fields.len(),
                        got: tuple.len(),
                    });
                }
                for (field, value) in fields.iter().zip(tuple) {
                    self.validate_value(schema, &path, &field.label, &field.ty, value)?;
                }
            }
        }
        Ok(())
    }

    fn validate_value(
        &self,
        schema: &Schema,
        path: &SetPath,
        label: &str,
        ty: &Ty,
        value: &Value,
    ) -> Result<(), NrError> {
        let mismatch = || NrError::TypeMismatch {
            path: path.to_string(),
            field: label.into(),
        };
        match (ty, value) {
            (Ty::Str, Value::Atom(Atom::Str(_))) | (Ty::Int, Value::Atom(Atom::Int(_))) => Ok(()),
            (Ty::Str | Ty::Int, Value::Null(_)) => Ok(()),
            (Ty::Set(_), Value::Set(id)) => {
                if !self.sets.contains_key(id) {
                    return Err(NrError::UnknownSetId);
                }
                let expected = path.child(label);
                if self.store.set_term(*id).set != expected {
                    return Err(mismatch());
                }
                let _ = schema.resolve_set(&expected)?;
                Ok(())
            }
            (Ty::Choice(alts), Value::Choice(l, inner)) => {
                let alt = alts.iter().find(|f| &f.label == l).ok_or_else(mismatch)?;
                self.validate_value(schema, path, label, &alt.ty, inner)
            }
            _ => Err(mismatch()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Field;

    fn orgdb() -> Schema {
        Schema::new(
            "OrgDB",
            vec![
                Field::new(
                    "Orgs",
                    Ty::set_of(vec![
                        Field::new("oname", Ty::Str),
                        Field::new("Projects", Ty::set_of(vec![Field::new("pname", Ty::Str)])),
                    ]),
                ),
                Field::new(
                    "Employees",
                    Ty::set_of(vec![
                        Field::new("eid", Ty::Str),
                        Field::new("ename", Ty::Str),
                    ]),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roots_created_empty() {
        let s = orgdb();
        let i = Instance::new(&s);
        assert!(i.is_empty());
        assert!(i.root_id("Orgs").is_some());
        assert!(i.root_id("Employees").is_some());
        assert!(i.root_id("Nope").is_none());
        assert_eq!(i.roots().count(), 2);
        i.validate(&s).unwrap();
    }

    #[test]
    fn insert_and_set_semantics() {
        let s = orgdb();
        let mut i = Instance::new(&s);
        let emps = i.root_id("Employees").unwrap();
        assert!(i.insert(emps, vec![Value::str("e14"), Value::str("Smith")]));
        // Duplicate insert is absorbed (sets, not bags).
        assert!(!i.insert(emps, vec![Value::str("e14"), Value::str("Smith")]));
        assert_eq!(i.set_len(emps), 1);
        assert_eq!(i.total_tuples(), 1);
        i.validate(&s).unwrap();
    }

    #[test]
    fn nested_sets_and_validation() {
        let s = orgdb();
        let mut i = Instance::new(&s);
        let orgs = i.root_id("Orgs").unwrap();
        let projs = i.group(SetPath::parse("Orgs.Projects"), vec![Value::str("IBM")]);
        i.insert(orgs, vec![Value::str("IBM"), Value::Set(projs)]);
        i.insert(projs, vec![Value::str("DBSearch")]);
        i.validate(&s).unwrap();
        assert_eq!(
            i.tuples_of_path(&SetPath::parse("Orgs.Projects")).count(),
            1
        );
        assert_eq!(i.set_ids_of(&SetPath::parse("Orgs.Projects")), vec![projs]);
    }

    #[test]
    fn validation_catches_arity_and_type_errors() {
        let s = orgdb();
        let mut i = Instance::new(&s);
        let emps = i.root_id("Employees").unwrap();
        i.insert(emps, vec![Value::str("only-one")]);
        assert!(matches!(i.validate(&s), Err(NrError::ArityMismatch { .. })));

        let mut j = Instance::new(&s);
        let emps = j.root_id("Employees").unwrap();
        j.insert(emps, vec![Value::int(3), Value::str("Smith")]);
        assert!(matches!(j.validate(&s), Err(NrError::TypeMismatch { .. })));
    }

    #[test]
    fn validation_checks_setref_path() {
        let s = orgdb();
        let mut i = Instance::new(&s);
        let orgs = i.root_id("Orgs").unwrap();
        // Point the Projects field at the Employees root set: wrong path.
        let emps = i.root_id("Employees").unwrap();
        i.insert(orgs, vec![Value::str("IBM"), Value::Set(emps)]);
        assert!(matches!(i.validate(&s), Err(NrError::TypeMismatch { .. })));
    }

    #[test]
    fn nulls_validate_in_atomic_positions() {
        let s = orgdb();
        let mut i = Instance::new(&s);
        let emps = i.root_id("Employees").unwrap();
        let n = i.store_mut().fresh_null();
        i.insert(emps, vec![Value::str("e1"), Value::Null(n)]);
        i.validate(&s).unwrap();
    }

    #[test]
    fn approx_bytes_counts_data() {
        let s = orgdb();
        let mut i = Instance::new(&s);
        let emps = i.root_id("Employees").unwrap();
        i.insert(emps, vec![Value::str("e14"), Value::str("Smith")]);
        assert!(i.approx_bytes() >= 13); // max(8,3) + max(8,5)
    }
}
