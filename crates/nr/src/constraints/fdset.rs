//! A small functional-dependency engine over bit-indexed attributes.
//!
//! Muse-G reasons about FDs over `poss(m, SK)` — a set of attribute
//! *references* spanning several source sets (e.g. `c.cid`, `p.pname`,
//! `e.eid`). This module works over abstract attribute indices `0..n`
//! (n ≤ 128) so it can serve both plain schema attributes and such reference
//! sets. It provides attribute-set closure, candidate-key enumeration, and
//! the *single-keyed* test used by Muse-G's key-aware probing (Sec. III-B
//! and the FD generalization of Sec. III-C).

/// A set of attributes, as a bitmask over indices `0..n`.
pub type AttrSet = u128;

/// Build an [`AttrSet`] from indices.
pub fn attrs<I: IntoIterator<Item = usize>>(ix: I) -> AttrSet {
    ix.into_iter().fold(0, |m, i| m | (1u128 << i))
}

/// All `n` attributes.
pub fn all_attrs(n: usize) -> AttrSet {
    if n == 0 {
        0
    } else if n >= 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    }
}

/// Iterate the indices contained in an [`AttrSet`].
pub fn iter_attrs(set: AttrSet) -> impl Iterator<Item = usize> {
    (0..128).filter(move |i| set & (1u128 << i) != 0)
}

/// A set of FDs over `n` bit-indexed attributes.
#[derive(Debug, Clone, Default)]
pub struct FdSet {
    n: usize,
    fds: Vec<(AttrSet, AttrSet)>,
}

impl FdSet {
    /// Empty FD set over `n` attributes. Panics if `n > 128` — `poss(m, SK)`
    /// never approaches that in practice (the paper's largest average is
    /// 26.7).
    pub fn new(n: usize) -> Self {
        assert!(n <= 128, "FdSet supports at most 128 attributes");
        FdSet { n, fds: Vec::new() }
    }

    /// Number of attributes in scope.
    pub fn arity(&self) -> usize {
        self.n
    }

    /// The declared FDs.
    pub fn fds(&self) -> &[(AttrSet, AttrSet)] {
        &self.fds
    }

    /// Add `lhs → rhs`.
    pub fn add(&mut self, lhs: AttrSet, rhs: AttrSet) {
        self.fds
            .push((lhs & all_attrs(self.n), rhs & all_attrs(self.n)));
    }

    /// Add a key: `key → all attributes`.
    pub fn add_key(&mut self, key: AttrSet) {
        self.add(key, all_attrs(self.n));
    }

    /// Attribute-set closure under the FDs (fixed point).
    pub fn closure(&self, start: AttrSet) -> AttrSet {
        let mut cur = start & all_attrs(self.n);
        loop {
            let mut next = cur;
            for &(lhs, rhs) in &self.fds {
                if lhs & cur == lhs {
                    next |= rhs;
                }
            }
            if next == cur {
                return cur;
            }
            cur = next;
        }
    }

    /// Does `lhs → rhs` follow from the declared FDs?
    pub fn implies(&self, lhs: AttrSet, rhs: AttrSet) -> bool {
        self.closure(lhs) & rhs == rhs & all_attrs(self.n)
    }

    /// Is `set` a superkey (its closure covers everything)?
    pub fn is_superkey(&self, set: AttrSet) -> bool {
        self.closure(set) == all_attrs(self.n)
    }

    /// All candidate keys: minimal attribute sets whose closure is the full
    /// attribute set. Uses the Lucchesi–Osborn algorithm (polynomial delay):
    /// start from one minimized key, and for every found key `K` and FD
    /// `X → Y`, the superkey `X ∪ (K ∖ Y)` minimizes to a new key unless it
    /// already contains a found one. A safety cap bounds pathological FD
    /// sets (real schemas have a handful of keys).
    pub fn candidate_keys(&self) -> Vec<AttrSet> {
        const MAX_KEYS: usize = 64;
        let all = all_attrs(self.n);
        if self.n == 0 {
            return vec![0];
        }
        let minimize = |start: AttrSet| -> AttrSet {
            let mut k = start;
            for i in (0..self.n).rev() {
                let bit = attrs([i]);
                if k & bit != 0 && self.closure(k & !bit) == all {
                    k &= !bit;
                }
            }
            k
        };
        let mut keys = vec![minimize(all)];
        let mut queue = vec![keys[0]];
        while let Some(k) = queue.pop() {
            for &(x, y) in &self.fds {
                let s = x | (k & !y);
                // (subset test, not membership: kk ⊆ s)
                #[allow(clippy::manual_contains)]
                if keys.iter().any(|&kk| kk & s == kk) {
                    continue; // contains a found key: yields nothing new
                }
                let m = minimize(s);
                if !keys.contains(&m) {
                    keys.push(m);
                    queue.push(m);
                    if keys.len() >= MAX_KEYS {
                        keys.sort_unstable();
                        return keys;
                    }
                }
            }
        }
        keys.sort_unstable();
        keys
    }

    /// The *single-keyed* test (Sec. III-C): true iff there is exactly one
    /// candidate key. With no FDs at all, the unique key is the full
    /// attribute set, which the paper treats as the "no keys" base case.
    pub fn is_single_keyed(&self) -> bool {
        self.candidate_keys().len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_basic() {
        // 0->1, 1->2 over 4 attrs.
        let mut f = FdSet::new(4);
        f.add(attrs([0]), attrs([1]));
        f.add(attrs([1]), attrs([2]));
        assert_eq!(f.closure(attrs([0])), attrs([0, 1, 2]));
        assert_eq!(f.closure(attrs([3])), attrs([3]));
        assert!(f.implies(attrs([0]), attrs([2])));
        assert!(!f.implies(attrs([0]), attrs([3])));
    }

    #[test]
    fn candidate_keys_single_key() {
        // cid is a key of {cid, cname, location}.
        let mut f = FdSet::new(3);
        f.add_key(attrs([0]));
        assert_eq!(f.candidate_keys(), vec![attrs([0])]);
        assert!(f.is_single_keyed());
        assert!(f.is_superkey(attrs([0, 2])));
    }

    #[test]
    fn candidate_keys_multiple() {
        // Both cid and cname are keys.
        let mut f = FdSet::new(3);
        f.add_key(attrs([0]));
        f.add_key(attrs([1]));
        let keys = f.candidate_keys();
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&attrs([0])));
        assert!(keys.contains(&attrs([1])));
        assert!(!f.is_single_keyed());
    }

    #[test]
    fn no_fds_full_set_is_the_only_key() {
        let f = FdSet::new(3);
        assert_eq!(f.candidate_keys(), vec![attrs([0, 1, 2])]);
        assert!(f.is_single_keyed());
    }

    #[test]
    fn composite_and_derived_keys() {
        // AB -> C, C -> A over {A,B,C}: keys are AB and BC.
        let mut f = FdSet::new(3);
        f.add(attrs([0, 1]), attrs([2]));
        f.add(attrs([2]), attrs([0]));
        let keys = f.candidate_keys();
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&attrs([0, 1])));
        assert!(keys.contains(&attrs([1, 2])));
    }

    #[test]
    fn minimality_no_key_contains_another() {
        // A -> B, B -> A, so A and B are each keys with C essential? No:
        // nothing determines C, so C is essential. Keys: AC and BC.
        let mut f = FdSet::new(3);
        f.add(attrs([0]), attrs([1]));
        f.add(attrs([1]), attrs([0]));
        let keys = f.candidate_keys();
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&attrs([0, 2])));
        assert!(keys.contains(&attrs([1, 2])));
        for a in &keys {
            for b in &keys {
                if a != b {
                    assert_ne!(a & b, *a, "key {a:b} contained in {b:b}");
                }
            }
        }
    }

    #[test]
    fn zero_arity() {
        let f = FdSet::new(0);
        assert_eq!(f.candidate_keys(), vec![0]);
        assert_eq!(f.closure(0), 0);
    }

    #[test]
    fn attr_helpers() {
        assert_eq!(all_attrs(3), 0b111);
        assert_eq!(attrs([0, 2]), 0b101);
        assert_eq!(iter_attrs(0b101).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(all_attrs(0), 0);
        assert_eq!(all_attrs(128), u128::MAX);
    }
}
