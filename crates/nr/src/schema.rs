//! Schemas and set paths.
//!
//! Following the paper we model a schema as a single root record whose
//! elements are (typically) all of type `SetOf`. Every nested set type is
//! addressed by a [`SetPath`]: the sequence of field labels navigated from
//! the root record down to the set, descending implicitly through set
//! elements. E.g. in `OrgDB`, `Orgs.Projects` addresses the `Projects` set
//! nested inside each `Org` record of the top-level `Orgs` set.

use std::fmt;

use crate::error::NrError;
use crate::types::{Field, Ty};

/// The address of a nested set type within a schema: field labels from the
/// root record to the set, one per set level.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetPath(Vec<String>);

impl SetPath {
    /// Build a path from label segments.
    pub fn new<I, S>(segments: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        SetPath(segments.into_iter().map(Into::into).collect())
    }

    /// Parse a dotted path such as `"Orgs.Projects"`.
    pub fn parse(s: &str) -> Self {
        SetPath(s.split('.').map(str::to_owned).collect())
    }

    /// The label segments.
    pub fn segments(&self) -> &[String] {
        &self.0
    }

    /// The final segment — the set's own label.
    pub fn label(&self) -> &str {
        self.0.last().map(String::as_str).unwrap_or("")
    }

    /// Nesting depth (1 for top-level sets).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// The enclosing set's path, or `None` for top-level sets.
    pub fn parent(&self) -> Option<SetPath> {
        if self.0.len() <= 1 {
            None
        } else {
            Some(SetPath(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// Extend this path by one child set label.
    pub fn child(&self, label: impl Into<String>) -> SetPath {
        let mut v = self.0.clone();
        v.push(label.into());
        SetPath(v)
    }

    /// True when this path is an ancestor of (or equal to) `other`.
    pub fn is_prefix_of(&self, other: &SetPath) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }
}

impl fmt::Display for SetPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.join("."))
    }
}

/// A named schema: a root record whose fields are the top-level elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Schema name, e.g. `CompDB`.
    pub name: String,
    root: Ty,
}

impl Schema {
    /// Build a schema from its root record fields. Label uniqueness is
    /// enforced at every record level and every set element must itself be a
    /// record (the paper's NR shape).
    pub fn new(name: impl Into<String>, root_fields: Vec<Field>) -> Result<Self, NrError> {
        let root = Ty::Rcd(root_fields);
        check_labels(&root)?;
        Ok(Schema {
            name: name.into(),
            root,
        })
    }

    /// The root record type.
    pub fn root(&self) -> &Ty {
        &self.root
    }

    /// Resolve a set path to its `SetOf` type.
    pub fn resolve_set(&self, path: &SetPath) -> Result<&Ty, NrError> {
        let mut current = &self.root;
        for seg in path.segments() {
            // Descend through a set into its element record implicitly.
            if let Ty::Set(el) = current {
                current = el;
            }
            let field = current
                .field(seg)
                .ok_or_else(|| NrError::UnknownPath(path.to_string()))?;
            current = &field.ty;
        }
        if current.is_set() {
            Ok(current)
        } else {
            Err(NrError::NotASet(path.to_string()))
        }
    }

    /// The element record type of the set at `path`.
    pub fn element_record(&self, path: &SetPath) -> Result<&Ty, NrError> {
        let set = self.resolve_set(path)?;
        let el = set.set_element().expect("resolve_set returned a set");
        match el {
            Ty::Rcd(_) => Ok(el),
            _ => Err(NrError::NotASet(path.to_string())),
        }
    }

    /// Atomic attribute labels of the set at `path`.
    pub fn attributes(&self, path: &SetPath) -> Result<Vec<String>, NrError> {
        Ok(self
            .element_record(path)?
            .atomic_labels()
            .into_iter()
            .map(str::to_owned)
            .collect())
    }

    /// Index of `attr` within the element record's field list.
    pub fn attr_index(&self, path: &SetPath, attr: &str) -> Result<usize, NrError> {
        self.element_record(path)?
            .field_index(attr)
            .ok_or_else(|| NrError::UnknownField {
                path: path.to_string(),
                field: attr.into(),
            })
    }

    /// Like [`Schema::attr_index`], but additionally requires the field to
    /// be atomic — the only kind of field mappings, queries and
    /// correspondences may project.
    pub fn atomic_attr_index(&self, path: &SetPath, attr: &str) -> Result<usize, NrError> {
        let idx = self.attr_index(path, attr)?;
        let rcd = self.element_record(path)?;
        let field = &rcd.rcd_fields().expect("element record")[idx];
        if field.ty.is_atomic() {
            Ok(idx)
        } else {
            Err(NrError::TypeMismatch {
                path: path.to_string(),
                field: attr.into(),
            })
        }
    }

    /// Paths of the sets nested directly inside the set at `path`.
    pub fn child_sets(&self, path: &SetPath) -> Result<Vec<SetPath>, NrError> {
        Ok(self
            .element_record(path)?
            .set_labels()
            .into_iter()
            .map(|l| path.child(l))
            .collect())
    }

    /// Paths of the top-level sets (set-typed root fields).
    pub fn top_level_sets(&self) -> Vec<SetPath> {
        self.root
            .set_labels()
            .into_iter()
            .map(|l| SetPath::new([l]))
            .collect()
    }

    /// All set paths in breadth-first order from the root — the traversal
    /// order Muse-G uses to sequence grouping-function design (Sec. III-A,
    /// Step 1).
    pub fn set_paths_bfs(&self) -> Vec<SetPath> {
        let mut out = Vec::new();
        let mut frontier = self.top_level_sets();
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for p in frontier {
                if let Ok(children) = self.child_sets(&p) {
                    next.extend(children);
                }
                out.push(p);
            }
            frontier = next;
        }
        out
    }

    /// Does the schema contain the given set path?
    pub fn has_set(&self, path: &SetPath) -> bool {
        self.resolve_set(path).is_ok()
    }

    /// True when every set in the schema obeys the strict set/record
    /// alternation assumed in the paper's exposition.
    pub fn is_strictly_alternating(&self) -> bool {
        self.root.rcd_fields().is_some_and(|fs| {
            fs.iter()
                .all(|f| f.ty.is_strictly_alternating() || f.ty.is_atomic())
        })
    }
}

fn check_labels(ty: &Ty) -> Result<(), NrError> {
    match ty {
        Ty::Rcd(fs) | Ty::Choice(fs) => {
            for (i, f) in fs.iter().enumerate() {
                if fs[..i].iter().any(|g| g.label == f.label) {
                    return Err(NrError::DuplicateLabel(f.label.clone()));
                }
                check_labels(&f.ty)?;
            }
            Ok(())
        }
        Ty::Set(el) => match el.as_ref() {
            Ty::Rcd(_) => check_labels(el),
            other => {
                // Set elements must be records in our NR shape.
                let _ = other;
                Err(NrError::NotASet("set element must be a record".into()))
            }
        },
        Ty::Str | Ty::Int => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The OrgDB target schema of Fig. 1.
    pub(crate) fn orgdb() -> Schema {
        Schema::new(
            "OrgDB",
            vec![
                Field::new(
                    "Orgs",
                    Ty::set_of(vec![
                        Field::new("oname", Ty::Str),
                        Field::new(
                            "Projects",
                            Ty::set_of(vec![
                                Field::new("pname", Ty::Str),
                                Field::new("manager", Ty::Str),
                            ]),
                        ),
                    ]),
                ),
                Field::new(
                    "Employees",
                    Ty::set_of(vec![
                        Field::new("eid", Ty::Str),
                        Field::new("ename", Ty::Str),
                    ]),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn resolve_and_attributes() {
        let s = orgdb();
        let projects = SetPath::parse("Orgs.Projects");
        assert!(s.resolve_set(&projects).is_ok());
        assert_eq!(s.attributes(&projects).unwrap(), vec!["pname", "manager"]);
        assert_eq!(
            s.attributes(&SetPath::parse("Orgs")).unwrap(),
            vec!["oname"]
        );
    }

    #[test]
    fn unknown_paths_error() {
        let s = orgdb();
        assert!(matches!(
            s.resolve_set(&SetPath::parse("Nope")),
            Err(NrError::UnknownPath(_))
        ));
        assert!(matches!(
            s.resolve_set(&SetPath::parse("Orgs.Nope")),
            Err(NrError::UnknownPath(_))
        ));
    }

    #[test]
    fn bfs_order_is_levelwise() {
        let s = orgdb();
        let order = s.set_paths_bfs();
        let names: Vec<String> = order.iter().map(|p| p.to_string()).collect();
        assert_eq!(names, vec!["Orgs", "Employees", "Orgs.Projects"]);
    }

    #[test]
    fn parent_child_prefix() {
        let p = SetPath::parse("Orgs.Projects");
        assert_eq!(p.parent(), Some(SetPath::parse("Orgs")));
        assert_eq!(SetPath::parse("Orgs").parent(), None);
        assert!(SetPath::parse("Orgs").is_prefix_of(&p));
        assert!(!p.is_prefix_of(&SetPath::parse("Orgs")));
        assert_eq!(SetPath::parse("Orgs").child("Projects"), p);
        assert_eq!(p.label(), "Projects");
        assert_eq!(p.depth(), 2);
    }

    #[test]
    fn duplicate_labels_rejected() {
        let r = Schema::new(
            "S",
            vec![
                Field::new("A", Ty::set_of(vec![Field::new("x", Ty::Int)])),
                Field::new("A", Ty::set_of(vec![Field::new("y", Ty::Int)])),
            ],
        );
        assert!(matches!(r, Err(NrError::DuplicateLabel(_))));
    }

    #[test]
    fn strictly_alternating_check() {
        assert!(orgdb().is_strictly_alternating());
    }
}
