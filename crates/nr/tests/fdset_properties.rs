//! Randomized tests of the FD engine: the Lucchesi–Osborn candidate-key
//! enumeration is cross-checked against brute force on small attribute
//! spaces, and closure satisfies its algebraic laws. Driven by the
//! deterministic SplitMix64 generator, so every run checks the same cases.

use muse_nr::constraints::fdset::{all_attrs, attrs, iter_attrs, AttrSet, FdSet};
use muse_obs::Rng;

/// A random FD set over `2 ≤ n ≤ 6` attributes, plus the generator for
/// follow-up draws.
fn random_fd_set(rng: &mut Rng) -> FdSet {
    let n = rng.range(2, 7) as usize;
    let mut set = FdSet::new(n);
    let n_fds = rng.index(6);
    for _ in 0..n_fds {
        let lhs = rng.below(1 << n) as AttrSet;
        let rhs = rng.below(1 << n) as AttrSet;
        set.add(lhs, rhs);
    }
    set
}

/// Brute-force candidate keys: all subset-minimal superkeys.
fn brute_force_keys(f: &FdSet) -> Vec<AttrSet> {
    let n = f.arity();
    let all = all_attrs(n);
    let mut superkeys: Vec<AttrSet> = (0..(1u128 << n)).filter(|&s| f.closure(s) == all).collect();
    superkeys.sort_unstable();
    let mut keys: Vec<AttrSet> = Vec::new();
    for s in superkeys {
        // (subset test, not membership)
        #[allow(clippy::manual_contains)]
        if !keys.iter().any(|&k| k & s == k) {
            keys.push(s);
        }
    }
    keys
}

#[test]
fn candidate_keys_match_brute_force() {
    let mut rng = Rng::new(0xF0_5E75);
    for case in 0..256 {
        let f = random_fd_set(&mut rng);
        let mut fast = f.candidate_keys();
        fast.sort_unstable();
        let mut slow = brute_force_keys(&f);
        slow.sort_unstable();
        assert_eq!(fast, slow, "case {case}: {f:?}");
    }
}

#[test]
fn closure_is_monotone_idempotent_extensive() {
    let mut rng = Rng::new(0xC105);
    for case in 0..256 {
        let f = random_fd_set(&mut rng);
        let start = (rng.below(64) as AttrSet) & all_attrs(f.arity());
        let c = f.closure(start);
        // Extensive: X ⊆ closure(X).
        assert_eq!(c & start, start, "case {case}");
        // Idempotent.
        assert_eq!(f.closure(c), c, "case {case}");
        // Monotone: closure of a subset is contained in closure.
        for i in iter_attrs(start) {
            let sub = start & !attrs([i]);
            let csub = f.closure(sub);
            assert_eq!(csub & c, csub, "case {case}: closure must be monotone");
        }
    }
}

#[test]
fn keys_are_superkeys_and_minimal() {
    let mut rng = Rng::new(0x5EED_4E15);
    for case in 0..256 {
        let f = random_fd_set(&mut rng);
        let all = all_attrs(f.arity());
        for k in f.candidate_keys() {
            assert_eq!(f.closure(k), all, "case {case}: keys are superkeys");
            for i in iter_attrs(k) {
                assert_ne!(
                    f.closure(k & !attrs([i])),
                    all,
                    "case {case}: keys are minimal"
                );
            }
        }
    }
}

#[test]
fn implies_agrees_with_closure() {
    let mut rng = Rng::new(0x1A9);
    for case in 0..256 {
        let f = random_fd_set(&mut rng);
        let lhs = (rng.below(64) as AttrSet) & all_attrs(f.arity());
        let rhs = (rng.below(64) as AttrSet) & all_attrs(f.arity());
        assert_eq!(
            f.implies(lhs, rhs),
            f.closure(lhs) & rhs == rhs,
            "case {case}"
        );
    }
}
