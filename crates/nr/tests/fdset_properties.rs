//! Property tests of the FD engine: the Lucchesi–Osborn candidate-key
//! enumeration is cross-checked against brute force on small attribute
//! spaces, and closure satisfies its algebraic laws.

use muse_nr::constraints::fdset::{all_attrs, attrs, iter_attrs, AttrSet, FdSet};
use proptest::prelude::*;

/// A random FD set over `n ≤ 6` attributes.
fn fd_sets() -> impl Strategy<Value = FdSet> {
    (2usize..=6)
        .prop_flat_map(|n| {
            let fd = (0u64..(1 << n) as u64, 0u64..(1 << n) as u64);
            (Just(n), prop::collection::vec(fd, 0..6))
        })
        .prop_map(|(n, fds)| {
            let mut set = FdSet::new(n);
            for (lhs, rhs) in fds {
                set.add(lhs as AttrSet, rhs as AttrSet);
            }
            set
        })
}

/// Brute-force candidate keys: all subset-minimal superkeys.
fn brute_force_keys(f: &FdSet) -> Vec<AttrSet> {
    let n = f.arity();
    let all = all_attrs(n);
    let mut superkeys: Vec<AttrSet> = (0..(1u128 << n)).filter(|&s| f.closure(s) == all).collect();
    superkeys.sort_unstable();
    let mut keys: Vec<AttrSet> = Vec::new();
    for s in superkeys {
        // (subset test, not membership)
        #[allow(clippy::manual_contains)]
        if !keys.iter().any(|&k| k & s == k) {
            keys.push(s);
        }
    }
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn candidate_keys_match_brute_force(f in fd_sets()) {
        let mut fast = f.candidate_keys();
        fast.sort_unstable();
        let mut slow = brute_force_keys(&f);
        slow.sort_unstable();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn closure_is_monotone_idempotent_extensive(f in fd_sets(), start in 0u64..64) {
        let start = (start as AttrSet) & all_attrs(f.arity());
        let c = f.closure(start);
        // Extensive: X ⊆ closure(X).
        prop_assert_eq!(c & start, start);
        // Idempotent.
        prop_assert_eq!(f.closure(c), c);
        // Monotone: closure of a subset is contained in closure.
        for i in iter_attrs(start) {
            let sub = start & !attrs([i]);
            let csub = f.closure(sub);
            prop_assert_eq!(csub & c, csub, "closure must be monotone");
        }
    }

    #[test]
    fn keys_are_superkeys_and_minimal(f in fd_sets()) {
        let all = all_attrs(f.arity());
        for k in f.candidate_keys() {
            prop_assert_eq!(f.closure(k), all, "keys are superkeys");
            for i in iter_attrs(k) {
                prop_assert_ne!(
                    f.closure(k & !attrs([i])),
                    all,
                    "keys are minimal"
                );
            }
        }
    }

    #[test]
    fn implies_agrees_with_closure(f in fd_sets(), lhs in 0u64..64, rhs in 0u64..64) {
        let lhs = (lhs as AttrSet) & all_attrs(f.arity());
        let rhs = (rhs as AttrSet) & all_attrs(f.arity());
        prop_assert_eq!(f.implies(lhs, rhs), f.closure(lhs) & rhs == rhs);
    }
}
