//! Query errors.

use std::fmt;

/// Errors raised while validating or evaluating a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A variable's set path does not exist in the schema.
    UnknownSet(String),
    /// An operand refers to an attribute the variable's set does not have.
    UnknownAttr { var: String, attr: String },
    /// A child variable's parent field is not a set-typed field.
    BadParentField { var: String, field: String },
    /// A parent index is out of range or refers to a later variable.
    BadParent { var: String },
    /// An operand refers to an unknown variable index.
    UnknownVar(usize),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownSet(p) => write!(f, "unknown set `{p}` in query"),
            QueryError::UnknownAttr { var, attr } => {
                write!(f, "variable `{var}` has no attribute `{attr}`")
            }
            QueryError::BadParentField { var, field } => {
                write!(f, "parent field `{field}` of variable `{var}` is not a set")
            }
            QueryError::BadParent { var } => write!(f, "bad parent reference for variable `{var}`"),
            QueryError::UnknownVar(i) => write!(f, "operand refers to unknown variable #{i}"),
        }
    }
}

impl std::error::Error for QueryError {}
