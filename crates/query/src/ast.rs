//! Query AST: record variables over nested sets, with equality and
//! inequality predicates over attribute projections and constants.

use muse_nr::{Schema, SetPath, Value};

use crate::error::QueryError;

/// A query variable: binds to one tuple of a nested set. Top-level variables
/// range over every occurrence of their set path; child variables range over
/// the set referenced by a parent tuple's set-typed field (e.g.
/// `p1 in o.Projects`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QVar {
    /// Display name (e.g. `c`, `p`, `e1`).
    pub name: String,
    /// The set the variable ranges over.
    pub set: SetPath,
    /// For nested bindings: (index of parent variable, set field label).
    pub parent: Option<(usize, String)>,
}

/// One side of a predicate: a projection `var.attr` or a constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// Projection of a bound variable on an atomic attribute.
    Proj {
        /// Index into [`Query::vars`].
        var: usize,
        /// Attribute label.
        attr: String,
    },
    /// A constant value.
    Const(Value),
}

impl Operand {
    /// Shorthand for a projection operand.
    pub fn proj(var: usize, attr: impl Into<String>) -> Operand {
        Operand::Proj {
            var,
            attr: attr.into(),
        }
    }

    /// The variable index, if this is a projection.
    pub fn var(&self) -> Option<usize> {
        match self {
            Operand::Proj { var, .. } => Some(*var),
            Operand::Const(_) => None,
        }
    }
}

/// A conjunctive query with equalities and inequalities.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Query {
    /// The variables, in declaration order. Parents must precede children.
    pub vars: Vec<QVar>,
    /// Equality predicates.
    pub eqs: Vec<(Operand, Operand)>,
    /// Inequality predicates.
    pub neqs: Vec<(Operand, Operand)>,
}

impl Query {
    /// Empty query.
    pub fn new() -> Self {
        Query::default()
    }

    /// Add a top-level variable ranging over `set`; returns its index.
    pub fn var(&mut self, name: impl Into<String>, set: SetPath) -> usize {
        self.vars.push(QVar {
            name: name.into(),
            set,
            parent: None,
        });
        self.vars.len() - 1
    }

    /// Add a child variable ranging over `parent.field`; returns its index.
    /// The set path is derived from the parent's path.
    pub fn child_var(
        &mut self,
        name: impl Into<String>,
        parent: usize,
        field: impl Into<String>,
    ) -> usize {
        let field = field.into();
        let set = self.vars[parent].set.child(&field);
        self.vars.push(QVar {
            name: name.into(),
            set,
            parent: Some((parent, field)),
        });
        self.vars.len() - 1
    }

    /// Add the predicate `a = b`.
    pub fn add_eq(&mut self, a: Operand, b: Operand) {
        self.eqs.push((a, b));
    }

    /// Add the predicate `a ≠ b`.
    pub fn add_neq(&mut self, a: Operand, b: Operand) {
        self.neqs.push((a, b));
    }

    /// Validate the query against a schema: set paths resolve, attributes
    /// exist, parent references are sane.
    pub fn validate(&self, schema: &Schema) -> Result<(), QueryError> {
        for (i, v) in self.vars.iter().enumerate() {
            if schema.resolve_set(&v.set).is_err() {
                return Err(QueryError::UnknownSet(v.set.to_string()));
            }
            if let Some((p, field)) = &v.parent {
                if *p >= i {
                    return Err(QueryError::BadParent {
                        var: v.name.clone(),
                    });
                }
                let parent_set = &self.vars[*p].set;
                let child = parent_set.child(field);
                if child != v.set || schema.resolve_set(&child).is_err() {
                    return Err(QueryError::BadParentField {
                        var: v.name.clone(),
                        field: field.clone(),
                    });
                }
            }
        }
        let check_op = |op: &Operand| -> Result<(), QueryError> {
            if let Operand::Proj { var, attr } = op {
                let v = self.vars.get(*var).ok_or(QueryError::UnknownVar(*var))?;
                // Predicates compare atomic values only.
                if schema.atomic_attr_index(&v.set, attr).is_err() {
                    return Err(QueryError::UnknownAttr {
                        var: v.name.clone(),
                        attr: attr.clone(),
                    });
                }
            }
            Ok(())
        };
        for (a, b) in self.eqs.iter().chain(&self.neqs) {
            check_op(a)?;
            check_op(b)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_nr::{Field, Ty};

    fn schema() -> Schema {
        Schema::new(
            "S",
            vec![
                Field::new(
                    "Orgs",
                    Ty::set_of(vec![
                        Field::new("oname", Ty::Str),
                        Field::new("Projects", Ty::set_of(vec![Field::new("pname", Ty::Str)])),
                    ]),
                ),
                Field::new("Emps", Ty::set_of(vec![Field::new("eid", Ty::Int)])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_and_validate() {
        let s = schema();
        let mut q = Query::new();
        let o = q.var("o", SetPath::parse("Orgs"));
        let p = q.child_var("p", o, "Projects");
        let e = q.var("e", SetPath::parse("Emps"));
        q.add_eq(Operand::proj(p, "pname"), Operand::Const(Value::str("DB")));
        q.add_neq(Operand::proj(e, "eid"), Operand::Const(Value::int(0)));
        q.validate(&s).unwrap();
    }

    #[test]
    fn validation_errors() {
        let s = schema();

        let mut q = Query::new();
        q.var("x", SetPath::parse("Nope"));
        assert!(matches!(q.validate(&s), Err(QueryError::UnknownSet(_))));

        let mut q = Query::new();
        let o = q.var("o", SetPath::parse("Orgs"));
        q.add_eq(Operand::proj(o, "bad"), Operand::Const(Value::int(1)));
        assert!(matches!(
            q.validate(&s),
            Err(QueryError::UnknownAttr { .. })
        ));

        let mut q = Query::new();
        let o = q.var("o", SetPath::parse("Orgs"));
        q.add_eq(Operand::proj(o + 5, "oname"), Operand::Const(Value::int(1)));
        assert!(matches!(q.validate(&s), Err(QueryError::UnknownVar(_))));
    }

    #[test]
    fn child_var_derives_path() {
        let mut q = Query::new();
        let o = q.var("o", SetPath::parse("Orgs"));
        let p = q.child_var("p", o, "Projects");
        assert_eq!(q.vars[p].set, SetPath::parse("Orgs.Projects"));
    }
}
