//! EXPLAIN for the query evaluator: which variable order the planner chose
//! and how each variable's candidates are produced (parent navigation, hash
//! index lookup, or full scan). Useful when a `QIe` retrieval is slower
//! than expected — the paper's Sec. VI attributes Muse-G's latency almost
//! entirely to these queries.

use std::fmt;

use muse_nr::Schema;

use crate::ast::Query;
use crate::error::QueryError;
use crate::eval::plan_summary;

/// How one variable's candidate tuples are produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Access {
    /// Tuples of the set referenced by the parent tuple's field.
    Parent {
        /// The parent variable's name.
        of: String,
        /// The navigated field.
        field: String,
    },
    /// Hash-index lookup on one attribute against an already-bound value.
    IndexLookup {
        /// The indexed attribute.
        attr: String,
    },
    /// Scan of every occurrence of the set path.
    FullScan,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Access::Parent { of, field } => write!(f, "navigate {of}.{field}"),
            Access::IndexLookup { attr } => write!(f, "index lookup on {attr}"),
            Access::FullScan => write!(f, "full scan"),
        }
    }
}

/// One step of the plan: a variable binding.
#[derive(Debug, Clone)]
pub struct Step {
    /// The variable's name.
    pub var: String,
    /// The set it ranges over.
    pub set: String,
    /// How its candidates are produced.
    pub access: Access,
    /// Number of predicates checked at this step.
    pub checks: usize,
}

/// The explanation: binding steps in execution order.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Steps, in the order the evaluator binds variables.
    pub steps: Vec<Step>,
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(
                f,
                "{:>2}. {} in {}  [{}; {} check{}]",
                i + 1,
                s.var,
                s.set,
                s.access,
                s.checks,
                if s.checks == 1 { "" } else { "s" }
            )?;
        }
        Ok(())
    }
}

/// Explain how `query` would be evaluated against `schema`.
pub fn explain(schema: &Schema, query: &Query) -> Result<Explanation, QueryError> {
    query.validate(schema)?;
    plan_summary(schema, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Operand;
    use muse_nr::{Field, SetPath, Ty, Value};

    fn schema() -> Schema {
        Schema::new(
            "S",
            vec![
                Field::new(
                    "Companies",
                    Ty::set_of(vec![
                        Field::new("cid", Ty::Int),
                        Field::new("cname", Ty::Str),
                    ]),
                ),
                Field::new(
                    "Projects",
                    Ty::set_of(vec![
                        Field::new("pname", Ty::Str),
                        Field::new("cid", Ty::Int),
                        Field::new("Tasks", Ty::set_of(vec![Field::new("t", Ty::Str)])),
                    ]),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn join_uses_an_index() {
        let s = schema();
        let mut q = Query::new();
        let c = q.var("c", SetPath::parse("Companies"));
        let p = q.var("p", SetPath::parse("Projects"));
        q.add_eq(Operand::proj(p, "cid"), Operand::proj(c, "cid"));
        let ex = explain(&s, &q).unwrap();
        assert_eq!(ex.steps.len(), 2);
        // The first variable is a scan; the second is an index lookup.
        assert_eq!(ex.steps[0].access, Access::FullScan);
        assert!(matches!(&ex.steps[1].access, Access::IndexLookup { attr } if attr == "cid"));
        let text = ex.to_string();
        assert!(text.contains("index lookup on cid"), "{text}");
    }

    #[test]
    fn child_variables_navigate_their_parent() {
        let s = schema();
        let mut q = Query::new();
        let p = q.var("p", SetPath::parse("Projects"));
        q.child_var("t", p, "Tasks");
        let ex = explain(&s, &q).unwrap();
        assert!(matches!(
            &ex.steps[1].access,
            Access::Parent { of, field } if of == "p" && field == "Tasks"
        ));
    }

    #[test]
    fn constant_filters_become_index_lookups() {
        let s = schema();
        let mut q = Query::new();
        let c = q.var("c", SetPath::parse("Companies"));
        q.add_eq(Operand::proj(c, "cname"), Operand::Const(Value::str("IBM")));
        let ex = explain(&s, &q).unwrap();
        assert!(matches!(&ex.steps[0].access, Access::IndexLookup { attr } if attr == "cname"));
        assert_eq!(ex.steps[0].checks, 1);
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let s = schema();
        let mut q = Query::new();
        q.var("x", SetPath::parse("Nope"));
        assert!(explain(&s, &q).is_err());
    }
}
