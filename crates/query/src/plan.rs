//! Static query planning: a deterministic bound-variable-propagation join
//! order with key-aware probe annotations.
//!
//! [`plan_query`] orders a CQ's variables without looking at any instance:
//! starting from the declaration-first eligible variable, it repeatedly
//! binds the variable whose already-bound equalities are most selective —
//! preferring (lexicographically) variables whose bound attributes cover a
//! declared key under the [`SelectivityHints`] FD closure, then child
//! variables (bound to a single parent set), then the raw count of bound
//! equalities, then declaration order. The result is an [`EvalPlan`]: a
//! serializable artifact `muse lint` emits per mapping and
//! [`crate::eval::evaluate_planned_with`] executes.
//!
//! Handing an `EvalPlan` to the evaluator does two things:
//!
//! * *composite probes* — at every position the evaluator probes a lazy
//!   hash index on **all** equality attributes bound at that point (the
//!   legacy path probes one); this is order-preserving, so it is safe even
//!   for `limit`/deadline searches (identical result prefixes);
//! * *plan order* — for complete enumerations (no limit, no deadline) the
//!   search runs in plan order and the emitted rows are restored to the
//!   legacy emission order by rank-sorting, keeping results byte-identical.

use muse_nr::Schema;
use muse_obs::Json;

use crate::ast::{Operand, Query};
use crate::error::QueryError;
use crate::hints::SelectivityHints;

/// How one variable is bound, in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStep {
    /// Index into [`Query::vars`].
    pub var: usize,
    /// Record field indices carrying an equality against an operand bound
    /// before this step — the composite hash-probe key. Sorted, deduped.
    pub probe_attrs: Vec<usize>,
    /// The probe attributes cover a declared key (under the hint FD
    /// closure): at most one tuple matches.
    pub key_covered: bool,
}

/// A static evaluation plan for one [`Query`]: the variable order plus the
/// per-step probe annotation. Produced by [`plan_query`], consumed by
/// [`crate::eval::evaluate_planned_with`] and serialized by `muse lint`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalPlan {
    /// One step per query variable, in execution order.
    pub steps: Vec<PlanStep>,
}

impl EvalPlan {
    /// The variable order (indices into [`Query::vars`]).
    pub fn order(&self) -> impl Iterator<Item = usize> + '_ {
        self.steps.iter().map(|s| s.var)
    }

    /// Stable JSON form, resolving variable and attribute names against the
    /// query and schema the plan was built for.
    pub fn to_json(&self, schema: &Schema, query: &Query) -> Json {
        let steps = self
            .steps
            .iter()
            .map(|s| {
                let qv = &query.vars[s.var];
                let labels = schema.attributes(&qv.set).unwrap_or_default();
                let access = if qv.parent.is_some() {
                    "parent"
                } else if s.probe_attrs.is_empty() {
                    "scan"
                } else {
                    "probe"
                };
                Json::obj(vec![
                    ("var", Json::str(&qv.name)),
                    ("set", Json::str(qv.set.to_string())),
                    ("access", Json::str(access)),
                    (
                        "probe_attrs",
                        Json::Arr(
                            s.probe_attrs
                                .iter()
                                .map(|&i| {
                                    Json::str(
                                        labels.get(i).cloned().unwrap_or_else(|| format!("#{i}")),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                    ("key_covered", Json::Bool(s.key_covered)),
                ])
            })
            .collect();
        Json::obj(vec![("steps", Json::Arr(steps))])
    }
}

/// Past this many variables the planner falls back from exhaustive order
/// search to the greedy heuristic (6! = 720 candidate orders at most).
const EXHAUSTIVE_MAX_VARS: usize = 6;

/// Build the deterministic bound-variable-propagation plan for `query`.
/// `hints` sharpens the order (key-covered probes first) and fills
/// [`PlanStep::key_covered`]; without hints the order degrades to
/// bound-equality counting and no step is key-covered.
///
/// Up to [`EXHAUSTIVE_MAX_VARS`] variables the planner scores every
/// parent-respecting order and keeps the best one — most key-covered
/// probes, then most probed equalities, ties resolved to the
/// lexicographically least order (declaration-order bias). Larger queries
/// use a greedy one-step version of the same ranking.
pub fn plan_query(
    schema: &Schema,
    query: &Query,
    hints: Option<&SelectivityHints>,
) -> Result<EvalPlan, QueryError> {
    query.validate(schema)?;
    let n = query.vars.len();
    // Resolve each equality side to (var, field index) or a constant.
    let eqs: Vec<(Side, Side)> = query
        .eqs
        .iter()
        .map(|(a, b)| Ok((side(schema, query, a)?, side(schema, query, b)?)))
        .collect::<Result<_, QueryError>>()?;

    if n <= EXHAUSTIVE_MAX_VARS {
        let mut best: Option<(Score, Vec<PlanStep>)> = None;
        let mut order = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        search_orders(query, &mut order, &mut placed, &mut |order| {
            let steps = steps_for_order(query, &eqs, hints, order);
            let score = (
                steps.iter().filter(|s| s.key_covered).count() as i64,
                steps.iter().map(|s| s.probe_attrs.len()).sum::<usize>() as i64,
            );
            // Strict `>` keeps the first (lexicographically least) order
            // among ties: orders are enumerated in ascending index order.
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, steps));
            }
        });
        let Some((_, steps)) = best else {
            return Err(QueryError::BadParent {
                var: query.vars[0].name.clone(),
            });
        };
        return Ok(EvalPlan { steps });
    }

    let mut placed = vec![false; n];
    let mut steps = Vec::with_capacity(n);
    while steps.len() < n {
        let mut best: Option<(Rank, PlanStep)> = None;
        for v in 0..n {
            if placed[v] {
                continue;
            }
            if let Some((p, _)) = &query.vars[v].parent {
                if !placed[*p] {
                    continue;
                }
            }
            let step = step_for(query, &eqs, hints, v, &placed);
            let rank = (
                step.key_covered as i64,
                query.vars[v].parent.is_some() as i64,
                step.probe_attrs.len() as i64,
                -(v as i64),
            );
            if best.as_ref().is_none_or(|(r, _)| rank > *r) {
                best = Some((rank, step));
            }
        }
        // Parents precede children in `Query::vars` (validated), so an
        // unplaced variable with a placed (or no) parent always exists.
        let Some((_, step)) = best else {
            return Err(QueryError::BadParent {
                var: query.vars[steps.len().min(n - 1)].name.clone(),
            });
        };
        placed[step.var] = true;
        steps.push(step);
    }
    Ok(EvalPlan { steps })
}

type Rank = (i64, i64, i64, i64);
type Score = (i64, i64);

/// Enumerate every parent-respecting variable order in lexicographic index
/// order, invoking `visit` on each complete one.
fn search_orders(
    query: &Query,
    order: &mut Vec<usize>,
    placed: &mut [bool],
    visit: &mut impl FnMut(&[usize]),
) {
    if order.len() == placed.len() {
        visit(order);
        return;
    }
    for v in 0..placed.len() {
        if placed[v] {
            continue;
        }
        if let Some((p, _)) = &query.vars[v].parent {
            if !placed[*p] {
                continue;
            }
        }
        placed[v] = true;
        order.push(v);
        search_orders(query, order, placed, visit);
        order.pop();
        placed[v] = false;
    }
}

/// The plan steps induced by one complete variable order.
fn steps_for_order(
    query: &Query,
    eqs: &[(Side, Side)],
    hints: Option<&SelectivityHints>,
    order: &[usize],
) -> Vec<PlanStep> {
    let mut placed = vec![false; query.vars.len()];
    order
        .iter()
        .map(|&v| {
            let step = step_for(query, eqs, hints, v, &placed);
            placed[v] = true;
            step
        })
        .collect()
}

/// The step binding `v` given the already-`placed` variables.
fn step_for(
    query: &Query,
    eqs: &[(Side, Side)],
    hints: Option<&SelectivityHints>,
    v: usize,
    placed: &[bool],
) -> PlanStep {
    let mut probe_attrs: Vec<usize> = Vec::new();
    for (a, b) in eqs {
        for (this, other) in [(a, b), (b, a)] {
            if let Side::Proj { var, idx } = this {
                if *var == v && other.bound(placed) {
                    probe_attrs.push(*idx);
                }
            }
        }
    }
    probe_attrs.sort_unstable();
    probe_attrs.dedup();
    let key_covered = hints.is_some_and(|h| h.covers_unique(&query.vars[v].set, &probe_attrs));
    PlanStep {
        var: v,
        probe_attrs,
        key_covered,
    }
}

#[derive(Debug, Clone)]
enum Side {
    Proj { var: usize, idx: usize },
    Const,
}

impl Side {
    fn bound(&self, placed: &[bool]) -> bool {
        match self {
            Side::Const => true,
            Side::Proj { var, .. } => placed[*var],
        }
    }
}

fn side(schema: &Schema, query: &Query, op: &Operand) -> Result<Side, QueryError> {
    Ok(match op {
        Operand::Const(_) => Side::Const,
        Operand::Proj { var, attr } => {
            let qv = query.vars.get(*var).ok_or(QueryError::UnknownVar(*var))?;
            let idx = schema
                .attr_index(&qv.set, attr)
                .map_err(|_| QueryError::UnknownAttr {
                    var: qv.name.clone(),
                    attr: attr.clone(),
                })?;
            Side::Proj { var: *var, idx }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_nr::{Constraints, Field, Key, SetPath, Ty};

    fn schema() -> Schema {
        Schema::new(
            "S",
            vec![
                Field::new(
                    "Companies",
                    Ty::set_of(vec![
                        Field::new("cid", Ty::Int),
                        Field::new("cname", Ty::Str),
                    ]),
                ),
                Field::new(
                    "Projects",
                    Ty::set_of(vec![
                        Field::new("pname", Ty::Str),
                        Field::new("cid", Ty::Int),
                    ]),
                ),
            ],
        )
        .unwrap()
    }

    fn keyed() -> SelectivityHints {
        SelectivityHints::from_constraints(
            &schema(),
            &Constraints {
                keys: vec![Key::new(SetPath::parse("Companies"), vec!["cid"])],
                fds: vec![],
                fks: vec![],
            },
        )
    }

    #[test]
    fn key_covered_probe_ordered_after_its_binder() {
        let s = schema();
        let mut q = Query::new();
        let c = q.var("c", SetPath::parse("Companies"));
        let p = q.var("p", SetPath::parse("Projects"));
        q.add_eq(Operand::proj(p, "cid"), Operand::proj(c, "cid"));
        let hints = keyed();
        let plan = plan_query(&s, &q, Some(&hints)).unwrap();
        // The exhaustive search discovers that scanning Projects first lets
        // Companies be probed by its declared key — regardless of
        // declaration order.
        assert_eq!(plan.steps[0].var, p);
        assert_eq!(plan.steps[1].var, c);
        assert_eq!(plan.steps[1].probe_attrs, vec![0]);
        assert!(plan.steps[1].key_covered);

        // Reversed declaration: p first, then c probed *by key*.
        let mut q2 = Query::new();
        let p2 = q2.var("p", SetPath::parse("Projects"));
        let c2 = q2.var("c", SetPath::parse("Companies"));
        q2.add_eq(Operand::proj(p2, "cid"), Operand::proj(c2, "cid"));
        let plan2 = plan_query(&s, &q2, Some(&hints)).unwrap();
        assert_eq!(plan2.order().collect::<Vec<_>>(), vec![p2, c2]);
        assert!(plan2.steps[1].key_covered);
        assert_eq!(plan2.steps[1].probe_attrs, vec![0]);
    }

    #[test]
    fn deterministic_and_total() {
        let s = schema();
        let mut q = Query::new();
        q.var("a", SetPath::parse("Companies"));
        q.var("b", SetPath::parse("Projects"));
        q.var("c", SetPath::parse("Projects"));
        let p1 = plan_query(&s, &q, None).unwrap();
        let p2 = plan_query(&s, &q, None).unwrap();
        assert_eq!(p1, p2);
        let mut vars: Vec<usize> = p1.order().collect();
        vars.sort_unstable();
        assert_eq!(vars, vec![0, 1, 2]);
    }

    #[test]
    fn json_shape() {
        let s = schema();
        let mut q = Query::new();
        let c = q.var("c", SetPath::parse("Companies"));
        let p = q.var("p", SetPath::parse("Projects"));
        q.add_eq(Operand::proj(p, "cid"), Operand::proj(c, "cid"));
        let plan = plan_query(&s, &q, Some(&keyed())).unwrap();
        let json = plan.to_json(&s, &q).render();
        assert!(json.contains("\"access\":\"scan\""), "{json}");
        assert!(json.contains("\"access\":\"probe\""), "{json}");
        assert!(json.contains("\"cid\""), "{json}");
    }
}
