//! Key/FD selectivity hints: the constraint-derived facts the static query
//! planner consumes.
//!
//! A [`SelectivityHints`] digests a [`Constraints`] set into per-set-path
//! attribute-index form: declared keys as index sets, plus an [`FdSet`]
//! closure engine over the path's record attributes. The planner
//! ([`crate::plan`]) asks one question of it — [`covers_unique`]: does
//! binding *these* attributes pin down at most one tuple? — which decides
//! both the bound-variable-propagation join order and the `factor = 1`
//! terms of the static chase-step bound in `muse-lint`.
//!
//! [`covers_unique`]: SelectivityHints::covers_unique

use std::collections::HashMap;

use muse_nr::constraints::fdset::{attrs, AttrSet, FdSet};
use muse_nr::{Constraints, Schema, SetPath};

/// Per-path key/FD facts, indexed the same way the evaluator indexes
/// attributes (field position within the element record).
#[derive(Debug, Clone, Default)]
pub struct SelectivityHints {
    per_path: HashMap<SetPath, PathHints>,
}

#[derive(Debug, Clone)]
struct PathHints {
    /// Declared keys, as attribute-index bitsets.
    keys: Vec<AttrSet>,
    /// Closure engine over the path's attributes: every declared key as
    /// `key → all`, plus the declared FDs.
    fds: FdSet,
}

impl SelectivityHints {
    /// Digest `constraints` against `schema`. Constraints naming unknown
    /// paths or attributes are skipped (the lint `MUSE-C` pass reports
    /// those); paths with more than 128 attributes fall outside the
    /// [`FdSet`] engine and get no hints.
    pub fn from_constraints(schema: &Schema, constraints: &Constraints) -> SelectivityHints {
        let mut per_path: HashMap<SetPath, PathHints> = HashMap::new();
        for key in &constraints.keys {
            let Some(ix) = attr_indices(schema, &key.set, &key.attrs) else {
                continue;
            };
            if let Some(h) = hints_for(schema, &mut per_path, &key.set) {
                h.keys.push(ix);
                h.fds.add_key(ix);
            }
        }
        for fd in &constraints.fds {
            let (Some(lhs), Some(rhs)) = (
                attr_indices(schema, &fd.set, &fd.lhs),
                attr_indices(schema, &fd.set, &fd.rhs),
            ) else {
                continue;
            };
            if let Some(h) = hints_for(schema, &mut per_path, &fd.set) {
                h.fds.add(lhs, rhs);
            }
        }
        SelectivityHints { per_path }
    }

    /// Does binding the attributes at `bound` (record field indices) pin
    /// down at most one tuple of `path`? True iff the FD closure of the
    /// bound set covers some *declared* key — with no declared key the
    /// answer is always `false` (sets may hold many all-attribute-equal
    /// nested tuples across occurrences).
    pub fn covers_unique(&self, path: &SetPath, bound: &[usize]) -> bool {
        let Some(h) = self.per_path.get(path) else {
            return false;
        };
        let closure = h.fds.closure(attrs(bound.iter().copied()));
        h.keys.iter().any(|&k| closure | k == closure)
    }

    /// Does `path` carry any declared key at all?
    pub fn has_key(&self, path: &SetPath) -> bool {
        self.per_path.get(path).is_some_and(|h| !h.keys.is_empty())
    }
}

/// The (lazily created) hint slot for `path`; `None` when the path is
/// unknown or too wide for the [`FdSet`] engine.
fn hints_for<'m>(
    schema: &Schema,
    per_path: &'m mut HashMap<SetPath, PathHints>,
    path: &SetPath,
) -> Option<&'m mut PathHints> {
    if !per_path.contains_key(path) {
        let n = schema.attributes(path).ok()?.len();
        if n > 128 {
            return None;
        }
        per_path.insert(
            path.clone(),
            PathHints {
                keys: Vec::new(),
                fds: FdSet::new(n),
            },
        );
    }
    per_path.get_mut(path)
}

/// Resolve attribute labels to record field indices; `None` if any label
/// (or the path itself) is unknown.
fn attr_indices(schema: &Schema, path: &SetPath, labels: &[String]) -> Option<AttrSet> {
    let mut out: AttrSet = 0;
    for label in labels {
        let idx = schema.attr_index(path, label).ok()?;
        if idx >= 128 {
            return None;
        }
        out |= 1u128 << idx;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_nr::{Fd, Field, Key, Ty};

    fn schema() -> Schema {
        Schema::new(
            "S",
            vec![Field::new(
                "Companies",
                Ty::set_of(vec![
                    Field::new("cid", Ty::Int),
                    Field::new("cname", Ty::Str),
                    Field::new("location", Ty::Str),
                ]),
            )],
        )
        .unwrap()
    }

    #[test]
    fn key_and_fd_closure_cover_unique() {
        let s = schema();
        let c = Constraints {
            keys: vec![Key::new(SetPath::parse("Companies"), vec!["cid"])],
            fds: vec![Fd::new(
                SetPath::parse("Companies"),
                vec!["cname"],
                vec!["cid"],
            )],
            fks: vec![],
        };
        let h = SelectivityHints::from_constraints(&s, &c);
        let path = SetPath::parse("Companies");
        assert!(h.has_key(&path));
        assert!(h.covers_unique(&path, &[0])); // cid is the key
        assert!(h.covers_unique(&path, &[1])); // cname → cid via the FD
        assert!(!h.covers_unique(&path, &[2])); // location determines nothing
        assert!(!h.covers_unique(&path, &[]));
    }

    #[test]
    fn no_declared_key_is_never_unique() {
        let s = schema();
        let h = SelectivityHints::from_constraints(&s, &Constraints::none());
        let path = SetPath::parse("Companies");
        assert!(!h.has_key(&path));
        assert!(!h.covers_unique(&path, &[0, 1, 2]));
    }

    #[test]
    fn unknown_paths_and_attrs_are_skipped() {
        let s = schema();
        let c = Constraints {
            keys: vec![
                Key::new(SetPath::parse("Nope"), vec!["x"]),
                Key::new(SetPath::parse("Companies"), vec!["ghost"]),
            ],
            fds: vec![],
            fks: vec![],
        };
        let h = SelectivityHints::from_constraints(&s, &c);
        assert!(!h.has_key(&SetPath::parse("Companies")));
        assert!(!h.has_key(&SetPath::parse("Nope")));
    }
}
