//! Conjunctive queries with equalities and inequalities over NR instances.
//!
//! This is the substrate Muse uses to pull *real* data examples out of the
//! designer's source instance: each probe builds a query `QIe` whose atoms
//! are two (Muse-G) or one (Muse-D) copies of a mapping's `for`-clause, plus
//! the agreement equalities and the disagreement inequalities that make the
//! resulting example differentiating (Sec. III-A and IV-A). The chase engine
//! also compiles mapping `for`-clauses into these queries to enumerate
//! bindings.
//!
//! The evaluator is a backtracking join with greedy connected-variable
//! ordering and lazily built hash indexes per `(set path, attribute)`, which
//! keeps `QIe` retrieval sub-second on the paper-sized (10 MB) instances.

pub mod ast;
pub mod error;
pub mod eval;
pub mod explain;
pub mod hints;
pub mod plan;

pub use ast::{Operand, QVar, Query};
pub use error::QueryError;
pub use eval::{
    evaluate, evaluate_all, evaluate_all_planned_with, evaluate_all_with,
    evaluate_budget_planned_with, evaluate_budget_with, evaluate_deadline, evaluate_deadline_with,
    evaluate_planned_with, greedy_order, Binding,
};
pub use explain::{explain, Explanation};
pub use hints::SelectivityHints;
pub use plan::{plan_query, EvalPlan, PlanStep};
