//! Backtracking evaluation of conjunctive queries with lazy hash indexes.
//!
//! Instrumentation (all behind [`Metrics`], zero-cost when disabled):
//!
//! * `query.evals` — evaluation operations started,
//! * `query.steps` — backtracking search steps,
//! * `query.index_hits` / `query.index_misses` — lazy hash-index cache
//!   probes that found / had to build an index,
//! * `query.timeouts` — evaluations cut short by their deadline,
//! * `query.eval_time` — wall-clock spans per evaluation.

use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

use muse_nr::{Instance, Schema, SetPath, Tuple, Value};
use muse_obs::{faultpoints, Budget, Counter, Metrics, Outcome, TruncationReason};

use crate::ast::{Operand, QVar, Query};
use crate::error::QueryError;
use crate::explain::{Access, Explanation, Step};
use crate::plan::EvalPlan;

/// One result row: a tuple per query variable, in variable order.
pub type Binding = Vec<Tuple>;

/// Evaluate `query` over `inst`, returning at most `limit` bindings (all of
/// them when `limit` is `None`). Bindings are returned in a deterministic
/// order (the ordered containers of [`Instance`] drive iteration).
pub fn evaluate(
    schema: &Schema,
    inst: &Instance,
    query: &Query,
    limit: Option<usize>,
) -> Result<Vec<Binding>, QueryError> {
    evaluate_deadline(schema, inst, query, limit, None).map(|(rows, _)| rows)
}

/// Like [`evaluate`], with an optional wall-clock deadline. Returns the
/// bindings found so far plus a flag telling whether the search was cut
/// short — Muse uses this to fall back to a synthetic example "if a real
/// example was not found after a fixed amount of time" (Sec. VI).
pub fn evaluate_deadline(
    schema: &Schema,
    inst: &Instance,
    query: &Query,
    limit: Option<usize>,
    deadline: Option<Instant>,
) -> Result<(Vec<Binding>, bool), QueryError> {
    evaluate_deadline_with(schema, inst, query, limit, deadline, &Metrics::disabled())
}

/// Like [`evaluate_deadline`], reporting counters and timings through
/// `metrics` (see the module docs for the emitted keys).
pub fn evaluate_deadline_with(
    schema: &Schema,
    inst: &Instance,
    query: &Query,
    limit: Option<usize>,
    deadline: Option<Instant>,
    metrics: &Metrics,
) -> Result<(Vec<Binding>, bool), QueryError> {
    evaluate_planned_with(schema, inst, query, None, limit, deadline, metrics)
}

/// Like [`evaluate_deadline_with`], optionally driven by a static
/// [`EvalPlan`] (see [`crate::plan`]). A plan changes *how* the search
/// runs, never *what* it returns:
///
/// * at every position the search probes a composite hash index on all
///   equality attributes bound at that point (the plan-less path probes a
///   single attribute) — an order-preserving refinement, so limited and
///   deadlined searches return the exact prefix the plan-less search would;
/// * for complete enumerations (no limit, no deadline) the search binds
///   variables in plan order, and emitted rows are restored to the
///   plan-less emission order by rank-sorting before returning.
///
/// A plan that does not fit `query` (wrong arity, not a permutation,
/// children before parents) is ignored.
pub fn evaluate_planned_with(
    schema: &Schema,
    inst: &Instance,
    query: &Query,
    ext_plan: Option<&EvalPlan>,
    limit: Option<usize>,
    deadline: Option<Instant>,
    metrics: &Metrics,
) -> Result<(Vec<Binding>, bool), QueryError> {
    let _span = metrics.timer("query.eval_time").start();
    metrics.incr("query.evals");
    query.validate(schema)?;
    if query.vars.is_empty() {
        // The empty conjunction has exactly one (empty) binding.
        return Ok((vec![Vec::new()], false));
    }
    // Plan order is only safe when the search is exhaustive: a limited or
    // deadlined search must keep the legacy order so its result prefix is
    // byte-identical.
    let use_ext_order = ext_plan.is_some() && limit.is_none() && deadline.is_none();
    let plan = Plan::build_ext(schema, query, ext_plan, use_ext_order)?;
    let reorder = plan.emit_order.clone().map(|emit_order| Reorder {
        emit_order,
        rank_maps: HashMap::new(),
        keys: Vec::new(),
    });
    let mut out = Vec::new();
    let mut search = Search {
        inst,
        plan: &plan,
        query,
        stack: Vec::with_capacity(query.vars.len()),
        index_cache: HashMap::new(),
        out: &mut out,
        limit,
        deadline,
        steps: 0,
        timed_out: false,
        reorder,
        index_hits: metrics.counter("query.index_hits"),
        index_misses: metrics.counter("query.index_misses"),
    };
    search.descend(0);
    let (steps, raw_timed_out) = (search.steps, search.timed_out);
    let reorder = search.reorder.take();
    drop(search);
    metrics.add("query.steps", steps);
    if limit.is_some() {
        // The limited share of the step total: these searches keep the
        // legacy binding order (prefix identity), so only composite probes
        // — not plan order — can shrink them.
        metrics.add("query.steps_limited", steps);
    }
    if let Some(re) = reorder {
        // Restore the legacy emission order: sort rows by their tuples'
        // global enumeration ranks, compared in legacy binding order. Keys
        // are unique (identical key ⇒ identical row), so the order is total.
        let mut paired: Vec<(Vec<u32>, Binding)> = re.keys.into_iter().zip(out).collect();
        paired.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        out = paired.into_iter().map(|(_, row)| row).collect();
    }
    // Consistency guard: a search that already produced its full `limit` of
    // bindings is complete for the caller's purposes, even if the deadline
    // check happened to fire on the same step. (`done()` tests the limit
    // before the clock, so this should be unreachable — keep the invariant
    // explicit rather than implied by check ordering.)
    let limit_reached = limit.is_some_and(|l| out.len() >= l);
    let timed_out = raw_timed_out && !limit_reached;
    if timed_out {
        metrics.incr("query.timeouts");
    }
    Ok((out, timed_out))
}

/// Evaluate with no limit.
pub fn evaluate_all(
    schema: &Schema,
    inst: &Instance,
    query: &Query,
) -> Result<Vec<Binding>, QueryError> {
    evaluate(schema, inst, query, None)
}

/// Budget-governed [`evaluate_all`]: the variant multi-query callers (chase
/// prepare, wizard probes) use so they stop bypassing the deadline path.
/// Honors the budget's deadline and row cap; truncations are recorded under
/// `budget.*` and returned as [`Outcome::Truncated`] with the rows found so
/// far (always a valid prefix of the complete result).
pub fn evaluate_all_with(
    schema: &Schema,
    inst: &Instance,
    query: &Query,
    budget: &Budget,
    metrics: &Metrics,
) -> Result<Outcome<Vec<Binding>>, QueryError> {
    evaluate_budget_with(schema, inst, query, None, budget, metrics)
}

/// Plan-driven [`evaluate_all_with`]: same contract, with the search driven
/// by `plan` when given (see [`evaluate_planned_with`] for the identical-
/// results guarantee).
pub fn evaluate_all_planned_with(
    schema: &Schema,
    inst: &Instance,
    query: &Query,
    plan: Option<&EvalPlan>,
    budget: &Budget,
    metrics: &Metrics,
) -> Result<Outcome<Vec<Binding>>, QueryError> {
    evaluate_budget_planned_with(schema, inst, query, plan, None, budget, metrics)
}

/// Budget-governed evaluation with an optional caller-side row `limit` on
/// top. The caller's limit is *not* a truncation — asking for the first
/// `l` rows and getting them is a complete answer; only the budget's own
/// axes (deadline, `max_rows`) produce [`Outcome::Truncated`].
pub fn evaluate_budget_with(
    schema: &Schema,
    inst: &Instance,
    query: &Query,
    limit: Option<usize>,
    budget: &Budget,
    metrics: &Metrics,
) -> Result<Outcome<Vec<Binding>>, QueryError> {
    evaluate_budget_planned_with(schema, inst, query, None, limit, budget, metrics)
}

/// Plan-driven [`evaluate_budget_with`].
pub fn evaluate_budget_planned_with(
    schema: &Schema,
    inst: &Instance,
    query: &Query,
    plan: Option<&EvalPlan>,
    limit: Option<usize>,
    budget: &Budget,
    metrics: &Metrics,
) -> Result<Outcome<Vec<Binding>>, QueryError> {
    if muse_fault::point(faultpoints::QUERY_EVAL).is_some() {
        // Any injected fault here behaves as instantaneous deadline expiry.
        let reason = TruncationReason::DeadlineExpired;
        reason.record(metrics);
        return Ok(Outcome::Truncated {
            partial: Vec::new(),
            reason,
        });
    }
    let budget_rows = budget
        .max_rows
        .map(|n| usize::try_from(n).unwrap_or(usize::MAX));
    let eff_limit = match (limit, budget_rows) {
        (Some(l), Some(cap)) => Some(l.min(cap)),
        (l, cap) => l.or(cap),
    };
    let (rows, timed_out) = evaluate_planned_with(
        schema,
        inst,
        query,
        plan,
        eff_limit,
        budget.deadline,
        metrics,
    )?;
    if timed_out {
        let reason = TruncationReason::DeadlineExpired;
        reason.record(metrics);
        return Ok(Outcome::Truncated {
            partial: rows,
            reason,
        });
    }
    // The budget's cap (strictly tighter than any caller limit) stopped a
    // search that might have produced more rows.
    let budget_capped =
        budget_rows.is_some_and(|cap| rows.len() >= cap && limit.is_none_or(|l| cap < l));
    if budget_capped {
        let reason = TruncationReason::RowLimit;
        reason.record(metrics);
        return Ok(Outcome::Truncated {
            partial: rows,
            reason,
        });
    }
    Ok(Outcome::Complete(rows))
}

/// The greedy binding order the evaluator uses for `query` — the order in
/// which emitted bindings are lexicographically sorted by per-variable
/// enumeration rank (even under an external [`EvalPlan`], whose reorder pass
/// restores exactly this order). The score is purely structural (predicates,
/// parent placement, declaration order), never instance data, so the order
/// is identical across all instances of the same query — which is what lets
/// the incremental chase reconstruct the evaluator's emission order from a
/// materialized binding set without re-running the search.
pub fn greedy_order(schema: &Schema, query: &Query) -> Result<Vec<usize>, QueryError> {
    Ok(Plan::build(schema, query)?.order)
}

/// A predicate operand compiled to positional form.
#[derive(Debug, Clone)]
enum Op {
    Proj { var: usize, idx: usize },
    Const(Value),
}

impl Op {
    fn compile(schema: &Schema, vars: &[QVar], op: &Operand) -> Result<Op, QueryError> {
        Ok(match op {
            Operand::Const(v) => Op::Const(v.clone()),
            Operand::Proj { var, attr } => {
                let qv = vars.get(*var).ok_or(QueryError::UnknownVar(*var))?;
                let idx =
                    schema
                        .attr_index(&qv.set, attr)
                        .map_err(|_| QueryError::UnknownAttr {
                            var: qv.name.clone(),
                            attr: attr.clone(),
                        })?;
                Op::Proj { var: *var, idx }
            }
        })
    }

    fn max_var(&self) -> Option<usize> {
        match self {
            Op::Proj { var, .. } => Some(*var),
            Op::Const(_) => None,
        }
    }
}

struct Plan {
    /// Variable indices in binding order (parents before children).
    order: Vec<usize>,
    /// var index -> position in `order`.
    pos_of: Vec<usize>,
    /// Predicates (eq, then neq flag) that become checkable at each position.
    checks_at: Vec<Vec<(Op, Op, bool)>>,
    /// For each position (top-level vars only): usable index lookups — the
    /// attribute index on the new variable and the already-bound other side.
    /// Without an external plan at most one entry (the legacy single-probe
    /// choice); with one, every bound equality participates (composite key).
    lookup_at: Vec<Vec<(usize, Op)>>,
    /// Field index of the parent's set-typed field, per variable.
    parent_field_idx: Vec<Option<(usize, usize)>>,
    /// When `order` came from an external plan and differs from the greedy
    /// order: the greedy order, for restoring the legacy emission order.
    emit_order: Option<Vec<usize>>,
}

/// Does `ext` fit `query`: one step per variable, a permutation, parents
/// placed before children?
fn ext_order_fits(query: &Query, ext: &EvalPlan) -> bool {
    let n = query.vars.len();
    if ext.steps.len() != n {
        return false;
    }
    let mut placed = vec![false; n];
    for s in &ext.steps {
        if s.var >= n || placed[s.var] {
            return false;
        }
        if let Some((p, _)) = &query.vars[s.var].parent {
            if !placed[*p] {
                return false;
            }
        }
        placed[s.var] = true;
    }
    true
}

impl Plan {
    fn build(schema: &Schema, query: &Query) -> Result<Plan, QueryError> {
        Plan::build_ext(schema, query, None, false)
    }

    /// Build the runtime plan. `ext` (when present) switches every position
    /// to composite probing; `use_ext_order` additionally takes the binding
    /// order from it (recording the greedy order in `emit_order` when the
    /// two differ, so the caller can restore legacy emission order).
    fn build_ext(
        schema: &Schema,
        query: &Query,
        ext: Option<&EvalPlan>,
        use_ext_order: bool,
    ) -> Result<Plan, QueryError> {
        let n = query.vars.len();
        let eqs: Vec<(Op, Op)> = query
            .eqs
            .iter()
            .map(|(a, b)| {
                Ok((
                    Op::compile(schema, &query.vars, a)?,
                    Op::compile(schema, &query.vars, b)?,
                ))
            })
            .collect::<Result<_, QueryError>>()?;
        let neqs: Vec<(Op, Op)> = query
            .neqs
            .iter()
            .map(|(a, b)| {
                Ok((
                    Op::compile(schema, &query.vars, a)?,
                    Op::compile(schema, &query.vars, b)?,
                ))
            })
            .collect::<Result<_, QueryError>>()?;

        // Greedy ordering: repeatedly pick the eligible variable (parent
        // already placed) with the best score: constants and joins with
        // already-placed variables make a variable cheap to bind.
        let mut placed = vec![false; n];
        let mut order = Vec::with_capacity(n);
        while order.len() < n {
            let mut best: Option<(i64, usize)> = None;
            for v in 0..n {
                if placed[v] {
                    continue;
                }
                if let Some((p, _)) = &query.vars[v].parent {
                    if !placed[*p] {
                        continue;
                    }
                }
                let mut score: i64 = 0;
                for (a, b) in &eqs {
                    score += connectivity_score(v, &placed, a, b);
                }
                if query.vars[v].parent.is_some() {
                    score += 3; // bound to a single parent set: very cheap
                }
                // Prefer earlier declaration on ties (deterministic plans).
                let rank = (score, -(v as i64));
                if best.is_none_or(|(bs, bv)| rank > (bs, -(bv as i64))) {
                    best = Some((score, v));
                }
            }
            let (_, v) = best.expect("parents precede children (validated)");
            placed[v] = true;
            order.push(v);
        }

        // Swap in the external order for exhaustive searches; remember the
        // greedy order so emission order can be restored.
        let mut emit_order = None;
        if use_ext_order {
            if let Some(ext) = ext {
                if ext_order_fits(query, ext) {
                    let ext_order: Vec<usize> = ext.order().collect();
                    if ext_order != order {
                        emit_order = Some(std::mem::replace(&mut order, ext_order));
                    }
                }
            }
        }

        let mut pos_of = vec![0usize; n];
        for (pos, &v) in order.iter().enumerate() {
            pos_of[v] = pos;
        }

        // Assign each predicate to the earliest position where it is fully
        // bound.
        let mut checks_at: Vec<Vec<(Op, Op, bool)>> = (0..n).map(|_| Vec::new()).collect();
        let ready_pos = |a: &Op, b: &Op| -> usize {
            let pa = a.max_var().map_or(0, |v| pos_of[v]);
            let pb = b.max_var().map_or(0, |v| pos_of[v]);
            pa.max(pb)
        };
        for (a, b) in &eqs {
            let p = ready_pos(a, b);
            checks_at[p].push((a.clone(), b.clone(), false));
        }
        for (a, b) in &neqs {
            let p = ready_pos(a, b);
            checks_at[p].push((a.clone(), b.clone(), true));
        }

        // Index-lookup opportunities: for a top-level variable at position p,
        // equalities `newvar.attr = other` where `other` is bound before p.
        // The legacy path keeps exactly the first such equality; with an
        // external plan, all of them form one composite probe key.
        let mut lookup_at: Vec<Vec<(usize, Op)>> = (0..n).map(|_| Vec::new()).collect();
        for (pos, &v) in order.iter().enumerate() {
            if query.vars[v].parent.is_some() {
                continue;
            }
            if ext.is_some() {
                for (a, b, is_neq) in &checks_at[pos] {
                    if *is_neq {
                        continue;
                    }
                    for (this, other) in [(a, b), (b, a)] {
                        if let Op::Proj { var, idx } = this {
                            if *var == v && other.max_var().is_none_or(|o| pos_of[o] < pos) {
                                lookup_at[pos].push((*idx, other.clone()));
                            }
                        }
                    }
                }
            } else {
                let mut chosen: Option<(usize, Op)> = None;
                for (a, b, is_neq) in &checks_at[pos] {
                    if *is_neq {
                        continue;
                    }
                    for (this, other) in [(a, b), (b, a)] {
                        if let Op::Proj { var, idx } = this {
                            if *var == v && other.max_var().is_none_or(|o| pos_of[o] < pos) {
                                chosen = Some((*idx, other.clone()));
                            }
                        }
                    }
                    if chosen.is_some() {
                        break;
                    }
                }
                lookup_at[pos].extend(chosen);
            }
        }

        // Resolve parent field indices.
        let mut parent_field_idx = vec![None; n];
        for (v, qv) in query.vars.iter().enumerate() {
            if let Some((p, field)) = &qv.parent {
                let parent_rcd = schema
                    .element_record(&query.vars[*p].set)
                    .map_err(|_| QueryError::UnknownSet(query.vars[*p].set.to_string()))?;
                let idx =
                    parent_rcd
                        .field_index(field)
                        .ok_or_else(|| QueryError::BadParentField {
                            var: qv.name.clone(),
                            field: field.clone(),
                        })?;
                parent_field_idx[v] = Some((*p, idx));
            }
        }

        Ok(Plan {
            order,
            pos_of,
            checks_at,
            lookup_at,
            parent_field_idx,
            emit_order,
        })
    }
}

/// Build the plan and summarize it for [`crate::explain::explain`].
pub(crate) fn plan_summary(schema: &Schema, query: &Query) -> Result<Explanation, QueryError> {
    let plan = Plan::build(schema, query)?;
    let mut steps = Vec::with_capacity(plan.order.len());
    for (pos, &v) in plan.order.iter().enumerate() {
        let qv = &query.vars[v];
        let access = if let Some((pvar, _)) = plan.parent_field_idx[v] {
            Access::Parent {
                of: query.vars[pvar].name.clone(),
                field: qv
                    .parent
                    .as_ref()
                    .expect("child var has a parent")
                    .1
                    .clone(),
            }
        } else if let Some((attr_idx, _)) = plan.lookup_at[pos].first() {
            let rcd = schema
                .element_record(&qv.set)
                .map_err(|_| QueryError::UnknownSet(qv.set.to_string()))?;
            let label = rcd
                .rcd_fields()
                .and_then(|fs| fs.get(*attr_idx))
                .map(|f| f.label.clone())
                .unwrap_or_default();
            Access::IndexLookup { attr: label }
        } else {
            Access::FullScan
        };
        steps.push(Step {
            var: qv.name.clone(),
            set: qv.set.to_string(),
            access,
            checks: plan.checks_at[pos].len(),
        });
    }
    Ok(Explanation { steps })
}

fn connectivity_score(v: usize, placed: &[bool], a: &Op, b: &Op) -> i64 {
    let involves = |op: &Op| op.max_var() == Some(v);
    let other_bound = |op: &Op| match op.max_var() {
        None => true,
        Some(o) => placed[o],
    };
    if involves(a) && other_bound(b) || involves(b) && other_bound(a) {
        2
    } else {
        0
    }
}

/// Match lists are shared behind an `Rc`: a probe hands out one pointer
/// clone instead of copying the whole `Vec<&Tuple>` per lookup. The index
/// key is the probed attribute list — a singleton on the legacy path, the
/// full composite probe key under an external plan.
type AttrIndex<'a> = HashMap<Vec<Value>, Rc<Vec<&'a Tuple>>>;

/// Rank bookkeeping for restoring the legacy emission order after a
/// plan-ordered exhaustive search (see [`evaluate_planned_with`]).
struct Reorder {
    /// The greedy (legacy) binding order whose emission order we restore.
    emit_order: Vec<usize>,
    /// Per set path: tuple address → global `tuples_of_path` enumeration
    /// rank. Addresses are stable for the duration of one evaluation, and
    /// every candidate a search binds (full scan, index bucket, parent-set
    /// iteration) is a tuple of its variable's path, so each bound tuple
    /// has exactly one rank.
    rank_maps: HashMap<SetPath, HashMap<usize, u32>>,
    /// One key per emitted row: ranks in legacy binding order.
    keys: Vec<Vec<u32>>,
}

impl Reorder {
    fn push_key(&mut self, inst: &Instance, query: &Query, pos_of: &[usize], stack: &[&Tuple]) {
        let mut key = Vec::with_capacity(self.emit_order.len());
        for &v in &self.emit_order {
            let t = stack[pos_of[v]];
            let path = &query.vars[v].set;
            let map = self.rank_maps.entry(path.clone()).or_insert_with(|| {
                inst.tuples_of_path(path)
                    .enumerate()
                    .map(|(i, (_, t))| (std::ptr::from_ref(t) as usize, i as u32))
                    .collect()
            });
            key.push(
                map.get(&(std::ptr::from_ref(t) as usize))
                    .copied()
                    .unwrap_or(u32::MAX),
            );
        }
        self.keys.push(key);
    }
}

struct Search<'a, 'q, 'o> {
    inst: &'a Instance,
    plan: &'q Plan,
    query: &'q Query,
    /// Bound tuples, indexed by *variable index* (entries for unbound
    /// variables are placeholders until their position is reached).
    stack: Vec<&'a Tuple>,
    index_cache: HashMap<(SetPath, Vec<usize>), AttrIndex<'a>>,
    out: &'o mut Vec<Binding>,
    limit: Option<usize>,
    deadline: Option<Instant>,
    steps: u64,
    timed_out: bool,
    reorder: Option<Reorder>,
    index_hits: Counter,
    index_misses: Counter,
}

impl<'a, 'q, 'o> Search<'a, 'q, 'o> {
    fn done(&mut self) -> bool {
        if self.timed_out {
            return true;
        }
        if self.limit.is_some_and(|l| self.out.len() >= l) {
            return true;
        }
        // Check the deadline every 1024 search steps; a per-step syscall
        // would dominate the join itself.
        self.steps = self.steps.wrapping_add(1);
        if self.steps.is_multiple_of(1024) {
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.timed_out = true;
                    return true;
                }
            }
        }
        false
    }

    fn eval_op(&self, op: &Op) -> Value {
        match op {
            Op::Const(v) => v.clone(),
            Op::Proj { var, idx } => {
                let pos = self.plan.pos_of[*var];
                self.stack[pos].get(*idx).cloned().expect("validated arity")
            }
        }
    }

    fn checks_pass(&self, pos: usize) -> bool {
        self.plan.checks_at[pos].iter().all(|(a, b, is_neq)| {
            let va = self.eval_op(a);
            let vb = self.eval_op(b);
            if *is_neq {
                va != vb
            } else {
                va == vb
            }
        })
    }

    fn descend(&mut self, pos: usize) {
        if self.done() {
            return;
        }
        if pos == self.plan.order.len() {
            // Emit in *variable* order, not binding order.
            let mut row: Vec<Tuple> = vec![Vec::new(); self.query.vars.len()];
            for (p, &v) in self.plan.order.iter().enumerate() {
                row[v] = self.stack[p].clone();
            }
            let (inst, query, plan, stack) = (self.inst, self.query, self.plan, &self.stack);
            if let Some(re) = self.reorder.as_mut() {
                re.push_key(inst, query, &plan.pos_of, stack);
            }
            self.out.push(row);
            return;
        }
        let v = self.plan.order[pos];
        // The instance and query outlive `self`; iterating them through
        // local copies of the references keeps `&mut self` free for
        // `try_tuple`, so none of the per-binding paths below has to
        // collect or clone its candidate tuples.
        let inst = self.inst;
        let query = self.query;
        let qv = &query.vars[v];

        if let Some((pvar, fidx)) = self.plan.parent_field_idx[v] {
            // Child variable: tuples of the parent's referenced set.
            let ppos = self.plan.pos_of[pvar];
            let parent_tuple = self.stack[ppos];
            if let Some(Value::Set(sid)) = parent_tuple.get(fidx) {
                for t in inst.tuples(*sid) {
                    self.try_tuple(pos, t);
                    if self.done() {
                        return;
                    }
                }
            }
            return;
        }

        let lookups = &self.plan.lookup_at[pos];
        if !lookups.is_empty() {
            // Hash-index lookup on (set path, probed attribute list).
            let needle: Vec<Value> = lookups
                .iter()
                .map(|(_, other)| self.eval_op(other))
                .collect();
            let attrs: Vec<usize> = lookups.iter().map(|(idx, _)| *idx).collect();
            let key = (qv.set.clone(), attrs);
            if self.index_cache.contains_key(&key) {
                self.index_hits.incr();
            } else {
                self.index_misses.incr();
                let mut index: HashMap<Vec<Value>, Vec<&'a Tuple>> = HashMap::new();
                for (_, t) in inst.tuples_of_path(&qv.set) {
                    let vals: Option<Vec<Value>> =
                        key.1.iter().map(|&i| t.get(i).cloned()).collect();
                    if let Some(vals) = vals {
                        index.entry(vals).or_default().push(t);
                    }
                }
                self.index_cache.insert(
                    key.clone(),
                    index.into_iter().map(|(k, ts)| (k, Rc::new(ts))).collect(),
                );
            }
            let matches: Option<Rc<Vec<&'a Tuple>>> = self
                .index_cache
                .get(&key)
                .and_then(|ix| ix.get(&needle))
                .cloned();
            if let Some(matches) = matches {
                for &t in matches.iter() {
                    self.try_tuple(pos, t);
                    if self.done() {
                        return;
                    }
                }
            }
            return;
        }

        // Full scan over every occurrence of the set path.
        for (_, t) in inst.tuples_of_path(&qv.set) {
            self.try_tuple(pos, t);
            if self.done() {
                return;
            }
        }
    }

    fn try_tuple(&mut self, pos: usize, t: &'a Tuple) {
        self.stack.push(t);
        if self.checks_pass(pos) {
            self.descend(pos + 1);
        }
        self.stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Operand;
    use muse_nr::{Field, InstanceBuilder, Ty};

    fn compdb() -> Schema {
        Schema::new(
            "CompDB",
            vec![
                Field::new(
                    "Companies",
                    Ty::set_of(vec![
                        Field::new("cid", Ty::Int),
                        Field::new("cname", Ty::Str),
                        Field::new("location", Ty::Str),
                    ]),
                ),
                Field::new(
                    "Projects",
                    Ty::set_of(vec![
                        Field::new("pname", Ty::Str),
                        Field::new("cid", Ty::Int),
                        Field::new("manager", Ty::Str),
                    ]),
                ),
                Field::new(
                    "Employees",
                    Ty::set_of(vec![
                        Field::new("eid", Ty::Str),
                        Field::new("ename", Ty::Str),
                    ]),
                ),
            ],
        )
        .unwrap()
    }

    fn fig2(schema: &Schema) -> Instance {
        let mut b = InstanceBuilder::new(schema);
        b.push_top(
            "Companies",
            vec![Value::int(111), Value::str("IBM"), Value::str("Almaden")],
        );
        b.push_top(
            "Companies",
            vec![Value::int(112), Value::str("SBC"), Value::str("NY")],
        );
        b.push_top(
            "Projects",
            vec![Value::str("DBSearch"), Value::int(111), Value::str("e14")],
        );
        b.push_top(
            "Projects",
            vec![Value::str("WebSearch"), Value::int(111), Value::str("e15")],
        );
        b.push_top("Employees", vec![Value::str("e14"), Value::str("Smith")]);
        b.push_top("Employees", vec![Value::str("e15"), Value::str("Anna")]);
        b.push_top("Employees", vec![Value::str("e16"), Value::str("Brown")]);
        b.finish().unwrap()
    }

    #[test]
    fn single_atom_scan() {
        let s = compdb();
        let i = fig2(&s);
        let mut q = Query::new();
        q.var("c", SetPath::parse("Companies"));
        let rows = evaluate_all(&s, &i, &q).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn join_companies_projects_employees() {
        let s = compdb();
        let i = fig2(&s);
        let mut q = Query::new();
        let c = q.var("c", SetPath::parse("Companies"));
        let p = q.var("p", SetPath::parse("Projects"));
        let e = q.var("e", SetPath::parse("Employees"));
        q.add_eq(Operand::proj(p, "cid"), Operand::proj(c, "cid"));
        q.add_eq(Operand::proj(e, "eid"), Operand::proj(p, "manager"));
        let rows = evaluate_all(&s, &i, &q).unwrap();
        // Both projects belong to IBM; managers e14 and e15.
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.len(), 3);
            assert_eq!(row[c][1], Value::str("IBM"));
        }
    }

    #[test]
    fn constants_filter() {
        let s = compdb();
        let i = fig2(&s);
        let mut q = Query::new();
        let c = q.var("c", SetPath::parse("Companies"));
        q.add_eq(Operand::proj(c, "cname"), Operand::Const(Value::str("SBC")));
        let rows = evaluate_all(&s, &i, &q).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0][0], Value::int(112));
    }

    #[test]
    fn inequalities() {
        let s = compdb();
        let i = fig2(&s);
        // Pairs of distinct companies.
        let mut q = Query::new();
        let c1 = q.var("c1", SetPath::parse("Companies"));
        let c2 = q.var("c2", SetPath::parse("Companies"));
        q.add_neq(Operand::proj(c1, "cid"), Operand::proj(c2, "cid"));
        let rows = evaluate_all(&s, &i, &q).unwrap();
        assert_eq!(rows.len(), 2); // (111,112) and (112,111)
    }

    #[test]
    fn limit_stops_early() {
        let s = compdb();
        let i = fig2(&s);
        let mut q = Query::new();
        q.var("e", SetPath::parse("Employees"));
        let rows = evaluate(&s, &i, &q, Some(2)).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn empty_result_when_unsatisfiable() {
        let s = compdb();
        let i = fig2(&s);
        let mut q = Query::new();
        let c = q.var("c", SetPath::parse("Companies"));
        q.add_eq(
            Operand::proj(c, "cname"),
            Operand::Const(Value::str("Acme")),
        );
        assert!(evaluate_all(&s, &i, &q).unwrap().is_empty());
    }

    #[test]
    fn empty_query_has_one_binding() {
        let s = compdb();
        let i = fig2(&s);
        let q = Query::new();
        assert_eq!(evaluate_all(&s, &i, &q).unwrap(), vec![Vec::<Tuple>::new()]);
    }

    #[test]
    fn nested_child_variables() {
        let schema = Schema::new(
            "OrgDB",
            vec![Field::new(
                "Orgs",
                Ty::set_of(vec![
                    Field::new("oname", Ty::Str),
                    Field::new("Projects", Ty::set_of(vec![Field::new("pname", Ty::Str)])),
                ]),
            )],
        )
        .unwrap();
        let mut b = InstanceBuilder::new(&schema);
        let pi = b.group("Orgs.Projects", vec![Value::str("IBM")]);
        b.push(pi, vec![Value::str("DB")]);
        b.push(pi, vec![Value::str("Web")]);
        let ps = b.group("Orgs.Projects", vec![Value::str("SBC")]);
        b.push(ps, vec![Value::str("WiFi")]);
        b.push_top("Orgs", vec![Value::str("IBM"), Value::Set(pi)]);
        b.push_top("Orgs", vec![Value::str("SBC"), Value::Set(ps)]);
        let inst = b.finish().unwrap();

        let mut q = Query::new();
        let o = q.var("o", SetPath::parse("Orgs"));
        let p = q.child_var("p", o, "Projects");
        q.add_eq(Operand::proj(o, "oname"), Operand::Const(Value::str("IBM")));
        let rows = evaluate_all(&schema, &inst, &q).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r[o][0], Value::str("IBM"));
            assert!(r[p][0] == Value::str("DB") || r[p][0] == Value::str("Web"));
        }
    }

    #[test]
    fn self_join_same_variable_order_is_deterministic() {
        let s = compdb();
        let i = fig2(&s);
        let mut q = Query::new();
        let c1 = q.var("c1", SetPath::parse("Companies"));
        let c2 = q.var("c2", SetPath::parse("Companies"));
        q.add_eq(Operand::proj(c1, "cname"), Operand::proj(c2, "cname"));
        let a = evaluate_all(&s, &i, &q).unwrap();
        let b = evaluate_all(&s, &i, &q).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2); // each company matches itself
    }

    #[test]
    fn index_lookup_used_for_large_joins() {
        // A join over a larger instance; correctness is what we assert, the
        // lazy index is what makes it fast.
        let s = compdb();
        let mut b = InstanceBuilder::new(&s);
        for i in 0..500 {
            b.push_top(
                "Companies",
                vec![Value::int(i), Value::str(format!("c{i}")), Value::str("X")],
            );
            b.push_top(
                "Projects",
                vec![
                    Value::str(format!("p{i}")),
                    Value::int(i),
                    Value::str(format!("e{i}")),
                ],
            );
            b.push_top(
                "Employees",
                vec![Value::str(format!("e{i}")), Value::str(format!("n{i}"))],
            );
        }
        let inst = b.finish().unwrap();
        let mut q = Query::new();
        let c = q.var("c", SetPath::parse("Companies"));
        let p = q.var("p", SetPath::parse("Projects"));
        let e = q.var("e", SetPath::parse("Employees"));
        q.add_eq(Operand::proj(p, "cid"), Operand::proj(c, "cid"));
        q.add_eq(Operand::proj(e, "eid"), Operand::proj(p, "manager"));
        let rows = evaluate_all(&s, &inst, &q).unwrap();
        assert_eq!(rows.len(), 500);
    }

    #[test]
    fn planned_eval_matches_reference_byte_for_byte() {
        use crate::plan::{EvalPlan, PlanStep};

        let s = compdb();
        let mut b = InstanceBuilder::new(&s);
        for i in 0..40 {
            b.push_top(
                "Companies",
                vec![
                    Value::int(i % 7),
                    Value::str(format!("c{}", i % 5)),
                    Value::str("X"),
                ],
            );
            b.push_top(
                "Projects",
                vec![
                    Value::str(format!("p{}", i % 3)),
                    Value::int(i % 7),
                    Value::str(format!("e{}", i % 4)),
                ],
            );
            b.push_top(
                "Employees",
                vec![Value::str(format!("e{}", i % 4)), Value::str("n")],
            );
        }
        let inst = b.finish().unwrap();
        let mut q = Query::new();
        let c = q.var("c", SetPath::parse("Companies"));
        let p = q.var("p", SetPath::parse("Projects"));
        let e = q.var("e", SetPath::parse("Employees"));
        q.add_eq(Operand::proj(p, "cid"), Operand::proj(c, "cid"));
        q.add_eq(Operand::proj(e, "eid"), Operand::proj(p, "manager"));
        q.add_neq(Operand::proj(c, "cname"), Operand::Const(Value::str("c0")));

        let reference = evaluate_all(&s, &inst, &q).unwrap();
        // Every parent-respecting permutation must reproduce the reference
        // rows in the reference order.
        for order in [[c, p, e], [e, p, c], [p, c, e], [p, e, c], [c, e, p]] {
            let plan = EvalPlan {
                steps: order
                    .iter()
                    .map(|&v| PlanStep {
                        var: v,
                        probe_attrs: vec![],
                        key_covered: false,
                    })
                    .collect(),
            };
            let m = Metrics::disabled();
            let (rows, timed_out) =
                evaluate_planned_with(&s, &inst, &q, Some(&plan), None, None, &m).unwrap();
            assert!(!timed_out);
            assert_eq!(rows, reference, "order {order:?} diverged");
        }
        // Limited searches keep the legacy order: identical prefixes.
        let plan = crate::plan::plan_query(&s, &q, None).unwrap();
        for limit in [1, 3, 7] {
            let m = Metrics::disabled();
            let (rows, _) =
                evaluate_planned_with(&s, &inst, &q, Some(&plan), Some(limit), None, &m).unwrap();
            assert_eq!(rows.as_slice(), &reference[..limit.min(reference.len())]);
        }
    }

    #[test]
    fn composite_probes_cut_steps() {
        // Two equalities against the new variable: the legacy path probes
        // one attribute and filters the rest per candidate; the planned
        // path probes both at once. Same rows, strictly fewer steps.
        let s = compdb();
        let mut b = InstanceBuilder::new(&s);
        for i in 0..300 {
            b.push_top(
                "Companies",
                vec![
                    Value::int(i % 2),
                    Value::str(format!("c{i}")),
                    Value::str("X"),
                ],
            );
            b.push_top(
                "Projects",
                vec![
                    Value::str("p"),
                    Value::int(i % 2),
                    Value::str(format!("c{i}")),
                ],
            );
        }
        let inst = b.finish().unwrap();
        let mut q = Query::new();
        let c = q.var("c", SetPath::parse("Companies"));
        let p = q.var("p", SetPath::parse("Projects"));
        q.add_eq(Operand::proj(p, "cid"), Operand::proj(c, "cid"));
        q.add_eq(Operand::proj(p, "manager"), Operand::proj(c, "cname"));

        let m_ref = Metrics::enabled();
        let reference = evaluate_deadline_with(&s, &inst, &q, None, None, &m_ref)
            .unwrap()
            .0;
        let plan = crate::plan::plan_query(&s, &q, None).unwrap();
        let m_plan = Metrics::enabled();
        let rows = evaluate_planned_with(&s, &inst, &q, Some(&plan), None, None, &m_plan)
            .unwrap()
            .0;
        assert_eq!(rows, reference);
        let (ref_steps, plan_steps) = (
            m_ref.snapshot().counter("query.steps"),
            m_plan.snapshot().counter("query.steps"),
        );
        assert!(
            plan_steps * 10 < ref_steps,
            "composite probe did not pay off: {plan_steps} vs {ref_steps}"
        );
    }

    #[test]
    fn budget_row_cap_truncates() {
        let s = compdb();
        let i = fig2(&s);
        let mut q = Query::new();
        q.var("e", SetPath::parse("Employees"));
        let m = Metrics::enabled();
        let budget = Budget::unlimited().with_max_rows(2);
        let out = evaluate_all_with(&s, &i, &q, &budget, &m).unwrap();
        assert_eq!(out.reason(), Some(TruncationReason::RowLimit));
        assert_eq!(out.value().len(), 2);
        let snap = m.snapshot();
        assert_eq!(snap.counter("budget.truncations"), 1);
        assert_eq!(snap.counter("budget.row_limit_hits"), 1);
    }

    #[test]
    fn caller_limit_is_not_a_truncation() {
        let s = compdb();
        let i = fig2(&s);
        let mut q = Query::new();
        q.var("e", SetPath::parse("Employees"));
        let m = Metrics::disabled();
        // Caller asks for 2 rows under a looser (or equal) budget: complete.
        for budget in [
            Budget::unlimited(),
            Budget::unlimited().with_max_rows(2),
            Budget::unlimited().with_max_rows(10),
        ] {
            let out = evaluate_budget_with(&s, &i, &q, Some(2), &budget, &m).unwrap();
            assert!(out.is_complete(), "budget {budget:?}");
            assert_eq!(out.value().len(), 2);
        }
        // A tighter budget than the caller's ask is a truncation.
        let tight = Budget::unlimited().with_max_rows(1);
        let out = evaluate_budget_with(&s, &i, &q, Some(2), &tight, &m).unwrap();
        assert_eq!(out.reason(), Some(TruncationReason::RowLimit));
        assert_eq!(out.value().len(), 1);
        // An exhaustive result below the cap is complete.
        let out =
            evaluate_all_with(&s, &i, &q, &Budget::unlimited().with_max_rows(50), &m).unwrap();
        assert!(out.is_complete());
        assert_eq!(out.value().len(), 3);
    }

    #[test]
    fn budget_expired_deadline_truncates() {
        let s = compdb();
        let i = fig2(&s);
        let mut q = Query::new();
        let c1 = q.var("c1", SetPath::parse("Companies"));
        let c2 = q.var("c2", SetPath::parse("Companies"));
        q.add_neq(Operand::proj(c1, "cid"), Operand::proj(c2, "cid"));
        let m = Metrics::enabled();
        let budget =
            Budget::unlimited().with_deadline(Instant::now() - std::time::Duration::from_secs(1));
        let out = evaluate_all_with(&s, &i, &q, &budget, &m).unwrap();
        // The deadline check fires every 1024 steps; this tiny search ends
        // first, so completion is legal — what matters is that an actually
        // cut-short search reports DeadlineExpired. Force it with a search
        // big enough to cross the check boundary.
        if !out.is_complete() {
            assert_eq!(out.reason(), Some(TruncationReason::DeadlineExpired));
        }
        let mut b = InstanceBuilder::new(&s);
        for i in 0..2000 {
            b.push_top(
                "Employees",
                vec![Value::str(format!("e{i}")), Value::str("x")],
            );
        }
        let big = b.finish().unwrap();
        let mut q2 = Query::new();
        q2.var("a", SetPath::parse("Employees"));
        q2.var("b", SetPath::parse("Employees"));
        let out = evaluate_all_with(&s, &big, &q2, &budget, &m).unwrap();
        assert_eq!(out.reason(), Some(TruncationReason::DeadlineExpired));
        assert!(m.snapshot().counter("budget.deadline_hits") >= 1);
    }
}
