//! Differential property test: the planned, index-accelerated [`evaluate`]
//! must agree with a trivially-correct reference evaluator — a naive nested
//! loop over the full cross product that checks every predicate only on
//! complete rows. Instances and queries are generated from seeded SplitMix64
//! streams, so every failure is reproducible from its seed.

use muse_nr::{Field, Instance, InstanceBuilder, Schema, SetPath, Tuple, Ty, Value};
use muse_obs::{Metrics, Rng};
use muse_query::{evaluate, evaluate_all, evaluate_deadline_with, Binding, Operand, Query};

/// Small alphabets force collisions, so joins actually match.
const TAGS: [&str; 3] = ["a", "b", "c"];
const KEYS: i64 = 4;

/// Roots `Items` (with a nested `Subs` set) and `Pairs`; every attribute the
/// queries touch is atomic, as `Query::validate` requires.
fn ref_schema() -> Schema {
    Schema::new(
        "RefDB",
        vec![
            Field::new(
                "Items",
                Ty::set_of(vec![
                    Field::new("k", Ty::Int),
                    Field::new("tag", Ty::Str),
                    Field::new(
                        "Subs",
                        Ty::set_of(vec![Field::new("sk", Ty::Int), Field::new("stag", Ty::Str)]),
                    ),
                ]),
            ),
            Field::new(
                "Pairs",
                Ty::set_of(vec![Field::new("k", Ty::Int), Field::new("tag", Ty::Str)]),
            ),
        ],
    )
    .unwrap()
}

fn random_instance(schema: &Schema, rng: &mut Rng) -> Instance {
    let mut b = InstanceBuilder::new(schema);
    // 0..=4 items; group keys deliberately collide so some parents share a
    // `Subs` set (a legal instance shape the evaluator must handle).
    for _ in 0..rng.index(5) {
        let sid = b.group("Items.Subs", vec![Value::int(rng.range(0, 3))]);
        for _ in 0..rng.index(4) {
            b.push(
                sid,
                vec![Value::int(rng.range(0, KEYS)), Value::str(*rng.pick(&TAGS))],
            );
        }
        b.push_top(
            "Items",
            vec![
                Value::int(rng.range(0, KEYS)),
                Value::str(*rng.pick(&TAGS)),
                Value::Set(sid),
            ],
        );
    }
    for _ in 0..rng.index(6) {
        b.push_top(
            "Pairs",
            vec![Value::int(rng.range(0, KEYS)), Value::str(*rng.pick(&TAGS))],
        );
    }
    b.finish().unwrap()
}

/// Which attribute of a variable's set carries each predicate type.
#[derive(Clone, Copy)]
enum VarKind {
    Items,
    Pairs,
    Sub,
}

impl VarKind {
    fn attr(self, int: bool) -> &'static str {
        match (self, int) {
            (VarKind::Items | VarKind::Pairs, true) => "k",
            (VarKind::Items | VarKind::Pairs, false) => "tag",
            (VarKind::Sub, true) => "sk",
            (VarKind::Sub, false) => "stag",
        }
    }
}

/// A random conjunctive query: 1–3 top-level variables over `Items`/`Pairs`,
/// sometimes a child variable over an item's `Subs`, and random equality /
/// inequality predicates that are type-consistent (int with int, str with
/// str) so they are satisfiable often enough to be interesting.
fn random_query(rng: &mut Rng) -> Query {
    let mut q = Query::new();
    let mut kinds = Vec::new();
    for v in 0..1 + rng.index(3) {
        if rng.chance(0.5) {
            q.var(format!("v{v}"), SetPath::parse("Items"));
            kinds.push(VarKind::Items);
        } else {
            q.var(format!("v{v}"), SetPath::parse("Pairs"));
            kinds.push(VarKind::Pairs);
        }
    }
    let items: Vec<usize> = kinds
        .iter()
        .enumerate()
        .filter(|(_, k)| matches!(k, VarKind::Items))
        .map(|(v, _)| v)
        .collect();
    if !items.is_empty() && rng.chance(0.6) {
        let parent = *rng.pick(&items);
        q.child_var("s", parent, "Subs");
        kinds.push(VarKind::Sub);
    }

    let operand = |rng: &mut Rng, int: bool, kinds: &[VarKind]| -> Operand {
        if rng.chance(0.7) {
            let v = rng.index(kinds.len());
            Operand::proj(v, kinds[v].attr(int))
        } else if int {
            Operand::Const(Value::int(rng.range(0, KEYS)))
        } else {
            Operand::Const(Value::str(*rng.pick(&TAGS)))
        }
    };
    for _ in 0..rng.index(3) {
        let int = rng.chance(0.5);
        let (a, b) = (operand(rng, int, &kinds), operand(rng, int, &kinds));
        q.add_eq(a, b);
    }
    for _ in 0..rng.index(2) {
        let int = rng.chance(0.5);
        let (a, b) = (operand(rng, int, &kinds), operand(rng, int, &kinds));
        q.add_neq(a, b);
    }
    q
}

/// The reference: enumerate the full cross product in declaration order
/// (parents precede children, so the parent tuple is always on the stack
/// when a child variable is reached) and keep the rows where every equality
/// holds and every inequality fails to hold. No plan, no indexes, no early
/// predicate placement — nothing to get wrong.
fn naive_eval(schema: &Schema, inst: &Instance, q: &Query) -> Vec<Binding> {
    let parent_field: Vec<Option<(usize, usize)>> = q
        .vars
        .iter()
        .map(|qv| {
            qv.parent.as_ref().map(|(p, field)| {
                let rcd = schema.element_record(&q.vars[*p].set).unwrap();
                (*p, rcd.field_index(field).unwrap())
            })
        })
        .collect();
    let value_of = |row: &[Tuple], op: &Operand| -> Value {
        match op {
            Operand::Const(v) => v.clone(),
            Operand::Proj { var, attr } => {
                let idx = schema.attr_index(&q.vars[*var].set, attr).unwrap();
                row[*var][idx].clone()
            }
        }
    };
    let keep = |row: &[Tuple]| {
        q.eqs
            .iter()
            .all(|(a, b)| value_of(row, a) == value_of(row, b))
            && q.neqs
                .iter()
                .all(|(a, b)| value_of(row, a) != value_of(row, b))
    };

    let mut out = Vec::new();
    let mut stack: Vec<Tuple> = Vec::new();
    descend(inst, q, &parent_field, &keep, &mut stack, &mut out);
    out
}

fn descend(
    inst: &Instance,
    q: &Query,
    parent_field: &[Option<(usize, usize)>],
    keep: &dyn Fn(&[Tuple]) -> bool,
    stack: &mut Vec<Tuple>,
    out: &mut Vec<Binding>,
) {
    let v = stack.len();
    if v == q.vars.len() {
        if keep(stack) {
            out.push(stack.clone());
        }
        return;
    }
    let candidates: Vec<Tuple> = match parent_field[v] {
        Some((p, fidx)) => match stack[p].get(fidx) {
            Some(Value::Set(sid)) => inst.tuples(*sid).cloned().collect(),
            _ => Vec::new(),
        },
        None => inst
            .tuples_of_path(&q.vars[v].set)
            .map(|(_, t)| t.clone())
            .collect(),
    };
    for t in candidates {
        stack.push(t);
        descend(inst, q, parent_field, keep, stack, out);
        stack.pop();
    }
}

fn sorted(mut rows: Vec<Binding>) -> Vec<Binding> {
    rows.sort();
    rows
}

/// The workhorse: across many seeds, the engine's full result set is exactly
/// the reference's, as multisets. Covers equalities (proj–proj and
/// proj–const), inequalities, joins, child variables, empty instances, and
/// shared sub-sets — whatever each seed happens to draw.
#[test]
fn evaluate_agrees_with_naive_reference() {
    let schema = ref_schema();
    let (mut eq_preds, mut neq_preds, mut child_vars, mut nonempty) = (0, 0, 0, 0);
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let inst = random_instance(&schema, &mut rng);
        let q = random_query(&mut rng);
        q.validate(&schema).expect("generated query is valid");
        eq_preds += q.eqs.len();
        neq_preds += q.neqs.len();
        child_vars += q.vars.iter().filter(|v| v.parent.is_some()).count();

        let expect = sorted(naive_eval(&schema, &inst, &q));
        let got = sorted(evaluate_all(&schema, &inst, &q).expect("evaluate"));
        assert_eq!(got, expect, "seed {seed}: engine diverged from reference");
        nonempty += usize::from(!expect.is_empty());
    }
    // The generator must actually exercise what this test claims to cover.
    assert!(eq_preds > 10, "too few equality predicates: {eq_preds}");
    assert!(neq_preds > 5, "too few inequality predicates: {neq_preds}");
    assert!(child_vars > 5, "too few child variables: {child_vars}");
    assert!(nonempty > 10, "too few non-empty results: {nonempty}");
}

/// The per-binding hot paths (child descend, hash-index probe, full scan)
/// borrow their candidate tuples instead of collecting/cloning them; this
/// differential pins the observable contract of that rewrite: identical
/// runs report identical `query.steps` / index-counter streams, and the
/// counted run still agrees with the naive reference row for row.
#[test]
fn search_counters_are_deterministic_and_results_match_the_reference() {
    let schema = ref_schema();
    let counters = |m: &Metrics| {
        let s = m.snapshot();
        (
            s.counter("query.steps"),
            s.counter("query.index_hits"),
            s.counter("query.index_misses"),
        )
    };
    let mut total_steps = 0u64;
    for seed in 0..32u64 {
        let mut rng = Rng::new(seed);
        let inst = random_instance(&schema, &mut rng);
        let q = random_query(&mut rng);

        let run = || {
            let m = Metrics::enabled();
            let (rows, timed_out) =
                evaluate_deadline_with(&schema, &inst, &q, None, None, &m).expect("evaluate");
            assert!(!timed_out, "seed {seed}: no deadline, no timeout");
            (rows, counters(&m))
        };
        let (rows1, counts1) = run();
        let (rows2, counts2) = run();
        assert_eq!(rows1, rows2, "seed {seed}: nondeterministic result order");
        assert_eq!(counts1, counts2, "seed {seed}: nondeterministic counters");
        assert_eq!(
            sorted(rows1),
            sorted(naive_eval(&schema, &inst, &q)),
            "seed {seed}: counted run diverged from reference"
        );
        total_steps += counts1.0;
    }
    assert!(total_steps > 0, "the sweep must exercise the search loop");
}

/// Row limits: a limited evaluation is exactly a prefix of the engine's own
/// deterministic unlimited order, and every returned row is a genuine
/// answer (member of the reference result).
#[test]
fn row_limits_return_prefixes_of_the_full_result() {
    let schema = ref_schema();
    for seed in 0..32u64 {
        let mut rng = Rng::new(seed);
        let inst = random_instance(&schema, &mut rng);
        let q = random_query(&mut rng);

        let full = evaluate_all(&schema, &inst, &q).expect("evaluate");
        let reference = naive_eval(&schema, &inst, &q);
        for limit in [0, 1, 2, 5, full.len() + 1] {
            let limited = evaluate(&schema, &inst, &q, Some(limit)).expect("limited evaluate");
            assert_eq!(
                limited,
                full[..limit.min(full.len())],
                "seed {seed}, limit {limit}: not a prefix of the unlimited run"
            );
            for row in &limited {
                assert!(
                    reference.contains(row),
                    "seed {seed}, limit {limit}: row not in the reference result"
                );
            }
        }
    }
}
