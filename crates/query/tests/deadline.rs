//! Tests of the deadline-bounded evaluation used by Muse's "fall back to a
//! synthetic example after a fixed amount of time" feature.

use std::time::{Duration, Instant};

use muse_nr::{Field, InstanceBuilder, Schema, SetPath, Ty, Value};
use muse_query::{evaluate_deadline, Operand, Query};

fn schema() -> Schema {
    Schema::new(
        "S",
        vec![
            Field::new(
                "A",
                Ty::set_of(vec![Field::new("x", Ty::Int), Field::new("y", Ty::Int)]),
            ),
            Field::new(
                "B",
                Ty::set_of(vec![Field::new("x", Ty::Int), Field::new("y", Ty::Int)]),
            ),
        ],
    )
    .unwrap()
}

/// A cross-product-shaped unsatisfiable query over a big instance.
fn hard_query() -> Query {
    let mut q = Query::new();
    let a1 = q.var("a1", SetPath::parse("A"));
    let a2 = q.var("a2", SetPath::parse("A"));
    let b1 = q.var("b1", SetPath::parse("B"));
    // Join on y (non-selective), then demand an impossible x relation.
    q.add_eq(Operand::proj(a1, "y"), Operand::proj(a2, "y"));
    q.add_eq(Operand::proj(a2, "y"), Operand::proj(b1, "y"));
    q.add_eq(Operand::proj(a1, "x"), Operand::proj(b1, "x"));
    q.add_neq(Operand::proj(a1, "x"), Operand::proj(a1, "x")); // never true
    q
}

fn big_instance(schema: &Schema, n: i64) -> muse_nr::Instance {
    let mut b = InstanceBuilder::new(schema);
    for i in 0..n {
        b.push_top("A", vec![Value::int(i), Value::int(i % 3)]);
        b.push_top("B", vec![Value::int(i), Value::int(i % 3)]);
    }
    b.finish().unwrap()
}

#[test]
fn expired_deadline_cuts_the_search_short() {
    let s = schema();
    let inst = big_instance(&s, 3_000);
    let q = hard_query();
    // A deadline in the past: the search must report a timeout promptly.
    let start = Instant::now();
    let (rows, timed_out) =
        evaluate_deadline(&s, &inst, &q, Some(1), Some(Instant::now())).unwrap();
    assert!(rows.is_empty());
    assert!(timed_out);
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "cut short, not exhausted"
    );
}

#[test]
fn generous_deadline_does_not_affect_results() {
    let s = schema();
    let inst = big_instance(&s, 50);
    let mut q = Query::new();
    let a = q.var("a", SetPath::parse("A"));
    let b = q.var("b", SetPath::parse("B"));
    q.add_eq(Operand::proj(a, "x"), Operand::proj(b, "x"));
    let deadline = Some(Instant::now() + Duration::from_secs(60));
    let (rows, timed_out) = evaluate_deadline(&s, &inst, &q, None, deadline).unwrap();
    assert_eq!(rows.len(), 50);
    assert!(!timed_out);
}

#[test]
fn reached_limit_beats_expired_deadline() {
    // Regression: when the row limit is reached, the result set is complete
    // for the caller's purposes, so an (even already expired) deadline must
    // not be reported as a timeout. `evaluate_deadline` checks the limit
    // before the clock and squashes the flag when `limit` was satisfied.
    let s = schema();
    let inst = big_instance(&s, 3_000);
    let mut q = Query::new();
    let a = q.var("a", SetPath::parse("A"));
    let b = q.var("b", SetPath::parse("B"));
    q.add_eq(Operand::proj(a, "x"), Operand::proj(b, "x"));
    let expired = Some(Instant::now() - Duration::from_secs(1));
    let (rows, timed_out) = evaluate_deadline(&s, &inst, &q, Some(1), expired).unwrap();
    assert_eq!(rows.len(), 1, "the limit was reachable");
    assert!(
        !timed_out,
        "a limit-complete result must not report a timeout"
    );
}

#[test]
fn no_deadline_is_exhaustive() {
    let s = schema();
    let inst = big_instance(&s, 20);
    let q = hard_query();
    let (rows, timed_out) = evaluate_deadline(&s, &inst, &q, Some(1), None).unwrap();
    assert!(rows.is_empty());
    assert!(!timed_out);
}
