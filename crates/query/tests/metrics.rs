//! Integration tests of the `query.*` instrumentation: counters must track
//! what the evaluator actually did.

use std::time::Instant;

use muse_nr::{Field, InstanceBuilder, Schema, SetPath, Ty, Value};
use muse_obs::Metrics;
use muse_query::{evaluate, evaluate_deadline_with, Operand, Query};

fn schema() -> Schema {
    Schema::new(
        "S",
        vec![
            Field::new(
                "A",
                Ty::set_of(vec![Field::new("x", Ty::Int), Field::new("y", Ty::Int)]),
            ),
            Field::new(
                "B",
                Ty::set_of(vec![Field::new("x", Ty::Int), Field::new("y", Ty::Int)]),
            ),
        ],
    )
    .unwrap()
}

fn instance(schema: &Schema, n: i64) -> muse_nr::Instance {
    let mut b = InstanceBuilder::new(schema);
    for i in 0..n {
        b.push_top("A", vec![Value::int(i), Value::int(i % 5)]);
        b.push_top("B", vec![Value::int(i), Value::int(i % 5)]);
    }
    b.finish().unwrap()
}

fn join_query() -> Query {
    let mut q = Query::new();
    let a = q.var("a", SetPath::parse("A"));
    let b = q.var("b", SetPath::parse("B"));
    q.add_eq(Operand::proj(a, "x"), Operand::proj(b, "x"));
    q
}

#[test]
fn counters_track_evaluation_work() {
    let s = schema();
    let inst = instance(&s, 40);
    let q = join_query();
    let metrics = Metrics::enabled();
    let (rows, timed_out) = evaluate_deadline_with(&s, &inst, &q, None, None, &metrics).unwrap();
    assert_eq!(rows.len(), 40);
    assert!(!timed_out);

    let snap = metrics.snapshot();
    assert_eq!(snap.counter("query.evals"), 1);
    assert_eq!(snap.counter("query.timeouts"), 0);
    // Every binding of `a` enumerated at least one step, plus steps for the
    // indexed `b` lookups: the step count is at least one per result row.
    assert!(
        snap.counter("query.steps") >= 40,
        "steps: {}",
        snap.counter("query.steps")
    );
    // One join key ⇒ the index for B is built exactly once (a miss) and
    // re-used for each subsequent binding of `a`.
    assert_eq!(snap.counter("query.index_misses"), 1);
    assert_eq!(snap.counter("query.index_hits"), 39);
    // The whole evaluation ran under the eval_time span.
    let t = snap.timer("query.eval_time");
    assert_eq!(t.count, 1);
    assert!(t.nanos > 0);
}

#[test]
fn counters_accumulate_across_evaluations() {
    let s = schema();
    let inst = instance(&s, 10);
    let q = join_query();
    let metrics = Metrics::enabled();
    for _ in 0..3 {
        evaluate_deadline_with(&s, &inst, &q, None, None, &metrics).unwrap();
    }
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("query.evals"), 3);
    assert_eq!(snap.timer("query.eval_time").count, 3);
    assert_eq!(
        snap.counter("query.index_misses"),
        3,
        "cache is per-evaluation"
    );
}

#[test]
fn timeout_counter_fires_with_the_flag() {
    let s = schema();
    let inst = instance(&s, 2_000);
    // Unsatisfiable: forces an exhaustive scan that the deadline interrupts.
    let mut q = join_query();
    q.add_neq(Operand::proj(0, "y"), Operand::proj(0, "y"));
    let metrics = Metrics::enabled();
    let (rows, timed_out) =
        evaluate_deadline_with(&s, &inst, &q, Some(1), Some(Instant::now()), &metrics).unwrap();
    assert!(rows.is_empty());
    assert!(timed_out);
    assert_eq!(metrics.snapshot().counter("query.timeouts"), 1);
}

#[test]
fn plain_evaluate_is_unchanged_by_instrumentation() {
    // The `_with` variant with disabled metrics returns the same rows as the
    // uninstrumented entry point.
    let s = schema();
    let inst = instance(&s, 25);
    let q = join_query();
    let plain = evaluate(&s, &inst, &q, None).unwrap();
    let (with, _) =
        evaluate_deadline_with(&s, &inst, &q, None, None, &Metrics::disabled()).unwrap();
    assert_eq!(plain, with);
}
