//! A Clio-like mapping **generation** substrate.
//!
//! Muse refines mappings produced by semi-automatic tools such as Clio
//! (Popa et al. \[2\]), which is closed source. This crate re-implements the
//! published generation pipeline Muse needs:
//!
//! 1. the designer draws **correspondences** (arrows) between atomic source
//!    and target schema elements ([`Correspondence`]);
//! 2. each schema is compiled into its **logical associations**: one per
//!    nested set, consisting of the set's root-to-leaf variable chain closed
//!    under the schema's referential constraints ([`associations`]);
//! 3. every pair of a source and a target association that covers at least
//!    one correspondence yields a candidate **mapping**; pairs whose
//!    coverage a strictly smaller pair already achieves are pruned
//!    ([`generate()`](fn@generate));
//! 4. every nested target set receives the **default grouping function**
//!    (all source attributes — strategy `G1` of Sec. VI);
//! 5. when several source variables can supply the same target attribute
//!    (e.g. two foreign keys from `Projects` into `Employees`, as in
//!    Fig. 4), the generator emits an `or`-group — an **ambiguous** mapping,
//!    exactly the input Muse-D consumes ("ambiguities can be detected during
//!    mapping generation", Sec. IV).
//!
//! The [`strategy`] module computes the designer-intended grouping functions
//! `G1`/`G2`/`G3` used by the paper's evaluation (Sec. VI).

pub mod assoc;
pub mod correspondence;
pub mod generate;
pub mod strategy;

pub use assoc::{associations, Association};
pub use correspondence::{AttrAddr, Correspondence};
pub use generate::{generate, ScenarioSpec};
pub use strategy::{desired_grouping, GroupingStrategy};
