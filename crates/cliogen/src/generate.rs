//! Candidate-mapping generation from association pairs.

use std::collections::BTreeMap;

use muse_mapping::{Mapping, MappingError, PathRef, WhereClause};
use muse_nr::{Constraints, Schema};

use crate::assoc::{associations, Association};
use crate::correspondence::Correspondence;

/// Everything the generator needs about a mapping scenario.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioSpec<'a> {
    /// Source schema.
    pub source_schema: &'a Schema,
    /// Source keys / FDs / referential constraints.
    pub source_constraints: &'a Constraints,
    /// Target schema.
    pub target_schema: &'a Schema,
    /// Target constraints.
    pub target_constraints: &'a Constraints,
    /// The designer's correspondences.
    pub correspondences: &'a [Correspondence],
}

/// Generate the candidate mappings of a scenario (see crate docs for the
/// pipeline). Mappings are named `m1, m2, …` in deterministic order (target
/// association BFS order, then source association order), each carries the
/// default all-attribute grouping functions, and mappings are ambiguous
/// (`or`-groups) whenever several source variables can feed one target
/// attribute.
pub fn generate(spec: &ScenarioSpec<'_>) -> Result<Vec<Mapping>, MappingError> {
    for c in spec.correspondences {
        c.validate(spec.source_schema, spec.target_schema)?;
    }
    let src_assocs = associations(spec.source_schema, spec.source_constraints)?;
    let tgt_assocs = associations(spec.target_schema, spec.target_constraints)?;

    // Coverage per pair.
    struct Pair<'x> {
        a: &'x Association,
        b: &'x Association,
        cov: Vec<usize>,
    }
    let mut pairs: Vec<Pair<'_>> = Vec::new();
    for b in &tgt_assocs {
        for a in &src_assocs {
            let cov: Vec<usize> = spec
                .correspondences
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    !a.vars_over(&c.source.set).is_empty() && !b.vars_over(&c.target.set).is_empty()
                })
                .map(|(i, _)| i)
                .collect();
            if !cov.is_empty() {
                pairs.push(Pair { a, b, cov });
            }
        }
    }

    // Prune candidates that add nothing, the way Clio does:
    //
    // (a) *implication*: (A,B) is implied by (A',B') when A' ⊆ A (it fires
    //     whenever (A,B) would), B ⊆ B' (its consequences include (A,B)'s)
    //     and it carries at least the same correspondences;
    // (b) *minimality*: among pairs covering exactly the same
    //     correspondences, a pair with smaller associations on both sides
    //     asserts less and wins (no unjustified existentials).
    let total_vars = |p: &Pair<'_>| p.a.vars.len() + p.b.vars.len();
    // Pass (b): minimality.
    let minimal: Vec<bool> = pairs
        .iter()
        .map(|p| {
            !pairs.iter().any(|q| {
                q.cov == p.cov
                    && q.a.is_sub_association_of(p.a)
                    && q.b.is_sub_association_of(p.b)
                    && total_vars(q) < total_vars(p)
            })
        })
        .collect();
    // Pass (a): implication, among minimal pairs only.
    let keep: Vec<bool> = pairs
        .iter()
        .zip(&minimal)
        .map(|(p, &min)| {
            min && !pairs.iter().zip(&minimal).any(|(q, &qmin)| {
                qmin && q.cov.len() > p.cov.len()
                    && p.cov.iter().all(|c| q.cov.contains(c))
                    && q.a.is_sub_association_of(p.a)
                    && p.b.is_sub_association_of(q.b)
            })
        })
        .collect();

    let mut out = Vec::new();
    for (p, keep) in pairs.iter().zip(keep) {
        if !keep {
            continue;
        }
        let name = format!("m{}", out.len() + 1);
        out.push(build_mapping(spec, name, p.a, p.b, &p.cov)?);
    }
    Ok(out)
}

fn build_mapping(
    spec: &ScenarioSpec<'_>,
    name: String,
    a: &Association,
    b: &Association,
    cov: &[usize],
) -> Result<Mapping, MappingError> {
    let mut m = Mapping::new(name);
    m.source_vars = a.vars.clone();
    m.source_eqs = a.eqs.clone();
    m.target_vars = b.vars.clone();
    m.target_eqs = b.eqs.clone();

    // Rename variables for readability: source s0…, target t0….
    for (i, v) in m.source_vars.iter_mut().enumerate() {
        v.name = format!("s{i}");
    }
    for (i, v) in m.target_vars.iter_mut().enumerate() {
        v.name = format!("t{i}");
    }

    // Accumulate alternatives per target attribute, in first-seen order.
    let mut order: Vec<(usize, String)> = Vec::new();
    let mut alts: BTreeMap<(usize, String), Vec<PathRef>> = BTreeMap::new();
    for &ci in cov {
        let corr = &spec.correspondences[ci];
        let tvar = b.vars_over(&corr.target.set)[0];
        let key = (tvar, corr.target.attr.clone());
        if !alts.contains_key(&key) {
            order.push(key.clone());
        }
        let entry = alts.entry(key).or_default();
        for svar in a.vars_over(&corr.source.set) {
            let r = PathRef::new(svar, corr.source.attr.clone());
            if !entry.contains(&r) {
                entry.push(r);
            }
        }
    }
    for key in order {
        let target = PathRef::new(key.0, key.1.clone());
        let alternatives = alts.remove(&key).expect("inserted above");
        if alternatives.len() == 1 {
            m.wheres.push(WhereClause::Eq {
                source: alternatives.into_iter().next().unwrap(),
                target,
            });
        } else {
            m.wheres.push(WhereClause::OrGroup {
                target,
                alternatives,
            });
        }
    }

    m.ensure_default_groupings(spec.target_schema, spec.source_schema)?;
    m.validate(spec.source_schema, spec.target_schema)?;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_nr::{Field, ForeignKey, SetPath, Ty};

    fn compdb() -> (Schema, Constraints) {
        let schema = Schema::new(
            "CompDB",
            vec![
                Field::new(
                    "Companies",
                    Ty::set_of(vec![
                        Field::new("cid", Ty::Int),
                        Field::new("cname", Ty::Str),
                        Field::new("location", Ty::Str),
                    ]),
                ),
                Field::new(
                    "Projects",
                    Ty::set_of(vec![
                        Field::new("pid", Ty::Str),
                        Field::new("pname", Ty::Str),
                        Field::new("cid", Ty::Int),
                        Field::new("manager", Ty::Str),
                    ]),
                ),
                Field::new(
                    "Employees",
                    Ty::set_of(vec![
                        Field::new("eid", Ty::Str),
                        Field::new("ename", Ty::Str),
                        Field::new("contact", Ty::Str),
                    ]),
                ),
            ],
        )
        .unwrap();
        let cons = Constraints {
            keys: vec![],
            fds: vec![],
            fks: vec![
                ForeignKey::new(
                    SetPath::parse("Projects"),
                    vec!["cid"],
                    SetPath::parse("Companies"),
                    vec!["cid"],
                ),
                ForeignKey::new(
                    SetPath::parse("Projects"),
                    vec!["manager"],
                    SetPath::parse("Employees"),
                    vec!["eid"],
                ),
            ],
        };
        (schema, cons)
    }

    fn orgdb() -> (Schema, Constraints) {
        let schema = Schema::new(
            "OrgDB",
            vec![
                Field::new(
                    "Orgs",
                    Ty::set_of(vec![
                        Field::new("oname", Ty::Str),
                        Field::new(
                            "Projects",
                            Ty::set_of(vec![
                                Field::new("pname", Ty::Str),
                                Field::new("manager", Ty::Str),
                            ]),
                        ),
                    ]),
                ),
                Field::new(
                    "Employees",
                    Ty::set_of(vec![
                        Field::new("eid", Ty::Str),
                        Field::new("ename", Ty::Str),
                    ]),
                ),
            ],
        )
        .unwrap();
        let cons = Constraints {
            keys: vec![],
            fds: vec![],
            fks: vec![ForeignKey::new(
                SetPath::parse("Orgs.Projects"),
                vec!["manager"],
                SetPath::parse("Employees"),
                vec!["eid"],
            )],
        };
        (schema, cons)
    }

    #[test]
    fn fig1_scenario_generates_three_mappings() {
        let (s, sc) = compdb();
        let (t, tc) = orgdb();
        let corrs = vec![
            Correspondence::new("Companies.cname", "Orgs.oname"),
            Correspondence::new("Projects.pname", "Orgs.Projects.pname"),
            Correspondence::new("Employees.eid", "Employees.eid"),
            Correspondence::new("Employees.ename", "Employees.ename"),
        ];
        let spec = ScenarioSpec {
            source_schema: &s,
            source_constraints: &sc,
            target_schema: &t,
            target_constraints: &tc,
            correspondences: &corrs,
        };
        let ms = generate(&spec).unwrap();
        assert_eq!(ms.len(), 3, "expected m1, m2, m3 as in Fig. 1");
        // One mapping covers only cname→oname (m1-like), one covers all
        // four (m2-like), one covers eid/ename (m3-like).
        let sizes: Vec<usize> = ms.iter().map(|m| m.wheres.len()).collect();
        assert!(sizes.contains(&1));
        assert!(sizes.contains(&4));
        assert!(sizes.contains(&2));
        assert!(ms.iter().all(|m| !m.is_ambiguous()));
        // The m2-like mapping has the target satisfy clause from the target
        // constraint (p1.manager = e1.eid).
        let m2 = ms.iter().find(|m| m.wheres.len() == 4).unwrap();
        assert_eq!(m2.target_eqs.len(), 1);
        assert_eq!(m2.source_vars.len(), 3);
        assert_eq!(m2.target_vars.len(), 3);
        // Default grouping: all 10 source attributes.
        let g = m2.grouping(&SetPath::parse("Orgs.Projects")).unwrap();
        assert_eq!(g.args.len(), 10);
    }

    #[test]
    fn fig4_scenario_generates_ambiguous_mapping() {
        let source = Schema::new(
            "CompDB",
            vec![
                Field::new(
                    "Projects",
                    Ty::set_of(vec![
                        Field::new("pid", Ty::Str),
                        Field::new("pname", Ty::Str),
                        Field::new("manager", Ty::Str),
                        Field::new("tech-lead", Ty::Str),
                    ]),
                ),
                Field::new(
                    "Employees",
                    Ty::set_of(vec![
                        Field::new("eid", Ty::Str),
                        Field::new("ename", Ty::Str),
                        Field::new("contact", Ty::Str),
                    ]),
                ),
            ],
        )
        .unwrap();
        let source_cons = Constraints {
            keys: vec![],
            fds: vec![],
            fks: vec![
                ForeignKey::new(
                    SetPath::parse("Projects"),
                    vec!["manager"],
                    SetPath::parse("Employees"),
                    vec!["eid"],
                ),
                ForeignKey::new(
                    SetPath::parse("Projects"),
                    vec!["tech-lead"],
                    SetPath::parse("Employees"),
                    vec!["eid"],
                ),
            ],
        };
        let target = Schema::new(
            "OrgDB",
            vec![Field::new(
                "Projects",
                Ty::set_of(vec![
                    Field::new("pname", Ty::Str),
                    Field::new("supervisor", Ty::Str),
                    Field::new("email", Ty::Str),
                ]),
            )],
        )
        .unwrap();
        let corrs = vec![
            Correspondence::new("Projects.pname", "Projects.pname"),
            Correspondence::new("Employees.ename", "Projects.supervisor"),
            Correspondence::new("Employees.contact", "Projects.email"),
        ];
        let spec = ScenarioSpec {
            source_schema: &source,
            source_constraints: &source_cons,
            target_schema: &target,
            target_constraints: &Constraints::none(),
            correspondences: &corrs,
        };
        let ms = generate(&spec).unwrap();
        // One mapping, ambiguous for supervisor and email, 2 alternatives
        // each — exactly `ma` of Fig. 4(a) with 4 interpretations.
        let ambiguous: Vec<&Mapping> = ms.iter().filter(|m| m.is_ambiguous()).collect();
        assert_eq!(ambiguous.len(), 1);
        let ma = ambiguous[0];
        let groups = muse_mapping::ambiguity::or_groups(ma);
        assert_eq!(groups.iter().map(|(_, a)| a.len()).product::<usize>(), 4);
        let groups = muse_mapping::ambiguity::or_groups(ma);
        assert_eq!(groups.len(), 2);
        assert!(groups.iter().all(|(_, alts)| alts.len() == 2));
    }

    #[test]
    fn shallow_pairs_are_pruned_by_implication() {
        // DBLP-shaped: one source chain maps into a 2-level target chain.
        // The pair (article, Journals) is implied by (article, Articles
        // chain) — same source, deeper target, strictly more coverage — and
        // must be pruned (rule (a)); only the deepest pair per source
        // association survives.
        let source = Schema::new(
            "S",
            vec![Field::new(
                "article",
                Ty::set_of(vec![
                    Field::new("journal", Ty::Str),
                    Field::new("title", Ty::Str),
                ]),
            )],
        )
        .unwrap();
        let target = Schema::new(
            "T",
            vec![Field::new(
                "Journals",
                Ty::set_of(vec![
                    Field::new("jname", Ty::Str),
                    Field::new("Articles", Ty::set_of(vec![Field::new("title", Ty::Str)])),
                ]),
            )],
        )
        .unwrap();
        let corrs = vec![
            Correspondence::new("article.journal", "Journals.jname"),
            Correspondence::new("article.title", "Journals.Articles.title"),
        ];
        let spec = ScenarioSpec {
            source_schema: &source,
            source_constraints: &Constraints::none(),
            target_schema: &target,
            target_constraints: &Constraints::none(),
            correspondences: &corrs,
        };
        let ms = generate(&spec).unwrap();
        assert_eq!(
            ms.len(),
            1,
            "{:?}",
            ms.iter().map(|m| &m.name).collect::<Vec<_>>()
        );
        assert_eq!(ms[0].target_vars.len(), 2, "the deep pair survives");
        assert_eq!(ms[0].wheres.len(), 2);
    }

    #[test]
    fn correspondence_validation_failure_propagates() {
        let (s, sc) = compdb();
        let (t, tc) = orgdb();
        let corrs = vec![Correspondence::new("Companies.nope", "Orgs.oname")];
        let spec = ScenarioSpec {
            source_schema: &s,
            source_constraints: &sc,
            target_schema: &t,
            target_constraints: &tc,
            correspondences: &corrs,
        };
        assert!(generate(&spec).is_err());
    }

    #[test]
    fn no_correspondences_no_mappings() {
        let (s, sc) = compdb();
        let (t, tc) = orgdb();
        let spec = ScenarioSpec {
            source_schema: &s,
            source_constraints: &sc,
            target_schema: &t,
            target_constraints: &tc,
            correspondences: &[],
        };
        assert!(generate(&spec).unwrap().is_empty());
    }
}
