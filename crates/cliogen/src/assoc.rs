//! Logical associations: the building blocks of Clio-style generation.
//!
//! For every nested set of a schema, its *primary path* binds one variable
//! per set on the chain from the root down to it (`o in Orgs, p in
//! o.Projects`). Chasing the primary path with the schema's referential
//! constraints adds the variables (and join equalities) for everything the
//! path's tuples reference — producing the schema's logical associations
//! (called logical relations in \[2\]).

use std::collections::BTreeMap;

use muse_mapping::closure::close_binding;
use muse_mapping::{MappingError, MappingVar, PathRef};
use muse_nr::{Constraints, Schema, SetPath};

/// One logical association.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Association {
    /// The nested set whose primary path seeded the association.
    pub primary: SetPath,
    /// Variables (primary-chain first, then constraint witnesses).
    pub vars: Vec<MappingVar>,
    /// Join equalities among the variables.
    pub eqs: Vec<(PathRef, PathRef)>,
}

impl Association {
    /// Multiset of the variable set paths (used for the subsumption order).
    pub fn signature(&self) -> BTreeMap<SetPath, usize> {
        let mut m = BTreeMap::new();
        for v in &self.vars {
            *m.entry(v.set.clone()).or_insert(0) += 1;
        }
        m
    }

    /// `self ⊆ other` on the variable multisets: every set path of `self`
    /// occurs at least as often in `other`.
    pub fn is_sub_association_of(&self, other: &Association) -> bool {
        let o = other.signature();
        self.signature()
            .into_iter()
            .all(|(p, n)| o.get(&p).copied().unwrap_or(0) >= n)
    }

    /// Indices of the variables ranging over `set`.
    pub fn vars_over(&self, set: &SetPath) -> Vec<usize> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| &v.set == set)
            .map(|(i, _)| i)
            .collect()
    }
}

/// The logical associations of a schema: one per nested set, in BFS order.
pub fn associations(schema: &Schema, cons: &Constraints) -> Result<Vec<Association>, MappingError> {
    let mut out = Vec::new();
    for path in schema.set_paths_bfs() {
        let mut vars = Vec::new();
        let mut eqs = Vec::new();
        // Primary chain: one variable per prefix of the path.
        let segments = path.segments().to_vec();
        let mut parent: Option<usize> = None;
        for depth in 1..=segments.len() {
            let prefix = SetPath::new(segments[..depth].iter().cloned());
            let name = format!("v{}", vars.len());
            let var = match parent {
                None => MappingVar {
                    name,
                    set: prefix,
                    parent: None,
                },
                Some(p) => MappingVar {
                    name,
                    set: prefix,
                    parent: Some((p, segments[depth - 1].clone())),
                },
            };
            vars.push(var);
            parent = Some(vars.len() - 1);
        }
        close_binding(&mut vars, &mut eqs, schema, cons)?;
        out.push(Association {
            primary: path,
            vars,
            eqs,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_nr::{Field, ForeignKey, Ty};

    fn compdb() -> (Schema, Constraints) {
        let schema = Schema::new(
            "CompDB",
            vec![
                Field::new(
                    "Companies",
                    Ty::set_of(vec![
                        Field::new("cid", Ty::Int),
                        Field::new("cname", Ty::Str),
                    ]),
                ),
                Field::new(
                    "Projects",
                    Ty::set_of(vec![
                        Field::new("pname", Ty::Str),
                        Field::new("cid", Ty::Int),
                        Field::new("manager", Ty::Str),
                    ]),
                ),
                Field::new(
                    "Employees",
                    Ty::set_of(vec![
                        Field::new("eid", Ty::Str),
                        Field::new("ename", Ty::Str),
                    ]),
                ),
            ],
        )
        .unwrap();
        let cons = Constraints {
            keys: vec![],
            fds: vec![],
            fks: vec![
                ForeignKey::new(
                    SetPath::parse("Projects"),
                    vec!["cid"],
                    SetPath::parse("Companies"),
                    vec!["cid"],
                ),
                ForeignKey::new(
                    SetPath::parse("Projects"),
                    vec!["manager"],
                    SetPath::parse("Employees"),
                    vec!["eid"],
                ),
            ],
        };
        (schema, cons)
    }

    #[test]
    fn flat_associations_follow_fks() {
        let (s, c) = compdb();
        let assocs = associations(&s, &c).unwrap();
        assert_eq!(assocs.len(), 3);
        let by_primary: BTreeMap<String, &Association> =
            assocs.iter().map(|a| (a.primary.to_string(), a)).collect();
        // Companies and Employees stand alone.
        assert_eq!(by_primary["Companies"].vars.len(), 1);
        assert_eq!(by_primary["Employees"].vars.len(), 1);
        // Projects pulls in its company and its manager.
        let p = by_primary["Projects"];
        assert_eq!(p.vars.len(), 3);
        assert_eq!(p.eqs.len(), 2);
        assert_eq!(p.vars_over(&SetPath::parse("Companies")).len(), 1);
        assert_eq!(p.vars_over(&SetPath::parse("Employees")).len(), 1);
    }

    #[test]
    fn two_fks_to_one_set_give_two_witnesses() {
        // Fig. 4(a): Projects has manager AND tech-lead referencing
        // Employees — the association has two Employee variables, the seed
        // of the ambiguity Muse-D untangles.
        let schema = Schema::new(
            "S",
            vec![
                Field::new(
                    "Projects",
                    Ty::set_of(vec![
                        Field::new("pname", Ty::Str),
                        Field::new("manager", Ty::Str),
                        Field::new("tech-lead", Ty::Str),
                    ]),
                ),
                Field::new(
                    "Employees",
                    Ty::set_of(vec![
                        Field::new("eid", Ty::Str),
                        Field::new("ename", Ty::Str),
                    ]),
                ),
            ],
        )
        .unwrap();
        let cons = Constraints {
            keys: vec![],
            fds: vec![],
            fks: vec![
                ForeignKey::new(
                    SetPath::parse("Projects"),
                    vec!["manager"],
                    SetPath::parse("Employees"),
                    vec!["eid"],
                ),
                ForeignKey::new(
                    SetPath::parse("Projects"),
                    vec!["tech-lead"],
                    SetPath::parse("Employees"),
                    vec!["eid"],
                ),
            ],
        };
        let assocs = associations(&schema, &cons).unwrap();
        let p = assocs
            .iter()
            .find(|a| a.primary == SetPath::parse("Projects"))
            .unwrap();
        assert_eq!(p.vars_over(&SetPath::parse("Employees")).len(), 2);
    }

    #[test]
    fn nested_primary_paths_chain_variables() {
        let schema = Schema::new(
            "T",
            vec![Field::new(
                "Orgs",
                Ty::set_of(vec![
                    Field::new("oname", Ty::Str),
                    Field::new("Projects", Ty::set_of(vec![Field::new("pname", Ty::Str)])),
                ]),
            )],
        )
        .unwrap();
        let assocs = associations(&schema, &Constraints::none()).unwrap();
        assert_eq!(assocs.len(), 2);
        let nested = assocs
            .iter()
            .find(|a| a.primary == SetPath::parse("Orgs.Projects"))
            .unwrap();
        assert_eq!(nested.vars.len(), 2);
        assert_eq!(nested.vars[1].parent, Some((0, "Projects".to_string())));
    }

    #[test]
    fn sub_association_order() {
        let (s, c) = compdb();
        let assocs = associations(&s, &c).unwrap();
        let comp = assocs
            .iter()
            .find(|a| a.primary == SetPath::parse("Companies"))
            .unwrap();
        let proj = assocs
            .iter()
            .find(|a| a.primary == SetPath::parse("Projects"))
            .unwrap();
        assert!(comp.is_sub_association_of(proj));
        assert!(!proj.is_sub_association_of(comp));
        assert!(comp.is_sub_association_of(comp));
    }
}
