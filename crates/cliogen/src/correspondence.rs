//! Attribute-to-attribute correspondences (the "arrows" of Fig. 1).

use muse_nr::{Schema, SetPath};

use muse_mapping::MappingError;

/// The address of an atomic schema element: a nested set plus one of its
/// attributes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrAddr {
    /// The nested set.
    pub set: SetPath,
    /// The atomic attribute.
    pub attr: String,
}

impl AttrAddr {
    /// Build an address from a dotted string: the last segment is the
    /// attribute, the rest the set path (e.g. `"Orgs.Projects.pname"`).
    pub fn parse(s: &str) -> Self {
        let mut segs: Vec<&str> = s.split('.').collect();
        let attr = segs.pop().unwrap_or("").to_owned();
        AttrAddr {
            set: SetPath::new(segs),
            attr,
        }
    }

    /// Does this address exist in `schema` (as an atomic element)?
    pub fn validate(&self, schema: &Schema) -> Result<(), MappingError> {
        schema
            .atomic_attr_index(&self.set, &self.attr)
            .map_err(|_| MappingError::UnknownAttr {
                var: self.set.to_string(),
                attr: self.attr.clone(),
            })?;
        Ok(())
    }
}

impl std::fmt::Display for AttrAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.set, self.attr)
    }
}

/// One correspondence: a source element feeds a target element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Correspondence {
    /// Source element.
    pub source: AttrAddr,
    /// Target element.
    pub target: AttrAddr,
}

impl Correspondence {
    /// Build from two dotted addresses.
    pub fn new(source: &str, target: &str) -> Self {
        Correspondence {
            source: AttrAddr::parse(source),
            target: AttrAddr::parse(target),
        }
    }

    /// Validate both endpoints.
    pub fn validate(&self, source: &Schema, target: &Schema) -> Result<(), MappingError> {
        self.source.validate(source)?;
        self.target.validate(target)?;
        Ok(())
    }
}

impl std::fmt::Display for Correspondence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.source, self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_nr::{Field, Ty};

    #[test]
    fn parse_addresses() {
        let a = AttrAddr::parse("Orgs.Projects.pname");
        assert_eq!(a.set, SetPath::parse("Orgs.Projects"));
        assert_eq!(a.attr, "pname");
        assert_eq!(a.to_string(), "Orgs.Projects.pname");

        let b = AttrAddr::parse("Companies.cname");
        assert_eq!(b.set, SetPath::parse("Companies"));
        assert_eq!(b.attr, "cname");
    }

    #[test]
    fn validate_against_schema() {
        let s = Schema::new(
            "S",
            vec![Field::new(
                "Companies",
                Ty::set_of(vec![Field::new("cname", Ty::Str)]),
            )],
        )
        .unwrap();
        assert!(AttrAddr::parse("Companies.cname").validate(&s).is_ok());
        assert!(AttrAddr::parse("Companies.nope").validate(&s).is_err());
        assert!(AttrAddr::parse("Nope.cname").validate(&s).is_err());
    }

    #[test]
    fn correspondence_display_and_validate() {
        let s = Schema::new(
            "S",
            vec![Field::new("A", Ty::set_of(vec![Field::new("x", Ty::Str)]))],
        )
        .unwrap();
        let t = Schema::new(
            "T",
            vec![Field::new("B", Ty::set_of(vec![Field::new("y", Ty::Str)]))],
        )
        .unwrap();
        let c = Correspondence::new("A.x", "B.y");
        assert_eq!(c.to_string(), "A.x -> B.y");
        c.validate(&s, &t).unwrap();
        assert!(Correspondence::new("A.z", "B.y").validate(&s, &t).is_err());
    }
}
