//! The three families of intended grouping semantics used in the paper's
//! evaluation (Sec. VI): `G1`, `G2` and `G3`. In the experiments, the
//! "designer" has one of these in mind for every nested target set and
//! answers Muse-G's questions accordingly.

use std::collections::{BTreeMap, BTreeSet};

use muse_mapping::poss::poss;
use muse_mapping::{Mapping, MappingError, PathRef, WhereClause};
use muse_nr::{Schema, SetPath};

/// A family of intended grouping functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupingStrategy {
    /// Group by *all* possible attributes (the Clio default; the largest
    /// number of groups).
    G1,
    /// Group by the source atoms exported to records on the path from the
    /// target root down to (but excluding) the set itself — e.g.
    /// `SKProjs(c.cname)` in Fig. 1.
    G2,
    /// Group by all atoms of `poss(m, SK)` exported to the target schema
    /// anywhere — e.g. `SKProjs(c.cname, p.pname, p.manager, e.eid,
    /// e.ename)` in Fig. 1.
    G3,
}

impl std::fmt::Display for GroupingStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupingStrategy::G1 => write!(f, "G1"),
            GroupingStrategy::G2 => write!(f, "G2"),
            GroupingStrategy::G3 => write!(f, "G3"),
        }
    }
}

/// The grouping function a designer following `strategy` has in mind for
/// the nested target set `sk` of (unambiguous) mapping `m`, as a subset of
/// `poss(m, sk)` in poss order.
///
/// "Exported" is closed under the mapping's source `satisfy` equalities: if
/// `p.manager = e.eid` and `e.eid` is exported, then `p.manager` counts as
/// exported too (this reproduces the paper's `G3` example exactly).
pub fn desired_grouping(
    m: &Mapping,
    sk: &SetPath,
    strategy: GroupingStrategy,
    source_schema: &Schema,
    target_schema: &Schema,
) -> Result<Vec<PathRef>, MappingError> {
    let all = poss(m, sk, source_schema, target_schema)?;
    if strategy == GroupingStrategy::G1 {
        return Ok(all);
    }

    // Equivalence classes over source refs induced by the satisfy clause.
    let mut class: BTreeMap<(usize, String), usize> = BTreeMap::new();
    let mut parent: Vec<usize> = Vec::new();
    #[allow(clippy::ptr_arg)]
    let id_of =
        |r: &PathRef, parent: &mut Vec<usize>, class: &mut BTreeMap<(usize, String), usize>| {
            *class.entry((r.var, r.attr.clone())).or_insert_with(|| {
                parent.push(parent.len());
                parent.len() - 1
            })
        };
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for (a, b) in &m.source_eqs {
        let ia = id_of(a, &mut parent, &mut class);
        let ib = id_of(b, &mut parent, &mut class);
        let (ra, rb) = (find(&mut parent, ia), find(&mut parent, ib));
        if ra != rb {
            parent[ra] = rb;
        }
    }

    // Base exported refs, per strategy.
    let mut exported_classes: BTreeSet<usize> = BTreeSet::new();
    for w in &m.wheres {
        let WhereClause::Eq {
            source: s,
            target: t,
        } = w
        else {
            continue; // strategies are defined on unambiguous mappings
        };
        let counts = match strategy {
            GroupingStrategy::G3 => true,
            GroupingStrategy::G2 => {
                let tv_set = &m.target_vars[t.var].set;
                tv_set.is_prefix_of(sk) && tv_set != sk
            }
            GroupingStrategy::G1 => unreachable!("handled above"),
        };
        if counts {
            let i = id_of(s, &mut parent, &mut class);
            let r = find(&mut parent, i);
            exported_classes.insert(r);
        }
    }

    Ok(all
        .into_iter()
        .filter(|r| {
            let i = id_of(r, &mut parent, &mut class);
            let root = find(&mut parent, i);
            exported_classes.contains(&root)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_mapping::parse_one;

    /// `m2` of Fig. 1 (schema-free construction is fine here; strategies
    /// only read the mapping structure and the poss order, so we supply the
    /// real CompDB/OrgDB schemas).
    fn m2() -> (Mapping, Schema, Schema) {
        use muse_nr::{Field, Ty};
        let src = Schema::new(
            "CompDB",
            vec![
                Field::new(
                    "Companies",
                    Ty::set_of(vec![
                        Field::new("cid", Ty::Int),
                        Field::new("cname", Ty::Str),
                        Field::new("location", Ty::Str),
                    ]),
                ),
                Field::new(
                    "Projects",
                    Ty::set_of(vec![
                        Field::new("pid", Ty::Str),
                        Field::new("pname", Ty::Str),
                        Field::new("cid", Ty::Int),
                        Field::new("manager", Ty::Str),
                    ]),
                ),
                Field::new(
                    "Employees",
                    Ty::set_of(vec![
                        Field::new("eid", Ty::Str),
                        Field::new("ename", Ty::Str),
                        Field::new("contact", Ty::Str),
                    ]),
                ),
            ],
        )
        .unwrap();
        let tgt = Schema::new(
            "OrgDB",
            vec![
                Field::new(
                    "Orgs",
                    Ty::set_of(vec![
                        Field::new("oname", Ty::Str),
                        Field::new(
                            "Projects",
                            Ty::set_of(vec![
                                Field::new("pname", Ty::Str),
                                Field::new("manager", Ty::Str),
                            ]),
                        ),
                    ]),
                ),
                Field::new(
                    "Employees",
                    Ty::set_of(vec![
                        Field::new("eid", Ty::Str),
                        Field::new("ename", Ty::Str),
                    ]),
                ),
            ],
        )
        .unwrap();
        let mut m = parse_one(
            "m2: for c in CompDB.Companies, p in CompDB.Projects, e in CompDB.Employees
                 satisfy p.cid = c.cid and e.eid = p.manager
                 exists o in OrgDB.Orgs, p1 in o.Projects, e1 in OrgDB.Employees
                 satisfy p1.manager = e1.eid
                 where c.cname = o.oname and e.eid = e1.eid and e.ename = e1.ename
                   and p.pname = p1.pname",
        )
        .unwrap();
        m.ensure_default_groupings(&tgt, &src).unwrap();
        (m, src, tgt)
    }

    fn names(m: &Mapping, refs: &[PathRef]) -> Vec<String> {
        refs.iter().map(|r| m.source_ref_name(r)).collect()
    }

    #[test]
    fn g1_is_all_of_poss() {
        let (m, s, t) = m2();
        let g = desired_grouping(
            &m,
            &SetPath::parse("Orgs.Projects"),
            GroupingStrategy::G1,
            &s,
            &t,
        )
        .unwrap();
        assert_eq!(g.len(), 10);
    }

    #[test]
    fn g2_is_the_paper_example() {
        let (m, s, t) = m2();
        let g = desired_grouping(
            &m,
            &SetPath::parse("Orgs.Projects"),
            GroupingStrategy::G2,
            &s,
            &t,
        )
        .unwrap();
        // "under G2, the grouping function for Projects is SKProjs(c.cname)"
        assert_eq!(names(&m, &g), vec!["c.cname"]);
    }

    #[test]
    fn g3_is_the_paper_example() {
        let (m, s, t) = m2();
        let g = desired_grouping(
            &m,
            &SetPath::parse("Orgs.Projects"),
            GroupingStrategy::G3,
            &s,
            &t,
        )
        .unwrap();
        // "under G3 … SKProjs(c.cname, p.pname, p.manager, e.eid, e.ename)"
        assert_eq!(
            names(&m, &g),
            vec!["c.cname", "p.pname", "p.manager", "e.eid", "e.ename"]
        );
    }

    #[test]
    fn strategies_are_subsets_of_poss_in_poss_order() {
        let (m, s, t) = m2();
        let sk = SetPath::parse("Orgs.Projects");
        let all = muse_mapping::poss::poss(&m, &sk, &s, &t).unwrap();
        for strat in [
            GroupingStrategy::G1,
            GroupingStrategy::G2,
            GroupingStrategy::G3,
        ] {
            let g = desired_grouping(&m, &sk, strat, &s, &t).unwrap();
            let mut last = None;
            for r in &g {
                let pos = all.iter().position(|x| x == r).expect("subset of poss");
                if let Some(l) = last {
                    assert!(pos > l, "order preserved");
                }
                last = Some(pos);
            }
        }
    }
}
