//! Pretty-printer: renders mappings back in the paper's concrete syntax.
//! `parse(print(m))` reconstructs an equal mapping.

use std::fmt::Write as _;

use crate::ast::{Mapping, MappingVar, PathRef, WhereClause};

/// Print one mapping in concrete syntax (no schema qualifiers).
pub fn print(m: &Mapping) -> String {
    let mut out = String::new();
    let _ = write!(out, "{}: for ", m.name);
    out.push_str(&bindings(&m.source_vars));
    if !m.source_eqs.is_empty() {
        out.push_str("\n  satisfy ");
        out.push_str(&eqs(m, &m.source_eqs, Space::Source));
    }
    out.push_str("\n  exists ");
    out.push_str(&bindings(&m.target_vars));
    if !m.target_eqs.is_empty() {
        out.push_str("\n  satisfy ");
        out.push_str(&eqs(m, &m.target_eqs, Space::Target));
    }
    if !m.wheres.is_empty() {
        out.push_str("\n  where ");
        let parts: Vec<String> = m
            .wheres
            .iter()
            .map(|w| match w {
                WhereClause::Eq { source, target } => {
                    format!(
                        "{} = {}",
                        m.source_ref_name(source),
                        m.target_ref_name(target)
                    )
                }
                WhereClause::OrGroup {
                    target,
                    alternatives,
                } => {
                    let t = m.target_ref_name(target);
                    let ds: Vec<String> = alternatives
                        .iter()
                        .map(|a| format!("{} = {}", m.source_ref_name(a), t))
                        .collect();
                    format!("({})", ds.join(" or "))
                }
            })
            .collect();
        out.push_str(&parts.join("\n    and "));
    }
    for (set, g) in &m.groupings {
        // Find a target variable over the parent set to name the declaration.
        let owner = set
            .parent()
            .and_then(|parent| m.target_vars.iter().find(|v| v.set == parent))
            .map(|v| v.name.as_str())
            .unwrap_or("?");
        let args: Vec<String> = g.args.iter().map(|r| m.source_ref_name(r)).collect();
        let _ = write!(
            out,
            "\n  group {owner}.{} by ({})",
            set.label(),
            args.join(", ")
        );
    }
    out.push('\n');
    out
}

/// Print a whole `Σ`, blank-line separated.
pub fn print_all(ms: &[Mapping]) -> String {
    ms.iter().map(print).collect::<Vec<_>>().join("\n")
}

enum Space {
    Source,
    Target,
}

fn bindings(vars: &[MappingVar]) -> String {
    let parts: Vec<String> = vars
        .iter()
        .map(|v| match &v.parent {
            None => format!("{} in {}", v.name, v.set),
            Some((p, field)) => format!("{} in {}.{}", v.name, vars[*p].name, field),
        })
        .collect();
    parts.join(", ")
}

fn eqs(m: &Mapping, pairs: &[(PathRef, PathRef)], space: Space) -> String {
    let name = |r: &PathRef| match space {
        Space::Source => m.source_ref_name(r),
        Space::Target => m.target_ref_name(r),
    };
    let parts: Vec<String> = pairs
        .iter()
        .map(|(a, b)| format!("{} = {}", name(a), name(b)))
        .collect();
    parts.join(" and ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::fixtures::m2;
    use crate::parser::{parse, parse_one};

    #[test]
    fn m2_round_trips() {
        let m = m2();
        let text = print(&m);
        let back = parse_one(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn ambiguous_round_trips() {
        let text = "
            ma: for p in Projects, e1 in Employees, e2 in Employees
                satisfy e1.eid = p.manager and e2.eid = p.tech-lead
                exists p1 in Projects
                where p.pname = p1.pname
                  and (e1.ename = p1.supervisor or e2.ename = p1.supervisor)
        ";
        let m = parse_one(text).unwrap();
        let back = parse_one(&print(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn nested_binding_round_trips() {
        let text = "
            m: for a in DB.Articles
               exists j in Out.Journals, x in j.Papers
               where a.title = x.title
               group j.Papers by (a.journal)
        ";
        let m = parse_one(text).unwrap();
        let printed = print(&m);
        assert!(printed.contains("x in j.Papers"), "got: {printed}");
        assert!(
            printed.contains("group j.Papers by (a.journal)"),
            "got: {printed}"
        );
        assert_eq!(parse_one(&printed).unwrap(), m);
    }

    #[test]
    fn print_all_concatenates() {
        let text = "
            m1: for c in S.Companies exists o in T.Orgs where c.cname = o.oname
            m2: for e in S.Employees exists f in T.Employees where e.eid = f.eid
        ";
        let ms = parse(text).unwrap();
        let all = print_all(&ms);
        let back = parse(&all).unwrap();
        assert_eq!(back, ms);
    }
}
