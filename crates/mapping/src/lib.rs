//! The schema-mapping language used by Muse (Sec. II of the paper).
//!
//! A schema mapping is a triple `(S, T, Σ)` where `Σ` is a set of mappings in
//! the "query-like" notation of Popa et al. \[2\]:
//!
//! ```text
//! m2: for c in CompDB.Companies, p in CompDB.Projects, e in CompDB.Employees
//!     satisfy p.cid = c.cid and e.eid = p.manager
//!     exists o in OrgDB.Orgs, p1 in o.Projects, e1 in OrgDB.Employees
//!     satisfy p1.manager = e1.eid
//!     where c.cname = o.oname and e.eid = e1.eid and e.ename = e1.ename
//!       and p.pname = p1.pname
//!     group o.Projects by (c.cid, c.cname, c.location)
//! ```
//!
//! Each variable binds to tuples of a (possibly nested) set; `where` clauses
//! carry the attribute correspondences; grouping (Skolem) functions give
//! every nested target set its SetID. *Ambiguous* mappings carry `or`-groups:
//! several source attributes competing for one target attribute (Sec. IV).
//!
//! This crate provides the AST ([`Mapping`]), a parser for the concrete
//! syntax above ([`parser::parse`]), a printer ([`printer::print`]), closure
//! under referential constraints by chasing the specification
//! ([`closure::close_under_source_constraints`]), the `poss(m, SK)`
//! computation Muse-G starts from ([`poss::poss`]), and ambiguity utilities
//! ([`ambiguity`]).

pub mod ambiguity;
pub mod ast;
pub mod closure;
pub mod error;
pub mod parser;
pub mod poss;
pub mod printer;

pub use ast::{Grouping, Mapping, MappingVar, PathRef, WhereClause};
pub use error::MappingError;
pub use parser::{parse, parse_one};
pub use printer::print;
