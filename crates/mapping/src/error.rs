//! Errors for mapping construction, validation and parsing.

use std::fmt;

use muse_nr::SetPath;

/// Errors raised while building, validating, parsing or transforming
/// mappings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// A variable index is out of range.
    UnknownVar(usize),
    /// A named variable was not found (parser).
    UnknownVarName(String),
    /// A set path does not exist in the relevant schema.
    UnknownSet(String),
    /// An attribute does not exist on a variable's set.
    UnknownAttr { var: String, attr: String },
    /// A parent variable reference is malformed.
    BadParent { var: String },
    /// Two plain `where` equalities assign the same target attribute — this
    /// must be expressed as an `or`-group instead (it is exactly an
    /// ambiguity in the paper's sense).
    ConflictingAssignment { target: String },
    /// A nested target set the mapping must fill has no grouping function.
    MissingGrouping(SetPath),
    /// A grouping was declared for a set the mapping does not fill.
    UselessGrouping(SetPath),
    /// A grouping argument is not an attribute of a source variable.
    BadGroupingArg { set: SetPath, arg: String },
    /// Closure under referential constraints did not terminate (cyclic
    /// constraint set beyond the iteration budget).
    CyclicConstraints,
    /// The mapping is not ambiguous but an ambiguity operation was requested.
    NotAmbiguous(String),
    /// An interpretation selection index is out of range.
    BadChoice { group: usize, choice: usize },
    /// Concrete-syntax parse error with a line number.
    Parse { line: usize, msg: String },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::UnknownVar(i) => write!(f, "unknown variable #{i}"),
            MappingError::UnknownVarName(n) => write!(f, "unknown variable `{n}`"),
            MappingError::UnknownSet(p) => write!(f, "unknown set `{p}`"),
            MappingError::UnknownAttr { var, attr } => {
                write!(f, "variable `{var}` has no attribute `{attr}`")
            }
            MappingError::BadParent { var } => write!(f, "bad parent binding for `{var}`"),
            MappingError::ConflictingAssignment { target } => write!(
                f,
                "target `{target}` is assigned by more than one plain equality; use an or-group"
            ),
            MappingError::MissingGrouping(p) => {
                write!(f, "nested target set `{p}` has no grouping function")
            }
            MappingError::UselessGrouping(p) => {
                write!(
                    f,
                    "grouping declared for `{p}` which the mapping does not fill"
                )
            }
            MappingError::BadGroupingArg { set, arg } => {
                write!(f, "grouping for `{set}` has invalid argument `{arg}`")
            }
            MappingError::CyclicConstraints => {
                write!(f, "closure under referential constraints did not terminate")
            }
            MappingError::NotAmbiguous(n) => write!(f, "mapping `{n}` is not ambiguous"),
            MappingError::BadChoice { group, choice } => {
                write!(f, "choice {choice} out of range for or-group {group}")
            }
            MappingError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for MappingError {}
