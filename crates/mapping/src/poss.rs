//! `poss(m, SK)` — the possible grouping arguments of a nested target set.
//!
//! Per Sec. III-A (Step 2): the existence of a target tuple carrying the set
//! `SK` depends on the whole `for` clause of the mapping, so the candidate
//! grouping arguments are *all* atomic attributes of *all* source variables,
//! in variable-then-attribute order. (The paper's running example then
//! simplifies to `{cid, cname, location}` for exposition; we always return
//! the full set, as their implementation does.)

use muse_nr::{Schema, SetPath};

use crate::ast::{Mapping, PathRef};
use crate::error::MappingError;

/// All atomic attribute projections of all source variables of `m`, in
/// declaration order.
pub fn all_source_refs(m: &Mapping, source_schema: &Schema) -> Result<Vec<PathRef>, MappingError> {
    let mut out = Vec::new();
    for (i, v) in m.source_vars.iter().enumerate() {
        let attrs = source_schema
            .attributes(&v.set)
            .map_err(|_| MappingError::UnknownSet(v.set.to_string()))?;
        out.extend(attrs.into_iter().map(|a| PathRef::new(i, a)));
    }
    Ok(out)
}

/// `poss(m, SK)` for the nested target set `sk` of mapping `m`.
///
/// Returns an error if `m` does not fill `sk` (no grouping function to
/// design there).
pub fn poss(
    m: &Mapping,
    sk: &SetPath,
    source_schema: &Schema,
    target_schema: &Schema,
) -> Result<Vec<PathRef>, MappingError> {
    let filled = m.filled_target_sets(target_schema)?;
    if !filled.contains(sk) {
        return Err(MappingError::UselessGrouping(sk.clone()));
    }
    all_source_refs(m, source_schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::fixtures::{compdb, m2, orgdb};

    #[test]
    fn poss_of_m2_is_all_ten_attributes() {
        let m = m2();
        let p = poss(&m, &SetPath::parse("Orgs.Projects"), &compdb(), &orgdb()).unwrap();
        assert_eq!(p.len(), 10); // 3 (Comp) + 4 (Proj) + 3 (Emp)
        assert_eq!(p[0], PathRef::new(0, "cid"));
        assert_eq!(p[3], PathRef::new(1, "pid"));
        assert_eq!(p[9], PathRef::new(2, "contact"));
    }

    #[test]
    fn poss_of_unfilled_set_errors() {
        let m = m2();
        assert!(matches!(
            poss(&m, &SetPath::parse("Employees"), &compdb(), &orgdb()),
            Err(MappingError::UselessGrouping(_))
        ));
    }

    #[test]
    fn order_is_variable_then_attribute() {
        let m = m2();
        let refs = all_source_refs(&m, &compdb()).unwrap();
        let names: Vec<String> = refs.iter().map(|r| m.source_ref_name(r)).collect();
        assert_eq!(
            names,
            vec![
                "c.cid",
                "c.cname",
                "c.location",
                "p.pid",
                "p.pname",
                "p.cid",
                "p.manager",
                "e.eid",
                "e.ename",
                "e.contact"
            ]
        );
    }
}
