//! Ambiguous mappings: `or`-groups, their interpretations and selections
//! (Sec. IV), plus a post-hoc detector that folds structurally identical
//! unambiguous mappings back into one ambiguous `or`-form (the "detecting
//! ambiguities" direction the paper leaves to mapping-generation tools).

use std::collections::BTreeMap;

use crate::ast::{Mapping, PathRef, WhereClause};
use crate::error::MappingError;

/// The `or`-groups of a mapping, in `where`-clause order: each entry is the
/// contested target attribute and its alternatives.
pub fn or_groups(m: &Mapping) -> Vec<(&PathRef, &[PathRef])> {
    m.wheres
        .iter()
        .filter_map(|w| match w {
            WhereClause::OrGroup {
                target,
                alternatives,
            } => Some((target, alternatives.as_slice())),
            WhereClause::Eq { .. } => None,
        })
        .collect()
}

/// Resolve `m` to a single interpretation: `choices[i]` selects the
/// alternative for the i-th or-group (in `where`-clause order). The result
/// is unambiguous.
pub fn select(m: &Mapping, choices: &[usize]) -> Result<Mapping, MappingError> {
    let groups = or_groups(m).len();
    if groups == 0 {
        return Err(MappingError::NotAmbiguous(m.name.clone()));
    }
    if choices.len() != groups {
        return Err(MappingError::BadChoice {
            group: choices.len(),
            choice: 0,
        });
    }
    let mut out = m.clone();
    let mut g = 0usize;
    for w in &mut out.wheres {
        if let WhereClause::OrGroup {
            target,
            alternatives,
        } = w
        {
            let pick = choices[g];
            let alt = alternatives
                .get(pick)
                .ok_or(MappingError::BadChoice {
                    group: g,
                    choice: pick,
                })?
                .clone();
            *w = WhereClause::Eq {
                source: alt,
                target: target.clone(),
            };
            g += 1;
        }
    }
    Ok(out)
}

/// Resolve `m` to a *set* of interpretations: the designer may select more
/// than one value per choice (Sec. IV "More options"); the result is the
/// cartesian product of the selected alternatives, one unambiguous mapping
/// per combination, named `m#k`.
pub fn select_multi(m: &Mapping, choices: &[Vec<usize>]) -> Result<Vec<Mapping>, MappingError> {
    let groups = or_groups(m).len();
    if groups == 0 {
        return Err(MappingError::NotAmbiguous(m.name.clone()));
    }
    if choices.len() != groups || choices.iter().any(Vec::is_empty) {
        return Err(MappingError::BadChoice {
            group: choices.len(),
            choice: 0,
        });
    }
    let mut combos: Vec<Vec<usize>> = vec![Vec::new()];
    for group in choices {
        let mut next = Vec::with_capacity(combos.len() * group.len());
        for c in &combos {
            for &pick in group {
                let mut c2 = c.clone();
                c2.push(pick);
                next.push(c2);
            }
        }
        combos = next;
    }
    combos
        .into_iter()
        .enumerate()
        .map(|(k, combo)| {
            let mut sel = select(m, &combo)?;
            sel.name = format!("{}#{}", m.name, k + 1);
            Ok(sel)
        })
        .collect()
}

/// All interpretations of `m`, in lexicographic choice order, named `m#k`.
/// Returns `vec![m.clone()]` when `m` is unambiguous.
pub fn interpretations(m: &Mapping) -> Vec<Mapping> {
    let groups = or_groups(m);
    if groups.is_empty() {
        return vec![m.clone()];
    }
    let sizes: Vec<usize> = groups.iter().map(|(_, alts)| alts.len()).collect();
    let all: Vec<Vec<usize>> = sizes.iter().map(|&s| (0..s).collect()).collect();
    // `all` has one in-range index list per or-group by construction, so
    // select_multi cannot return BadChoice/NotAmbiguous. lint:allow(SC002)
    select_multi(m, &all).expect("sizes are in range")
}

/// Post-hoc ambiguity detection: if every mapping in `ms` is unambiguous and
/// they differ *only* in which source attribute their plain `where`
/// equalities assign to each target attribute, fold them into a single
/// ambiguous mapping whose contested attributes carry `or`-groups. Returns
/// `None` when the mappings are not structurally compatible.
pub fn merge_alternatives(ms: &[Mapping]) -> Option<Mapping> {
    let first = ms.first()?;
    if ms.iter().any(Mapping::is_ambiguous) {
        return None;
    }
    // Structural skeleton must agree.
    for m in &ms[1..] {
        if m.source_vars != first.source_vars
            || m.source_eqs != first.source_eqs
            || m.target_vars != first.target_vars
            || m.target_eqs != first.target_eqs
            || m.groupings != first.groupings
        {
            return None;
        }
    }
    // Same assigned target attributes, in the same order.
    let targets: Vec<&PathRef> = first.wheres.iter().map(WhereClause::target).collect();
    for m in &ms[1..] {
        let t: Vec<&PathRef> = m.wheres.iter().map(WhereClause::target).collect();
        if t != targets {
            return None;
        }
    }
    // Collect per-target alternatives, de-duplicated but order-preserving.
    let mut alternatives: BTreeMap<usize, Vec<PathRef>> = BTreeMap::new();
    for m in ms {
        for (i, w) in m.wheres.iter().enumerate() {
            let WhereClause::Eq { source, .. } = w else {
                return None;
            };
            let entry = alternatives.entry(i).or_default();
            if !entry.contains(source) {
                entry.push(source.clone());
            }
        }
    }
    let mut out = first.clone();
    out.wheres = targets
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let alts = alternatives.remove(&i).unwrap_or_default();
            match <[PathRef; 1]>::try_from(alts) {
                Ok([source]) => WhereClause::Eq {
                    source,
                    target: (*t).clone(),
                },
                Err(alts) => WhereClause::OrGroup {
                    target: (*t).clone(),
                    alternatives: alts,
                },
            }
        })
        .collect();
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_nr::SetPath;

    /// Product of the or-group sizes (`muse_lint::ambiguity` owns the
    /// public counting API; this local copy keeps the crate cycle-free).
    fn count(m: &Mapping) -> usize {
        or_groups(m)
            .iter()
            .map(|(_, alts)| alts.len().max(1))
            .product()
    }

    /// The ambiguous mapping `ma` of Fig. 4(a): supervisor and email each
    /// have two alternatives (manager vs tech-lead).
    pub(crate) fn ma() -> Mapping {
        let mut m = Mapping::new("ma");
        let p = m.source_var("p", SetPath::parse("Projects"));
        let e1 = m.source_var("e1", SetPath::parse("Employees"));
        let e2 = m.source_var("e2", SetPath::parse("Employees"));
        m.source_eq(PathRef::new(e1, "eid"), PathRef::new(p, "manager"));
        m.source_eq(PathRef::new(e2, "eid"), PathRef::new(p, "tech-lead"));
        let p1 = m.target_var("p1", SetPath::parse("Projects"));
        m.where_eq(PathRef::new(p, "pname"), PathRef::new(p1, "pname"));
        m.or_group(
            PathRef::new(p1, "supervisor"),
            vec![PathRef::new(e1, "ename"), PathRef::new(e2, "ename")],
        );
        m.or_group(
            PathRef::new(p1, "email"),
            vec![PathRef::new(e1, "contact"), PathRef::new(e2, "contact")],
        );
        m
    }

    #[test]
    fn counting() {
        let m = ma();
        assert!(m.is_ambiguous());
        assert_eq!(or_groups(&m).len(), 2);
        assert_eq!(count(&m), 4);
    }

    #[test]
    fn unambiguous_mapping_counts_one() {
        let mut m = Mapping::new("m");
        let p = m.source_var("p", SetPath::parse("Projects"));
        let p1 = m.target_var("p1", SetPath::parse("Projects"));
        m.where_eq(PathRef::new(p, "pname"), PathRef::new(p1, "pname"));
        assert_eq!(count(&m), 1);
        assert_eq!(interpretations(&m).len(), 1);
        assert!(matches!(
            select(&m, &[]),
            Err(MappingError::NotAmbiguous(_))
        ));
    }

    #[test]
    fn select_resolves_groups_in_order() {
        let m = ma();
        // Anna (tech-lead's name) for supervisor, jon@ibm (manager) for email
        // — the designer's pick in Fig. 4(b).
        let sel = select(&m, &[1, 0]).unwrap();
        assert!(!sel.is_ambiguous());
        let eqs: Vec<(String, String)> = sel
            .wheres
            .iter()
            .map(|w| match w {
                WhereClause::Eq { source, target } => {
                    (sel.source_ref_name(source), sel.target_ref_name(target))
                }
                _ => unreachable!(),
            })
            .collect();
        assert!(eqs.contains(&("e2.ename".into(), "p1.supervisor".into())));
        assert!(eqs.contains(&("e1.contact".into(), "p1.email".into())));
    }

    #[test]
    fn select_rejects_bad_choices() {
        let m = ma();
        assert!(matches!(
            select(&m, &[0]),
            Err(MappingError::BadChoice { .. })
        ));
        assert!(matches!(
            select(&m, &[0, 7]),
            Err(MappingError::BadChoice { .. })
        ));
    }

    #[test]
    fn interpretations_enumerate_the_product() {
        let m = ma();
        let all = interpretations(&m);
        assert_eq!(all.len(), 4);
        assert!(all.iter().all(|i| !i.is_ambiguous()));
        // All interpretations are pairwise distinct.
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.wheres, b.wheres);
            }
        }
    }

    #[test]
    fn select_multi_cartesian() {
        let m = ma();
        // Both supervisors, one email: 2 × 1 mappings.
        let out = select_multi(&m, &[vec![0, 1], vec![0]]).unwrap();
        assert_eq!(out.len(), 2);
        assert!(select_multi(&m, &[vec![], vec![0]]).is_err());
    }

    #[test]
    fn merge_alternatives_round_trips() {
        let m = ma();
        let all = interpretations(&m);
        let merged = merge_alternatives(&all).expect("compatible alternatives");
        assert!(merged.is_ambiguous());
        assert_eq!(count(&merged), 4);
        // The merged groups carry the original alternatives.
        let groups = or_groups(&merged);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(groups[1].1.len(), 2);
    }

    #[test]
    fn merge_rejects_incompatible() {
        let m = ma();
        let mut all = interpretations(&m);
        // Tamper with one mapping's structure.
        all[0].source_eqs.pop();
        assert!(merge_alternatives(&all).is_none());
        assert!(merge_alternatives(&[]).is_none());
        // Ambiguous inputs are rejected.
        assert!(merge_alternatives(&[ma()]).is_none());
    }
}
