//! Mapping AST: variables, clauses, grouping functions.

use std::collections::{BTreeMap, BTreeSet};

use muse_nr::{Schema, SetPath};
use muse_query::{Operand, Query};

use crate::error::MappingError;

/// A mapping variable: binds tuples of a nested set. Source variables live
/// in the `for` clause, target variables in the `exists` clause; the two
/// index spaces are independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingVar {
    /// Display name (`c`, `p1`, …).
    pub name: String,
    /// The set the variable ranges over.
    pub set: SetPath,
    /// Nested binding `v in parent.field`: (parent index, field label).
    pub parent: Option<(usize, String)>,
}

/// A projection `var.attr` (variable index + attribute label). Whether the
/// index refers to the source or the target variable space is determined by
/// context (source refs in `for`/`satisfy`-source/grouping arguments, target
/// refs in `exists`/`satisfy`-target; `where` clauses pair one of each).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathRef {
    /// Variable index within its space.
    pub var: usize,
    /// Attribute label.
    pub attr: String,
}

impl PathRef {
    /// Construct a projection reference.
    pub fn new(var: usize, attr: impl Into<String>) -> Self {
        PathRef {
            var,
            attr: attr.into(),
        }
    }
}

/// A `where`-clause entry: either a plain correspondence or an ambiguous
/// `or`-group of alternatives for one target attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WhereClause {
    /// `source.attr = target.attr`.
    Eq {
        /// Source-side projection.
        source: PathRef,
        /// Target-side projection.
        target: PathRef,
    },
    /// `(s1.A1 = t.A or … or sn.An = t.A)` — the mapping is *ambiguous for*
    /// `t.A` with `alternatives.len()` alternatives (Sec. IV).
    OrGroup {
        /// The contested target attribute.
        target: PathRef,
        /// The competing source projections (n ≥ 2).
        alternatives: Vec<PathRef>,
    },
}

impl WhereClause {
    /// The target attribute this clause assigns.
    pub fn target(&self) -> &PathRef {
        match self {
            WhereClause::Eq { target, .. } | WhereClause::OrGroup { target, .. } => target,
        }
    }
}

/// A grouping (Skolem) function for one nested target set: the SetID is
/// `SK<set>(args…)` where the arguments are source attribute projections.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Grouping {
    /// Source projections the set is grouped by (may be empty: one global
    /// group).
    pub args: Vec<PathRef>,
}

impl Grouping {
    /// Construct from argument references.
    pub fn new(args: Vec<PathRef>) -> Self {
        Grouping { args }
    }
}

/// One mapping of a schema mapping `(S, T, Σ)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    /// Name, e.g. `m2`.
    pub name: String,
    /// `for` clause.
    pub source_vars: Vec<MappingVar>,
    /// Source `satisfy` equalities (both sides in source space).
    pub source_eqs: Vec<(PathRef, PathRef)>,
    /// `exists` clause.
    pub target_vars: Vec<MappingVar>,
    /// Target `satisfy` equalities (both sides in target space).
    pub target_eqs: Vec<(PathRef, PathRef)>,
    /// `where` clause entries.
    pub wheres: Vec<WhereClause>,
    /// Grouping function per nested target set the mapping fills.
    pub groupings: BTreeMap<SetPath, Grouping>,
}

impl Mapping {
    /// Empty mapping with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Mapping {
            name: name.into(),
            source_vars: Vec::new(),
            source_eqs: Vec::new(),
            target_vars: Vec::new(),
            target_eqs: Vec::new(),
            wheres: Vec::new(),
            groupings: BTreeMap::new(),
        }
    }

    /// Add a top-level source variable; returns its index.
    pub fn source_var(&mut self, name: impl Into<String>, set: SetPath) -> usize {
        self.source_vars.push(MappingVar {
            name: name.into(),
            set,
            parent: None,
        });
        self.source_vars.len() - 1
    }

    /// Add a nested source variable `name in parent.field`; returns its index.
    pub fn source_child_var(
        &mut self,
        name: impl Into<String>,
        parent: usize,
        field: impl Into<String>,
    ) -> usize {
        let field = field.into();
        let set = self.source_vars[parent].set.child(&field);
        self.source_vars.push(MappingVar {
            name: name.into(),
            set,
            parent: Some((parent, field)),
        });
        self.source_vars.len() - 1
    }

    /// Add a top-level target variable; returns its index.
    pub fn target_var(&mut self, name: impl Into<String>, set: SetPath) -> usize {
        self.target_vars.push(MappingVar {
            name: name.into(),
            set,
            parent: None,
        });
        self.target_vars.len() - 1
    }

    /// Add a nested target variable `name in parent.field`; returns its index.
    pub fn target_child_var(
        &mut self,
        name: impl Into<String>,
        parent: usize,
        field: impl Into<String>,
    ) -> usize {
        let field = field.into();
        let set = self.target_vars[parent].set.child(&field);
        self.target_vars.push(MappingVar {
            name: name.into(),
            set,
            parent: Some((parent, field)),
        });
        self.target_vars.len() - 1
    }

    /// Add a source `satisfy` equality.
    pub fn source_eq(&mut self, a: PathRef, b: PathRef) {
        self.source_eqs.push((a, b));
    }

    /// Add a target `satisfy` equality.
    pub fn target_eq(&mut self, a: PathRef, b: PathRef) {
        self.target_eqs.push((a, b));
    }

    /// Add a plain `where` correspondence.
    pub fn where_eq(&mut self, source: PathRef, target: PathRef) {
        self.wheres.push(WhereClause::Eq { source, target });
    }

    /// Add an ambiguous `or`-group for a target attribute.
    pub fn or_group(&mut self, target: PathRef, alternatives: Vec<PathRef>) {
        self.wheres.push(WhereClause::OrGroup {
            target,
            alternatives,
        });
    }

    /// Set (replace) the grouping function for a nested target set.
    pub fn set_grouping(&mut self, set: SetPath, grouping: Grouping) {
        self.groupings.insert(set, grouping);
    }

    /// The grouping function for a set, if declared.
    pub fn grouping(&self, set: &SetPath) -> Option<&Grouping> {
        self.groupings.get(set)
    }

    /// True iff the mapping contains at least one `or`-group.
    pub fn is_ambiguous(&self) -> bool {
        self.wheres
            .iter()
            .any(|w| matches!(w, WhereClause::OrGroup { .. }))
    }

    /// The nested target sets this mapping must provide SetIDs for: every
    /// set-typed field of every target variable's element record. Top-level
    /// sets never appear (they have fixed SetIDs and no grouping function).
    pub fn filled_target_sets(
        &self,
        target_schema: &Schema,
    ) -> Result<BTreeSet<SetPath>, MappingError> {
        let mut out = BTreeSet::new();
        for tv in &self.target_vars {
            let rcd = target_schema
                .element_record(&tv.set)
                .map_err(|_| MappingError::UnknownSet(tv.set.to_string()))?;
            for label in rcd.set_labels() {
                out.insert(tv.set.child(label));
            }
        }
        Ok(out)
    }

    /// Fill in the default grouping function (all source attributes — the
    /// Clio default, called `G1` in Sec. VI) for every filled nested target
    /// set that lacks one.
    pub fn ensure_default_groupings(
        &mut self,
        target_schema: &Schema,
        source_schema: &Schema,
    ) -> Result<(), MappingError> {
        let filled = self.filled_target_sets(target_schema)?;
        let all_args = crate::poss::all_source_refs(self, source_schema)?;
        for set in filled {
            self.groupings
                .entry(set)
                .or_insert_with(|| Grouping::new(all_args.clone()));
        }
        Ok(())
    }

    /// Compile the `for` clause (+ source `satisfy` equalities) into a
    /// conjunctive query over the source schema.
    pub fn source_query(&self) -> Query {
        let mut q = Query::new();
        for v in &self.source_vars {
            match &v.parent {
                None => {
                    q.var(v.name.clone(), v.set.clone());
                }
                Some((p, field)) => {
                    q.child_var(v.name.clone(), *p, field.clone());
                }
            }
        }
        for (a, b) in &self.source_eqs {
            q.add_eq(
                Operand::proj(a.var, a.attr.clone()),
                Operand::proj(b.var, b.attr.clone()),
            );
        }
        q
    }

    /// Render a source reference as `c.cname` using variable names.
    pub fn source_ref_name(&self, r: &PathRef) -> String {
        let v = self
            .source_vars
            .get(r.var)
            .map(|v| v.name.as_str())
            .unwrap_or("?");
        format!("{v}.{}", r.attr)
    }

    /// Render a target reference as `o.oname` using variable names.
    pub fn target_ref_name(&self, r: &PathRef) -> String {
        let v = self
            .target_vars
            .get(r.var)
            .map(|v| v.name.as_str())
            .unwrap_or("?");
        format!("{v}.{}", r.attr)
    }

    /// Validate against the pair of schemas:
    ///
    /// * every variable's set resolves, parents precede children and the
    ///   child path matches `parent.field`;
    /// * every projection names an existing atomic attribute;
    /// * no two plain `where` equalities assign the same target attribute
    ///   (that situation must be an `or`-group — it is an ambiguity);
    /// * every grouping argument is a valid source projection, and
    ///   groupings are declared exactly for sets the mapping fills.
    pub fn validate(&self, source: &Schema, target: &Schema) -> Result<(), MappingError> {
        validate_vars(&self.source_vars, source)?;
        validate_vars(&self.target_vars, target)?;
        let src_ref = |r: &PathRef| validate_ref(r, &self.source_vars, source);
        let tgt_ref = |r: &PathRef| validate_ref(r, &self.target_vars, target);
        for (a, b) in &self.source_eqs {
            src_ref(a)?;
            src_ref(b)?;
        }
        for (a, b) in &self.target_eqs {
            tgt_ref(a)?;
            tgt_ref(b)?;
        }
        let mut assigned: BTreeSet<(usize, &str)> = BTreeSet::new();
        for w in &self.wheres {
            match w {
                WhereClause::Eq {
                    source: s,
                    target: t,
                } => {
                    src_ref(s)?;
                    tgt_ref(t)?;
                    if !assigned.insert((t.var, t.attr.as_str())) {
                        return Err(MappingError::ConflictingAssignment {
                            target: self.target_ref_name(t),
                        });
                    }
                }
                WhereClause::OrGroup {
                    target: t,
                    alternatives,
                } => {
                    tgt_ref(t)?;
                    for a in alternatives {
                        src_ref(a)?;
                    }
                    if !assigned.insert((t.var, t.attr.as_str())) {
                        return Err(MappingError::ConflictingAssignment {
                            target: self.target_ref_name(t),
                        });
                    }
                }
            }
        }
        let filled = self.filled_target_sets(target)?;
        for (set, g) in &self.groupings {
            if !filled.contains(set) {
                return Err(MappingError::UselessGrouping(set.clone()));
            }
            for arg in &g.args {
                if validate_ref(arg, &self.source_vars, source).is_err() {
                    return Err(MappingError::BadGroupingArg {
                        set: set.clone(),
                        arg: self.source_ref_name(arg),
                    });
                }
            }
        }
        for set in &filled {
            if !self.groupings.contains_key(set) {
                return Err(MappingError::MissingGrouping(set.clone()));
            }
        }
        Ok(())
    }
}

fn validate_vars(vars: &[MappingVar], schema: &Schema) -> Result<(), MappingError> {
    for (i, v) in vars.iter().enumerate() {
        if schema.resolve_set(&v.set).is_err() {
            return Err(MappingError::UnknownSet(v.set.to_string()));
        }
        if let Some((p, field)) = &v.parent {
            if *p >= i || vars[*p].set.child(field) != v.set {
                return Err(MappingError::BadParent {
                    var: v.name.clone(),
                });
            }
        }
    }
    Ok(())
}

fn validate_ref(r: &PathRef, vars: &[MappingVar], schema: &Schema) -> Result<(), MappingError> {
    let v = vars.get(r.var).ok_or(MappingError::UnknownVar(r.var))?;
    // Projections must name *atomic* fields; set-valued fields carry
    // SetIDs, which only grouping functions may produce.
    schema
        .atomic_attr_index(&v.set, &r.attr)
        .map_err(|_| MappingError::UnknownAttr {
            var: v.name.clone(),
            attr: r.attr.clone(),
        })?;
    Ok(())
}

#[cfg(test)]
pub(crate) mod fixtures {
    use super::*;
    use muse_nr::{Field, Ty};

    /// The CompDB source schema of Fig. 1.
    pub fn compdb() -> Schema {
        Schema::new(
            "CompDB",
            vec![
                Field::new(
                    "Companies",
                    Ty::set_of(vec![
                        Field::new("cid", Ty::Int),
                        Field::new("cname", Ty::Str),
                        Field::new("location", Ty::Str),
                    ]),
                ),
                Field::new(
                    "Projects",
                    Ty::set_of(vec![
                        Field::new("pid", Ty::Str),
                        Field::new("pname", Ty::Str),
                        Field::new("cid", Ty::Int),
                        Field::new("manager", Ty::Str),
                    ]),
                ),
                Field::new(
                    "Employees",
                    Ty::set_of(vec![
                        Field::new("eid", Ty::Str),
                        Field::new("ename", Ty::Str),
                        Field::new("contact", Ty::Str),
                    ]),
                ),
            ],
        )
        .unwrap()
    }

    /// The OrgDB target schema of Fig. 1.
    pub fn orgdb() -> Schema {
        Schema::new(
            "OrgDB",
            vec![
                Field::new(
                    "Orgs",
                    Ty::set_of(vec![
                        Field::new("oname", Ty::Str),
                        Field::new(
                            "Projects",
                            Ty::set_of(vec![
                                Field::new("pname", Ty::Str),
                                Field::new("manager", Ty::Str),
                            ]),
                        ),
                    ]),
                ),
                Field::new(
                    "Employees",
                    Ty::set_of(vec![
                        Field::new("eid", Ty::Str),
                        Field::new("ename", Ty::Str),
                    ]),
                ),
            ],
        )
        .unwrap()
    }

    /// The mapping `m2` of Fig. 1, with the default (all-attribute) grouping.
    pub fn m2() -> Mapping {
        let mut m = Mapping::new("m2");
        let c = m.source_var("c", SetPath::parse("Companies"));
        let p = m.source_var("p", SetPath::parse("Projects"));
        let e = m.source_var("e", SetPath::parse("Employees"));
        m.source_eq(PathRef::new(p, "cid"), PathRef::new(c, "cid"));
        m.source_eq(PathRef::new(e, "eid"), PathRef::new(p, "manager"));
        let o = m.target_var("o", SetPath::parse("Orgs"));
        let p1 = m.target_child_var("p1", o, "Projects");
        let e1 = m.target_var("e1", SetPath::parse("Employees"));
        m.target_eq(PathRef::new(p1, "manager"), PathRef::new(e1, "eid"));
        m.where_eq(PathRef::new(c, "cname"), PathRef::new(o, "oname"));
        m.where_eq(PathRef::new(e, "eid"), PathRef::new(e1, "eid"));
        m.where_eq(PathRef::new(e, "ename"), PathRef::new(e1, "ename"));
        m.where_eq(PathRef::new(p, "pname"), PathRef::new(p1, "pname"));
        m.ensure_default_groupings(&orgdb(), &compdb()).unwrap();
        m
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::*;
    use super::*;

    #[test]
    fn m2_validates() {
        let m = m2();
        m.validate(&compdb(), &orgdb()).unwrap();
        assert!(!m.is_ambiguous());
    }

    #[test]
    fn filled_sets_and_default_grouping() {
        let m = m2();
        let filled = m.filled_target_sets(&orgdb()).unwrap();
        assert_eq!(filled.len(), 1);
        assert!(filled.contains(&SetPath::parse("Orgs.Projects")));
        // Default grouping is all ten source attributes (Sec. III intro).
        let g = m.grouping(&SetPath::parse("Orgs.Projects")).unwrap();
        assert_eq!(g.args.len(), 10);
    }

    #[test]
    fn missing_grouping_rejected() {
        let mut m = m2();
        m.groupings.clear();
        assert!(matches!(
            m.validate(&compdb(), &orgdb()),
            Err(MappingError::MissingGrouping(_))
        ));
    }

    #[test]
    fn useless_grouping_rejected() {
        let mut m = m2();
        m.set_grouping(SetPath::parse("Nowhere"), Grouping::default());
        assert!(matches!(
            m.validate(&compdb(), &orgdb()),
            Err(MappingError::UselessGrouping(_))
        ));
    }

    #[test]
    fn conflicting_assignment_rejected() {
        let mut m = m2();
        // Second plain assignment to o.oname.
        m.where_eq(PathRef::new(0, "location"), PathRef::new(0, "oname"));
        assert!(matches!(
            m.validate(&compdb(), &orgdb()),
            Err(MappingError::ConflictingAssignment { .. })
        ));
    }

    #[test]
    fn or_group_is_ambiguous_and_validates() {
        let mut m = m2();
        // Replace the oname assignment with an or-group.
        m.wheres.remove(0);
        m.or_group(
            PathRef::new(0, "oname"),
            vec![PathRef::new(0, "cname"), PathRef::new(0, "location")],
        );
        m.validate(&compdb(), &orgdb()).unwrap();
        assert!(m.is_ambiguous());
    }

    #[test]
    fn bad_refs_rejected() {
        let mut m = m2();
        m.where_eq(PathRef::new(0, "nope"), PathRef::new(1, "pname"));
        assert!(matches!(
            m.validate(&compdb(), &orgdb()),
            Err(MappingError::UnknownAttr { .. })
        ));
    }

    #[test]
    fn set_valued_refs_rejected() {
        // `o.Projects` is a set-valued field: only grouping functions may
        // produce SetIDs, so projecting it in a clause is an error.
        let mut m = m2();
        m.target_eq(PathRef::new(0, "Projects"), PathRef::new(0, "Projects"));
        assert!(matches!(
            m.validate(&compdb(), &orgdb()),
            Err(MappingError::UnknownAttr { .. })
        ));
    }

    #[test]
    fn source_query_compiles() {
        let m = m2();
        let q = m.source_query();
        assert_eq!(q.vars.len(), 3);
        assert_eq!(q.eqs.len(), 2);
        q.validate(&compdb()).unwrap();
    }

    #[test]
    fn ref_names() {
        let m = m2();
        assert_eq!(m.source_ref_name(&PathRef::new(0, "cname")), "c.cname");
        assert_eq!(m.target_ref_name(&PathRef::new(1, "pname")), "p1.pname");
    }
}
