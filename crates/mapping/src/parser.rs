//! Parser for the paper's concrete mapping syntax.
//!
//! ```text
//! m2: for c in CompDB.Companies, p in CompDB.Projects, e in CompDB.Employees
//!     satisfy p.cid = c.cid and e.eid = p.manager
//!     exists o in OrgDB.Orgs, p1 in o.Projects, e1 in OrgDB.Employees
//!     satisfy p1.manager = e1.eid
//!     where c.cname = o.oname
//!       and (e1.ename = p1.supervisor or e2.ename = p1.supervisor)
//!     group o.Projects by (c.cid, c.cname)
//! ```
//!
//! Notes on the grammar:
//!
//! * A binding qualifier `X.Y` whose first segment names an
//!   already-declared variable is a nested binding (`p1 in o.Projects`);
//!   otherwise the first segment is an (optional) schema qualifier and is
//!   dropped when more than one segment is present.
//! * `where` equalities may be written in either direction; the parser
//!   normalizes them to source = target.
//! * A parenthesized `or`-disjunction `(s1.A1 = t.A or s2.A2 = t.A)` is an
//!   ambiguity group; the shared side must be the same target attribute in
//!   every disjunct.
//! * `group o.Projects by (c.cid, c.cname)` attaches a grouping function;
//!   `by ()` is the empty (single-group) function. Mappings without a
//!   `group` declaration can be completed with
//!   [`Mapping::ensure_default_groupings`].
//! * Comments run from `--` or `#` to end of line.

use std::collections::BTreeMap;

use crate::ast::{Grouping, Mapping, PathRef};
use crate::error::MappingError;
use muse_nr::SetPath;

/// Parse a sequence of mappings.
pub fn parse(text: &str) -> Result<Vec<Mapping>, MappingError> {
    let tokens = lex(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    while !p.at_end() {
        out.push(p.mapping()?);
    }
    Ok(out)
}

/// Parse exactly one mapping.
///
/// ```
/// let m = muse_mapping::parse_one(
///     "m1: for c in CompDB.Companies
///          exists o in OrgDB.Orgs
///          where c.cname = o.oname
///          group o.Projects by (c.cname)",
/// )
/// .unwrap();
/// assert_eq!(m.name, "m1");
/// assert_eq!(m.source_vars.len(), 1);
/// assert!(!m.is_ambiguous());
/// ```
pub fn parse_one(text: &str) -> Result<Mapping, MappingError> {
    let ms = parse(text)?;
    let n = ms.len();
    match <[Mapping; 1]>::try_from(ms) {
        Ok([m]) => Ok(m),
        Err(_) => Err(MappingError::Parse {
            line: 0,
            msg: format!("expected one mapping, found {n}"),
        }),
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Colon,
    Comma,
    Dot,
    Eq,
    LParen,
    RParen,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
}

fn lex(text: &str) -> Result<Vec<Spanned>, MappingError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    chars.next();
                }
            }
            '-' => {
                chars.next();
                if chars.peek() == Some(&'-') {
                    while let Some(&c) = chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        chars.next();
                    }
                } else {
                    return Err(MappingError::Parse {
                        line,
                        msg: "stray `-`".into(),
                    });
                }
            }
            ':' => {
                out.push(Spanned {
                    tok: Tok::Colon,
                    line,
                });
                chars.next();
            }
            ',' => {
                out.push(Spanned {
                    tok: Tok::Comma,
                    line,
                });
                chars.next();
            }
            '.' => {
                out.push(Spanned {
                    tok: Tok::Dot,
                    line,
                });
                chars.next();
            }
            '=' => {
                out.push(Spanned { tok: Tok::Eq, line });
                chars.next();
            }
            '(' => {
                out.push(Spanned {
                    tok: Tok::LParen,
                    line,
                });
                chars.next();
            }
            ')' => {
                out.push(Spanned {
                    tok: Tok::RParen,
                    line,
                });
                chars.next();
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '-' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Ident(s),
                    line,
                });
            }
            other => {
                return Err(MappingError::Parse {
                    line,
                    msg: format!("unexpected `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

/// A parsed `var.attr` reference, before space resolution.
struct RawRef {
    var: String,
    attr: String,
    line: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |t| t.line)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, MappingError> {
        Err(MappingError::Parse {
            line: self.line(),
            msg: msg.into(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: Tok) -> Result<(), MappingError> {
        if self.peek() == Some(&tok) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {tok:?}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, MappingError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => {
                self.pos -= 1;
                self.err(format!("expected identifier, found {other:?}"))
            }
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), MappingError> {
        match self.peek() {
            Some(Tok::Ident(s)) if s == kw => {
                self.pos += 1;
                Ok(())
            }
            other => self.err(format!("expected `{kw}`, found {other:?}")),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn mapping(&mut self) -> Result<Mapping, MappingError> {
        let name = self.ident()?;
        self.expect(Tok::Colon)?;
        let mut m = Mapping::new(name);
        let mut src_names: BTreeMap<String, usize> = BTreeMap::new();
        let mut tgt_names: BTreeMap<String, usize> = BTreeMap::new();

        self.keyword("for")?;
        self.bindings(&mut m, &mut src_names, true)?;
        if self.at_keyword("satisfy") {
            self.pos += 1;
            for (a, b) in self.conjunction()? {
                let ra = resolve(&src_names, &a)?;
                let rb = resolve(&src_names, &b)?;
                m.source_eq(ra, rb);
            }
        }
        self.keyword("exists")?;
        self.bindings(&mut m, &mut tgt_names, false)?;
        if self.at_keyword("satisfy") {
            self.pos += 1;
            for (a, b) in self.conjunction()? {
                let ra = resolve(&tgt_names, &a)?;
                let rb = resolve(&tgt_names, &b)?;
                m.target_eq(ra, rb);
            }
        }
        if self.at_keyword("where") {
            self.pos += 1;
            self.where_clause(&mut m, &src_names, &tgt_names)?;
        }
        while self.at_keyword("group") {
            self.pos += 1;
            self.group_decl(&mut m, &tgt_names)?;
        }
        Ok(m)
    }

    fn bindings(
        &mut self,
        m: &mut Mapping,
        names: &mut BTreeMap<String, usize>,
        source: bool,
    ) -> Result<(), MappingError> {
        loop {
            let var = self.ident()?;
            self.keyword("in")?;
            let mut segments = vec![self.ident()?];
            while self.peek() == Some(&Tok::Dot) {
                self.pos += 1;
                segments.push(self.ident()?);
            }
            if names.contains_key(&var) {
                return self.err(format!("duplicate variable `{var}`"));
            }
            let idx = if let Some(&parent) = names.get(&segments[0]) {
                // Nested binding `v in parent.field`.
                if segments.len() != 2 {
                    return self.err(format!("nested binding for `{var}` must be `parent.field`"));
                }
                let field = segments[1].clone();
                if source {
                    m.source_child_var(var.clone(), parent, field)
                } else {
                    m.target_child_var(var.clone(), parent, field)
                }
            } else {
                // Top-level binding, with optional schema qualifier.
                let path_segs = if segments.len() >= 2 {
                    &segments[1..]
                } else {
                    &segments[..]
                };
                let path = SetPath::new(path_segs.iter().cloned());
                if source {
                    m.source_var(var.clone(), path)
                } else {
                    m.target_var(var.clone(), path)
                }
            };
            names.insert(var, idx);
            if self.peek() == Some(&Tok::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(())
    }

    fn raw_ref(&mut self) -> Result<RawRef, MappingError> {
        let line = self.line();
        let var = self.ident()?;
        self.expect(Tok::Dot)?;
        let attr = self.ident()?;
        Ok(RawRef { var, attr, line })
    }

    fn equality(&mut self) -> Result<(RawRef, RawRef), MappingError> {
        let a = self.raw_ref()?;
        self.expect(Tok::Eq)?;
        let b = self.raw_ref()?;
        Ok((a, b))
    }

    fn conjunction(&mut self) -> Result<Vec<(RawRef, RawRef)>, MappingError> {
        let mut out = vec![self.equality()?];
        while self.at_keyword("and") {
            self.pos += 1;
            out.push(self.equality()?);
        }
        Ok(out)
    }

    fn where_clause(
        &mut self,
        m: &mut Mapping,
        src: &BTreeMap<String, usize>,
        tgt: &BTreeMap<String, usize>,
    ) -> Result<(), MappingError> {
        loop {
            if self.peek() == Some(&Tok::LParen) {
                self.pos += 1;
                let mut disjuncts = vec![self.equality()?];
                while self.at_keyword("or") {
                    self.pos += 1;
                    disjuncts.push(self.equality()?);
                }
                self.expect(Tok::RParen)?;
                let mut target: Option<PathRef> = None;
                let mut alternatives = Vec::new();
                for (a, b) in disjuncts {
                    let (s, t) = classify(src, tgt, a, b)?;
                    match &target {
                        None => target = Some(t),
                        Some(prev) if *prev == t => {}
                        Some(_) => {
                            return self.err(
                                "all disjuncts of an or-group must share one target attribute",
                            )
                        }
                    }
                    alternatives.push(s);
                }
                let Some(target) = target else {
                    return self.err("or-group has no disjuncts");
                };
                m.or_group(target, alternatives);
            } else {
                let (a, b) = self.equality()?;
                let (s, t) = classify(src, tgt, a, b)?;
                m.where_eq(s, t);
            }
            if self.at_keyword("and") {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(())
    }

    fn group_decl(
        &mut self,
        m: &mut Mapping,
        tgt: &BTreeMap<String, usize>,
    ) -> Result<(), MappingError> {
        let r = self.raw_ref()?; // e.g. `o.Projects`
        let Some(&owner) = tgt.get(&r.var) else {
            return Err(MappingError::Parse {
                line: r.line,
                msg: format!("`{}` is not a target variable", r.var),
            });
        };
        let set = m.target_vars[owner].set.child(&r.attr);
        self.keyword("by")?;
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                let rr = self.raw_ref()?;
                // Grouping arguments are source projections. Resolution uses
                // the caller's source-variable names via the mapping itself.
                let idx = m
                    .source_vars
                    .iter()
                    .position(|v| v.name == rr.var)
                    .ok_or(MappingError::UnknownVarName(rr.var.clone()))?;
                args.push(PathRef::new(idx, rr.attr));
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        m.set_grouping(set, Grouping::new(args));
        Ok(())
    }
}

fn resolve(names: &BTreeMap<String, usize>, r: &RawRef) -> Result<PathRef, MappingError> {
    let idx = names
        .get(&r.var)
        .ok_or_else(|| MappingError::UnknownVarName(r.var.clone()))?;
    Ok(PathRef::new(*idx, r.attr.clone()))
}

/// Classify a `where` equality's sides into (source, target), accepting
/// either writing direction.
fn classify(
    src: &BTreeMap<String, usize>,
    tgt: &BTreeMap<String, usize>,
    a: RawRef,
    b: RawRef,
) -> Result<(PathRef, PathRef), MappingError> {
    let side = |r: &RawRef| (src.get(&r.var).copied(), tgt.get(&r.var).copied());
    match (side(&a), side(&b)) {
        ((Some(sa), _), (_, Some(tb))) => Ok((PathRef::new(sa, a.attr), PathRef::new(tb, b.attr))),
        ((_, Some(ta)), (Some(sb), _)) => Ok((PathRef::new(sb, b.attr), PathRef::new(ta, a.attr))),
        _ => Err(MappingError::Parse {
            line: a.line,
            msg: format!(
                "`{}.{} = {}.{}` must relate one source and one target attribute",
                a.var, a.attr, b.var, b.attr
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::fixtures::{compdb, orgdb};
    use crate::ast::WhereClause;

    const M2: &str = "
        m2: for c in CompDB.Companies, p in CompDB.Projects, e in CompDB.Employees
            satisfy p.cid = c.cid and e.eid = p.manager
            exists o in OrgDB.Orgs, p1 in o.Projects, e1 in OrgDB.Employees
            satisfy p1.manager = e1.eid
            where c.cname = o.oname and e.eid = e1.eid and e.ename = e1.ename
              and p.pname = p1.pname
            group o.Projects by (c.cid, c.cname, c.location)
    ";

    #[test]
    fn parses_m2() {
        let m = parse_one(M2).unwrap();
        assert_eq!(m.name, "m2");
        assert_eq!(m.source_vars.len(), 3);
        assert_eq!(m.source_eqs.len(), 2);
        assert_eq!(m.target_vars.len(), 3);
        assert_eq!(m.target_eqs.len(), 1);
        assert_eq!(m.wheres.len(), 4);
        let g = m.grouping(&SetPath::parse("Orgs.Projects")).unwrap();
        assert_eq!(g.args.len(), 3);
        m.validate(&compdb(), &orgdb()).unwrap();
    }

    #[test]
    fn parses_fig1_m1_and_m3_together() {
        let text = "
            m1: for c in CompDB.Companies
                exists o in OrgDB.Orgs
                where c.cname = o.oname
                group o.Projects by (c.cid, c.cname, c.location)

            m3: for e in CompDB.Employees
                exists e1 in OrgDB.Employees
                where e.eid = e1.eid and e.ename = e1.ename
        ";
        let ms = parse(text).unwrap();
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].name, "m1");
        assert_eq!(ms[1].name, "m3");
        ms[0].validate(&compdb(), &orgdb()).unwrap();
        ms[1].validate(&compdb(), &orgdb()).unwrap();
    }

    #[test]
    fn parses_ambiguous_ma() {
        // Fig. 4(a), with hyphenated attribute `tech-lead`.
        let text = "
            ma: for p in CompDB.Projects, e1 in CompDB.Employees, e2 in CompDB.Employees
                satisfy e1.eid = p.manager and e2.eid = p.tech-lead
                exists p1 in OrgDB.Projects
                where p.pname = p1.pname
                  and (e1.ename = p1.supervisor or e2.ename = p1.supervisor)
                  and (e1.contact = p1.email or e2.contact = p1.email)
        ";
        let m = parse_one(text).unwrap();
        assert!(m.is_ambiguous());
        let groups = crate::ambiguity::or_groups(&m);
        assert_eq!(groups.iter().map(|(_, a)| a.len()).product::<usize>(), 4);
    }

    #[test]
    fn where_direction_is_normalized() {
        let a = parse_one("m: for c in S.Companies exists o in T.Orgs where c.cname = o.oname")
            .unwrap();
        let b = parse_one("m: for c in S.Companies exists o in T.Orgs where o.oname = c.cname")
            .unwrap();
        assert_eq!(a.wheres, b.wheres);
        match &a.wheres[0] {
            WhereClause::Eq { source, target } => {
                assert_eq!(a.source_ref_name(source), "c.cname");
                assert_eq!(a.target_ref_name(target), "o.oname");
            }
            _ => panic!("expected plain equality"),
        }
    }

    #[test]
    fn empty_grouping_allowed() {
        let m = parse_one(
            "m: for c in S.Companies exists o in T.Orgs where c.cname = o.oname
             group o.Projects by ()",
        )
        .unwrap();
        let g = m.grouping(&SetPath::parse("Orgs.Projects")).unwrap();
        assert!(g.args.is_empty());
    }

    #[test]
    fn comments_are_skipped() {
        let m = parse_one(
            "# leading comment
             m: for c in S.Companies -- trailing comment
                exists o in T.Orgs
                where c.cname = o.oname",
        )
        .unwrap();
        assert_eq!(m.name, "m");
    }

    #[test]
    fn parse_errors_carry_lines() {
        let err = parse("m: for c in\nexists o in T.Orgs").unwrap_err();
        match err {
            MappingError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mixed_space_equality_rejected() {
        let err = parse_one(
            "m: for c in S.Companies, d in S.Companies exists o in T.Orgs where c.cname = d.cname",
        )
        .unwrap_err();
        assert!(matches!(err, MappingError::Parse { .. }));
    }

    #[test]
    fn or_group_with_differing_targets_rejected() {
        let err = parse_one(
            "m: for c in S.Companies exists o in T.Orgs
             where (c.cname = o.oname or c.location = o.oaddr)",
        );
        // Different target attributes in the disjuncts: rejected.
        assert!(
            matches!(err, Err(MappingError::Parse { .. })) || {
                // (oname vs oaddr differ, so this must be an error)
                false
            }
        );
    }

    #[test]
    fn duplicate_variable_rejected() {
        let err =
            parse_one("m: for c in S.Companies, c in S.Projects exists o in T.Orgs").unwrap_err();
        assert!(matches!(err, MappingError::Parse { .. }));
    }

    #[test]
    fn unknown_variable_in_predicate_rejected() {
        let err = parse_one("m: for c in S.Companies exists o in T.Orgs where z.cname = o.oname")
            .unwrap_err();
        assert!(matches!(err, MappingError::Parse { .. }));
    }
}
