//! Randomized test: every mapping the AST can express (over a fixed schema
//! pair) survives `print` → `parse` unchanged. Driven by the deterministic
//! SplitMix64 generator, so every run checks the same cases.

use muse_mapping::{parse_one, print, Grouping, Mapping, PathRef};
use muse_obs::Rng;

/// A random mapping over CompDB/OrgDB-shaped schemas: random satisfy
/// equalities among int-ish attributes, random where clauses (plain or
/// 2-way or-groups), and a random grouping.
fn random_mapping(rng: &mut Rng) -> Mapping {
    let mut m = Mapping::new("m");
    let c = m.source_var("c", muse_nr::SetPath::parse("Companies"));
    let p = m.source_var("p", muse_nr::SetPath::parse("Projects"));
    let e = m.source_var("e", muse_nr::SetPath::parse("Employees"));
    m.source_eq(PathRef::new(p, "cid"), PathRef::new(c, "cid"));
    m.source_eq(PathRef::new(e, "eid"), PathRef::new(p, "manager"));
    let o = m.target_var("o", muse_nr::SetPath::parse("Orgs"));
    let p1 = m.target_child_var("p1", o, "Projects");
    m.target_eq(PathRef::new(p1, "manager"), PathRef::new(p1, "manager"));

    let src_attrs = [(c, "cname"), (p, "pname"), (e, "ename")];
    let tgt_attrs = [(o, "oname"), (p1, "pname")];
    let n_wheres = rng.range(1, 4) as usize;
    for i in 0..n_wheres {
        let src_i = rng.index(3);
        let tgt_i = rng.index(2);
        // Each clause must target a distinct attribute; synthesize one.
        let target = PathRef::new(tgt_attrs[tgt_i].0, format!("t{i}"));
        if rng.chance(0.5) {
            let alts = vec![
                PathRef::new(src_attrs[src_i].0, src_attrs[src_i].1),
                PathRef::new(src_attrs[(src_i + 1) % 3].0, src_attrs[(src_i + 1) % 3].1),
            ];
            m.or_group(target, alts);
        } else {
            m.where_eq(PathRef::new(src_attrs[src_i].0, src_attrs[src_i].1), target);
        }
    }
    let n_group = rng.index(3);
    let args: Vec<PathRef> = (0..n_group)
        .map(|_| {
            let i = rng.index(3);
            PathRef::new(src_attrs[i].0, src_attrs[i].1)
        })
        .collect();
    m.set_grouping(
        muse_nr::SetPath::parse("Orgs.Projects"),
        Grouping::new(args),
    );
    m
}

#[test]
fn print_parse_round_trips() {
    let mut rng = Rng::new(0x9A95E);
    for case in 0..128 {
        let m = random_mapping(&mut rng);
        let text = print(&m);
        let back = parse_one(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        assert_eq!(back, m, "case {case}:\n{text}");
    }
}
