//! Property test: every mapping the AST can express (over a fixed schema
//! pair) survives `print` → `parse` unchanged.

use muse_mapping::{parse_one, print, Grouping, Mapping, PathRef};
use proptest::prelude::*;

/// Random mappings over CompDB/OrgDB-shaped schemas: a subset of source
/// variables, random satisfy equalities among int-ish attributes, random
/// where clauses (plain or 2–3-way or-groups), and a random grouping.
fn mappings() -> impl Strategy<Value = Mapping> {
    let wheres = prop::collection::vec((0usize..3, 0usize..2, prop::bool::ANY), 1..4);
    let grouping = prop::collection::vec(0usize..3, 0..3);
    (wheres, grouping).prop_map(|(wheres, grouping)| {
        let mut m = Mapping::new("m");
        let c = m.source_var("c", muse_nr::SetPath::parse("Companies"));
        let p = m.source_var("p", muse_nr::SetPath::parse("Projects"));
        let e = m.source_var("e", muse_nr::SetPath::parse("Employees"));
        m.source_eq(PathRef::new(p, "cid"), PathRef::new(c, "cid"));
        m.source_eq(PathRef::new(e, "eid"), PathRef::new(p, "manager"));
        let o = m.target_var("o", muse_nr::SetPath::parse("Orgs"));
        let p1 = m.target_child_var("p1", o, "Projects");
        m.target_eq(PathRef::new(p1, "manager"), PathRef::new(p1, "manager"));

        let src_attrs = [(c, "cname"), (p, "pname"), (e, "ename")];
        let tgt_attrs = [(o, "oname"), (p1, "pname")];
        for (i, (src_i, tgt_i, ambiguous)) in wheres.iter().enumerate() {
            // Each clause must target a distinct attribute; synthesize one.
            let target = PathRef::new(tgt_attrs[*tgt_i].0, format!("t{i}"));
            if *ambiguous {
                let alts = vec![
                    PathRef::new(src_attrs[*src_i].0, src_attrs[*src_i].1),
                    PathRef::new(src_attrs[(*src_i + 1) % 3].0, src_attrs[(*src_i + 1) % 3].1),
                ];
                m.or_group(target, alts);
            } else {
                m.where_eq(
                    PathRef::new(src_attrs[*src_i].0, src_attrs[*src_i].1),
                    target,
                );
            }
        }
        let args: Vec<PathRef> =
            grouping.iter().map(|&i| PathRef::new(src_attrs[i].0, src_attrs[i].1)).collect();
        m.set_grouping(muse_nr::SetPath::parse("Orgs.Projects"), Grouping::new(args));
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_round_trips(m in mappings()) {
        let text = print(&m);
        let back = parse_one(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        prop_assert_eq!(back, m);
    }
}
