//! **muse-fault** — deterministic fault injection for the governor.
//!
//! A [`FaultPlan`] is a list of faults, each naming a registered
//! injection point (see [`muse_obs::faultpoints`]), a fault kind, the
//! 1-based hit at which it starts firing, and a repetition count. Code
//! under test calls [`point`]`("chase.fire_unit")` at each site; when no
//! plan is armed the call is a single relaxed atomic load — effectively
//! free — so the hooks stay compiled into release builds.
//!
//! Four fault kinds exist:
//!
//! * `panic` — the point panics with an [`InjectedPanic`] payload. Only
//!   legal at panic-isolated points (`faultpoints::PANIC_ISOLATED`), so an
//!   armed plan can never abort the process.
//! * `deadline` — [`point`] returns [`Fault::DeadlineExpiry`]; the site
//!   treats it exactly like an expired budget deadline.
//! * `termcap` — [`point`] returns [`Fault::TermCapExhaustion`]; the site
//!   treats it like a tripped interned-term cap.
//! * `io` — [`point`] returns [`Fault::IoError`]; only legal at
//!   IO-capable points (`faultpoints::IO_CAPABLE`), whose sites translate
//!   it into an `io::Error` on their own fail-degraded path.
//!
//! # Spec grammar (`MUSE_FAULTS` / `--faults`)
//!
//! ```text
//! spec    := entry (';' entry)*
//! entry   := point ':' kind ('@' hit)? ('x' count)?
//!          | 'seed' ':' u64 ('x' count)?    -- seeded plan, count entries (default 3)
//! kind    := 'panic' | 'deadline' | 'termcap' | 'io'
//! count   := u64 | '*'                      -- '*' = sticky (fires forever)
//! ```
//!
//! An explicit entry starts firing at its `hit` (1-based, default 1) and
//! keeps firing on every subsequent hit of its point until `count` total
//! firings (default 1 — one-shot). `x*` makes the fault **sticky**: it
//! never stops firing, which is how a permanently-dead disk is modeled
//! (`serve.wal.append:io@1x*`).
//!
//! Examples: `chase.fire_unit:panic`, `query.eval:deadline@3`,
//! `serve.wal.append:io x*`, `seed:42x5`,
//! `par.worker:panic;chase.binding:termcap@2x4`.
//!
//! The default one-shot behaviour is what lets the parallel chase's
//! serial-retry fallback succeed after an injected worker panic. Plans
//! are armed process-globally ([`arm`] / [`disarm`] / [`arm_from_env`]);
//! tests that arm plans must serialize.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use muse_obs::faultpoints;
use muse_obs::Rng;

/// A non-panic fault returned to the injection site for it to translate
/// into its own budget-truncation path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Behave as if the wall-clock deadline just expired.
    DeadlineExpiry,
    /// Behave as if the interned-term cap was just exceeded.
    TermCapExhaustion,
    /// Behave as if the underlying storage operation failed with an
    /// `io::Error` (IO-capable points only).
    IoError,
}

/// The panic payload used for injected panics, distinguishable from
/// organic panics when a pool reports a caught unwind.
#[derive(Debug, Clone)]
pub struct InjectedPanic {
    /// The injection point that fired.
    pub point: &'static str,
}

impl std::fmt::Display for InjectedPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected panic at {}", self.point)
    }
}

/// What a plan entry does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with an [`InjectedPanic`] payload (panic-isolated points only).
    Panic,
    /// Report [`Fault::DeadlineExpiry`].
    Deadline,
    /// Report [`Fault::TermCapExhaustion`].
    TermCap,
    /// Report [`Fault::IoError`] (IO-capable points only).
    Io,
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Deadline => "deadline",
            FaultKind::TermCap => "termcap",
            FaultKind::Io => "io",
        }
    }
}

/// How many times an entry fires once its `at_hit` is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Repeat {
    /// Fire on `n` consecutive matching hits, then never again. The
    /// default is `Times(1)` — one-shot.
    Times(u64),
    /// Fire on every matching hit forever (`x*` in the spec) — a
    /// persistently failing resource.
    Sticky,
}

impl Default for Repeat {
    fn default() -> Self {
        Repeat::Times(1)
    }
}

/// One fault: fire `kind` starting at the `at_hit`-th call of `point`,
/// for `repeat` firings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEntry {
    /// Registered injection-point name.
    pub point: String,
    /// What happens when it fires.
    pub kind: FaultKind,
    /// 1-based hit count at which it starts firing.
    pub at_hit: u64,
    /// How many firings before the entry is spent.
    pub repeat: Repeat,
}

/// A parsed, validated fault plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The one-shot faults, in spec order.
    pub entries: Vec<FaultEntry>,
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            write!(f, "{}:{}@{}", e.point, e.kind.name(), e.at_hit)?;
            match e.repeat {
                Repeat::Times(1) => {}
                Repeat::Times(n) => write!(f, "x{n}")?,
                Repeat::Sticky => f.write_str("x*")?,
            }
        }
        Ok(())
    }
}

/// Parse and validate a fault spec (see the module docs for the grammar).
pub fn parse_spec(spec: &str) -> Result<FaultPlan, String> {
    let mut entries = Vec::new();
    for raw in spec.split(';') {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let Some((head, tail)) = raw.split_once(':') else {
            return Err(format!(
                "fault entry `{raw}`: expected `point:kind[@hit]` or `seed:<n>[x<count>]`"
            ));
        };
        if head == "seed" {
            let (seed_s, count_s) = match tail.split_once('x') {
                Some((s, c)) => (s, Some(c)),
                None => (tail, None),
            };
            let seed: u64 = seed_s
                .trim()
                .parse()
                .map_err(|_| format!("fault entry `{raw}`: bad seed `{seed_s}`"))?;
            let count: usize = match count_s {
                Some(c) => c
                    .trim()
                    .parse()
                    .map_err(|_| format!("fault entry `{raw}`: bad count `{c}`"))?,
                None => 3,
            };
            entries.extend(plan_from_seed(seed, count).entries);
            continue;
        }
        // entry := kind ('@' hit)? ('x' count)? after the point. The `x`
        // suffix binds to whichever segment it trails (no kind name
        // contains an `x`, so splitting the kind token is unambiguous).
        let (kind_and_hit, count_s) = match tail.split_once('x') {
            Some((kh, c)) => (kh, Some(c)),
            None => (tail, None),
        };
        let (kind_s, hit_s) = match kind_and_hit.split_once('@') {
            Some((k, h)) => (k, Some(h)),
            None => (kind_and_hit, None),
        };
        let kind = match kind_s.trim() {
            "panic" => FaultKind::Panic,
            "deadline" => FaultKind::Deadline,
            "termcap" => FaultKind::TermCap,
            "io" => FaultKind::Io,
            other => {
                return Err(format!(
                    "fault entry `{raw}`: unknown kind `{other}` (panic|deadline|termcap|io)"
                ))
            }
        };
        let at_hit: u64 = match hit_s {
            Some(h) => h
                .trim()
                .parse()
                .map_err(|_| format!("fault entry `{raw}`: bad hit `{h}`"))?,
            None => 1,
        };
        if at_hit == 0 {
            return Err(format!("fault entry `{raw}`: hit counts are 1-based"));
        }
        let repeat = match count_s.map(str::trim) {
            None => Repeat::Times(1),
            Some("*") => Repeat::Sticky,
            Some(c) => {
                let n: u64 = c
                    .parse()
                    .map_err(|_| format!("fault entry `{raw}`: bad count `{c}` (u64 or `*`)"))?;
                if n == 0 {
                    return Err(format!(
                        "fault entry `{raw}`: count must be >= 1 (or `*` for sticky)"
                    ));
                }
                Repeat::Times(n)
            }
        };
        let point = head.trim().to_owned();
        if !faultpoints::is_registered(&point) {
            return Err(format!(
                "fault entry `{raw}`: unknown point `{point}` (known: {})",
                faultpoints::ALL.join(", ")
            ));
        }
        if kind == FaultKind::Panic && !faultpoints::is_panic_isolated(&point) {
            return Err(format!(
                "fault entry `{raw}`: point `{point}` is not panic-isolated \
                 (panic faults are legal at: {})",
                faultpoints::PANIC_ISOLATED.join(", ")
            ));
        }
        if kind == FaultKind::Io && !faultpoints::is_io_capable(&point) {
            return Err(format!(
                "fault entry `{raw}`: point `{point}` is not IO-capable \
                 (io faults are legal at: {})",
                faultpoints::IO_CAPABLE.join(", ")
            ));
        }
        entries.push(FaultEntry {
            point,
            kind,
            at_hit,
            repeat,
        });
    }
    Ok(FaultPlan { entries })
}

/// Generate a deterministic `count`-entry plan from `seed`. Points are
/// drawn from the registry; panic faults are only assigned to
/// panic-isolated points and io faults to IO-capable points, so a seeded
/// plan is always valid. Seeded entries are always one-shot — sticky
/// faults wedge a resource permanently and are only ever requested
/// explicitly.
pub fn plan_from_seed(seed: u64, count: usize) -> FaultPlan {
    let mut rng = Rng::new(seed ^ 0xFA17_FA17_FA17_FA17);
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let point = faultpoints::ALL[rng.below(faultpoints::ALL.len() as u64) as usize];
        let kind = if faultpoints::is_panic_isolated(point) {
            match rng.below(3) {
                0 => FaultKind::Panic,
                1 => FaultKind::Deadline,
                _ => FaultKind::TermCap,
            }
        } else if faultpoints::is_io_capable(point) {
            match rng.below(3) {
                0 => FaultKind::Io,
                1 => FaultKind::Deadline,
                _ => FaultKind::TermCap,
            }
        } else {
            match rng.below(2) {
                0 => FaultKind::Deadline,
                _ => FaultKind::TermCap,
            }
        };
        entries.push(FaultEntry {
            point: point.to_owned(),
            kind,
            at_hit: 1 + rng.below(6),
            repeat: Repeat::Times(1),
        });
    }
    FaultPlan { entries }
}

/// Snapshot of the armed plan's progress, for `fault.*` reporting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Point-name → number of [`point`] calls while armed.
    pub hits: BTreeMap<String, u64>,
    /// Total faults injected (fired entries).
    pub injected: u64,
    /// Entries in the armed plan.
    pub planned: usize,
    /// Entries that have fired.
    pub fired: usize,
}

struct EntryState {
    entry: FaultEntry,
    /// Firings so far; a `Times(n)` entry is spent once this reaches `n`.
    fired: u64,
}

impl EntryState {
    fn spent(&self) -> bool {
        match self.entry.repeat {
            Repeat::Times(n) => self.fired >= n,
            Repeat::Sticky => false,
        }
    }
}

struct PlanState {
    entries: Vec<EntryState>,
    hits: BTreeMap<String, u64>,
    injected: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<PlanState>> = Mutex::new(None);

fn lock_state() -> std::sync::MutexGuard<'static, Option<PlanState>> {
    // A lock poisoned by an injected panic still holds consistent data.
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arm `plan` process-globally, replacing any previous plan and resetting
/// hit counters.
pub fn arm(plan: FaultPlan) {
    let mut guard = lock_state();
    *guard = Some(PlanState {
        entries: plan
            .entries
            .into_iter()
            .map(|entry| EntryState { entry, fired: 0 })
            .collect(),
        hits: BTreeMap::new(),
        injected: 0,
    });
    ARMED.store(true, Ordering::Release);
}

/// Disarm, returning the final stats of the plan that was armed (if any).
pub fn disarm() -> Option<FaultStats> {
    ARMED.store(false, Ordering::Release);
    let mut guard = lock_state();
    guard.take().map(|s| snapshot(&s))
}

/// Stats of the currently armed plan, if one is armed.
pub fn stats() -> Option<FaultStats> {
    let guard = lock_state();
    guard.as_ref().map(snapshot)
}

fn snapshot(s: &PlanState) -> FaultStats {
    FaultStats {
        hits: s.hits.clone(),
        injected: s.injected,
        planned: s.entries.len(),
        fired: s.entries.iter().filter(|e| e.fired > 0).count(),
    }
}

/// Is a plan currently armed?
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arm from the `MUSE_FAULTS` environment variable. Returns the parsed
/// plan when one was armed, `None` when the variable is unset or empty.
/// Libraries never call this — only binary entry points (the CLI, the
/// chaos harness, the governor bench) opt in.
pub fn arm_from_env() -> Result<Option<FaultPlan>, String> {
    match std::env::var("MUSE_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            let plan = parse_spec(&spec)?;
            arm(plan.clone());
            Ok(Some(plan))
        }
        _ => Ok(None),
    }
}

/// RAII guard that disarms on drop; use [`arm_scoped`] in tests.
pub struct ArmGuard(());

impl Drop for ArmGuard {
    fn drop(&mut self) {
        disarm();
    }
}

/// Arm `plan` and return a guard that disarms when dropped.
#[must_use = "the plan disarms when the guard drops"]
pub fn arm_scoped(plan: FaultPlan) -> ArmGuard {
    arm(plan);
    ArmGuard(())
}

/// The injection hook. Sites call this with their registered point name;
/// when disarmed this is one relaxed atomic load. When an armed entry
/// matches this point at (or, while it has firings left, past) its hit
/// count it fires: `panic` entries unwind with an [`InjectedPanic`]
/// payload, the other kinds are returned for the site to translate into
/// its own degradation path.
pub fn point(name: &'static str) -> Option<Fault> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    point_slow(name)
}

#[inline(never)]
fn point_slow(name: &'static str) -> Option<Fault> {
    let mut guard = lock_state();
    let state = guard.as_mut()?;
    let hit = state.hits.entry(name.to_owned()).or_insert(0);
    *hit += 1;
    let hit = *hit;
    for e in state.entries.iter_mut() {
        if !e.spent() && e.entry.point == name && hit >= e.entry.at_hit {
            e.fired += 1;
            state.injected += 1;
            let kind = e.entry.kind;
            drop(guard);
            return match kind {
                FaultKind::Panic => {
                    std::panic::panic_any(InjectedPanic { point: name });
                }
                FaultKind::Deadline => Some(Fault::DeadlineExpiry),
                FaultKind::TermCap => Some(Fault::TermCapExhaustion),
                FaultKind::Io => Some(Fault::IoError),
            };
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fault state is process-global; serialize the tests that arm plans.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_point_is_noop() {
        let _s = serial();
        disarm();
        assert_eq!(point(faultpoints::QUERY_EVAL), None);
        assert!(!armed());
    }

    #[test]
    fn parse_explicit_entries() {
        let plan = parse_spec("chase.fire_unit:panic; query.eval:deadline@3").unwrap();
        assert_eq!(plan.entries.len(), 2);
        assert_eq!(plan.entries[0].kind, FaultKind::Panic);
        assert_eq!(plan.entries[0].at_hit, 1);
        assert_eq!(plan.entries[1].point, "query.eval");
        assert_eq!(plan.entries[1].at_hit, 3);
        assert_eq!(
            plan.to_string(),
            "chase.fire_unit:panic@1;query.eval:deadline@3"
        );
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(parse_spec("nope.nope:panic").is_err());
        assert!(
            parse_spec("query.eval:panic").is_err(),
            "not panic-isolated"
        );
        assert!(parse_spec("query.eval:explode").is_err());
        assert!(parse_spec("query.eval:deadline@0").is_err());
        assert!(parse_spec("garbage").is_err());
        assert!(parse_spec("query.eval:io").is_err(), "not IO-capable");
        assert!(parse_spec("serve.wal.append:io@1x0").is_err(), "zero count");
        assert!(parse_spec("serve.wal.append:io@1xbogus").is_err());
        assert!(parse_spec("serve.wal.append:io@x*").is_err(), "empty hit");
    }

    #[test]
    fn parse_repetition_round_trips() {
        // Every shape of the grammar renders back to a canonical spec
        // that re-parses to the same plan.
        let cases = [
            ("serve.wal.append:io@1x*", "serve.wal.append:io@1x*"),
            ("serve.wal.fsync:iox*", "serve.wal.fsync:io@1x*"),
            ("serve.wal.compact:io@2x4", "serve.wal.compact:io@2x4"),
            ("query.eval:deadline@3x1", "query.eval:deadline@3"),
            ("chase.fire_unit:panic", "chase.fire_unit:panic@1"),
            (
                "serve.wal.open:io ; par.worker:panic@2",
                "serve.wal.open:io@1;par.worker:panic@2",
            ),
        ];
        for (spec, canonical) in cases {
            let plan = parse_spec(spec).unwrap_or_else(|e| panic!("`{spec}`: {e}"));
            assert_eq!(plan.to_string(), canonical, "render of `{spec}`");
            let again = parse_spec(&plan.to_string()).unwrap();
            assert_eq!(again, plan, "round-trip of `{spec}`");
        }
        let sticky = parse_spec("serve.wal.append:io@2x*").unwrap();
        assert_eq!(sticky.entries[0].repeat, Repeat::Sticky);
        assert_eq!(sticky.entries[0].at_hit, 2);
        assert_eq!(sticky.entries[0].kind, FaultKind::Io);
    }

    #[test]
    fn sticky_fault_fires_forever_from_its_hit() {
        let _s = serial();
        let _g = arm_scoped(parse_spec("serve.wal.append:io@2x*").unwrap());
        assert_eq!(point(faultpoints::SERVE_WAL_APPEND), None);
        for _ in 0..10 {
            assert_eq!(point(faultpoints::SERVE_WAL_APPEND), Some(Fault::IoError));
        }
        let st = stats().unwrap();
        assert_eq!(st.injected, 10);
        assert_eq!(st.fired, 1);
        assert_eq!(st.hits.get(faultpoints::SERVE_WAL_APPEND), Some(&11));
    }

    #[test]
    fn counted_fault_fires_exactly_n_times() {
        let _s = serial();
        let _g = arm_scoped(parse_spec("query.eval:deadline@2x3").unwrap());
        assert_eq!(point(faultpoints::QUERY_EVAL), None);
        for _ in 0..3 {
            assert_eq!(point(faultpoints::QUERY_EVAL), Some(Fault::DeadlineExpiry));
        }
        assert_eq!(point(faultpoints::QUERY_EVAL), None);
        assert_eq!(point(faultpoints::QUERY_EVAL), None);
        let st = stats().unwrap();
        assert_eq!(st.injected, 3);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_valid() {
        let a = plan_from_seed(42, 5);
        let b = plan_from_seed(42, 5);
        assert_eq!(a, b);
        assert_ne!(a, plan_from_seed(43, 5));
        for e in &a.entries {
            assert!(faultpoints::is_registered(&e.point));
            if e.kind == FaultKind::Panic {
                assert!(faultpoints::is_panic_isolated(&e.point));
            }
            assert!(e.at_hit >= 1);
        }
        // `seed:` entries expand inside a spec.
        let via_spec = parse_spec("seed:42x5").unwrap();
        assert_eq!(via_spec, a);
    }

    #[test]
    fn one_shot_fault_fires_exactly_once_at_its_hit() {
        let _s = serial();
        let _g = arm_scoped(parse_spec("query.eval:deadline@2").unwrap());
        assert_eq!(point(faultpoints::QUERY_EVAL), None);
        assert_eq!(point(faultpoints::QUERY_EVAL), Some(Fault::DeadlineExpiry));
        assert_eq!(point(faultpoints::QUERY_EVAL), None);
        let st = stats().unwrap();
        assert_eq!(st.injected, 1);
        assert_eq!(st.fired, 1);
        assert_eq!(st.hits.get("query.eval"), Some(&3));
    }

    #[test]
    fn injected_panic_carries_typed_payload() {
        let _s = serial();
        let _g = arm_scoped(parse_spec("par.worker:panic").unwrap());
        let caught = std::panic::catch_unwind(|| point(faultpoints::PAR_WORKER));
        let payload = caught.expect_err("panic fault must unwind");
        let injected = payload
            .downcast_ref::<InjectedPanic>()
            .expect("payload is InjectedPanic");
        assert_eq!(injected.point, faultpoints::PAR_WORKER);
    }

    #[test]
    fn disarm_returns_final_stats() {
        let _s = serial();
        arm(parse_spec("chase.binding:termcap").unwrap());
        assert_eq!(
            point(faultpoints::CHASE_BINDING),
            Some(Fault::TermCapExhaustion)
        );
        let st = disarm().expect("was armed");
        assert_eq!(st.injected, 1);
        assert_eq!(st.planned, 1);
        assert!(!armed());
        assert_eq!(stats(), None);
    }
}
