//! Seeded WAL corruption fuzz (ISSUE 9, satellite): flip a bit at every
//! byte offset of a small multi-session log, and truncate it at every
//! length. Salvage must never panic or fail the open, must always
//! recover the full prefix of frames preceding the first corrupted byte,
//! and the repair must be idempotent (a second open is clean and loses
//! nothing more).

use std::path::{Path, PathBuf};

use muse_obs::Json;
use muse_serve::wal::{quarantine_path, Wal};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("muse_wal_fuzz_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn cleanup(path: &Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(quarantine_path(path));
}

/// A small multi-session log: create/answer/snapshot records of varying
/// size across three interleaved sessions, like a real serve WAL.
fn build_reference(path: &Path) -> Vec<Json> {
    cleanup(path);
    let mut records = Vec::new();
    for i in 0..4i64 {
        for session in 0..3i64 {
            let rec = if i == 0 {
                Json::obj(vec![
                    ("rec", Json::str("create")),
                    ("session", Json::Int(session)),
                    ("cfg", Json::obj(vec![("scenario", Json::str("DBLP"))])),
                ])
            } else {
                Json::obj(vec![
                    ("rec", Json::str("answer")),
                    ("session", Json::Int(session)),
                    (
                        "answer",
                        Json::obj(vec![
                            ("kind", Json::str("join")),
                            ("pick", Json::str("inner")),
                            ("seq", Json::Int(i)),
                        ]),
                    ),
                ])
            };
            records.push(rec);
        }
    }
    let (wal, existing, report) = Wal::open(path).expect("seed open");
    assert!(existing.is_empty() && report.is_clean());
    for rec in &records {
        wal.append(rec).expect("seed append");
    }
    records
}

/// Byte ranges `[start, end)` of each frame in a clean log image.
fn frame_bounds(data: &[u8]) -> Vec<(usize, usize)> {
    let mut bounds = Vec::new();
    let mut off = 0usize;
    while off < data.len() {
        let len =
            u32::from_le_bytes([data[off], data[off + 1], data[off + 2], data[off + 3]]) as usize;
        let end = off + 8 + len;
        assert!(end <= data.len(), "reference log is not clean");
        bounds.push((off, end));
        off = end;
    }
    bounds
}

fn renders(records: &[Json]) -> Vec<String> {
    records.iter().map(Json::render).collect()
}

#[test]
fn bit_flip_at_every_offset_never_loses_the_preceding_prefix() {
    let reference_path = scratch("flip_reference.wal");
    let records = build_reference(&reference_path);
    let clean = std::fs::read(&reference_path).unwrap();
    let bounds = frame_bounds(&clean);
    assert_eq!(bounds.len(), records.len());
    let expected = renders(&records);
    cleanup(&reference_path);

    let victim = scratch("flip_victim.wal");
    for offset in 0..clean.len() {
        cleanup(&victim);
        let mut data = clean.clone();
        data[offset] ^= 1 << (offset % 8);
        std::fs::write(&victim, &data).unwrap();

        // The index of the frame the flip landed in: everything before it
        // is an acked prefix that salvage must preserve verbatim.
        let intact = bounds.iter().take_while(|(_, end)| *end <= offset).count();

        let (wal, recovered, report) = Wal::open(&victim)
            .unwrap_or_else(|e| panic!("open failed at flip offset {offset}: {e}"));
        assert!(
            recovered.len() >= intact,
            "flip at {offset}: {} recovered, prefix is {intact}",
            recovered.len()
        );
        assert_eq!(
            renders(&recovered[..intact]),
            expected[..intact],
            "flip at {offset} corrupted the pre-corruption prefix"
        );
        // A single flipped payload bit fails the checksum, so the frame it
        // landed in never resurfaces with altered content *as that frame* —
        // either it is quarantined or (header flips) merged into a skip
        // region. Salvaged later frames are counted, never silently kept.
        if !report.is_clean() {
            assert!(report.quarantined_bytes > 0 || report.salvaged_frames > 0);
        }
        drop(wal);

        // Repair idempotence: the rewritten log opens clean and holds
        // exactly what the salvage pass recovered.
        let (_, again, report2) = Wal::open(&victim)
            .unwrap_or_else(|e| panic!("re-open failed at flip offset {offset}: {e}"));
        assert!(
            report2.is_clean(),
            "flip at {offset}: repaired log still dirty"
        );
        assert_eq!(
            renders(&again),
            renders(&recovered),
            "flip at {offset}: repair lost or invented frames"
        );
    }
    cleanup(&victim);
}

#[test]
fn truncation_at_every_length_keeps_exactly_the_whole_frames() {
    let reference_path = scratch("trunc_reference.wal");
    let records = build_reference(&reference_path);
    let clean = std::fs::read(&reference_path).unwrap();
    let bounds = frame_bounds(&clean);
    let expected = renders(&records);
    cleanup(&reference_path);

    let victim = scratch("trunc_victim.wal");
    for cut in 0..=clean.len() {
        cleanup(&victim);
        std::fs::write(&victim, &clean[..cut]).unwrap();

        let whole = bounds.iter().take_while(|(_, end)| *end <= cut).count();
        let (_, recovered, report) =
            Wal::open(&victim).unwrap_or_else(|e| panic!("open failed at cut {cut}: {e}"));
        assert_eq!(
            renders(&recovered),
            expected[..whole],
            "cut at {cut}: recovered frames diverge from the intact prefix"
        );
        // A truncation is the torn-tail crash shape: silently dropped,
        // never quarantined.
        assert!(
            report.is_clean(),
            "cut at {cut}: torn tail was misclassified as corruption"
        );
        assert!(
            !quarantine_path(&victim).exists(),
            "cut at {cut}: torn tail produced a quarantine file"
        );
    }
    cleanup(&victim);
}
