//! Golden wire-protocol transcripts: one full HTTP session per scenario —
//! create, every question/answer exchange, final report — captured off the
//! wire of a live server and diffed byte-for-byte against the committed
//! files in `tests/golden/`. Any change to the protocol encoding, question
//! payloads, prompt rendering, or report shape shows up as a readable diff.
//!
//! Volatile `"timing"` members are stripped before comparison; everything
//! else is a pure function of the scenario and the scripted answers.
//!
//! Regenerate after an *intended* change with:
//!
//! ```text
//! MUSE_BLESS=1 cargo test -p muse-serve --test golden_wire
//! ```

use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use muse_obs::{Json, Metrics};
use muse_serve::{client, proto, Client, Server, ServerConfig};

/// Scripted default policy: scenario 2 (the designer's intended grouping in
/// every scenario walkthrough), first alternative of each ambiguity, inner
/// joins.
fn scripted_answer(question: &Json) -> Json {
    match question.get("kind").and_then(Json::as_str) {
        Some("scenario") => Json::obj(vec![
            ("kind", Json::str("scenario")),
            ("pick", Json::Int(2)),
        ]),
        Some("choices") => {
            let n = question
                .get("choices")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len);
            Json::obj(vec![
                ("kind", Json::str("choices")),
                (
                    "picks",
                    Json::Arr((0..n).map(|_| Json::Arr(vec![Json::Int(0)])).collect()),
                ),
            ])
        }
        _ => Json::obj(vec![
            ("kind", Json::str("join")),
            ("pick", Json::str("inner")),
        ]),
    }
}

/// Run one scripted session over HTTP and return the wire transcript.
/// `max_exchanges = None` drives the session to `done` and includes the
/// report; `Some(n)` records only the first `n` exchanges of an open
/// session — the big scenarios (Mondial: 800+ questions) get bounded
/// prefix transcripts so the golden files stay reviewable.
fn wire_transcript(scenario: &str, max_exchanges: Option<usize>) -> Json {
    let server = Arc::new(Server::bind(ServerConfig::default(), Metrics::enabled()).expect("bind"));
    let addr = server.local_addr().expect("local addr").to_string();
    let runner = Arc::clone(&server);
    let handle = thread::spawn(move || runner.run().expect("server run"));
    client::wait_ready(&addr, Duration::from_secs(10)).expect("ready");
    let http = Client::new(addr);

    // No instance: synthetic examples only, so the transcript is a pure
    // function of the scenario definition.
    let create_request = Json::obj(vec![
        ("scenario", Json::str(scenario)),
        ("use_instance", Json::Bool(false)),
        ("join_options", Json::Bool(true)),
    ]);
    let mut state = http.create_session(&create_request).expect("create");
    let id = state.get("session").and_then(Json::as_int).expect("id") as u64;
    let create_response = state.clone();

    let mut exchanges = Vec::new();
    let mut report = None;
    loop {
        if max_exchanges.is_some_and(|n| exchanges.len() >= n) {
            break;
        }
        if state.get("status").and_then(Json::as_str) != Some("open") {
            report = Some(http.report(id).expect("report"));
            break;
        }
        let question = state.get("question").expect("open without question");
        let answer = scripted_answer(question);
        state = http.answer(id, &answer).expect("answer");
        exchanges.push(Json::obj(vec![
            ("request", answer),
            ("response", state.clone()),
        ]));
    }

    http.shutdown().expect("shutdown");
    handle.join().expect("join");

    let mut fields = vec![
        ("create_request", create_request),
        ("create_response", create_response),
        ("exchanges", Json::Arr(exchanges)),
    ];
    if let Some(report) = report {
        fields.push(("report_response", report));
    }
    let mut transcript = Json::obj(fields);
    proto::strip_volatile(&mut transcript);
    transcript
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Diff `transcript` against the committed golden file, or rewrite the file
/// when `MUSE_BLESS` is set.
fn assert_golden(name: &str, transcript: &str) {
    let path = golden_path(name);
    if std::env::var_os("MUSE_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, transcript).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {} ({e}); run with MUSE_BLESS=1 to create it",
            path.display()
        )
    });
    if transcript != expected {
        let line = transcript
            .lines()
            .zip(expected.lines())
            .position(|(a, b)| a != b)
            .map_or_else(
                || transcript.lines().count().min(expected.lines().count()),
                |i| i + 1,
            );
        panic!(
            "wire transcript diverges from {} at line {line}\n\
             (bless the new transcript with MUSE_BLESS=1 if the change is intended)",
            path.display()
        );
    }
}

fn check(scenario: &str, file: &str, max_exchanges: Option<usize>) {
    let transcript = wire_transcript(scenario, max_exchanges);
    let mut text = transcript.render_pretty();
    text.push('\n');
    assert_golden(file, &text);
}

#[test]
fn wire_transcript_mondial() {
    check("Mondial", "wire_mondial.json", Some(8));
}

#[test]
fn wire_transcript_dblp() {
    check("DBLP", "wire_dblp.json", None);
}

#[test]
fn wire_transcript_tpch() {
    check("TPCH", "wire_tpch.json", Some(8));
}

#[test]
fn wire_transcript_amalgam() {
    check("Amalgam", "wire_amalgam.json", None);
}
