//! Degraded-mode e2e (ISSUE 9): a live in-process server under injected
//! storage faults. Sticky WAL append faults must shed mutations with
//! `503` while reads keep serving from memory, `/healthz` must report the
//! state machine, clearing the fault must restore `healthy` without a
//! restart, repeated step panics must quarantine the session, and a
//! salvaged WAL must surface its counters in `/metrics`.

use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use muse_obs::{Json, Metrics};
use muse_serve::{client, Client, Server, ServerConfig};

/// Fault plans are process-global; tests that arm one are serialized.
static FAULTS: Mutex<()> = Mutex::new(());

fn fault_lock() -> MutexGuard<'static, ()> {
    FAULTS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Bind + run a server on an ephemeral port; returns (client, server,
/// join handle). Callers must `client.shutdown()` and join.
fn spawn(cfg: ServerConfig) -> (Client, Arc<Server>, thread::JoinHandle<()>) {
    let server = Arc::new(Server::bind(cfg, Metrics::enabled()).expect("bind"));
    let addr = server.local_addr().expect("local addr").to_string();
    let runner = Arc::clone(&server);
    let handle = thread::spawn(move || runner.run().expect("server run"));
    client::wait_ready(&addr, Duration::from_secs(10)).expect("ready");
    (Client::new(addr), server, handle)
}

fn dblp_cfg() -> Json {
    Json::obj(vec![
        ("scenario", Json::str("DBLP")),
        ("use_instance", Json::Bool(false)),
    ])
}

fn counter(metrics: &Json, name: &str) -> i64 {
    metrics
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Json::as_int)
        .unwrap_or(0)
}

fn healthz_state(client: &Client) -> String {
    let health = client.healthz().expect("healthz");
    health
        .get("state")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("healthz without state: {}", health.render()))
        .to_owned()
}

fn wait_for_state(client: &Client, want: &str, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let state = healthz_state(client);
        if state == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "server stuck in `{state}`, wanted `{want}`"
        );
        thread::sleep(Duration::from_millis(20));
    }
}

fn temp_wal(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("muse_degraded_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("sessions.wal")
}

/// The tentpole acceptance scenario: a sticky `serve.wal.append:io` fault
/// sheds mutations with `503`, reads and `/healthz` keep answering,
/// and clearing the fault restores `healthy` without a restart.
#[test]
fn sticky_append_fault_degrades_and_recovers_without_restart() {
    let _serial = fault_lock();
    let wal = temp_wal("sticky");
    let (client, server, handle) = spawn(ServerConfig {
        wal: Some(wal.clone()),
        recovery_probe_ms: 25,
        ..ServerConfig::default()
    });

    // Healthy: the session opens and healthz says so.
    assert_eq!(healthz_state(&client), "healthy");
    let created = client.create_session(&dblp_cfg()).expect("create");
    let id = created.get("session").and_then(Json::as_int).unwrap() as u64;
    let question = created.get("question").expect("open question").clone();

    // Disk goes bad: every append fails from now on.
    muse_fault::arm(muse_fault::parse_spec("serve.wal.append:iox*").unwrap());

    let mut impatient = Client::new(server.local_addr().unwrap().to_string());
    impatient.retries = 0;
    let answer = Json::obj(vec![
        ("kind", Json::str("scenario")),
        ("pick", Json::Int(2)),
    ]);

    // First mutation trips the failure and is not acknowledged.
    let (status, body) = impatient
        .request("POST", &format!("/sessions/{id}/answer"), Some(&answer))
        .expect("answer request");
    assert_eq!(status, 503, "{}", body.render());
    assert_eq!(healthz_state(&impatient), "degraded");

    // Subsequent mutations are shed up front; creates are shed too.
    let (status, _) = impatient
        .request("POST", &format!("/sessions/{id}/answer"), Some(&answer))
        .expect("shed answer");
    assert_eq!(status, 503);
    let (status, _) = impatient
        .request("POST", "/sessions", Some(&dblp_cfg()))
        .expect("shed create");
    assert_eq!(status, 503);

    // Reads keep serving from memory: the un-acked answer did not land.
    let state = impatient.question(id).expect("question while degraded");
    assert_eq!(state.get("status").and_then(Json::as_str), Some("open"));
    assert_eq!(
        state.get("question").map(Json::render),
        Some(question.render()),
        "failed mutation must not advance the session"
    );
    impatient.metrics().expect("metrics while degraded");

    // The disk heals: the recovery probe restores `healthy`, no restart.
    muse_fault::disarm();
    wait_for_state(&impatient, "healthy", Duration::from_secs(10));

    // The retried mutation now succeeds and the session advances.
    let state = impatient
        .answer(id, &answer)
        .expect("answer after recovery");
    assert_eq!(state.get("accepted"), Some(&Json::Bool(true)));
    assert_ne!(
        state.get("question").map(Json::render),
        Some(question.render())
    );

    let metrics = impatient.metrics().expect("metrics");
    assert!(
        counter(&metrics, "serve.wal_errors") >= 1,
        "{}",
        metrics.render()
    );
    assert!(
        counter(&metrics, "serve.degraded_sheds") >= 2,
        "{}",
        metrics.render()
    );
    assert!(
        counter(&metrics, "serve.recoveries") >= 1,
        "{}",
        metrics.render()
    );
    assert!(
        counter(&metrics, "serve.health_transitions") >= 2,
        "{}",
        metrics.render()
    );

    client.shutdown().expect("shutdown");
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(wal.parent().unwrap());
}

/// A session whose step panics repeatedly is quarantined with a
/// structured 500, and the quarantine outlives the fault (until restart).
#[test]
fn repeated_step_panics_quarantine_the_session() {
    let _serial = fault_lock();
    let (client, server, handle) = spawn(ServerConfig::default());

    let created = client.create_session(&dblp_cfg()).expect("create");
    let id = created.get("session").and_then(Json::as_int).unwrap() as u64;

    muse_fault::arm(muse_fault::parse_spec("serve.session.step:panicx*").unwrap());

    let answer = Json::obj(vec![
        ("kind", Json::str("scenario")),
        ("pick", Json::Int(2)),
    ]);
    let mut impatient = Client::new(server.local_addr().unwrap().to_string());
    impatient.retries = 0;
    for attempt in 1..=3u32 {
        let (status, body) = impatient
            .request("POST", &format!("/sessions/{id}/answer"), Some(&answer))
            .expect("answer request");
        assert_eq!(status, 500, "attempt {attempt}: {}", body.render());
        if attempt == 3 {
            assert_eq!(
                body.get("quarantined"),
                Some(&Json::Bool(true)),
                "attempt {attempt}: {}",
                body.render()
            );
        }
    }

    // Quarantine is sticky even after the fault clears.
    muse_fault::disarm();
    let (status, body) = impatient
        .request("GET", &format!("/sessions/{id}/question"), None)
        .expect("question");
    assert_eq!(status, 500, "{}", body.render());
    assert_eq!(body.get("quarantined"), Some(&Json::Bool(true)));

    let metrics = impatient.metrics().expect("metrics");
    assert_eq!(
        counter(&metrics, "serve.sessions_quarantined"),
        1,
        "{}",
        metrics.render()
    );
    assert!(
        counter(&metrics, "serve.step_panics") >= 3,
        "{}",
        metrics.render()
    );

    // Other sessions are unaffected by the quarantine.
    let fresh = impatient.create_session(&dblp_cfg()).expect("create");
    assert_eq!(fresh.get("status").and_then(Json::as_str), Some("open"));

    client.shutdown().expect("shutdown");
    handle.join().unwrap();
}

/// A server binding to a corrupted WAL salvages what survives and surfaces
/// the salvage counters in `/metrics`.
#[test]
fn salvage_counters_are_visible_in_metrics() {
    let _serial = fault_lock();
    let wal = temp_wal("salvage");

    // Seed the log with noop frames (replay skips them), then corrupt one
    // payload byte of the second frame.
    {
        let (log, _, _) = muse_serve::wal::Wal::open(&wal).expect("seed wal");
        for _ in 0..5 {
            log.append(&Json::obj(vec![("rec", Json::str("noop"))]))
                .expect("seed append");
        }
    }
    let mut data = std::fs::read(&wal).unwrap();
    let frame_len = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize + 8;
    data[frame_len + 10] ^= 0xFF;
    std::fs::write(&wal, &data).unwrap();

    let (client, _server, handle) = spawn(ServerConfig {
        wal: Some(wal.clone()),
        ..ServerConfig::default()
    });

    let metrics = client.metrics().expect("metrics");
    assert_eq!(
        counter(&metrics, "serve.wal_salvaged_frames"),
        3,
        "{}",
        metrics.render()
    );
    assert_eq!(
        counter(&metrics, "serve.wal_quarantined_bytes"),
        frame_len as i64,
        "{}",
        metrics.render()
    );
    let quarantine = muse_serve::wal::quarantine_path(&wal);
    assert_eq!(
        std::fs::read(&quarantine).expect("quarantine file").len(),
        frame_len,
        "quarantined bytes preserved for post-mortem"
    );

    // The salvaged server still takes new sessions.
    client.create_session(&dblp_cfg()).expect("create");

    client.shutdown().expect("shutdown");
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(wal.parent().unwrap());
}
