//! End-to-end tests against a live in-process server: interactive and
//! oracle sessions over real TCP, error statuses, backpressure, and
//! restart-replay on the same WAL.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use muse_obs::{Json, Metrics};
use muse_serve::{client, proto, Client, Server, ServerConfig};

/// Bind + run a server on an ephemeral port; returns (client, server,
/// join handle). Callers must `client.shutdown()` and join.
fn spawn(cfg: ServerConfig) -> (Client, Arc<Server>, thread::JoinHandle<()>) {
    let server = Arc::new(Server::bind(cfg, Metrics::enabled()).expect("bind"));
    let addr = server.local_addr().expect("local addr").to_string();
    let runner = Arc::clone(&server);
    let handle = thread::spawn(move || runner.run().expect("server run"));
    client::wait_ready(&addr, Duration::from_secs(10)).expect("ready");
    (Client::new(addr), server, handle)
}

fn small_cfg(scenario: &str) -> Json {
    Json::obj(vec![
        ("scenario", Json::str(scenario)),
        ("use_instance", Json::Bool(false)),
    ])
}

/// Default interactive policy: scenario 2, first alternative, inner join.
fn default_answer(question: &Json) -> Json {
    match question.get("kind").and_then(Json::as_str) {
        Some("scenario") => Json::obj(vec![
            ("kind", Json::str("scenario")),
            ("pick", Json::Int(2)),
        ]),
        Some("choices") => {
            let n = question
                .get("choices")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len);
            Json::obj(vec![
                ("kind", Json::str("choices")),
                (
                    "picks",
                    Json::Arr((0..n).map(|_| Json::Arr(vec![Json::Int(0)])).collect()),
                ),
            ])
        }
        _ => Json::obj(vec![
            ("kind", Json::str("join")),
            ("pick", Json::str("inner")),
        ]),
    }
}

/// Drive an open session to done with `default_answer`; returns the
/// transcript of question payloads seen along the way.
fn drive(client: &Client, id: u64, mut state: Json) -> Vec<Json> {
    let mut transcript = Vec::new();
    loop {
        match state.get("status").and_then(Json::as_str) {
            Some("done") => return transcript,
            Some("open") => {}
            other => panic!("unexpected status {other:?} in {}", state.render()),
        }
        let question = state
            .get("question")
            .expect("open without question")
            .clone();
        let answer = default_answer(&question);
        transcript.push(question);
        state = client.answer(id, &answer).expect("answer");
        assert_eq!(
            state.get("accepted"),
            Some(&Json::Bool(true)),
            "{}",
            state.render()
        );
    }
}

#[test]
fn interactive_session_matches_offline_stepper() {
    let (client, server, handle) = spawn(ServerConfig::default());

    let created = client.create_session(&small_cfg("DBLP")).expect("create");
    let id = created.get("session").and_then(Json::as_int).unwrap() as u64;
    assert_eq!(created.get("status").and_then(Json::as_str), Some("open"));

    let transcript = drive(&client, id, created);
    assert!(!transcript.is_empty());

    let mut report = client.report(id).expect("report");
    proto::strip_volatile(&mut report);

    // The offline reference: same scenario, same stepper, same answers.
    let cfg = muse_serve::SessionCfg {
        scenario: "DBLP".to_owned(),
        use_instance: false,
        ..muse_serve::SessionCfg::default()
    };
    let ctx = muse_serve::store::SessionCtx::build(&cfg).unwrap();
    let session = muse_wizard::Session::new(
        &ctx.scenario.source_schema,
        &ctx.scenario.target_schema,
        &ctx.scenario.source_constraints,
    )
    .with_real_example_budget(None);
    let mut answers = Vec::new();
    let offline = loop {
        match session.step(&ctx.mappings, &answers).unwrap() {
            muse_wizard::Step::Ask { seq, question } => {
                let wire = proto::question_json(
                    seq,
                    &question,
                    &ctx.scenario.source_schema,
                    &ctx.scenario.target_schema,
                );
                assert_eq!(wire.render(), transcript[seq].render(), "question {seq}");
                answers.push(proto::answer_from_json(&default_answer(&wire)).unwrap());
            }
            muse_wizard::Step::Done(report) => break report,
        }
    };
    let offline_stable = proto::report_stable_json(&offline);
    assert_eq!(
        report
            .get("result")
            .and_then(|r| r.get("report"))
            .map(Json::render),
        Some(offline_stable.render()),
        "HTTP report != offline report"
    );

    client.shutdown().expect("shutdown");
    handle.join().unwrap();
    assert_eq!(server.store().len(), 1);
}

#[test]
fn oracle_session_completes_on_create() {
    let (client, _server, handle) = spawn(ServerConfig::default());

    let mut cfg = small_cfg("DBLP");
    if let Json::Obj(fields) = &mut cfg {
        fields.push(("strategy".to_owned(), Json::str("g2")));
    }
    let created = client.create_session(&cfg).expect("create");
    assert_eq!(created.get("status").and_then(Json::as_str), Some("done"));
    let id = created.get("session").and_then(Json::as_int).unwrap() as u64;

    let report = client.report(id).expect("report");
    let answers = report.get("answers").and_then(Json::as_int).unwrap();
    assert!(answers > 0, "oracle answered no questions");
    let total = report
        .get("result")
        .and_then(|r| r.get("report"))
        .and_then(|r| r.get("total_questions"))
        .and_then(Json::as_int)
        .unwrap();
    assert_eq!(answers, total);

    client.shutdown().expect("shutdown");
    handle.join().unwrap();
}

#[test]
fn protocol_errors_have_the_documented_statuses() {
    let (client, _server, handle) = spawn(ServerConfig {
        max_sessions: 1,
        ..ServerConfig::default()
    });

    // 404: unknown route and unknown session.
    assert!(client.request("GET", "/nope", None).unwrap().0 == 404);
    assert!(
        client
            .request("GET", "/sessions/99/question", None)
            .unwrap()
            .0
            == 404
    );
    // 405: wrong method on a known path.
    assert!(client.request("DELETE", "/healthz", None).unwrap().0 == 405);
    // 400: malformed create bodies.
    let (status, body) = client
        .request("POST", "/sessions", Some(&Json::obj(vec![])))
        .unwrap();
    assert_eq!(status, 400, "{}", body.render());
    let (status, _) = client
        .request(
            "POST",
            "/sessions",
            Some(&Json::obj(vec![("scenario", Json::str("NoSuch"))])),
        )
        .unwrap();
    assert_eq!(status, 400);

    let created = client.create_session(&small_cfg("DBLP")).expect("create");
    let id = created.get("session").and_then(Json::as_int).unwrap() as u64;

    // 400: a rejected answer leaves the session open on the same question.
    let bad = Json::obj(vec![
        ("kind", Json::str("join")),
        ("pick", Json::str("inner")),
    ]);
    let (status, _) = client
        .request("POST", &format!("/sessions/{id}/answer"), Some(&bad))
        .unwrap();
    assert_eq!(status, 400);
    let again = client.question(id).expect("question");
    assert_eq!(
        again.get("question").map(Json::render),
        created.get("question").map(Json::render),
        "rejected answer must not advance the session"
    );

    // 409: report on an open session.
    let (status, _) = client
        .request("GET", &format!("/sessions/{id}/report"), None)
        .unwrap();
    assert_eq!(status, 409);

    client.shutdown().expect("shutdown");
    handle.join().unwrap();
}

#[test]
fn capacity_overflow_is_shed_with_503() {
    let (client, server, handle) = spawn(ServerConfig {
        max_sessions: 1,
        ..ServerConfig::default()
    });
    client.create_session(&small_cfg("DBLP")).expect("create");

    let addr = server.local_addr().unwrap().to_string();
    let mut impatient = Client::new(addr);
    impatient.retries = 0;
    let (status, body) = impatient
        .request("POST", "/sessions", Some(&small_cfg("DBLP")))
        .unwrap();
    assert_eq!(status, 503, "{}", body.render());

    client.shutdown().expect("shutdown");
    handle.join().unwrap();
}

#[test]
fn restart_on_the_same_wal_replays_open_sessions() {
    let dir = std::env::temp_dir().join(format!("muse_serve_replay_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let wal = dir.join("sessions.wal");

    let cfg = || ServerConfig {
        wal: Some(wal.clone()),
        ..ServerConfig::default()
    };

    // First life: open a session, answer one question, shut down.
    let (client, _server, handle) = spawn(cfg());
    let created = client.create_session(&small_cfg("DBLP")).expect("create");
    let id = created.get("session").and_then(Json::as_int).unwrap() as u64;
    let q0 = created.get("question").unwrap().render();
    let state = client
        .answer(id, &default_answer(created.get("question").unwrap()))
        .expect("answer");
    let q1 = state.get("question").expect("still open").render();
    assert_ne!(q0, q1);
    client.shutdown().expect("shutdown");
    handle.join().unwrap();

    // Second life: same WAL — the session resumes at question 1.
    let (client, server, handle) = spawn(cfg());
    assert_eq!(server.store().len(), 1);
    let resumed = client.question(id).expect("question");
    assert_eq!(resumed.get("status").and_then(Json::as_str), Some("open"));
    assert_eq!(
        resumed.get("question").map(Json::render),
        Some(q1.clone()),
        "replayed session must resume at its pre-shutdown question"
    );

    // Finish it over the restarted server and cross-check the metrics.
    let transcript = drive(&client, id, resumed);
    assert!(!transcript.is_empty());
    client.report(id).expect("report after replay");
    let metrics = client.metrics().expect("metrics");
    let replays = metrics
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get("serve.replays"))
        .and_then(Json::as_int);
    assert_eq!(replays, Some(1), "{}", metrics.render());

    client.shutdown().expect("shutdown");
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// WAL snapshots carry the session's materialized incremental-chase state;
/// a restart restores it warm (serve.delta_restores) and the resumed
/// session continues at the identical question.
#[test]
fn restart_restores_the_incremental_chase_state() {
    let dir = std::env::temp_dir().join(format!("muse_serve_delta_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let wal = dir.join("sessions.wal");

    let cfg = || ServerConfig {
        wal: Some(wal.clone()),
        // Snapshot after every answer so the delta blob is always current.
        snapshot_every: 1,
        ..ServerConfig::default()
    };

    // First life: Mondial (flat source queries — delta-eligible), one
    // answered question, then shutdown. The probe chases must have
    // materialized state into the session's store.
    let (client, server, handle) = spawn(cfg());
    let created = client
        .create_session(&small_cfg("Mondial"))
        .expect("create");
    let id = created.get("session").and_then(Json::as_int).unwrap() as u64;
    let state = client
        .answer(id, &default_answer(created.get("question").unwrap()))
        .expect("answer");
    let q1 = state.get("question").expect("still open").render();
    let entry = server.store().get(id).expect("entry");
    let materialized = entry.lock().unwrap().delta.len();
    assert!(materialized > 0, "Mondial probes must materialize state");
    drop(entry);
    client.shutdown().expect("shutdown");
    handle.join().unwrap();

    // Second life: the store comes back warm and the session resumes at
    // the same question.
    let (client, server, handle) = spawn(cfg());
    let entry = server.store().get(id).expect("replayed entry");
    assert_eq!(
        entry.lock().unwrap().delta.len(),
        materialized,
        "restored store must hold the snapshotted state"
    );
    drop(entry);
    let resumed = client.question(id).expect("question");
    assert_eq!(resumed.get("question").map(Json::render), Some(q1));
    let metrics = client.metrics().expect("metrics");
    let restores = metrics
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get("serve.delta_restores"))
        .and_then(Json::as_int);
    assert_eq!(restores, Some(1), "{}", metrics.render());

    client.shutdown().expect("shutdown");
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
