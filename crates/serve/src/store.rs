//! The in-memory session store: per-session state plus the stepping logic
//! that drives `muse_wizard::Session::step` from a recorded answer list.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use muse_chase::DeltaStore;
use muse_cliogen::GroupingStrategy;
use muse_nr::Instance;
use muse_obs::{Budget, Json, Metrics};
use muse_scenarios::Scenario;
use muse_wizard::{Answer, ProbeCache, Session, Step, WizardError};

use crate::oracle;
use crate::proto;

/// Everything a `POST /sessions` body may configure. Serialized verbatim
/// into the WAL's create record, so a replayed session rebuilds the exact
/// same deterministic context.
#[derive(Debug, Clone)]
pub struct SessionCfg {
    /// Scenario name (Mondial, DBLP, TPCH, Amalgam; case-insensitive).
    pub scenario: String,
    /// When set, the server answers its own questions with the strategy
    /// oracle (the `muse scenario --strategy` designer) and the session
    /// arrives at `done` immediately.
    pub strategy: Option<GroupingStrategy>,
    /// Instance scale relative to the scenario default (CLI `--scale`).
    pub scale: f64,
    /// Instance generator seed.
    pub seed: u64,
    /// Generate and attach the real source instance (real examples via
    /// `QIe`). Off = synthetic examples only, much cheaper.
    pub use_instance: bool,
    /// Sec. III-C instance-only pruning in Muse-G.
    pub instance_only: bool,
    /// Offer inner/outer join questions (Sec. IV "More options").
    pub join_options: bool,
    /// Budget: wall-clock deadline per request, in ms. Note a deadline
    /// makes replay nondeterministic; prefer the count caps below for
    /// durable sessions.
    pub deadline_ms: Option<u64>,
    /// Budget: max rows per query evaluation.
    pub max_rows: Option<u64>,
    /// Budget: max terms materialized per chase.
    pub max_terms: Option<u64>,
    /// Budget: max chase steps.
    pub max_chase_steps: Option<u64>,
    /// Budget: derive the chase-step cap from the termination analyzer's
    /// static bound (`muse-lint` T-pass), computed once per context at
    /// build time. Tightens, never loosens, an explicit `max_chase_steps`.
    pub auto_chase_steps: bool,
}

impl Default for SessionCfg {
    fn default() -> Self {
        SessionCfg {
            scenario: String::new(),
            strategy: None,
            scale: 0.05,
            seed: 1,
            use_instance: true,
            instance_only: false,
            join_options: false,
            deadline_ms: None,
            max_rows: None,
            max_terms: None,
            max_chase_steps: None,
            auto_chase_steps: false,
        }
    }
}

impl SessionCfg {
    /// Parse a create-request body. Unknown scenario names are caught later
    /// by [`SessionCtx::build`]; unknown *fields* are ignored.
    pub fn from_json(j: &Json) -> Result<SessionCfg, String> {
        let mut cfg = SessionCfg {
            scenario: j
                .get("scenario")
                .and_then(Json::as_str)
                .ok_or("create needs a string `scenario`")?
                .to_owned(),
            ..SessionCfg::default()
        };
        if let Some(s) = j.get("strategy") {
            let name = s.as_str().ok_or("`strategy` must be a string")?;
            cfg.strategy = Some(oracle::parse_strategy(name)?);
        }
        if let Some(v) = j.get("scale") {
            cfg.scale = v
                .as_f64()
                .filter(|s| *s > 0.0)
                .ok_or("`scale` must be > 0")?;
        }
        if let Some(v) = j.get("seed") {
            cfg.seed = v
                .as_int()
                .filter(|s| *s >= 0)
                .ok_or("`seed` must be >= 0")? as u64;
        }
        for (key, slot) in [
            ("use_instance", &mut cfg.use_instance),
            ("instance_only", &mut cfg.instance_only),
            ("join_options", &mut cfg.join_options),
            ("auto_chase_steps", &mut cfg.auto_chase_steps),
        ] {
            if let Some(v) = j.get(key) {
                *slot = match v {
                    Json::Bool(b) => *b,
                    _ => return Err(format!("`{key}` must be a boolean")),
                };
            }
        }
        for (key, slot) in [
            ("deadline_ms", &mut cfg.deadline_ms),
            ("max_rows", &mut cfg.max_rows),
            ("max_terms", &mut cfg.max_terms),
            ("max_chase_steps", &mut cfg.max_chase_steps),
        ] {
            if let Some(v) = j.get(key) {
                let n = v
                    .as_int()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("`{key}` must be a positive integer"))?;
                *slot = Some(n as u64);
            }
        }
        Ok(cfg)
    }

    /// The WAL/create-record encoding; `from_json` of this value yields an
    /// identical config.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("scenario", Json::str(self.scenario.clone())),
            ("scale", Json::Num(self.scale)),
            ("seed", Json::Int(self.seed as i64)),
            ("use_instance", Json::Bool(self.use_instance)),
            ("instance_only", Json::Bool(self.instance_only)),
            ("join_options", Json::Bool(self.join_options)),
        ];
        if let Some(s) = self.strategy {
            fields.insert(1, ("strategy", Json::str(oracle::strategy_name(s))));
        }
        for (key, value) in [
            ("deadline_ms", self.deadline_ms),
            ("max_rows", self.max_rows),
            ("max_terms", self.max_terms),
            ("max_chase_steps", self.max_chase_steps),
        ] {
            if let Some(n) = value {
                fields.push((key, Json::Int(n as i64)));
            }
        }
        if self.auto_chase_steps {
            fields.push(("auto_chase_steps", Json::Bool(true)));
        }
        Json::obj(fields)
    }

    /// The key identifying this config's deterministic replay context —
    /// exactly the fields [`SessionCtx::build`] reads. Two sessions with
    /// equal keys share both a [`SessionCtx`] (via [`CtxCache`]) and a
    /// probe-cache namespace: the wizard's questions are a pure function
    /// of (context, mapping, probe state), so cross-session memo hits are
    /// sound only within one key.
    pub fn ctx_key(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            self.scenario.to_lowercase(),
            self.scale.to_bits(),
            self.seed,
            self.use_instance
        )
    }

    /// The execution budget for one request against this session. Built
    /// fresh per request so a deadline clock restarts each time.
    pub fn budget(&self) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(ms) = self.deadline_ms {
            b = b.with_deadline_in(Duration::from_millis(ms));
        }
        if let Some(n) = self.max_rows {
            b = b.with_max_rows(n);
        }
        if let Some(n) = self.max_terms {
            b = b.with_max_terms(n);
        }
        if let Some(n) = self.max_chase_steps {
            b = b.with_max_chase_steps(n);
        }
        if self.auto_chase_steps {
            b = b.with_auto_chase_steps();
        }
        b
    }
}

/// The deterministic heavy state a session replays against: the scenario
/// bundle, its generated instance, and the candidate mappings.
pub struct SessionCtx {
    /// The owned scenario (schemas, constraints, generator).
    pub scenario: Scenario,
    /// The generated source instance, when `use_instance`.
    pub instance: Option<Instance>,
    /// Candidate mappings from the correspondences (`muse_cliogen`).
    pub mappings: Vec<muse_mapping::Mapping>,
    /// Static chase-step bound over `instance` (termination-analyzer
    /// preflight); `None` without an instance. Resolves a session's
    /// [`Budget::resolve_auto_chase_steps`] request.
    pub chase_step_bound: Option<u64>,
}

impl SessionCtx {
    /// Rebuild the context from a config — the same construction on every
    /// server that replays the same create record.
    pub fn build(cfg: &SessionCfg) -> Result<SessionCtx, String> {
        let mut all = muse_scenarios::all_scenarios();
        let idx = all
            .iter()
            .position(|s| s.name.eq_ignore_ascii_case(&cfg.scenario));
        let scenario = match idx {
            Some(idx) => all.swap_remove(idx),
            // `Synth-<seed>` resolves to a fleet scenario; seed-derived
            // construction is deterministic, so WAL replay rebuilds the
            // identical bundle on any server.
            None => match muse_scenarios::synth::cfg_from_name(&cfg.scenario) {
                Some(synth_cfg) => Scenario::synthetic(synth_cfg),
                None => {
                    return Err(format!(
                        "unknown scenario `{}` (try Mondial, DBLP, TPCH, Amalgam, Synth-<seed>)",
                        cfg.scenario
                    ));
                }
            },
        };
        let instance = cfg
            .use_instance
            .then(|| scenario.instance(scenario.default_scale * cfg.scale, cfg.seed));
        let mappings = scenario
            .mappings()
            .map_err(|e| format!("{}: mapping generation failed: {e}", scenario.name))?;
        let chase_step_bound = instance.as_ref().map(|inst| {
            let sizes = muse_lint::termination::path_sizes(&scenario.source_schema, inst);
            muse_lint::termination::chase_step_bound(
                &scenario.source_schema,
                &scenario.source_constraints,
                &mappings,
                &sizes,
            )
        });
        Ok(SessionCtx {
            scenario,
            instance,
            mappings,
            chase_step_bound,
        })
    }
}

/// A small process-wide cache of built [`SessionCtx`]s, keyed by
/// [`SessionCfg::ctx_key`]. Building a context is the expensive part of
/// session creation (instance generation + mapping enumeration); serving N
/// identical-config sessions should pay for it once. Contexts are built
/// *outside* the cache lock — two racing builds of the same key are both
/// correct (construction is deterministic) and the loser's copy is simply
/// dropped.
pub struct CtxCache {
    cap: usize,
    inner: Mutex<Vec<(String, Arc<SessionCtx>)>>,
}

impl CtxCache {
    /// A cache holding at most `cap` contexts (FIFO eviction).
    pub fn new(cap: usize) -> Self {
        CtxCache {
            cap,
            inner: Mutex::new(Vec::new()),
        }
    }

    /// Return the shared context for `cfg`, building it on a miss.
    pub fn get_or_build(
        &self,
        cfg: &SessionCfg,
        metrics: &Metrics,
    ) -> Result<Arc<SessionCtx>, String> {
        let key = cfg.ctx_key();
        {
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some((_, ctx)) = inner.iter().find(|(k, _)| *k == key) {
                metrics.incr("serve.ctx_cache_hits");
                return Ok(Arc::clone(ctx));
            }
        }
        metrics.incr("serve.ctx_cache_misses");
        let ctx = Arc::new(SessionCtx::build(cfg)?);
        if self.cap > 0 {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if !inner.iter().any(|(k, _)| *k == key) {
                while inner.len() >= self.cap {
                    inner.remove(0);
                }
                inner.push((key, Arc::clone(&ctx)));
            }
        }
        Ok(ctx)
    }
}

/// Where a session currently stands, with its wire payload pre-rendered.
pub enum SessionStatus {
    /// Waiting on question `seq`.
    Open {
        /// Number of recorded answers == index of the open question.
        seq: usize,
        /// The cached `question_json` payload.
        question: Json,
    },
    /// All questions answered.
    Done {
        /// The cached `report_json` payload.
        report: Json,
    },
    /// The wizard failed outright (not a budget truncation — those degrade
    /// into warnings). Surfaced as 500 on every endpoint.
    Failed {
        /// The wizard error, rendered.
        error: String,
    },
    /// The session's `step` panicked repeatedly (the `panic_quarantine`
    /// threshold) and was poisoned: every subsequent request gets a
    /// structured 500 with this reason instead of burning a worker on
    /// another doomed replay. Runtime-only — a restart replays the
    /// session from its WAL history and gives it a fresh chance.
    Quarantined {
        /// Why the session was poisoned.
        reason: String,
    },
}

/// One session: config, context, the answer log mirror, and cached status.
pub struct SessionEntry {
    /// The server-assigned id.
    pub id: u64,
    /// The creation config.
    pub cfg: SessionCfg,
    /// The deterministic replay context, shared across sessions with the
    /// same [`SessionCfg::ctx_key`] (see [`CtxCache`]).
    pub ctx: Arc<SessionCtx>,
    /// The probe-cache namespace ([`SessionCfg::ctx_key`], precomputed).
    pub probe_ctx: String,
    /// Every accepted answer, in question order (mirrors the WAL).
    pub answers: Vec<Answer>,
    /// Cached current state.
    pub status: SessionStatus,
    /// Consecutive `step` panics observed by the server; at the
    /// `panic_quarantine` threshold the session is poisoned. Reset by a
    /// successful step.
    pub panics: u32,
    /// The session's incremental chase store: probe chases across the
    /// quadratic replay rederive unchanged bindings from materialized
    /// state instead of re-chasing from scratch. Byte-invisible in every
    /// response (scratch fallback under budgets/faults); serialized into
    /// WAL snapshot records so a restart restores it warm.
    pub delta: Arc<DeltaStore>,
}

impl SessionEntry {
    /// Re-run the stepper over the recorded answers and refresh `status`.
    /// Returns the step so callers (the oracle loop, the create handler)
    /// can act on the typed question without re-parsing JSON.
    ///
    /// `probes` is the process-wide probe/example memo; it is attached
    /// only when the budget is unlimited — under a deadline or count cap,
    /// a cache hit would bypass the budget's accounting and change which
    /// truncation warnings the wizard reports.
    pub fn advance(
        &mut self,
        metrics: &Metrics,
        probes: Option<&ProbeCache>,
    ) -> Result<Step, WizardError> {
        let mut budget = self.cfg.budget();
        if let Some(bound) = self.ctx.chase_step_bound {
            budget.resolve_auto_chase_steps(bound);
        }
        let mut session = Session::new(
            &self.ctx.scenario.source_schema,
            &self.ctx.scenario.target_schema,
            &self.ctx.scenario.source_constraints,
        )
        .with_budget(&budget)
        .with_metrics(metrics)
        // Exhaustive real-example search: a wall-clock cap here would make
        // replay nondeterministic (see DESIGN.md, replay invariant).
        .with_real_example_budget(None)
        // Safe under any budget: the store itself falls back to a scratch
        // chase (`chase.delta_fallbacks`) whenever the budget is limited.
        .with_delta(&self.delta);
        if let Some(cache) = probes {
            if budget.is_unlimited() {
                session = session.with_probe_cache(cache, &self.probe_ctx);
            }
        }
        if let Some(inst) = &self.ctx.instance {
            session = session.with_instance(inst);
        }
        session.instance_only = self.cfg.instance_only;
        session.offer_join_options = self.cfg.join_options;

        let step = session.step(&self.ctx.mappings, &self.answers)?;
        self.status = match &step {
            Step::Ask { seq, question } => SessionStatus::Open {
                seq: *seq,
                question: proto::question_json(
                    *seq,
                    question,
                    &self.ctx.scenario.source_schema,
                    &self.ctx.scenario.target_schema,
                ),
            },
            Step::Done(report) => SessionStatus::Done {
                report: proto::report_json(report),
            },
        };
        Ok(step)
    }
}

/// The concurrent session map. Lock order: the map lock is never held
/// while taking an entry lock's critical section beyond cloning the `Arc`.
pub struct Store {
    sessions: Mutex<BTreeMap<u64, Arc<Mutex<SessionEntry>>>>,
    next_id: AtomicU64,
    max_sessions: usize,
    open: AtomicU64,
}

impl Store {
    /// An empty store admitting at most `max_sessions` sessions.
    pub fn new(max_sessions: usize) -> Self {
        Store {
            sessions: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            max_sessions,
            open: AtomicU64::new(0),
        }
    }

    fn map(&self) -> std::sync::MutexGuard<'_, BTreeMap<u64, Arc<Mutex<SessionEntry>>>> {
        self.sessions.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Insert a fresh session under a new id; `Err` when at capacity.
    pub fn insert(
        &self,
        cfg: SessionCfg,
        ctx: Arc<SessionCtx>,
    ) -> Result<Arc<Mutex<SessionEntry>>, String> {
        let mut map = self.map();
        if map.len() >= self.max_sessions {
            return Err(format!(
                "session store at capacity ({} sessions)",
                self.max_sessions
            ));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let probe_ctx = cfg.ctx_key();
        let entry = Arc::new(Mutex::new(SessionEntry {
            id,
            cfg,
            ctx,
            probe_ctx,
            answers: Vec::new(),
            status: SessionStatus::Failed {
                error: "session not yet stepped".to_owned(),
            },
            panics: 0,
            delta: Arc::new(DeltaStore::new()),
        }));
        map.insert(id, Arc::clone(&entry));
        Ok(entry)
    }

    /// Insert a session under a WAL-recorded id (replay path); keeps
    /// `next_id` above every replayed id.
    pub fn insert_replayed(
        &self,
        id: u64,
        cfg: SessionCfg,
        ctx: Arc<SessionCtx>,
    ) -> Arc<Mutex<SessionEntry>> {
        let probe_ctx = cfg.ctx_key();
        let entry = Arc::new(Mutex::new(SessionEntry {
            id,
            cfg,
            ctx,
            probe_ctx,
            answers: Vec::new(),
            status: SessionStatus::Failed {
                error: "session not yet stepped".to_owned(),
            },
            panics: 0,
            delta: Arc::new(DeltaStore::new()),
        }));
        self.map().insert(id, Arc::clone(&entry));
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
        entry
    }

    /// Look up a session.
    pub fn get(&self, id: u64) -> Option<Arc<Mutex<SessionEntry>>> {
        self.map().get(&id).cloned()
    }

    /// Drop a session (the create-append-failed rollback: the id was
    /// never acknowledged or logged, so it must not linger in memory).
    pub fn remove(&self, id: u64) -> Option<Arc<Mutex<SessionEntry>>> {
        self.map().remove(&id)
    }

    /// Every session, in id order (replay walks this once at bind time).
    pub fn all(&self) -> Vec<Arc<Mutex<SessionEntry>>> {
        self.map().values().cloned().collect()
    }

    /// Total sessions resident.
    pub fn len(&self) -> usize {
        self.map().len()
    }

    /// True when no session is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The open-sessions gauge (maintained by the server on status
    /// transitions).
    pub fn open_sessions(&self) -> u64 {
        self.open.load(Ordering::Relaxed)
    }

    /// Gauge bump on a session entering the open state.
    pub fn note_opened(&self) {
        self.open.fetch_add(1, Ordering::Relaxed);
    }

    /// Gauge drop on an open session completing or failing.
    pub fn note_closed(&self) {
        // Saturating: replays may close sessions the gauge never saw open.
        let _ = self
            .open
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_round_trips_through_json() {
        let text = "{\"scenario\":\"DBLP\",\"strategy\":\"g2\",\"scale\":0.02,\"seed\":7,\
                    \"use_instance\":false,\"join_options\":true,\"max_terms\":500}";
        let cfg = SessionCfg::from_json(&Json::parse(text).unwrap()).unwrap();
        assert_eq!(cfg.scenario, "DBLP");
        assert_eq!(cfg.strategy, Some(GroupingStrategy::G2));
        assert_eq!(cfg.seed, 7);
        assert!(!cfg.use_instance);
        assert!(cfg.join_options);
        assert_eq!(cfg.max_terms, Some(500));
        let back = SessionCfg::from_json(&cfg.to_json()).unwrap();
        assert_eq!(format!("{back:?}"), format!("{cfg:?}"));
    }

    #[test]
    fn bad_cfg_fields_are_rejected() {
        for text in [
            "{}",
            "{\"scenario\":\"DBLP\",\"scale\":0}",
            "{\"scenario\":\"DBLP\",\"strategy\":\"g9\"}",
            "{\"scenario\":\"DBLP\",\"max_rows\":-5}",
            "{\"scenario\":\"DBLP\",\"use_instance\":1}",
        ] {
            let j = Json::parse(text).unwrap();
            assert!(SessionCfg::from_json(&j).is_err(), "{text}");
        }
    }

    #[test]
    fn synthetic_scenarios_resolve_by_name() {
        let cfg = SessionCfg {
            scenario: "Synth-7".to_owned(),
            use_instance: false,
            ..SessionCfg::default()
        };
        let a = SessionCtx::build(&cfg).unwrap();
        assert_eq!(a.scenario.name, "Synth-7");
        assert!(!a.mappings.is_empty());
        // Replay determinism: a rebuild produces the identical bundle.
        let b = SessionCtx::build(&cfg).unwrap();
        assert_eq!(a.scenario.source_schema, b.scenario.source_schema);
        assert_eq!(a.mappings.len(), b.mappings.len());

        let bad = SessionCfg {
            scenario: "Synth-x".to_owned(),
            ..SessionCfg::default()
        };
        assert!(SessionCtx::build(&bad).is_err());
    }

    #[test]
    fn auto_chase_steps_preflight_caps_the_budget() {
        let cfg = SessionCfg {
            scenario: "DBLP".to_owned(),
            scale: 0.02,
            auto_chase_steps: true,
            ..SessionCfg::default()
        };
        // Round-trips through the WAL encoding.
        let back = SessionCfg::from_json(&cfg.to_json()).unwrap();
        assert!(back.auto_chase_steps);

        let ctx = SessionCtx::build(&cfg).unwrap();
        let bound = ctx.chase_step_bound.expect("instance implies a bound");
        assert!(bound > 0);
        let mut budget = cfg.budget();
        assert!(budget.auto_chase_steps);
        budget.resolve_auto_chase_steps(bound);
        assert_eq!(budget.max_chase_steps, Some(bound));

        // Without an instance there is nothing to bound: the request stays
        // unresolved and the budget caps nothing.
        let no_inst = SessionCfg {
            use_instance: false,
            ..cfg
        };
        let ctx = SessionCtx::build(&no_inst).unwrap();
        assert_eq!(ctx.chase_step_bound, None);
    }

    #[test]
    fn store_enforces_capacity() {
        let store = Store::new(2);
        let cfg = SessionCfg {
            scenario: "DBLP".to_owned(),
            use_instance: false,
            ..SessionCfg::default()
        };
        for _ in 0..2 {
            let ctx = Arc::new(SessionCtx::build(&cfg).unwrap());
            store.insert(cfg.clone(), ctx).unwrap();
        }
        let ctx = Arc::new(SessionCtx::build(&cfg).unwrap());
        assert!(store.insert(cfg.clone(), ctx).is_err());
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn ctx_cache_shares_contexts_by_key() {
        let metrics = Metrics::enabled();
        let cache = CtxCache::new(4);
        let cfg = SessionCfg {
            scenario: "DBLP".to_owned(),
            use_instance: false,
            ..SessionCfg::default()
        };
        let a = cache.get_or_build(&cfg, &metrics).unwrap();
        let b = cache.get_or_build(&cfg, &metrics).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same key must share the context");
        // A different seed is a different key only when the instance is
        // used; with use_instance=false the seed still participates in the
        // key (conservative), so this builds a second context.
        let other = SessionCfg { seed: 9, ..cfg };
        let c = cache.get_or_build(&other, &metrics).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("serve.ctx_cache_hits"), 1);
        assert_eq!(snap.counter("serve.ctx_cache_misses"), 2);
    }

    #[test]
    fn replayed_ids_advance_the_counter() {
        let store = Store::new(16);
        let cfg = SessionCfg {
            scenario: "DBLP".to_owned(),
            use_instance: false,
            ..SessionCfg::default()
        };
        let ctx = Arc::new(SessionCtx::build(&cfg).unwrap());
        store.insert_replayed(7, cfg.clone(), Arc::clone(&ctx));
        let fresh = store.insert(cfg, ctx).unwrap();
        let id = fresh.lock().unwrap().id;
        assert_eq!(id, 8);
    }
}
