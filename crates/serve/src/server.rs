//! The session server: a bounded accept loop over the `muse-par` worker
//! pool, persistent (keep-alive) connections with a dedicated idle poller,
//! WAL-backed session durability with periodic snapshots and compaction,
//! a process-wide probe/example memo shared across sessions, and a
//! graceful drain.
//!
//! Threading model: `run` dedicates one pool item to the accept loop, one
//! to the connection poller, and `threads` items to request workers, all
//! inside one `muse_par::try_scope_map` call — workers are panic-isolated
//! exactly like chase units. A worker handles *one* request per dequeue,
//! then parks the connection; the poller promotes parked connections back
//! to the ready queue the moment bytes arrive (or drops them on EOF /
//! idle timeout). An idle keep-alive connection therefore costs no
//! thread, and `serve.accepts` tracks connections, not requests.
//!
//! Hot-path cost model (the quadratic-resume fix):
//! - every `snapshot_every` accepted answers the session's rendered state
//!   is snapshotted into the WAL, so a restart restores sessions whose
//!   snapshot is current in O(1) and replays the rest once;
//! - identical deterministic probes across sessions hit the process-wide
//!   [`ProbeCache`] (`serve.cache_hits` / `serve.cache_misses`), so N
//!   identical-config sessions pay for each wizard question once;
//! - identical configs share one [`SessionCtx`] via [`CtxCache`].
//!
//! Storage failure narrows the service instead of killing it: a failed
//! WAL append flips the server [`Health::Degraded`] — mutating endpoints
//! shed with `503 + Retry-After` while reads (`question`, `report`,
//! `/metrics`, `/healthz`) keep serving from memory — and a dedicated
//! recovery-probe pool item re-attempts an append under jittered backoff,
//! walking `Degraded → Recovering → Healthy` on two consecutive
//! successes. Sessions whose `step` panics repeatedly are quarantined
//! (see [`SessionStatus::Quarantined`]) so a poisoned replay can't burn a
//! worker per retry.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use muse_obs::{faultpoints, Json, Metrics, Rng};
use muse_wizard::ProbeCache;

use crate::hist::Hist;
use crate::http::{self, Request};
use crate::oracle::Intentions;
use crate::proto;
use crate::store::{CtxCache, SessionCfg, SessionStatus, Store};
use crate::wal::Wal;

/// Server knobs, the `muse serve` flags.
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Request worker threads (the accept loop and the connection poller
    /// each get their own).
    pub threads: usize,
    /// Max resident sessions; creates beyond it are shed with 503.
    pub max_sessions: usize,
    /// Max resident connections (accepted and not yet closed — under
    /// keep-alive a connection outlives many requests); excess is shed
    /// with 503.
    pub max_connections: usize,
    /// Answer-log path; `None` runs without durability.
    pub wal: Option<PathBuf>,
    /// Honor HTTP/1.1 keep-alive. Off forces `Connection: close` on every
    /// response (the pre-keep-alive behavior).
    pub keep_alive: bool,
    /// Drop a parked keep-alive connection after this long without a new
    /// request.
    pub idle_timeout_ms: u64,
    /// Close a connection after this many requests (bounds how long one
    /// client can monopolize a connection slot).
    pub max_conn_requests: usize,
    /// Snapshot a session's rendered state into the WAL every this many
    /// accepted answers (and always at `done`). 0 disables snapshots.
    pub snapshot_every: usize,
    /// Compact the WAL (dropping superseded snapshots) once it exceeds
    /// this many bytes; afterwards the threshold doubles from the
    /// compacted size so compaction cost stays amortized-constant.
    pub wal_compact_bytes: u64,
    /// Capacity of the cross-session probe/example memo. 0 disables it.
    pub probe_cache_cap: usize,
    /// Quarantine a session after this many consecutive `step` panics
    /// (0 disables quarantine).
    pub panic_quarantine: u32,
    /// Base interval of the degraded-mode recovery probe, in ms. Each
    /// failed probe doubles the wait (jittered, capped at 16x base).
    pub recovery_probe_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 4,
            max_sessions: 1024,
            max_connections: 256,
            wal: None,
            keep_alive: true,
            idle_timeout_ms: 5000,
            max_conn_requests: 1000,
            snapshot_every: 8,
            wal_compact_bytes: 1 << 20,
            probe_cache_cap: 1024,
            panic_quarantine: 3,
            recovery_probe_ms: 200,
        }
    }
}

/// The storage-health state machine. `Healthy` is the only state that
/// accepts mutations; the other two shed them with `503 + Retry-After`
/// while reads keep serving from memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// WAL appends are succeeding (or no WAL is configured).
    Healthy,
    /// A WAL append failed; mutations shed until the recovery probe
    /// succeeds.
    Degraded,
    /// One recovery probe landed; one more restores `Healthy`. Mutations
    /// still shed — the extra probe is hysteresis against a flapping disk.
    Recovering,
}

impl Health {
    /// The `/healthz` wire name.
    pub fn name(self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Recovering => "recovering",
        }
    }

    fn from_u8(v: u8) -> Health {
        match v {
            1 => Health::Degraded,
            2 => Health::Recovering,
            _ => Health::Healthy,
        }
    }
}

/// A typed routing failure, rendered as `{"error": …}` with its status.
struct ApiError {
    status: u16,
    message: String,
    retry_after: bool,
    /// Marks a quarantined-session failure: the body carries
    /// `"quarantined": true` so clients can tell a poisoned session from
    /// a transient 500 and stop retrying.
    quarantined: bool,
}

impl ApiError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        ApiError {
            status,
            message: message.into(),
            retry_after: false,
            quarantined: false,
        }
    }

    fn unavailable(message: impl Into<String>) -> Self {
        ApiError {
            status: 503,
            message: message.into(),
            retry_after: true,
            quarantined: false,
        }
    }

    fn quarantined(reason: &str) -> Self {
        ApiError {
            status: 500,
            message: format!("session quarantined: {reason}"),
            retry_after: false,
            quarantined: true,
        }
    }
}

type ApiResult = Result<(u16, Json), ApiError>;

/// One live connection between requests.
struct ConnState {
    conn: http::Conn,
    /// Requests served on this connection so far.
    served: usize,
    /// When the connection was last parked (for the idle timeout).
    parked_at: Instant,
}

/// Everything the accept loop, poller, and workers share.
struct ConnShared {
    /// Connections with a request ready (or presumed imminent: fresh
    /// accepts land here too — the first request follows the connect).
    ready: Mutex<VecDeque<ConnState>>,
    available: Condvar,
    /// Connections idle between requests, owned by the poller.
    parked: Mutex<Vec<ConnState>>,
    accept_done: AtomicBool,
    poller_done: AtomicBool,
    in_flight: AtomicUsize,
    /// Accepted and not yet closed (the `max_connections` gauge).
    conn_count: AtomicUsize,
}

/// A bound (and, with a WAL, replayed) session server.
pub struct Server {
    cfg: ServerConfig,
    listener: TcpListener,
    store: Store,
    wal: Option<Wal>,
    metrics: Metrics,
    handle_hist: Hist,
    shutdown: AtomicBool,
    probe_cache: ProbeCache,
    ctx_cache: CtxCache,
    /// WAL size that triggers the next compaction.
    next_compact: AtomicU64,
    /// The storage [`Health`] state (`Health::from_u8` encoding).
    health: AtomicU8,
}

impl Server {
    /// Bind the listener, open the WAL, and replay every logged session to
    /// its pre-crash state (restoring from a current snapshot where one
    /// exists). Returns before accepting any connection, so callers can
    /// read [`Server::local_addr`] first.
    pub fn bind(cfg: ServerConfig, metrics: Metrics) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
        let store = Store::new(cfg.max_sessions);
        let ctx_cache = CtxCache::new(8);
        let probe_cache = ProbeCache::new(cfg.probe_cache_cap)
            .with_metric_keys("serve.cache_hits", "serve.cache_misses");
        let wal = match &cfg.wal {
            Some(path) => {
                let (wal, records, salvage) =
                    Wal::open(path).map_err(|e| format!("wal {}: {e}", path.display()))?;
                if !salvage.is_clean() {
                    metrics.add("serve.wal_salvaged_frames", salvage.salvaged_frames);
                    metrics.add("serve.wal_quarantined_bytes", salvage.quarantined_bytes);
                    eprintln!(
                        "serve: wal salvage on {}: {} frame(s) recovered past corruption, \
                         {} byte(s) quarantined",
                        path.display(),
                        salvage.salvaged_frames,
                        salvage.quarantined_bytes
                    );
                }
                let t0 = Instant::now();
                let probes = (cfg.probe_cache_cap > 0).then_some(&probe_cache);
                replay(&store, &metrics, &ctx_cache, probes, records)?;
                metrics.timer("serve.replay_time").record(t0.elapsed());
                Some(wal)
            }
            None => None,
        };
        let next_compact = cfg
            .wal_compact_bytes
            .max(wal.as_ref().map_or(0, |w| 2 * w.len()));
        Ok(Server {
            cfg,
            listener,
            store,
            wal,
            metrics,
            handle_hist: Hist::new(),
            shutdown: AtomicBool::new(false),
            probe_cache,
            ctx_cache,
            next_compact: AtomicU64::new(next_compact),
            health: AtomicU8::new(0),
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The server's metrics sink.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The session store (tests and the bench introspect it directly).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The cross-session probe memo, when enabled.
    fn probes(&self) -> Option<&ProbeCache> {
        (self.cfg.probe_cache_cap > 0).then_some(&self.probe_cache)
    }

    /// Current storage health.
    pub fn health(&self) -> Health {
        Health::from_u8(self.health.load(Ordering::Acquire))
    }

    /// Move the health state machine, logging and counting once per edge
    /// (never per request — a storm of failing appends is one
    /// transition).
    fn set_health(&self, to: Health) {
        let from = self.health.swap(to as u8, Ordering::AcqRel);
        if from != to as u8 {
            self.metrics.incr("serve.health_transitions");
            eprintln!(
                "serve: health {} -> {}",
                Health::from_u8(from).name(),
                to.name()
            );
        }
    }

    /// Shed mutations while storage is degraded or still proving itself.
    fn shed_if_degraded(&self) -> Result<(), ApiError> {
        if self.wal.is_some() && self.health() != Health::Healthy {
            self.metrics.incr("serve.degraded_sheds");
            return Err(ApiError::unavailable(
                "storage degraded; mutation shed (retry after recovery)",
            ));
        }
        Ok(())
    }

    /// Serve until `POST /admin/shutdown`: accept, handle, park, repeat.
    /// Drains on shutdown — parked connections with a request already in
    /// flight are answered (with `Connection: close`) before workers exit;
    /// idle ones are dropped.
    pub fn run(&self) -> Result<(), String> {
        let shared = ConnShared {
            ready: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            parked: Mutex::new(Vec::new()),
            accept_done: AtomicBool::new(false),
            poller_done: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            conn_count: AtomicUsize::new(0),
        };
        let workers = self.cfg.threads.max(1);

        let results =
            muse_par::try_scope_map(workers + 3, workers + 3, &self.metrics, |i| match i {
                0 => self.accept_loop(&shared),
                1 => self.poller_loop(&shared),
                2 => self.recovery_loop(&shared),
                _ => self.worker_loop(&shared),
            });
        let panics = results.iter().filter(|r| r.is_err()).count();
        if panics > 0 {
            return Err(format!("{panics} server thread(s) panicked"));
        }
        Ok(())
    }

    fn accept_loop(&self, shared: &ConnShared) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shutdown.load(Ordering::Acquire) {
                        // The drain wake-up (or a late client); stop
                        // accepting. Ready and in-flight requests still
                        // drain.
                        break;
                    }
                    self.metrics.incr("serve.accepts");
                    let injected = muse_fault::point(faultpoints::SERVE_ACCEPT).is_some();
                    let resident = shared.conn_count.load(Ordering::Relaxed);
                    if injected || resident >= self.cfg.max_connections {
                        self.metrics.incr("serve.rejects");
                        // Drain the request before answering: closing with
                        // unread input makes TCP reset the connection and
                        // discard our 503. The timeout bounds how long a
                        // slow client can stall the accept loop.
                        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
                        let mut conn = http::Conn::new(stream);
                        let _ = http::read_request(&mut conn);
                        let _ = conn
                            .stream()
                            .set_write_timeout(Some(Duration::from_secs(2)));
                        let _ = http::respond(
                            conn.stream_mut(),
                            503,
                            &[("Retry-After", "1".to_owned())],
                            &Json::obj(vec![(
                                "error",
                                Json::str(if injected {
                                    "injected serve.accept fault"
                                } else {
                                    "connection limit reached"
                                }),
                            )]),
                            true,
                        );
                        continue;
                    }
                    shared.conn_count.fetch_add(1, Ordering::Relaxed);
                    lock(&shared.ready).push_back(ConnState {
                        conn: http::Conn::new(stream),
                        served: 0,
                        parked_at: Instant::now(),
                    });
                    shared.available.notify_one();
                }
                Err(_) if self.shutdown.load(Ordering::Acquire) => break,
                Err(_) => {
                    self.metrics.incr("serve.accept_errors");
                }
            }
        }
        shared.accept_done.store(true, Ordering::Release);
        shared.available.notify_all();
    }

    /// Watch parked connections: promote the ones with bytes waiting,
    /// drop the ones the peer closed or that idled out. During a drain,
    /// parked connections with pending data are promoted so their last
    /// request gets an answer; the rest are dropped.
    fn poller_loop(&self, shared: &ConnShared) {
        let idle_timeout = Duration::from_millis(self.cfg.idle_timeout_ms);
        loop {
            let draining = self.shutdown.load(Ordering::Acquire);
            let batch: Vec<ConnState> = std::mem::take(&mut *lock(&shared.parked));
            let mut keep = Vec::new();
            let mut promoted = 0usize;
            for state in batch {
                let readable = if state.conn.has_buffered() {
                    // A pipelined request is already in the carry buffer.
                    Ok(1)
                } else {
                    let stream = state.conn.stream();
                    let _ = stream.set_nonblocking(true);
                    let mut byte = [0u8; 1];
                    let r = stream.peek(&mut byte);
                    let _ = stream.set_nonblocking(false);
                    r
                };
                match readable {
                    Ok(0) => {
                        // Peer closed between requests: the clean end of a
                        // keep-alive exchange.
                        shared.conn_count.fetch_sub(1, Ordering::Relaxed);
                    }
                    Ok(_) => {
                        lock(&shared.ready).push_back(state);
                        promoted += 1;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if draining || state.parked_at.elapsed() >= idle_timeout {
                            self.metrics.incr("serve.idle_closes");
                            shared.conn_count.fetch_sub(1, Ordering::Relaxed);
                        } else {
                            keep.push(state);
                        }
                    }
                    Err(_) => {
                        self.metrics.incr("serve.transport_errors");
                        shared.conn_count.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
            let parked_left = {
                let mut parked = lock(&shared.parked);
                parked.extend(keep);
                parked.len()
            };
            if promoted > 0 {
                shared.available.notify_all();
            }
            // Once the accept loop is done the server is draining: workers
            // only close connections (never re-park), so an empty parked
            // list stays empty.
            if shared.accept_done.load(Ordering::Acquire) && parked_left == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        shared.poller_done.store(true, Ordering::Release);
        shared.available.notify_all();
    }

    /// The degraded-mode recovery probe: while the server is not
    /// `Healthy`, periodically append a `{"rec":"noop"}` record to the
    /// WAL under jittered exponential backoff. One success moves
    /// `Degraded → Recovering`; a second consecutive success restores
    /// `Healthy` (hysteresis against a flapping disk); any failure drops
    /// back to `Degraded` and doubles the wait (capped at 16x base).
    /// Noop records are skipped by replay and dropped by compaction.
    fn recovery_loop(&self, shared: &ConnShared) {
        let Some(wal) = &self.wal else {
            return; // no storage, nothing to recover
        };
        let base = self.cfg.recovery_probe_ms.max(10);
        let mut rng = Rng::new(0x5EC0_4E2C ^ base);
        let mut backoff = base;
        let mut consecutive_ok = 0u32;
        let done = |shared: &ConnShared| {
            shared.accept_done.load(Ordering::Acquire) && shared.poller_done.load(Ordering::Acquire)
        };
        // Sleep in small slices so a drain never waits out a long backoff.
        let nap = |ms: u64, shared: &ConnShared| {
            let mut left = ms;
            while left > 0 && !done(shared) {
                let slice = left.min(25);
                std::thread::sleep(Duration::from_millis(slice));
                left -= slice;
            }
        };
        while !done(shared) {
            if self.health() == Health::Healthy {
                consecutive_ok = 0;
                backoff = base;
                nap(25, shared);
                continue;
            }
            // Jitter in [backoff/2, backoff]: concurrent restarting
            // servers must not probe a shared, struggling disk in phase.
            let wait = backoff / 2 + rng.below(backoff / 2 + 1);
            nap(wait, shared);
            if done(shared) || self.health() == Health::Healthy {
                continue;
            }
            self.metrics.incr("serve.recovery_probes");
            match wal.append(&Json::obj(vec![("rec", Json::str("noop"))])) {
                Ok(_) => {
                    consecutive_ok += 1;
                    backoff = base;
                    if consecutive_ok >= 2 {
                        self.metrics.incr("serve.recoveries");
                        self.set_health(Health::Healthy);
                        consecutive_ok = 0;
                    } else {
                        self.set_health(Health::Recovering);
                    }
                }
                Err(_) => {
                    consecutive_ok = 0;
                    self.set_health(Health::Degraded);
                    backoff = (backoff * 2).min(base * 16);
                }
            }
        }
    }

    fn worker_loop(&self, shared: &ConnShared) {
        loop {
            let next = {
                let mut q = lock(&shared.ready);
                loop {
                    if let Some(state) = q.pop_front() {
                        shared.in_flight.fetch_add(1, Ordering::Relaxed);
                        break Some(state);
                    }
                    if shared.accept_done.load(Ordering::Acquire)
                        && shared.poller_done.load(Ordering::Acquire)
                    {
                        break None;
                    }
                    // The timeout is belt-and-braces against a missed
                    // notify during shutdown.
                    let (guard, _) = shared
                        .available
                        .wait_timeout(q, Duration::from_millis(50))
                        .unwrap_or_else(|e| e.into_inner());
                    q = guard;
                }
            };
            let Some(mut state) = next else {
                break;
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| self.handle_one(&mut state)));
            let keep = match outcome {
                Ok(keep) => keep,
                Err(_) => {
                    self.metrics.incr("serve.panics");
                    let _ = http::respond(
                        state.conn.stream_mut(),
                        500,
                        &[],
                        &Json::obj(vec![("error", Json::str("request handler panicked"))]),
                        true,
                    );
                    false
                }
            };
            shared.in_flight.fetch_sub(1, Ordering::Relaxed);
            if keep && !self.shutdown.load(Ordering::Acquire) {
                state.parked_at = Instant::now();
                if state.conn.has_buffered() {
                    // A pipelined request is already waiting: go straight
                    // back to the ready queue.
                    lock(&shared.ready).push_back(state);
                    shared.available.notify_one();
                } else {
                    lock(&shared.parked).push(state);
                }
            } else {
                shared.conn_count.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Serve one request off a connection. Returns whether the connection
    /// should be kept (parked) for the next request.
    fn handle_one(&self, state: &mut ConnState) -> bool {
        let _ = state
            .conn
            .stream()
            .set_read_timeout(Some(Duration::from_secs(10)));
        let _ = state
            .conn
            .stream()
            .set_write_timeout(Some(Duration::from_secs(10)));
        let request = match http::read_request(&mut state.conn) {
            Ok(Some(r)) => r,
            Ok(None) => return false, // clean close between requests
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                self.metrics.incr("serve.bad_requests");
                let _ = http::respond(
                    state.conn.stream_mut(),
                    400,
                    &[],
                    &Json::obj(vec![("error", Json::str(e.to_string()))]),
                    true,
                );
                return false;
            }
            Err(_) => {
                self.metrics.incr("serve.transport_errors");
                return false;
            }
        };
        // Timing starts after the read: the histogram measures request
        // handling, not time spent waiting for a keep-alive client to
        // send its next request.
        let t0 = Instant::now();
        self.metrics.incr("serve.requests");
        state.served += 1;
        if state.served > 1 {
            self.metrics.incr("serve.keepalive_reuses");
        }
        self.metrics
            .add("serve.bytes_in", request.bytes_read as u64);

        let (status, headers, body) = if muse_fault::point(faultpoints::SERVE_HANDLE).is_some() {
            (
                503,
                vec![("Retry-After", "1".to_owned())],
                Json::obj(vec![("error", Json::str("injected serve.handle fault"))]),
            )
        } else {
            match self.route(&request) {
                Ok((status, body)) => (status, Vec::new(), body),
                Err(e) => {
                    let mut headers = Vec::new();
                    if e.retry_after {
                        headers.push(("Retry-After", "1".to_owned()));
                    }
                    let mut fields = vec![("error", Json::str(e.message))];
                    if e.quarantined {
                        fields.push(("quarantined", Json::Bool(true)));
                    }
                    (e.status, headers, Json::obj(fields))
                }
            }
        };
        // Decided after routing so the /admin/shutdown response itself
        // carries `Connection: close`.
        let close = !self.cfg.keep_alive
            || !request.keep_alive
            || state.served >= self.cfg.max_conn_requests
            || self.shutdown.load(Ordering::Acquire);
        if let Ok(n) = http::respond(state.conn.stream_mut(), status, &headers, &body, close) {
            self.metrics.add("serve.bytes_out", n as u64);
        }
        let elapsed = t0.elapsed();
        self.handle_hist.record(elapsed);
        self.metrics.timer("serve.handle_time").record(elapsed);
        !close
    }

    fn route(&self, request: &Request) -> ApiResult {
        let segments = request.segments();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => Ok((
                200,
                Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("state", Json::str(self.health().name())),
                    (
                        "draining",
                        Json::Bool(self.shutdown.load(Ordering::Acquire)),
                    ),
                ]),
            )),
            ("GET", ["metrics"]) => Ok((200, self.metrics_json())),
            ("POST", ["admin", "shutdown"]) => self.initiate_shutdown(),
            ("POST", ["sessions"]) => {
                self.shed_if_degraded()?;
                self.create_session(&request.body)
            }
            ("GET", ["sessions", id, "question"]) => self.session_question(parse_id(id)?),
            ("POST", ["sessions", id, "answer"]) => {
                self.shed_if_degraded()?;
                self.session_answer(parse_id(id)?, &request.body)
            }
            ("GET", ["sessions", id, "report"]) => self.session_report(parse_id(id)?),
            (_, ["healthz" | "metrics"]) | (_, ["admin", "shutdown"]) | (_, ["sessions", ..]) => {
                Err(ApiError::new(405, "method not allowed for this path"))
            }
            _ => Err(ApiError::new(404, format!("no route for {}", request.path))),
        }
    }

    fn metrics_json(&self) -> Json {
        Json::obj(vec![
            (
                "serve",
                Json::obj(vec![
                    ("sessions", Json::Int(self.store.len() as i64)),
                    (
                        "open_sessions",
                        Json::Int(self.store.open_sessions() as i64),
                    ),
                    (
                        "probe_cache_entries",
                        Json::Int(self.probe_cache.len() as i64),
                    ),
                    ("handle", self.handle_hist.to_json()),
                ]),
            ),
            ("metrics", self.metrics.snapshot().to_json()),
        ])
    }

    fn initiate_shutdown(&self) -> ApiResult {
        self.shutdown.store(true, Ordering::Release);
        // Wake the accept loop so it observes the flag: connect once to
        // ourselves. Failure is fine — any later connection wakes it too.
        if let Ok(addr) = self.listener.local_addr() {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
        }
        Ok((200, Json::obj(vec![("draining", Json::Bool(true))])))
    }

    fn wal_append(&self, record: &Json) -> Result<(), ApiError> {
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        match wal.append(record) {
            Ok(bytes) => {
                self.metrics.incr("serve.wal_records");
                self.metrics.add("serve.wal_bytes", bytes);
                Ok(())
            }
            Err(e) => {
                // The disk just failed under us: degrade so every further
                // mutation sheds up front, and shed this one. The caller
                // rolls its in-memory state back, so nothing
                // unacknowledged survives.
                self.metrics.incr("serve.wal_errors");
                self.set_health(Health::Degraded);
                Err(ApiError::unavailable(format!(
                    "answer log append failed: {e}"
                )))
            }
        }
    }

    /// Snapshot the session's rendered state into the WAL when due: at
    /// creation, every `snapshot_every` accepted answers, and always at
    /// `done`. Snapshot failures are non-fatal — a lost snapshot costs
    /// replay time on the next restart, never an acknowledged answer.
    fn maybe_snapshot(&self, entry: &crate::store::SessionEntry) {
        let Some(wal) = &self.wal else {
            return;
        };
        if self.cfg.snapshot_every == 0 {
            return;
        }
        let (state, payload) = match &entry.status {
            SessionStatus::Open { question, .. } => {
                if !entry.answers.len().is_multiple_of(self.cfg.snapshot_every) {
                    return;
                }
                ("open", question.clone())
            }
            SessionStatus::Done { report } => ("done", report.clone()),
            SessionStatus::Failed { .. } | SessionStatus::Quarantined { .. } => return,
        };
        let record = Json::obj(vec![
            ("rec", Json::str("snapshot")),
            ("session", Json::Int(entry.id as i64)),
            ("answers", Json::Int(entry.answers.len() as i64)),
            ("state", Json::str(state)),
            ("payload", payload),
            // Materialized incremental-chase state: a restart restores it
            // warm, so the post-restore replay rederives instead of
            // re-chasing. Optional on read — old WALs lack it.
            ("delta", entry.delta.export_json()),
        ]);
        match wal.append(&record) {
            Ok(bytes) => {
                self.metrics.incr("serve.snapshots");
                self.metrics.incr("serve.wal_records");
                self.metrics.add("serve.wal_bytes", bytes);
                self.maybe_compact(wal);
            }
            Err(_) => {
                // Non-fatal for the request (the answer was already
                // durable) but the disk is clearly failing: degrade.
                self.metrics.incr("serve.snapshot_errors");
                self.set_health(Health::Degraded);
            }
        }
    }

    /// Compact the WAL (drop superseded snapshots) once it crosses the
    /// size threshold; the threshold then doubles from the compacted size
    /// so total compaction work stays linear in bytes written.
    fn maybe_compact(&self, wal: &Wal) {
        if wal.len() < self.next_compact.load(Ordering::Relaxed) {
            return;
        }
        match wal.compact(compact_records) {
            Ok(new_len) => {
                self.metrics.incr("serve.wal_compactions");
                self.next_compact.store(
                    self.cfg.wal_compact_bytes.max(2 * new_len),
                    Ordering::Relaxed,
                );
            }
            Err(_) => {
                self.metrics.incr("serve.wal_errors");
            }
        }
    }

    /// Run `entry.advance` under panic isolation and the
    /// `serve.session.step` fault point. The outer `Err` is a fully-built
    /// response (step panicked, or the session is already quarantined);
    /// the inner result is the organic wizard outcome for the caller to
    /// interpret (`BadAnswer` vs hard failure).
    ///
    /// A panic counts toward the session's quarantine threshold
    /// (`panic_quarantine` consecutive panics poison it); a successful
    /// step resets the count.
    fn step_entry(
        &self,
        entry: &mut crate::store::SessionEntry,
    ) -> Result<Result<muse_wizard::Step, muse_wizard::WizardError>, ApiError> {
        if let SessionStatus::Quarantined { reason } = &entry.status {
            return Err(ApiError::quarantined(reason));
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // A `panic` fault here unwinds into this catch; non-panic
            // kinds are no-ops (the server has no truncation path of its
            // own — budgets live inside the step).
            let _ = muse_fault::point(faultpoints::SERVE_SESSION_STEP);
            entry.advance(&self.metrics, self.probes())
        }));
        match outcome {
            Ok(result) => {
                if result.is_ok() {
                    entry.panics = 0;
                }
                Ok(result)
            }
            Err(_) => {
                self.metrics.incr("serve.step_panics");
                entry.panics += 1;
                let threshold = self.cfg.panic_quarantine;
                if threshold > 0 && entry.panics >= threshold {
                    let reason = format!(
                        "step panicked {} time(s) in a row (threshold {threshold})",
                        entry.panics
                    );
                    if matches!(entry.status, SessionStatus::Open { .. }) {
                        self.store.note_closed();
                    }
                    entry.status = SessionStatus::Quarantined {
                        reason: reason.clone(),
                    };
                    self.metrics.incr("serve.sessions_quarantined");
                    Err(ApiError::quarantined(&reason))
                } else {
                    Err(ApiError::new(
                        500,
                        format!("session step panicked (attempt {})", entry.panics),
                    ))
                }
            }
        }
    }

    fn create_session(&self, body: &[u8]) -> ApiResult {
        let text =
            std::str::from_utf8(body).map_err(|_| ApiError::new(400, "body is not UTF-8"))?;
        let parsed =
            Json::parse(text).map_err(|e| ApiError::new(400, format!("bad JSON body: {e}")))?;
        let cfg = SessionCfg::from_json(&parsed).map_err(|e| ApiError::new(400, e))?;
        let ctx = self
            .ctx_cache
            .get_or_build(&cfg, &self.metrics)
            .map_err(|e| ApiError::new(400, e))?;
        let strategy = cfg.strategy;

        let entry_arc = self.store.insert(cfg, ctx).map_err(ApiError::unavailable)?;
        let mut entry = entry_arc.lock().unwrap_or_else(|e| e.into_inner());
        self.metrics.incr("serve.sessions_created");
        if let Err(e) = self.wal_append(&Json::obj(vec![
            ("rec", Json::str("create")),
            ("session", Json::Int(entry.id as i64)),
            ("cfg", entry.cfg.to_json()),
        ])) {
            // Never acknowledged, never logged: the session must not
            // linger in memory either, or a restart would forget it while
            // clients still see its id.
            let id = entry.id;
            drop(entry);
            self.store.remove(id);
            return Err(e);
        }

        let step = self
            .step_entry(&mut entry)?
            .map_err(|e| self.session_failed(&mut entry, e))?;
        self.maybe_snapshot(&entry);

        if let Some(strategy) = strategy {
            // Oracle mode: answer every question server-side, logging each
            // answer exactly like a client would have.
            let intentions = Intentions::for_strategy(&entry.ctx, strategy)
                .map_err(|e| ApiError::new(500, e))?;
            let mut step = step;
            loop {
                let question = match &step {
                    muse_wizard::Step::Done(_) => break,
                    muse_wizard::Step::Ask { question, .. } => question,
                };
                let answer = intentions
                    .answer(&entry.ctx, question)
                    .map_err(|e| self.session_failed(&mut entry, e))?;
                self.wal_append(&Json::obj(vec![
                    ("rec", Json::str("answer")),
                    ("session", Json::Int(entry.id as i64)),
                    ("answer", proto::answer_to_json(&answer)),
                ]))?;
                entry.answers.push(answer);
                self.metrics.incr("serve.answers");
                step = self
                    .step_entry(&mut entry)?
                    .map_err(|e| self.session_failed(&mut entry, e))?;
                self.maybe_snapshot(&entry);
            }
        }

        let mut fields = vec![("session", Json::Int(entry.id as i64))];
        match &entry.status {
            SessionStatus::Open { question, .. } => {
                self.store.note_opened();
                fields.push(("status", Json::str("open")));
                fields.push(("question", question.clone()));
            }
            SessionStatus::Done { .. } => {
                self.metrics.incr("serve.sessions_completed");
                fields.push(("status", Json::str("done")));
            }
            SessionStatus::Failed { error } => {
                return Err(ApiError::new(500, format!("wizard failed: {error}")));
            }
            SessionStatus::Quarantined { reason } => {
                return Err(ApiError::quarantined(reason));
            }
        }
        Ok((200, Json::obj(fields)))
    }

    /// Record a wizard hard failure on the session and build the 500.
    fn session_failed(
        &self,
        entry: &mut crate::store::SessionEntry,
        e: muse_wizard::WizardError,
    ) -> ApiError {
        self.metrics.incr("serve.session_failures");
        if matches!(entry.status, SessionStatus::Open { .. }) {
            self.store.note_closed();
        }
        entry.status = SessionStatus::Failed {
            error: e.to_string(),
        };
        ApiError::new(500, format!("wizard failed: {e}"))
    }

    fn session_question(&self, id: u64) -> ApiResult {
        let entry = self
            .store
            .get(id)
            .ok_or_else(|| ApiError::new(404, format!("no session {id}")))?;
        let entry = entry.lock().unwrap_or_else(|e| e.into_inner());
        match &entry.status {
            SessionStatus::Open { question, .. } => Ok((
                200,
                Json::obj(vec![
                    ("session", Json::Int(id as i64)),
                    ("status", Json::str("open")),
                    ("question", question.clone()),
                ]),
            )),
            SessionStatus::Done { .. } => Ok((
                200,
                Json::obj(vec![
                    ("session", Json::Int(id as i64)),
                    ("status", Json::str("done")),
                ]),
            )),
            SessionStatus::Failed { error } => {
                Err(ApiError::new(500, format!("wizard failed: {error}")))
            }
            SessionStatus::Quarantined { reason } => Err(ApiError::quarantined(reason)),
        }
    }

    fn session_answer(&self, id: u64, body: &[u8]) -> ApiResult {
        let text =
            std::str::from_utf8(body).map_err(|_| ApiError::new(400, "body is not UTF-8"))?;
        let parsed =
            Json::parse(text).map_err(|e| ApiError::new(400, format!("bad JSON body: {e}")))?;
        let answer = proto::answer_from_json(&parsed).map_err(|e| ApiError::new(400, e))?;

        let entry = self
            .store
            .get(id)
            .ok_or_else(|| ApiError::new(404, format!("no session {id}")))?;
        let mut entry = entry.lock().unwrap_or_else(|e| e.into_inner());
        match &entry.status {
            SessionStatus::Open { .. } => {}
            SessionStatus::Done { .. } => {
                return Err(ApiError::new(409, "session is already complete"));
            }
            SessionStatus::Failed { error } => {
                return Err(ApiError::new(500, format!("wizard failed: {error}")));
            }
            SessionStatus::Quarantined { reason } => {
                return Err(ApiError::quarantined(reason));
            }
        }

        // Validate by stepping with the candidate answer appended; only an
        // accepted answer reaches the WAL.
        entry.answers.push(answer.clone());
        match self.step_entry(&mut entry) {
            Ok(Ok(_)) => {}
            Ok(Err(muse_wizard::WizardError::BadAnswer(msg))) => {
                entry.answers.pop();
                // Restore the cached question (state is derived, so this
                // cannot fail differently than before).
                let _ = self.step_entry(&mut entry);
                return Err(ApiError::new(400, format!("rejected answer: {msg}")));
            }
            Ok(Err(e)) => {
                entry.answers.pop();
                return Err(self.session_failed(&mut entry, e));
            }
            Err(api) => {
                // The step panicked (or the session is quarantined): the
                // candidate answer was never accepted.
                entry.answers.pop();
                return Err(api);
            }
        }
        if let Err(e) = self.wal_append(&Json::obj(vec![
            ("rec", Json::str("answer")),
            ("session", Json::Int(id as i64)),
            ("answer", proto::answer_to_json(&answer)),
        ])) {
            // Un-acknowledged answers must not survive in memory either:
            // a restart would forget them, forking the session's history.
            entry.answers.pop();
            let _ = self.step_entry(&mut entry);
            return Err(e);
        }
        self.metrics.incr("serve.answers");
        self.maybe_snapshot(&entry);

        let mut fields = vec![
            ("session", Json::Int(id as i64)),
            ("accepted", Json::Bool(true)),
        ];
        match &entry.status {
            SessionStatus::Open { question, .. } => {
                fields.push(("status", Json::str("open")));
                fields.push(("question", question.clone()));
            }
            SessionStatus::Done { .. } => {
                self.store.note_closed();
                self.metrics.incr("serve.sessions_completed");
                fields.push(("status", Json::str("done")));
            }
            SessionStatus::Failed { error } => {
                return Err(ApiError::new(500, format!("wizard failed: {error}")));
            }
            SessionStatus::Quarantined { reason } => {
                return Err(ApiError::quarantined(reason));
            }
        }
        Ok((200, Json::obj(fields)))
    }

    fn session_report(&self, id: u64) -> ApiResult {
        let entry = self
            .store
            .get(id)
            .ok_or_else(|| ApiError::new(404, format!("no session {id}")))?;
        let entry = entry.lock().unwrap_or_else(|e| e.into_inner());
        match &entry.status {
            SessionStatus::Done { report } => Ok((
                200,
                Json::obj(vec![
                    ("session", Json::Int(id as i64)),
                    ("status", Json::str("done")),
                    ("answers", Json::Int(entry.answers.len() as i64)),
                    ("result", report.clone()),
                ]),
            )),
            SessionStatus::Open { seq, .. } => Err(ApiError::new(
                409,
                format!("session still open at question {seq}"),
            )),
            SessionStatus::Failed { error } => {
                Err(ApiError::new(500, format!("wizard failed: {error}")))
            }
            SessionStatus::Quarantined { reason } => Err(ApiError::quarantined(reason)),
        }
    }
}

fn parse_id(segment: &str) -> Result<u64, ApiError> {
    segment
        .parse()
        .map_err(|_| ApiError::new(400, format!("bad session id `{segment}`")))
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The compaction rewrite: keep every create and answer record (they are
/// the session history) and, per session, only the *latest* snapshot —
/// earlier ones are superseded. Recovery-probe `noop` records carry no
/// state and are dropped. Order is preserved, so a kept snapshot still
/// follows its session's create record.
fn compact_records(records: Vec<Json>) -> Vec<Json> {
    use std::collections::HashMap;
    let mut last_snapshot: HashMap<i64, usize> = HashMap::new();
    for (i, rec) in records.iter().enumerate() {
        if rec.get("rec").and_then(Json::as_str) == Some("snapshot") {
            if let Some(id) = rec.get("session").and_then(Json::as_int) {
                last_snapshot.insert(id, i);
            }
        }
    }
    records
        .into_iter()
        .enumerate()
        .filter(|(i, rec)| match rec.get("rec").and_then(Json::as_str) {
            Some("noop") => false,
            Some("snapshot") => rec
                .get("session")
                .and_then(Json::as_int)
                .is_some_and(|id| last_snapshot.get(&id) == Some(i)),
            _ => true,
        })
        .map(|(_, rec)| rec)
        .collect()
}

/// Rebuild every logged session: group records by id, reconstruct each
/// context from its create record (shared through the context cache),
/// push its answers, and bring it to its pre-crash state. A session whose
/// latest snapshot covers exactly its recorded answers is restored from
/// the snapshot payload without running the wizard at all
/// (`serve.snapshot_restores`); the rest advance once
/// (`serve.replays`) — with the probe memo warm from earlier restores,
/// replayed probes are cheap. Unknown or malformed create/answer records
/// fail the bind — a server must not silently drop acknowledged answers;
/// malformed *snapshot* records are skipped (they are an optimization,
/// not history).
fn replay(
    store: &Store,
    metrics: &Metrics,
    ctx_cache: &CtxCache,
    probes: Option<&ProbeCache>,
    records: Vec<Json>,
) -> Result<(), String> {
    let mut snapshots: std::collections::HashMap<u64, (usize, String, Json)> =
        std::collections::HashMap::new();
    let mut deltas: std::collections::HashMap<u64, Json> = std::collections::HashMap::new();
    for (n, record) in records.into_iter().enumerate() {
        let kind = record
            .get("rec")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("wal record {n}: missing `rec`"))?;
        if kind == "noop" {
            // A recovery-probe heartbeat: proves the disk wrote, carries
            // no session state.
            continue;
        }
        let id = record
            .get("session")
            .and_then(Json::as_int)
            .filter(|i| *i > 0)
            .ok_or_else(|| format!("wal record {n}: missing `session`"))? as u64;
        match kind {
            "create" => {
                let cfg_json = record
                    .get("cfg")
                    .ok_or_else(|| format!("wal record {n}: create without `cfg`"))?;
                let cfg =
                    SessionCfg::from_json(cfg_json).map_err(|e| format!("wal record {n}: {e}"))?;
                let ctx = ctx_cache
                    .get_or_build(&cfg, metrics)
                    .map_err(|e| format!("wal record {n}: {e}"))?;
                store.insert_replayed(id, cfg, ctx);
            }
            "answer" => {
                let answer_json = record
                    .get("answer")
                    .ok_or_else(|| format!("wal record {n}: answer without `answer`"))?;
                let answer = proto::answer_from_json(answer_json)
                    .map_err(|e| format!("wal record {n}: {e}"))?;
                let entry = store
                    .get(id)
                    .ok_or_else(|| format!("wal record {n}: answer for unknown session {id}"))?;
                entry
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .answers
                    .push(answer);
            }
            "snapshot" => {
                let answers = record
                    .get("answers")
                    .and_then(Json::as_int)
                    .filter(|a| *a >= 0);
                let state = record.get("state").and_then(Json::as_str);
                let payload = record.get("payload");
                if let (Some(answers), Some(state), Some(payload)) = (answers, state, payload) {
                    // Later snapshots supersede earlier ones.
                    snapshots.insert(id, (answers as usize, state.to_owned(), payload.clone()));
                }
                // The delta blob is useful even when the snapshot itself is
                // stale (answers arrived after it): the store diffs against
                // whatever state it holds, so a warm restore only speeds up
                // the replay chase — it can never change its output.
                if let Some(d) = record.get("delta") {
                    deltas.insert(id, d.clone());
                }
            }
            other => return Err(format!("wal record {n}: unknown kind `{other}`")),
        }
    }
    for entry in store.all() {
        let mut entry = entry.lock().unwrap_or_else(|e| e.into_inner());
        // Restore the materialized incremental-chase state first, so a
        // session that must replay (stale snapshot) chases warm. Malformed
        // blobs are rejected wholesale by `import_json` — the store stays
        // empty and the replay simply chases from scratch.
        if let Some(d) = deltas.get(&entry.id) {
            if entry.delta.import_json(d) {
                metrics.incr("serve.delta_restores");
            }
        }
        let snap = snapshots
            .get(&entry.id)
            .filter(|(answers, _, _)| *answers == entry.answers.len());
        match snap {
            Some((answers, state, payload)) if state == "open" => {
                metrics.incr("serve.snapshot_restores");
                entry.status = SessionStatus::Open {
                    seq: *answers,
                    question: payload.clone(),
                };
                store.note_opened();
            }
            Some((_, state, payload)) if state == "done" => {
                metrics.incr("serve.snapshot_restores");
                entry.status = SessionStatus::Done {
                    report: payload.clone(),
                };
            }
            _ => {
                // No current snapshot (answers arrived after the last one,
                // or an unknown state tag): one full advance, panic
                // isolated — one poisoned session must not take down the
                // bind, it gets quarantined instead.
                metrics.incr("serve.replays");
                let outcome = catch_unwind(AssertUnwindSafe(|| entry.advance(metrics, probes)));
                match outcome {
                    Ok(Ok(muse_wizard::Step::Ask { .. })) => store.note_opened(),
                    Ok(Ok(muse_wizard::Step::Done(_))) => {}
                    Ok(Err(e)) => {
                        metrics.incr("serve.session_failures");
                        entry.status = SessionStatus::Failed {
                            error: e.to_string(),
                        };
                    }
                    Err(_) => {
                        metrics.incr("serve.step_panics");
                        metrics.incr("serve.sessions_quarantined");
                        entry.panics += 1;
                        entry.status = SessionStatus::Quarantined {
                            reason: "step panicked during WAL replay".to_owned(),
                        };
                    }
                }
            }
        }
    }
    Ok(())
}
