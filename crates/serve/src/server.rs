//! The session server: a bounded accept loop over the `muse-par` worker
//! pool, a capped connection queue with `503 + Retry-After` backpressure,
//! WAL-backed session durability, and a graceful drain.
//!
//! Threading model: `run` dedicates one pool item to the accept loop and
//! `threads` items to request workers, all inside one
//! `muse_par::try_scope_map` call — workers are panic-isolated exactly
//! like chase units. Connections are one-request (`Connection: close`), so
//! a small pool serves many concurrently *open* sessions: an idle session
//! costs no thread.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use muse_obs::{faultpoints, Json, Metrics};

use crate::hist::Hist;
use crate::http::{self, Request};
use crate::oracle::Intentions;
use crate::proto;
use crate::store::{SessionCfg, SessionCtx, SessionStatus, Store};
use crate::wal::Wal;

/// Server knobs, the `muse serve` flags.
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Request worker threads (the accept loop gets its own).
    pub threads: usize,
    /// Max resident sessions; creates beyond it are shed with 503.
    pub max_sessions: usize,
    /// Max connections queued + in flight; excess is shed with 503.
    pub max_connections: usize,
    /// Answer-log path; `None` runs without durability.
    pub wal: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 4,
            max_sessions: 1024,
            max_connections: 256,
            wal: None,
        }
    }
}

/// A typed routing failure, rendered as `{"error": …}` with its status.
struct ApiError {
    status: u16,
    message: String,
    retry_after: bool,
}

impl ApiError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        ApiError {
            status,
            message: message.into(),
            retry_after: false,
        }
    }

    fn unavailable(message: impl Into<String>) -> Self {
        ApiError {
            status: 503,
            message: message.into(),
            retry_after: true,
        }
    }
}

type ApiResult = Result<(u16, Json), ApiError>;

/// A bound (and, with a WAL, replayed) session server.
pub struct Server {
    cfg: ServerConfig,
    listener: TcpListener,
    store: Store,
    wal: Option<Wal>,
    metrics: Metrics,
    handle_hist: Hist,
    shutdown: AtomicBool,
}

impl Server {
    /// Bind the listener, open the WAL, and replay every logged session to
    /// its pre-crash state. Returns before accepting any connection, so
    /// callers can read [`Server::local_addr`] first.
    pub fn bind(cfg: ServerConfig, metrics: Metrics) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
        let store = Store::new(cfg.max_sessions);
        let wal = match &cfg.wal {
            Some(path) => {
                let (wal, records) =
                    Wal::open(path).map_err(|e| format!("wal {}: {e}", path.display()))?;
                let t0 = Instant::now();
                replay(&store, &metrics, records)?;
                metrics.timer("serve.replay_time").record(t0.elapsed());
                Some(wal)
            }
            None => None,
        };
        Ok(Server {
            cfg,
            listener,
            store,
            wal,
            metrics,
            handle_hist: Hist::new(),
            shutdown: AtomicBool::new(false),
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The server's metrics sink.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The session store (tests and the bench introspect it directly).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Serve until `POST /admin/shutdown`: accept, enqueue, handle.
    /// Drains on shutdown — queued connections are answered before workers
    /// exit.
    pub fn run(&self) -> Result<(), String> {
        let queue: Mutex<std::collections::VecDeque<TcpStream>> =
            Mutex::new(std::collections::VecDeque::new());
        let available = Condvar::new();
        let accept_done = AtomicBool::new(false);
        let in_flight = AtomicUsize::new(0);
        let workers = self.cfg.threads.max(1);

        let results = muse_par::try_scope_map(workers + 1, workers + 1, &self.metrics, |i| {
            if i == 0 {
                self.accept_loop(&queue, &available, &accept_done, &in_flight);
            } else {
                self.worker_loop(&queue, &available, &accept_done, &in_flight);
            }
        });
        let panics = results.iter().filter(|r| r.is_err()).count();
        if panics > 0 {
            return Err(format!("{panics} server thread(s) panicked"));
        }
        Ok(())
    }

    fn accept_loop(
        &self,
        queue: &Mutex<std::collections::VecDeque<TcpStream>>,
        available: &Condvar,
        accept_done: &AtomicBool,
        in_flight: &AtomicUsize,
    ) {
        loop {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    if self.shutdown.load(Ordering::Acquire) {
                        // The drain wake-up (or a late client); stop
                        // accepting. Queued connections still drain.
                        break;
                    }
                    self.metrics.incr("serve.accepts");
                    let injected = muse_fault::point(faultpoints::SERVE_ACCEPT).is_some();
                    let load = lock(queue).len() + in_flight.load(Ordering::Relaxed);
                    if injected || load >= self.cfg.max_connections {
                        self.metrics.incr("serve.rejects");
                        // Drain the request before answering: closing with
                        // unread input makes TCP reset the connection and
                        // discard our 503. The timeout bounds how long a
                        // slow client can stall the accept loop.
                        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
                        let _ = http::read_request(&mut stream);
                        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                        let _ = http::respond(
                            &mut stream,
                            503,
                            &[("Retry-After", "1".to_owned())],
                            &Json::obj(vec![(
                                "error",
                                Json::str(if injected {
                                    "injected serve.accept fault"
                                } else {
                                    "connection limit reached"
                                }),
                            )]),
                        );
                        continue;
                    }
                    lock(queue).push_back(stream);
                    available.notify_one();
                }
                Err(_) if self.shutdown.load(Ordering::Acquire) => break,
                Err(_) => {
                    self.metrics.incr("serve.accept_errors");
                }
            }
        }
        accept_done.store(true, Ordering::Release);
        available.notify_all();
    }

    fn worker_loop(
        &self,
        queue: &Mutex<std::collections::VecDeque<TcpStream>>,
        available: &Condvar,
        accept_done: &AtomicBool,
        in_flight: &AtomicUsize,
    ) {
        loop {
            let next = {
                let mut q = lock(queue);
                loop {
                    if let Some(stream) = q.pop_front() {
                        in_flight.fetch_add(1, Ordering::Relaxed);
                        break Some(stream);
                    }
                    if accept_done.load(Ordering::Acquire) {
                        break None;
                    }
                    q = available.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            let Some(mut stream) = next else {
                break;
            };
            let t0 = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| self.handle_connection(&mut stream)));
            if outcome.is_err() {
                self.metrics.incr("serve.panics");
                let _ = http::respond(
                    &mut stream,
                    500,
                    &[],
                    &Json::obj(vec![("error", Json::str("request handler panicked"))]),
                );
            }
            let elapsed = t0.elapsed();
            self.handle_hist.record(elapsed);
            self.metrics.timer("serve.handle_time").record(elapsed);
            in_flight.fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn handle_connection(&self, stream: &mut TcpStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        let request = match http::read_request(stream) {
            Ok(r) => r,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                self.metrics.incr("serve.bad_requests");
                let _ = http::respond(
                    stream,
                    400,
                    &[],
                    &Json::obj(vec![("error", Json::str(e.to_string()))]),
                );
                return;
            }
            Err(_) => {
                self.metrics.incr("serve.transport_errors");
                return;
            }
        };
        self.metrics.incr("serve.requests");
        self.metrics
            .add("serve.bytes_in", request.bytes_read as u64);

        let (status, headers, body) = if muse_fault::point(faultpoints::SERVE_HANDLE).is_some() {
            (
                503,
                vec![("Retry-After", "1".to_owned())],
                Json::obj(vec![("error", Json::str("injected serve.handle fault"))]),
            )
        } else {
            match self.route(&request) {
                Ok((status, body)) => (status, Vec::new(), body),
                Err(e) => {
                    let mut headers = Vec::new();
                    if e.retry_after {
                        headers.push(("Retry-After", "1".to_owned()));
                    }
                    (
                        e.status,
                        headers,
                        Json::obj(vec![("error", Json::str(e.message))]),
                    )
                }
            }
        };
        if let Ok(n) = http::respond(stream, status, &headers, &body) {
            self.metrics.add("serve.bytes_out", n as u64);
        }
    }

    fn route(&self, request: &Request) -> ApiResult {
        let segments = request.segments();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => Ok((
                200,
                Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    (
                        "draining",
                        Json::Bool(self.shutdown.load(Ordering::Acquire)),
                    ),
                ]),
            )),
            ("GET", ["metrics"]) => Ok((200, self.metrics_json())),
            ("POST", ["admin", "shutdown"]) => self.initiate_shutdown(),
            ("POST", ["sessions"]) => self.create_session(&request.body),
            ("GET", ["sessions", id, "question"]) => self.session_question(parse_id(id)?),
            ("POST", ["sessions", id, "answer"]) => {
                self.session_answer(parse_id(id)?, &request.body)
            }
            ("GET", ["sessions", id, "report"]) => self.session_report(parse_id(id)?),
            (_, ["healthz" | "metrics"]) | (_, ["admin", "shutdown"]) | (_, ["sessions", ..]) => {
                Err(ApiError::new(405, "method not allowed for this path"))
            }
            _ => Err(ApiError::new(404, format!("no route for {}", request.path))),
        }
    }

    fn metrics_json(&self) -> Json {
        Json::obj(vec![
            (
                "serve",
                Json::obj(vec![
                    ("sessions", Json::Int(self.store.len() as i64)),
                    (
                        "open_sessions",
                        Json::Int(self.store.open_sessions() as i64),
                    ),
                    ("handle", self.handle_hist.to_json()),
                ]),
            ),
            ("metrics", self.metrics.snapshot().to_json()),
        ])
    }

    fn initiate_shutdown(&self) -> ApiResult {
        self.shutdown.store(true, Ordering::Release);
        // Wake the accept loop so it observes the flag: connect once to
        // ourselves. Failure is fine — any later connection wakes it too.
        if let Ok(addr) = self.listener.local_addr() {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
        }
        Ok((200, Json::obj(vec![("draining", Json::Bool(true))])))
    }

    fn wal_append(&self, record: &Json) -> Result<(), ApiError> {
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        match wal.append(record) {
            Ok(bytes) => {
                self.metrics.incr("serve.wal_records");
                self.metrics.add("serve.wal_bytes", bytes);
                Ok(())
            }
            Err(e) => {
                self.metrics.incr("serve.wal_errors");
                Err(ApiError::new(500, format!("answer log append failed: {e}")))
            }
        }
    }

    fn create_session(&self, body: &[u8]) -> ApiResult {
        let text =
            std::str::from_utf8(body).map_err(|_| ApiError::new(400, "body is not UTF-8"))?;
        let parsed =
            Json::parse(text).map_err(|e| ApiError::new(400, format!("bad JSON body: {e}")))?;
        let cfg = SessionCfg::from_json(&parsed).map_err(|e| ApiError::new(400, e))?;
        let ctx = SessionCtx::build(&cfg).map_err(|e| ApiError::new(400, e))?;
        let strategy = cfg.strategy;

        let entry = self.store.insert(cfg, ctx).map_err(ApiError::unavailable)?;
        let mut entry = entry.lock().unwrap_or_else(|e| e.into_inner());
        self.metrics.incr("serve.sessions_created");
        self.wal_append(&Json::obj(vec![
            ("rec", Json::str("create")),
            ("session", Json::Int(entry.id as i64)),
            ("cfg", entry.cfg.to_json()),
        ]))?;

        let step = entry
            .advance(&self.metrics)
            .map_err(|e| self.session_failed(&mut entry, e))?;

        if let Some(strategy) = strategy {
            // Oracle mode: answer every question server-side, logging each
            // answer exactly like a client would have.
            let intentions = Intentions::for_strategy(&entry.ctx, strategy)
                .map_err(|e| ApiError::new(500, e))?;
            let mut step = step;
            loop {
                let question = match &step {
                    muse_wizard::Step::Done(_) => break,
                    muse_wizard::Step::Ask { question, .. } => question,
                };
                let answer = intentions
                    .answer(&entry.ctx, question)
                    .map_err(|e| self.session_failed(&mut entry, e))?;
                self.wal_append(&Json::obj(vec![
                    ("rec", Json::str("answer")),
                    ("session", Json::Int(entry.id as i64)),
                    ("answer", proto::answer_to_json(&answer)),
                ]))?;
                entry.answers.push(answer);
                self.metrics.incr("serve.answers");
                step = entry
                    .advance(&self.metrics)
                    .map_err(|e| self.session_failed(&mut entry, e))?;
            }
        }

        let mut fields = vec![("session", Json::Int(entry.id as i64))];
        match &entry.status {
            SessionStatus::Open { question, .. } => {
                self.store.note_opened();
                fields.push(("status", Json::str("open")));
                fields.push(("question", question.clone()));
            }
            SessionStatus::Done { .. } => {
                self.metrics.incr("serve.sessions_completed");
                fields.push(("status", Json::str("done")));
            }
            SessionStatus::Failed { error } => {
                return Err(ApiError::new(500, format!("wizard failed: {error}")));
            }
        }
        Ok((200, Json::obj(fields)))
    }

    /// Record a wizard hard failure on the session and build the 500.
    fn session_failed(
        &self,
        entry: &mut crate::store::SessionEntry,
        e: muse_wizard::WizardError,
    ) -> ApiError {
        self.metrics.incr("serve.session_failures");
        if matches!(entry.status, SessionStatus::Open { .. }) {
            self.store.note_closed();
        }
        entry.status = SessionStatus::Failed {
            error: e.to_string(),
        };
        ApiError::new(500, format!("wizard failed: {e}"))
    }

    fn session_question(&self, id: u64) -> ApiResult {
        let entry = self
            .store
            .get(id)
            .ok_or_else(|| ApiError::new(404, format!("no session {id}")))?;
        let entry = entry.lock().unwrap_or_else(|e| e.into_inner());
        match &entry.status {
            SessionStatus::Open { question, .. } => Ok((
                200,
                Json::obj(vec![
                    ("session", Json::Int(id as i64)),
                    ("status", Json::str("open")),
                    ("question", question.clone()),
                ]),
            )),
            SessionStatus::Done { .. } => Ok((
                200,
                Json::obj(vec![
                    ("session", Json::Int(id as i64)),
                    ("status", Json::str("done")),
                ]),
            )),
            SessionStatus::Failed { error } => {
                Err(ApiError::new(500, format!("wizard failed: {error}")))
            }
        }
    }

    fn session_answer(&self, id: u64, body: &[u8]) -> ApiResult {
        let text =
            std::str::from_utf8(body).map_err(|_| ApiError::new(400, "body is not UTF-8"))?;
        let parsed =
            Json::parse(text).map_err(|e| ApiError::new(400, format!("bad JSON body: {e}")))?;
        let answer = proto::answer_from_json(&parsed).map_err(|e| ApiError::new(400, e))?;

        let entry = self
            .store
            .get(id)
            .ok_or_else(|| ApiError::new(404, format!("no session {id}")))?;
        let mut entry = entry.lock().unwrap_or_else(|e| e.into_inner());
        match &entry.status {
            SessionStatus::Open { .. } => {}
            SessionStatus::Done { .. } => {
                return Err(ApiError::new(409, "session is already complete"));
            }
            SessionStatus::Failed { error } => {
                return Err(ApiError::new(500, format!("wizard failed: {error}")));
            }
        }

        // Validate by stepping with the candidate answer appended; only an
        // accepted answer reaches the WAL.
        entry.answers.push(answer.clone());
        match entry.advance(&self.metrics) {
            Ok(_) => {}
            Err(muse_wizard::WizardError::BadAnswer(msg)) => {
                entry.answers.pop();
                // Restore the cached question (state is derived, so this
                // cannot fail differently than before).
                let _ = entry.advance(&self.metrics);
                return Err(ApiError::new(400, format!("rejected answer: {msg}")));
            }
            Err(e) => {
                entry.answers.pop();
                return Err(self.session_failed(&mut entry, e));
            }
        }
        if let Err(e) = self.wal_append(&Json::obj(vec![
            ("rec", Json::str("answer")),
            ("session", Json::Int(id as i64)),
            ("answer", proto::answer_to_json(&answer)),
        ])) {
            // Un-acknowledged answers must not survive in memory either:
            // a restart would forget them, forking the session's history.
            entry.answers.pop();
            let _ = entry.advance(&self.metrics);
            return Err(e);
        }
        self.metrics.incr("serve.answers");

        let mut fields = vec![
            ("session", Json::Int(id as i64)),
            ("accepted", Json::Bool(true)),
        ];
        match &entry.status {
            SessionStatus::Open { question, .. } => {
                fields.push(("status", Json::str("open")));
                fields.push(("question", question.clone()));
            }
            SessionStatus::Done { .. } => {
                self.store.note_closed();
                self.metrics.incr("serve.sessions_completed");
                fields.push(("status", Json::str("done")));
            }
            SessionStatus::Failed { error } => {
                return Err(ApiError::new(500, format!("wizard failed: {error}")));
            }
        }
        Ok((200, Json::obj(fields)))
    }

    fn session_report(&self, id: u64) -> ApiResult {
        let entry = self
            .store
            .get(id)
            .ok_or_else(|| ApiError::new(404, format!("no session {id}")))?;
        let entry = entry.lock().unwrap_or_else(|e| e.into_inner());
        match &entry.status {
            SessionStatus::Done { report } => Ok((
                200,
                Json::obj(vec![
                    ("session", Json::Int(id as i64)),
                    ("status", Json::str("done")),
                    ("answers", Json::Int(entry.answers.len() as i64)),
                    ("result", report.clone()),
                ]),
            )),
            SessionStatus::Open { seq, .. } => Err(ApiError::new(
                409,
                format!("session still open at question {seq}"),
            )),
            SessionStatus::Failed { error } => {
                Err(ApiError::new(500, format!("wizard failed: {error}")))
            }
        }
    }
}

fn parse_id(segment: &str) -> Result<u64, ApiError> {
    segment
        .parse()
        .map_err(|_| ApiError::new(400, format!("bad session id `{segment}`")))
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Rebuild every logged session: group records by id, reconstruct each
/// context from its create record, push its answers, and step once to the
/// exact pre-crash state. Unknown or malformed records fail the bind — a
/// server must not silently drop acknowledged answers.
fn replay(store: &Store, metrics: &Metrics, records: Vec<Json>) -> Result<(), String> {
    for (n, record) in records.into_iter().enumerate() {
        let kind = record
            .get("rec")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("wal record {n}: missing `rec`"))?;
        let id = record
            .get("session")
            .and_then(Json::as_int)
            .filter(|i| *i > 0)
            .ok_or_else(|| format!("wal record {n}: missing `session`"))? as u64;
        match kind {
            "create" => {
                let cfg_json = record
                    .get("cfg")
                    .ok_or_else(|| format!("wal record {n}: create without `cfg`"))?;
                let cfg =
                    SessionCfg::from_json(cfg_json).map_err(|e| format!("wal record {n}: {e}"))?;
                let ctx = SessionCtx::build(&cfg).map_err(|e| format!("wal record {n}: {e}"))?;
                store.insert_replayed(id, cfg, ctx);
            }
            "answer" => {
                let answer_json = record
                    .get("answer")
                    .ok_or_else(|| format!("wal record {n}: answer without `answer`"))?;
                let answer = proto::answer_from_json(answer_json)
                    .map_err(|e| format!("wal record {n}: {e}"))?;
                let entry = store
                    .get(id)
                    .ok_or_else(|| format!("wal record {n}: answer for unknown session {id}"))?;
                entry
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .answers
                    .push(answer);
            }
            other => return Err(format!("wal record {n}: unknown kind `{other}`")),
        }
    }
    // One step per session (not per answer): the stepper replays the whole
    // answer list in a single wizard run.
    for entry in store.all() {
        let mut entry = entry.lock().unwrap_or_else(|e| e.into_inner());
        metrics.incr("serve.replays");
        match entry.advance(metrics) {
            Ok(muse_wizard::Step::Ask { .. }) => store.note_opened(),
            Ok(muse_wizard::Step::Done(_)) => {}
            Err(e) => {
                metrics.incr("serve.session_failures");
                entry.status = SessionStatus::Failed {
                    error: e.to_string(),
                };
            }
        }
    }
    Ok(())
}
