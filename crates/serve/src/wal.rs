//! The append-only answer log (WAL) behind session durability.
//!
//! Record framing: `[len: u32 LE][fnv1a32(payload): u32 LE][payload]`,
//! where the payload is one compact JSON object — either
//! `{"rec":"create","session":N,"cfg":{…}}`,
//! `{"rec":"answer","session":N,"answer":{…}}`,
//! `{"rec":"snapshot",…}` or the `{"rec":"noop"}` written by the
//! degraded-mode recovery probe. Records are appended and flushed
//! *before* the mutating request is acknowledged, so every acknowledged
//! answer survives a process kill.
//!
//! # Salvage
//!
//! Replay does not stop at the first bad frame. A torn **tail** (a final
//! frame whose header promises more bytes than the file holds — exactly
//! what an interrupted append leaves) is silently dropped, as before.
//! Any other corruption — a mid-file checksum mismatch, unparsable
//! payload, or garbage between frames — is **salvaged around**: the
//! decoder scans forward byte-by-byte to the next frame that checksums
//! and parses, quarantines the skipped bytes to `<wal>.quarantine`, and
//! keeps decoding. No frame preceding the first corruption is ever
//! dropped, and salvage never panics. After a dirty decode the log is
//! atomically rewritten clean (tmp + fsync + rename), so the append
//! handle always lands on a valid end-of-log — without the repair, a
//! frame appended after garbage would be silently unreachable on the
//! *next* replay.
//!
//! Storage faults are injectable at four points (`serve.wal.open`,
//! `serve.wal.append`, `serve.wal.fsync`, `serve.wal.compact`); the
//! fsync fault lands *half a frame* before failing, so the torn-write
//! salvage path is exercised by fault plans, not just by real crashes.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use muse_obs::{faultpoints, Json};

/// FNV-1a, 32-bit: tiny, deterministic, good enough to reject torn tails.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for b in bytes {
        hash ^= u32::from(*b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// What the salvage scan found (and repaired) when opening a log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SalvageReport {
    /// Frames recovered *after* the first corrupt region by scanning
    /// forward to the next valid frame boundary.
    pub salvaged_frames: u64,
    /// Corrupt bytes skipped mid-file and appended to `<wal>.quarantine`.
    /// Torn-tail bytes (an interrupted final append) are dropped silently
    /// and not counted here.
    pub quarantined_bytes: u64,
}

impl SalvageReport {
    /// Did the scan find anything to salvage or quarantine?
    pub fn is_clean(&self) -> bool {
        *self == SalvageReport::default()
    }
}

/// An open write-ahead log.
pub struct Wal {
    file: Mutex<File>,
    path: PathBuf,
    len: AtomicU64,
}

fn encode_frame(rec: &Json) -> Vec<u8> {
    let payload = rec.render().into_bytes();
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

impl Wal {
    /// Open `path` (creating it if absent), salvage-decode every record
    /// that survives (see the module docs), quarantine skipped bytes to
    /// `<path>.quarantine`, and atomically repair the log when the decode
    /// was dirty. A stray `<path>.tmp` left by a compaction interrupted
    /// before its rename is dead weight, never the live log, and is
    /// removed. The `serve.wal.open` fault point fails the open.
    pub fn open(path: &Path) -> io::Result<(Wal, Vec<Json>, SalvageReport)> {
        if muse_fault::point(faultpoints::SERVE_WAL_OPEN).is_some() {
            return Err(io::Error::other("injected serve.wal.open fault"));
        }
        let _ = std::fs::remove_file(tmp_path(path));
        let data = match std::fs::read(path) {
            Ok(data) => data,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let salvage = salvage_decode(&data);
        let report = SalvageReport {
            salvaged_frames: salvage.salvaged_frames,
            quarantined_bytes: salvage
                .quarantined
                .iter()
                .map(|(a, b)| (b - a) as u64)
                .sum(),
        };
        if !salvage.quarantined.is_empty() {
            // Best-effort post-mortem record of the skipped bytes; a
            // failure to preserve garbage must not fail recovery.
            if let Ok(mut q) = OpenOptions::new()
                .create(true)
                .append(true)
                .open(quarantine_path(path))
            {
                for (a, b) in &salvage.quarantined {
                    if let Some(bytes) = data.get(*a..*b) {
                        let _ = q.write_all(bytes);
                    }
                }
                let _ = q.flush();
            }
        }
        let (file, len) = if salvage.dirty {
            let mut clean = Vec::new();
            for rec in &salvage.records {
                clean.extend_from_slice(&encode_frame(rec));
            }
            match atomic_rewrite(path, &clean) {
                Ok(handle) => (handle, clean.len() as u64),
                Err(_) => {
                    // Repair is an optimization, not a correctness
                    // requirement: appending at the dirty end-of-log is
                    // safe now that replay salvages around garbage.
                    let file = OpenOptions::new().create(true).append(true).open(path)?;
                    let len = file.metadata()?.len();
                    (file, len)
                }
            }
        } else {
            let file = OpenOptions::new().create(true).append(true).open(path)?;
            let len = file.metadata()?.len();
            (file, len)
        };
        Ok((
            Wal {
                file: Mutex::new(file),
                path: path.to_owned(),
                len: AtomicU64::new(len),
            },
            salvage.records,
            report,
        ))
    }

    /// Bytes currently in the log file (frames appended or kept by the
    /// last compaction). Drives the compaction trigger.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    /// True when the log file holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one record and flush it to the OS; returns the bytes
    /// written. The `serve.wal.append` fault point (and the legacy
    /// `serve.wal` alias) fails the append before any byte is written;
    /// the `serve.wal.fsync` point lands *half a frame* and then fails,
    /// modeling a torn write that the next replay must salvage around.
    pub fn append(&self, rec: &Json) -> io::Result<u64> {
        if muse_fault::point(faultpoints::SERVE_WAL).is_some()
            || muse_fault::point(faultpoints::SERVE_WAL_APPEND).is_some()
        {
            return Err(io::Error::other("injected serve.wal.append fault"));
        }
        let frame = encode_frame(rec);
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        if muse_fault::point(faultpoints::SERVE_WAL_FSYNC).is_some() {
            let half = frame.get(..frame.len() / 2).unwrap_or(&frame);
            let _ = file.write_all(half);
            let _ = file.flush();
            self.len.fetch_add(half.len() as u64, Ordering::Relaxed);
            return Err(io::Error::other("injected serve.wal.fsync fault"));
        }
        file.write_all(&frame)?;
        file.flush()?;
        self.len.fetch_add(frame.len() as u64, Ordering::Relaxed);
        Ok(frame.len() as u64)
    }

    /// Rewrite the log as `rewrite(current records)`, atomically.
    ///
    /// The file mutex is held for the whole operation, so no append can
    /// interleave. The new log is written to `<path>.tmp`, synced, and an
    /// append handle to it is opened *before* the rename — the handle
    /// tracks the inode, not the name, so once `rename(tmp, path)` lands
    /// there is no window in which an append could go to a file about to
    /// be discarded. A crash on either side of the rename leaves a valid
    /// log: the old one (plus an ignorable `.tmp`) or the new one. The
    /// `serve.wal.compact` fault point fails the compaction up front,
    /// leaving the live log untouched.
    ///
    /// Returns the new length in bytes.
    pub fn compact(&self, rewrite: impl FnOnce(Vec<Json>) -> Vec<Json>) -> io::Result<u64> {
        if muse_fault::point(faultpoints::SERVE_WAL_COMPACT).is_some() {
            return Err(io::Error::other("injected serve.wal.compact fault"));
        }
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let records = salvage_decode(&std::fs::read(&self.path)?).records;
        let kept = rewrite(records);
        let mut data = Vec::new();
        for rec in &kept {
            data.extend_from_slice(&encode_frame(rec));
        }
        let new_handle = atomic_rewrite(&self.path, &data)?;
        *file = new_handle;
        self.len.store(data.len() as u64, Ordering::Relaxed);
        Ok(data.len() as u64)
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Where salvage quarantines skipped bytes: `<wal>.quarantine`.
pub fn quarantine_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".quarantine");
    PathBuf::from(os)
}

/// Replace the contents of `path` with `data` atomically and return an
/// append handle to the new file. Writes `<path>.tmp`, syncs it, opens
/// the handle on the tmp *before* the rename (the handle tracks the
/// inode, not the name), then renames over the live log.
fn atomic_rewrite(path: &Path, data: &[u8]) -> io::Result<File> {
    let tmp = tmp_path(path);
    let result = (|| {
        {
            let mut out = File::create(&tmp)?;
            out.write_all(data)?;
            out.sync_all()?;
        }
        let handle = OpenOptions::new().append(true).open(&tmp)?;
        std::fs::rename(&tmp, path)?;
        Ok::<File, io::Error>(handle)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Try to decode one full frame at `off`: `Some((record, end))` when the
/// length fits, the checksum matches, and the payload parses.
fn frame_at(data: &[u8], off: usize) -> Option<(Json, usize)> {
    let header = data.get(off..off.checked_add(8)?)?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let sum = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    let end = off.checked_add(8)?.checked_add(len)?;
    let payload = data.get(off + 8..end)?;
    if fnv1a32(payload) != sum {
        return None;
    }
    let text = std::str::from_utf8(payload).ok()?;
    let json = Json::parse(text).ok()?;
    Some((json, end))
}

struct Salvage {
    records: Vec<Json>,
    /// Frames recovered after the first skipped region.
    salvaged_frames: u64,
    /// `(start, end)` byte ranges of mid-file garbage, in file order.
    quarantined: Vec<(usize, usize)>,
    /// The on-disk bytes differ from a clean render of `records` —
    /// something was skipped, so the log wants an atomic repair.
    dirty: bool,
}

/// Decode every frame that survives in `data`, scanning forward past
/// corrupt regions (see the module docs for the torn-tail / quarantine
/// distinction). Total work is O(bytes · scan) only within corrupt
/// regions; a clean log decodes in one linear pass.
fn salvage_decode(data: &[u8]) -> Salvage {
    let mut records = Vec::new();
    let mut salvaged_frames = 0u64;
    let mut quarantined = Vec::new();
    let mut dirty = false;
    let mut past_corruption = false;
    let mut off = 0usize;
    while off < data.len() {
        if let Some((json, end)) = frame_at(data, off) {
            if past_corruption {
                salvaged_frames += 1;
            }
            records.push(json);
            off = end;
            continue;
        }
        // Invalid at `off`: scan forward for the next decodable frame.
        dirty = true;
        let mut found = None;
        let mut next = off + 1;
        while next.saturating_add(8) <= data.len() {
            if let Some((json, end)) = frame_at(data, next) {
                found = Some((json, next, end));
                break;
            }
            next += 1;
        }
        match found {
            Some((json, start, end)) => {
                quarantined.push((off, start));
                past_corruption = true;
                salvaged_frames += 1;
                records.push(json);
                off = end;
            }
            None => {
                // No decodable frame through end-of-file. An interrupted
                // append leaves a header promising more bytes than the
                // file holds (or less than a header's worth) — a torn
                // tail, dropped silently. Anything else is corruption and
                // is quarantined.
                let remaining = data.len() - off;
                let promised_end = data
                    .get(off..off + 4)
                    .and_then(|b| <[u8; 4]>::try_from(b).ok())
                    .map(|b| u32::from_le_bytes(b) as usize)
                    .and_then(|len| off.checked_add(8)?.checked_add(len));
                let torn = remaining < 8 || promised_end.is_none_or(|end| end > data.len());
                if !torn {
                    quarantined.push((off, data.len()));
                }
                off = data.len();
            }
        }
    }
    Salvage {
        records,
        salvaged_frames,
        quarantined,
        dirty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("muse_wal_test_{}_{name}", std::process::id()))
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(tmp_path(path));
        let _ = std::fs::remove_file(quarantine_path(path));
    }

    fn rec(n: i64) -> Json {
        Json::obj(vec![
            ("rec", Json::str("answer")),
            ("session", Json::Int(n)),
        ])
    }

    fn sessions(records: &[Json]) -> Vec<i64> {
        records
            .iter()
            .map(|r| r.get("session").and_then(Json::as_int).unwrap())
            .collect()
    }

    #[test]
    fn round_trips_records() {
        let path = tmp("roundtrip");
        cleanup(&path);
        {
            let (wal, existing, report) = Wal::open(&path).unwrap();
            assert!(existing.is_empty());
            assert!(report.is_clean());
            for i in 0..5 {
                wal.append(&rec(i)).unwrap();
            }
        }
        let (_, replayed, report) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 5);
        assert_eq!(replayed[3], rec(3));
        assert!(report.is_clean());
        cleanup(&path);
    }

    #[test]
    fn torn_tail_is_dropped_silently_and_repaired() {
        let path = tmp("torn");
        cleanup(&path);
        {
            let (wal, _, _) = Wal::open(&path).unwrap();
            wal.append(&rec(1)).unwrap();
            wal.append(&rec(2)).unwrap();
        }
        // Simulate a crash mid-append: a frame header promising more bytes
        // than were written.
        let clean_len = std::fs::read(&path).unwrap().len() as u64;
        let mut data = std::fs::read(&path).unwrap();
        data.extend_from_slice(&1000u32.to_le_bytes());
        data.extend_from_slice(&0u32.to_le_bytes());
        data.extend_from_slice(b"partial");
        std::fs::write(&path, &data).unwrap();

        let (wal, replayed, report) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        // A torn tail is the normal crash shape: no quarantine, no
        // salvage counters, but the log is truncated back to clean.
        assert!(report.is_clean());
        assert_eq!(wal.len(), clean_len, "repair truncates the torn tail");
        assert!(!quarantine_path(&path).exists());
        cleanup(&path);
    }

    #[test]
    fn append_after_torn_tail_survives_a_second_replay() {
        // Regression: before repair-on-open, the append handle landed
        // *after* the torn bytes, so a frame appended post-replay was
        // unreachable on the next replay.
        let path = tmp("torn_twice");
        cleanup(&path);
        {
            let (wal, _, _) = Wal::open(&path).unwrap();
            wal.append(&rec(1)).unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        data.extend_from_slice(&500u32.to_le_bytes());
        data.extend_from_slice(&7u32.to_le_bytes());
        data.extend_from_slice(b"torn");
        std::fs::write(&path, &data).unwrap();
        {
            let (wal, replayed, _) = Wal::open(&path).unwrap();
            assert_eq!(replayed.len(), 1);
            wal.append(&rec(2)).unwrap();
        }
        let (_, replayed, report) = Wal::open(&path).unwrap();
        assert_eq!(sessions(&replayed), vec![1, 2]);
        assert!(report.is_clean());
        cleanup(&path);
    }

    #[test]
    fn corrupt_final_frame_is_quarantined() {
        let path = tmp("corrupt");
        cleanup(&path);
        {
            let (wal, _, _) = Wal::open(&path).unwrap();
            wal.append(&rec(1)).unwrap();
            wal.append(&rec(2)).unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF; // flip a payload byte of the second record
        std::fs::write(&path, &data).unwrap();

        let (_, replayed, report) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0], rec(1));
        // A full-length frame that fails its checksum is corruption, not
        // a torn tail: its bytes are quarantined.
        assert_eq!(report.salvaged_frames, 0);
        assert!(report.quarantined_bytes > 0);
        let q = std::fs::read(quarantine_path(&path)).unwrap();
        assert_eq!(q.len() as u64, report.quarantined_bytes);
        cleanup(&path);
    }

    #[test]
    fn mid_file_corruption_salvages_later_frames() {
        let path = tmp("salvage");
        cleanup(&path);
        {
            let (wal, _, _) = Wal::open(&path).unwrap();
            for i in 0..5 {
                wal.append(&rec(i)).unwrap();
            }
        }
        // Corrupt one payload byte of the *second* frame: everything
        // before it must replay, everything after it must be salvaged.
        let frame_len = encode_frame(&rec(0)).len();
        let mut data = std::fs::read(&path).unwrap();
        data[frame_len + 10] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();

        let (wal, replayed, report) = Wal::open(&path).unwrap();
        assert_eq!(sessions(&replayed), vec![0, 2, 3, 4]);
        assert_eq!(report.salvaged_frames, 3);
        assert_eq!(report.quarantined_bytes, frame_len as u64);
        // The repaired log replays clean, with the salvaged frames kept.
        wal.append(&rec(9)).unwrap();
        drop(wal);
        let (_, replayed, report) = Wal::open(&path).unwrap();
        assert_eq!(sessions(&replayed), vec![0, 2, 3, 4, 9]);
        assert!(report.is_clean());
        cleanup(&path);
    }

    #[test]
    fn garbage_between_frames_is_skipped() {
        let path = tmp("garbage");
        cleanup(&path);
        let a = encode_frame(&rec(1));
        let b = encode_frame(&rec(2));
        let mut data = Vec::new();
        data.extend_from_slice(&a);
        data.extend_from_slice(b"\x00\xFFnoise!");
        data.extend_from_slice(&b);
        std::fs::write(&path, &data).unwrap();

        let (_, replayed, report) = Wal::open(&path).unwrap();
        assert_eq!(sessions(&replayed), vec![1, 2]);
        assert_eq!(report.salvaged_frames, 1);
        assert_eq!(report.quarantined_bytes, 8);
        cleanup(&path);
    }

    #[test]
    fn fsync_fault_tears_the_frame_and_salvage_recovers() {
        let path = tmp("fsync_fault");
        cleanup(&path);
        {
            let (wal, _, _) = Wal::open(&path).unwrap();
            wal.append(&rec(1)).unwrap();
            let _g =
                muse_fault::arm_scoped(muse_fault::parse_spec("serve.wal.fsync:io@1").unwrap());
            assert!(wal.append(&rec(2)).is_err(), "fsync fault fails append");
            // The fault landed half a frame; the next append goes after it.
            wal.append(&rec(3)).unwrap();
        }
        let (_, replayed, report) = Wal::open(&path).unwrap();
        assert_eq!(sessions(&replayed), vec![1, 3]);
        assert_eq!(report.salvaged_frames, 1);
        assert!(report.quarantined_bytes > 0);
        cleanup(&path);
    }

    #[test]
    fn compaction_rewrites_atomically_and_appends_continue() {
        let path = tmp("compact");
        cleanup(&path);
        {
            let (wal, _, _) = Wal::open(&path).unwrap();
            for i in 0..6 {
                wal.append(&rec(i)).unwrap();
            }
            let before = wal.len();
            // Keep only the even records.
            let after = wal
                .compact(|recs| {
                    recs.into_iter()
                        .filter(|r| r.get("session").and_then(Json::as_int).unwrap() % 2 == 0)
                        .collect()
                })
                .unwrap();
            assert!(after < before, "compaction must shrink the log");
            assert_eq!(wal.len(), after);
            // The swapped handle must keep appending to the *live* file.
            wal.append(&rec(100)).unwrap();
        }
        let (_, replayed, _) = Wal::open(&path).unwrap();
        assert_eq!(sessions(&replayed), vec![0, 2, 4, 100]);
        cleanup(&path);
    }

    #[test]
    fn compact_fault_leaves_live_log_untouched() {
        let path = tmp("compact_fault");
        cleanup(&path);
        let (wal, _, _) = Wal::open(&path).unwrap();
        wal.append(&rec(1)).unwrap();
        let before = wal.len();
        {
            let _g =
                muse_fault::arm_scoped(muse_fault::parse_spec("serve.wal.compact:io@1").unwrap());
            assert!(wal.compact(|r| r).is_err());
        }
        assert_eq!(wal.len(), before);
        wal.append(&rec(2)).unwrap();
        drop(wal);
        let (_, replayed, _) = Wal::open(&path).unwrap();
        assert_eq!(sessions(&replayed), vec![1, 2]);
        cleanup(&path);
    }

    #[test]
    fn stray_tmp_from_interrupted_compaction_is_ignored() {
        let path = tmp("straytmp");
        cleanup(&path);
        {
            let (wal, _, _) = Wal::open(&path).unwrap();
            wal.append(&rec(1)).unwrap();
        }
        // Simulate a crash after writing the compacted tmp but before the
        // rename: the tmp must not shadow or corrupt the live log.
        let tmp_file = super::tmp_path(&path);
        std::fs::write(&tmp_file, b"garbage left by a crash").unwrap();
        let (_, replayed, _) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert!(!tmp_file.exists(), "open cleans up the stray tmp");
        cleanup(&path);
    }

    #[test]
    fn append_reopens_after_replay() {
        let path = tmp("reopen");
        cleanup(&path);
        {
            let (wal, _, _) = Wal::open(&path).unwrap();
            wal.append(&rec(1)).unwrap();
        }
        {
            let (wal, replayed, _) = Wal::open(&path).unwrap();
            assert_eq!(replayed.len(), 1);
            wal.append(&rec(2)).unwrap();
        }
        let (_, replayed, _) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        cleanup(&path);
    }
}
