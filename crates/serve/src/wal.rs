//! The append-only answer log (WAL) behind session durability.
//!
//! Record framing: `[len: u32 LE][fnv1a32(payload): u32 LE][payload]`,
//! where the payload is one compact JSON object — either
//! `{"rec":"create","session":N,"cfg":{…}}` or
//! `{"rec":"answer","session":N,"answer":{…}}`. Records are appended and
//! flushed *before* the mutating request is acknowledged, so every
//! acknowledged answer survives a process kill. A torn or corrupt tail
//! (partial frame, checksum mismatch, unparsable payload) marks the end of
//! the log on replay — exactly the bytes an interrupted append could
//! leave — and everything before it is replayed.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use muse_obs::{faultpoints, Json};

/// FNV-1a, 32-bit: tiny, deterministic, good enough to reject torn tails.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for b in bytes {
        hash ^= u32::from(*b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// An open write-ahead log.
pub struct Wal {
    file: Mutex<File>,
    path: PathBuf,
    len: AtomicU64,
}

fn encode_frame(rec: &Json) -> Vec<u8> {
    let payload = rec.render().into_bytes();
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

impl Wal {
    /// Open `path` (creating it if absent) and decode every intact record
    /// already present, in order. Stops at the first torn or corrupt
    /// frame. A stray `<path>.tmp` left by a compaction interrupted before
    /// its rename is dead weight, never the live log, and is removed.
    pub fn open(path: &Path) -> io::Result<(Wal, Vec<Json>)> {
        let _ = std::fs::remove_file(tmp_path(path));
        let records = match std::fs::read(path) {
            Ok(data) => decode_all(&data),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let len = file.metadata()?.len();
        Ok((
            Wal {
                file: Mutex::new(file),
                path: path.to_owned(),
                len: AtomicU64::new(len),
            },
            records,
        ))
    }

    /// Bytes currently in the log file (frames appended or kept by the
    /// last compaction). Drives the compaction trigger.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    /// True when the log file holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one record and flush it to the OS; returns the bytes
    /// written. The `serve.wal` fault point injects an append failure.
    pub fn append(&self, rec: &Json) -> io::Result<u64> {
        if muse_fault::point(faultpoints::SERVE_WAL).is_some() {
            return Err(io::Error::other("injected serve.wal fault"));
        }
        let frame = encode_frame(rec);
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.write_all(&frame)?;
        file.flush()?;
        self.len.fetch_add(frame.len() as u64, Ordering::Relaxed);
        Ok(frame.len() as u64)
    }

    /// Rewrite the log as `rewrite(current records)`, atomically.
    ///
    /// The file mutex is held for the whole operation, so no append can
    /// interleave. The new log is written to `<path>.tmp`, synced, and an
    /// append handle to it is opened *before* the rename — the handle
    /// tracks the inode, not the name, so once `rename(tmp, path)` lands
    /// there is no window in which an append could go to a file about to
    /// be discarded. A crash on either side of the rename leaves a valid
    /// log: the old one (plus an ignorable `.tmp`) or the new one.
    ///
    /// Returns the new length in bytes.
    pub fn compact(&self, rewrite: impl FnOnce(Vec<Json>) -> Vec<Json>) -> io::Result<u64> {
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let records = decode_all(&std::fs::read(&self.path)?);
        let kept = rewrite(records);
        let mut data = Vec::new();
        for rec in &kept {
            data.extend_from_slice(&encode_frame(rec));
        }
        let tmp = tmp_path(&self.path);
        let result = (|| {
            {
                let mut out = File::create(&tmp)?;
                out.write_all(&data)?;
                out.sync_all()?;
            }
            let new_handle = OpenOptions::new().append(true).open(&tmp)?;
            std::fs::rename(&tmp, &self.path)?;
            Ok::<File, io::Error>(new_handle)
        })();
        match result {
            Ok(new_handle) => {
                *file = new_handle;
                self.len.store(data.len() as u64, Ordering::Relaxed);
                Ok(data.len() as u64)
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

fn decode_all(data: &[u8]) -> Vec<Json> {
    let mut records = Vec::new();
    let mut off = 0usize;
    while data.len().saturating_sub(off) >= 8 {
        let Ok(len_bytes) = <[u8; 4]>::try_from(&data[off..off + 4]) else {
            break;
        };
        let Ok(sum_bytes) = <[u8; 4]>::try_from(&data[off + 4..off + 8]) else {
            break;
        };
        let len = u32::from_le_bytes(len_bytes) as usize;
        let sum = u32::from_le_bytes(sum_bytes);
        let Some(end) = (off + 8).checked_add(len) else {
            break;
        };
        if end > data.len() {
            break; // torn tail: the append was interrupted
        }
        let payload = &data[off + 8..end];
        if fnv1a32(payload) != sum {
            break; // corrupt tail
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(json) = Json::parse(text) else {
            break;
        };
        records.push(json);
        off = end;
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("muse_wal_test_{}_{name}", std::process::id()))
    }

    fn rec(n: i64) -> Json {
        Json::obj(vec![
            ("rec", Json::str("answer")),
            ("session", Json::Int(n)),
        ])
    }

    #[test]
    fn round_trips_records() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, existing) = Wal::open(&path).unwrap();
            assert!(existing.is_empty());
            for i in 0..5 {
                wal.append(&rec(i)).unwrap();
            }
        }
        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 5);
        assert_eq!(replayed[3], rec(3));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, _) = Wal::open(&path).unwrap();
            wal.append(&rec(1)).unwrap();
            wal.append(&rec(2)).unwrap();
        }
        // Simulate a crash mid-append: a frame header promising more bytes
        // than were written.
        let mut data = std::fs::read(&path).unwrap();
        data.extend_from_slice(&1000u32.to_le_bytes());
        data.extend_from_slice(&0u32.to_le_bytes());
        data.extend_from_slice(b"partial");
        std::fs::write(&path, &data).unwrap();

        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, _) = Wal::open(&path).unwrap();
            wal.append(&rec(1)).unwrap();
            wal.append(&rec(2)).unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF; // flip a payload byte of the second record
        std::fs::write(&path, &data).unwrap();

        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0], rec(1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_rewrites_atomically_and_appends_continue() {
        let path = tmp("compact");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, _) = Wal::open(&path).unwrap();
            for i in 0..6 {
                wal.append(&rec(i)).unwrap();
            }
            let before = wal.len();
            // Keep only the even records.
            let after = wal
                .compact(|recs| {
                    recs.into_iter()
                        .filter(|r| r.get("session").and_then(Json::as_int).unwrap() % 2 == 0)
                        .collect()
                })
                .unwrap();
            assert!(after < before, "compaction must shrink the log");
            assert_eq!(wal.len(), after);
            // The swapped handle must keep appending to the *live* file.
            wal.append(&rec(100)).unwrap();
        }
        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(
            replayed
                .iter()
                .map(|r| r.get("session").and_then(Json::as_int).unwrap())
                .collect::<Vec<_>>(),
            vec![0, 2, 4, 100]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stray_tmp_from_interrupted_compaction_is_ignored() {
        let path = tmp("straytmp");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, _) = Wal::open(&path).unwrap();
            wal.append(&rec(1)).unwrap();
        }
        // Simulate a crash after writing the compacted tmp but before the
        // rename: the tmp must not shadow or corrupt the live log.
        let tmp_file = super::tmp_path(&path);
        std::fs::write(&tmp_file, b"garbage left by a crash").unwrap();
        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert!(!tmp_file.exists(), "open cleans up the stray tmp");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_reopens_after_replay() {
        let path = tmp("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, _) = Wal::open(&path).unwrap();
            wal.append(&rec(1)).unwrap();
        }
        {
            let (wal, replayed) = Wal::open(&path).unwrap();
            assert_eq!(replayed.len(), 1);
            wal.append(&rec(2)).unwrap();
        }
        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
