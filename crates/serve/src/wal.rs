//! The append-only answer log (WAL) behind session durability.
//!
//! Record framing: `[len: u32 LE][fnv1a32(payload): u32 LE][payload]`,
//! where the payload is one compact JSON object — either
//! `{"rec":"create","session":N,"cfg":{…}}` or
//! `{"rec":"answer","session":N,"answer":{…}}`. Records are appended and
//! flushed *before* the mutating request is acknowledged, so every
//! acknowledged answer survives a process kill. A torn or corrupt tail
//! (partial frame, checksum mismatch, unparsable payload) marks the end of
//! the log on replay — exactly the bytes an interrupted append could
//! leave — and everything before it is replayed.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;

use muse_obs::{faultpoints, Json};

/// FNV-1a, 32-bit: tiny, deterministic, good enough to reject torn tails.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for b in bytes {
        hash ^= u32::from(*b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// An open write-ahead log.
pub struct Wal {
    file: Mutex<File>,
}

impl Wal {
    /// Open `path` (creating it if absent) and decode every intact record
    /// already present, in order. Stops at the first torn or corrupt
    /// frame.
    pub fn open(path: &Path) -> io::Result<(Wal, Vec<Json>)> {
        let records = match std::fs::read(path) {
            Ok(data) => decode_all(&data),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok((
            Wal {
                file: Mutex::new(file),
            },
            records,
        ))
    }

    /// Append one record and flush it to the OS; returns the bytes
    /// written. The `serve.wal` fault point injects an append failure.
    pub fn append(&self, rec: &Json) -> io::Result<u64> {
        if muse_fault::point(faultpoints::SERVE_WAL).is_some() {
            return Err(io::Error::other("injected serve.wal fault"));
        }
        let payload = rec.render().into_bytes();
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.write_all(&frame)?;
        file.flush()?;
        Ok(frame.len() as u64)
    }
}

fn decode_all(data: &[u8]) -> Vec<Json> {
    let mut records = Vec::new();
    let mut off = 0usize;
    while data.len().saturating_sub(off) >= 8 {
        let Ok(len_bytes) = <[u8; 4]>::try_from(&data[off..off + 4]) else {
            break;
        };
        let Ok(sum_bytes) = <[u8; 4]>::try_from(&data[off + 4..off + 8]) else {
            break;
        };
        let len = u32::from_le_bytes(len_bytes) as usize;
        let sum = u32::from_le_bytes(sum_bytes);
        let Some(end) = (off + 8).checked_add(len) else {
            break;
        };
        if end > data.len() {
            break; // torn tail: the append was interrupted
        }
        let payload = &data[off + 8..end];
        if fnv1a32(payload) != sum {
            break; // corrupt tail
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(json) = Json::parse(text) else {
            break;
        };
        records.push(json);
        off = end;
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("muse_wal_test_{}_{name}", std::process::id()))
    }

    fn rec(n: i64) -> Json {
        Json::obj(vec![
            ("rec", Json::str("answer")),
            ("session", Json::Int(n)),
        ])
    }

    #[test]
    fn round_trips_records() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, existing) = Wal::open(&path).unwrap();
            assert!(existing.is_empty());
            for i in 0..5 {
                wal.append(&rec(i)).unwrap();
            }
        }
        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 5);
        assert_eq!(replayed[3], rec(3));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, _) = Wal::open(&path).unwrap();
            wal.append(&rec(1)).unwrap();
            wal.append(&rec(2)).unwrap();
        }
        // Simulate a crash mid-append: a frame header promising more bytes
        // than were written.
        let mut data = std::fs::read(&path).unwrap();
        data.extend_from_slice(&1000u32.to_le_bytes());
        data.extend_from_slice(&0u32.to_le_bytes());
        data.extend_from_slice(b"partial");
        std::fs::write(&path, &data).unwrap();

        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, _) = Wal::open(&path).unwrap();
            wal.append(&rec(1)).unwrap();
            wal.append(&rec(2)).unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF; // flip a payload byte of the second record
        std::fs::write(&path, &data).unwrap();

        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0], rec(1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_reopens_after_replay() {
        let path = tmp("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, _) = Wal::open(&path).unwrap();
            wal.append(&rec(1)).unwrap();
        }
        {
            let (wal, replayed) = Wal::open(&path).unwrap();
            assert_eq!(replayed.len(), 1);
            wal.append(&rec(2)).unwrap();
        }
        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
