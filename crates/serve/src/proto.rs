//! The wire protocol: JSON encodings of answers, questions, and reports.
//!
//! Determinism discipline: everything under a `"report"` or `"question"`
//! key is a pure function of the session's inputs (scenario, scale, seed,
//! knobs, answers) — golden transcripts and crash/replay differentials
//! compare those bytes directly. Wall-clock measurements live only under
//! `"timing"` keys, which [`strip_volatile`] removes before comparison.

use muse_nr::Schema;
use muse_obs::Json;
use muse_wizard::{Answer, JoinChoice, PendingQuestion, ScenarioChoice, SessionReport};

/// Encode an answer, e.g. `{"kind":"scenario","pick":2}`.
pub fn answer_to_json(a: &Answer) -> Json {
    match a {
        Answer::Scenario(c) => Json::obj(vec![
            ("kind", Json::str("scenario")),
            (
                "pick",
                Json::Int(match c {
                    ScenarioChoice::First => 1,
                    ScenarioChoice::Second => 2,
                }),
            ),
        ]),
        Answer::Choices(picks) => Json::obj(vec![
            ("kind", Json::str("choices")),
            (
                "picks",
                Json::Arr(
                    picks
                        .iter()
                        .map(|group| {
                            Json::Arr(group.iter().map(|i| Json::Int(*i as i64)).collect())
                        })
                        .collect(),
                ),
            ),
        ]),
        Answer::Join(c) => Json::obj(vec![
            ("kind", Json::str("join")),
            (
                "pick",
                Json::str(match c {
                    JoinChoice::Inner => "inner",
                    JoinChoice::Outer => "outer",
                }),
            ),
        ]),
    }
}

/// Decode an answer; errors name the offending field.
pub fn answer_from_json(j: &Json) -> Result<Answer, String> {
    let kind = j
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("answer needs a string `kind`")?;
    match kind {
        "scenario" => match j.get("pick").and_then(Json::as_int) {
            Some(1) => Ok(Answer::Scenario(ScenarioChoice::First)),
            Some(2) => Ok(Answer::Scenario(ScenarioChoice::Second)),
            _ => Err("scenario answer needs `pick` of 1 or 2".to_owned()),
        },
        "choices" => {
            let groups = j
                .get("picks")
                .and_then(Json::as_arr)
                .ok_or("choices answer needs a `picks` array of arrays")?;
            let mut picks = Vec::with_capacity(groups.len());
            for group in groups {
                let indices = group
                    .as_arr()
                    .ok_or("each element of `picks` must be an array of indices")?;
                let mut out = Vec::with_capacity(indices.len());
                for i in indices {
                    let n = i
                        .as_int()
                        .filter(|n| *n >= 0)
                        .ok_or("choice indices must be non-negative integers")?;
                    out.push(n as usize);
                }
                picks.push(out);
            }
            Ok(Answer::Choices(picks))
        }
        "join" => match j.get("pick").and_then(Json::as_str) {
            Some("inner") => Ok(Answer::Join(JoinChoice::Inner)),
            Some("outer") => Ok(Answer::Join(JoinChoice::Outer)),
            _ => Err("join answer needs `pick` of \"inner\" or \"outer\"".to_owned()),
        },
        other => Err(format!(
            "unknown answer kind `{other}` (expected scenario|choices|join)"
        )),
    }
}

/// Encode the question a session is suspended on: structured metadata plus
/// the full interactive prompt (schema-rendered example and scenarios).
pub fn question_json(
    seq: usize,
    q: &PendingQuestion,
    source_schema: &Schema,
    target_schema: &Schema,
) -> Json {
    let mut fields = vec![
        ("seq", Json::Int(seq as i64)),
        ("kind", Json::str(q.kind())),
        ("mapping", Json::str(q.mapping())),
    ];
    match q {
        PendingQuestion::Grouping(g) => {
            fields.push(("set", Json::str(g.sk.to_string())));
            fields.push(("probed", Json::str(g.probed_name.clone())));
            fields.push(("example_real", Json::Bool(g.example.real)));
        }
        PendingQuestion::Disambiguation(d) => {
            fields.push(("example_real", Json::Bool(d.example.real)));
            fields.push((
                "choices",
                Json::Arr(
                    d.choices
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("target", Json::str(c.target_display.clone())),
                                (
                                    "values",
                                    Json::Arr(
                                        c.values
                                            .iter()
                                            .map(|v| {
                                                Json::str(
                                                    d.example.instance.store().render_value(v),
                                                )
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        PendingQuestion::Join(jq) => {
            fields.push(("dangling_var", Json::str(jq.dangling_var.clone())));
        }
    }
    fields.push(("prompt", Json::str(q.render(source_schema, target_schema))));
    Json::obj(fields)
}

/// Encode a finished report: the deterministic `"report"` object plus a
/// volatile `"timing"` object.
pub fn report_json(r: &SessionReport) -> Json {
    Json::obj(vec![
        ("report", report_stable_json(r)),
        (
            "timing",
            Json::obj(vec![(
                "example_time_s",
                Json::Num(r.total_example_time().as_secs_f64()),
            )]),
        ),
    ])
}

/// The deterministic part of a report — a pure function of the session's
/// inputs and answers, byte-comparable across HTTP, replay, and offline
/// runs.
pub fn report_stable_json(r: &SessionReport) -> Json {
    let groupings = r
        .groupings
        .iter()
        .map(|(name, o)| {
            // Render `PathRef`s through the mapping they belong to; the
            // report's mappings carry the final (post-selection) names.
            let owner = r.mappings.iter().find(|m| &m.name == name);
            let grouping: Vec<Json> = o
                .grouping
                .iter()
                .map(|p| {
                    Json::str(match owner {
                        Some(m) => m.source_ref_name(p),
                        None => format!("var{}.{}", p.var, p.attr),
                    })
                })
                .collect();
            Json::obj(vec![
                ("mapping", Json::str(name.clone())),
                ("set", Json::str(o.sk.to_string())),
                ("grouping", Json::Arr(grouping)),
                ("poss", Json::Int(o.poss_size as i64)),
                ("questions", Json::Int(o.questions as i64)),
                ("skipped_implied", Json::Int(o.skipped_implied as i64)),
                (
                    "skipped_inconsequential",
                    Json::Int(o.skipped_inconsequential as i64),
                ),
                ("real_examples", Json::Int(o.real_examples as i64)),
                ("synthetic_examples", Json::Int(o.synthetic_examples as i64)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("total_questions", Json::Int(r.total_questions() as i64)),
        ("disambiguations", Json::Int(r.disambiguations.len() as i64)),
        ("join_questions", Json::Int(r.join_questions as i64)),
        ("companions_added", Json::Int(r.companions_added as i64)),
        ("truncated", Json::Bool(r.truncated())),
        ("groupings", Json::Arr(groupings)),
        (
            "warnings",
            Json::Arr(r.warnings.iter().map(|w| Json::str(w.clone())).collect()),
        ),
        (
            "mappings",
            Json::str(muse_mapping::printer::print_all(&r.mappings)),
        ),
    ])
}

/// Remove every `"timing"` member, recursively — applied to wire payloads
/// before byte comparison in golden and differential tests.
pub fn strip_volatile(j: &mut Json) {
    match j {
        Json::Obj(fields) => {
            fields.retain(|(k, _)| k != "timing");
            for (_, v) in fields {
                strip_volatile(v);
            }
        }
        Json::Arr(items) => {
            for v in items {
                strip_volatile(v);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answers_round_trip() {
        let answers = [
            Answer::Scenario(ScenarioChoice::First),
            Answer::Scenario(ScenarioChoice::Second),
            Answer::Choices(vec![vec![0], vec![1, 2]]),
            Answer::Join(JoinChoice::Outer),
        ];
        for a in &answers {
            let j = answer_to_json(a);
            let back = answer_from_json(&j).unwrap();
            assert_eq!(&back, a, "{}", j.render());
        }
    }

    #[test]
    fn malformed_answers_are_rejected() {
        for text in [
            "{}",
            "{\"kind\":\"scenario\",\"pick\":3}",
            "{\"kind\":\"choices\",\"picks\":[[-1]]}",
            "{\"kind\":\"choices\",\"picks\":[0]}",
            "{\"kind\":\"join\",\"pick\":\"full\"}",
            "{\"kind\":\"wat\"}",
        ] {
            let j = Json::parse(text).unwrap();
            assert!(answer_from_json(&j).is_err(), "{text} should be rejected");
        }
    }

    #[test]
    fn strip_volatile_removes_timing_recursively() {
        let mut j = Json::parse(
            "{\"report\":{\"x\":1,\"timing\":{\"s\":2}},\"timing\":{\"s\":3},\"arr\":[{\"timing\":1}]}",
        )
        .unwrap();
        strip_volatile(&mut j);
        assert_eq!(j.render(), "{\"report\":{\"x\":1},\"arr\":[{}]}");
    }
}
