//! **muse-serve** — the Muse wizards as a long-lived network service.
//!
//! The paper's wizard is interactive: a designer answers a short sequence
//! of questions, each illustrated with a small data example. This crate
//! serves that interaction over HTTP/1.1 (hand-rolled on
//! `std::net::TcpListener` — the workspace is zero-dependency), holding
//! many design sessions open at once:
//!
//! | Verb + path                   | Effect                                        |
//! |-------------------------------|-----------------------------------------------|
//! | `POST /sessions`              | create a session (scenario + knobs) → id      |
//! | `GET /sessions/{id}/question` | the current question, example included        |
//! | `POST /sessions/{id}/answer`  | answer it, advancing the state machine        |
//! | `GET /sessions/{id}/report`   | the final [`muse_wizard::SessionReport`]      |
//! | `GET /metrics`                | live `muse_obs` counters + server histograms  |
//! | `GET /healthz`                | liveness                                      |
//! | `POST /admin/shutdown`        | graceful drain                                |
//!
//! Durability: every session-mutating request is recorded in an
//! append-only answer log ([`wal`]) *before* it is acknowledged, so a
//! restarted server deterministically replays every session to its exact
//! pre-crash question — the wizard refactored into a stepwise state
//! machine ([`muse_wizard::Session::step`]) makes resumption the same code
//! path as answering one more question. Periodic *snapshot* records keep
//! resume cheap: a session whose latest snapshot covers all its answers
//! restores in O(1), and WAL compaction drops superseded snapshots so the
//! log stays bounded by the answer history.
//!
//! Concurrency: a bounded accept loop feeds a fixed `muse-par` worker pool;
//! connections are persistent (HTTP/1.1 keep-alive) and parked between
//! requests on a dedicated poller thread, so an idle connection costs no
//! worker. The *resident-connection* cap sheds excess load with
//! `503 + Retry-After` ([`server`]). Request handling is panic-isolated,
//! budgeted per session via `muse_obs::Budget`, and observable through
//! `serve.*` metrics and the `serve.accept` / `serve.handle` / `serve.wal`
//! fault points. Identical deterministic probes across sessions are
//! memoized process-wide (`serve.cache_hits` / `serve.cache_misses`).

pub mod client;
pub mod hist;
pub mod http;
pub mod oracle;
pub mod proto;
pub mod server;
pub mod store;
pub mod wal;

pub use client::Client;
pub use server::{Server, ServerConfig};
pub use store::SessionCfg;
