//! **muse-serve** — the Muse wizards as a long-lived network service.
//!
//! The paper's wizard is interactive: a designer answers a short sequence
//! of questions, each illustrated with a small data example. This crate
//! serves that interaction over HTTP/1.1 (hand-rolled on
//! `std::net::TcpListener` — the workspace is zero-dependency), holding
//! many design sessions open at once:
//!
//! | Verb + path                   | Effect                                        |
//! |-------------------------------|-----------------------------------------------|
//! | `POST /sessions`              | create a session (scenario + knobs) → id      |
//! | `GET /sessions/{id}/question` | the current question, example included        |
//! | `POST /sessions/{id}/answer`  | answer it, advancing the state machine        |
//! | `GET /sessions/{id}/report`   | the final [`muse_wizard::SessionReport`]      |
//! | `GET /metrics`                | live `muse_obs` counters + server histograms  |
//! | `GET /healthz`                | liveness + health state (`healthy` / `degraded` / `recovering`) |
//! | `POST /admin/shutdown`        | graceful drain                                |
//!
//! Durability: every session-mutating request is recorded in an
//! append-only answer log ([`wal`]) *before* it is acknowledged, so a
//! restarted server deterministically replays every session to its exact
//! pre-crash question — the wizard refactored into a stepwise state
//! machine ([`muse_wizard::Session::step`]) makes resumption the same code
//! path as answering one more question. Periodic *snapshot* records keep
//! resume cheap: a session whose latest snapshot covers all its answers
//! restores in O(1), and WAL compaction drops superseded snapshots so the
//! log stays bounded by the answer history. A corrupt WAL never takes the
//! server down: open *salvages* it — a clean torn tail is dropped
//! silently, any other damage is scanned past frame-by-frame, the skipped
//! bytes are quarantined to `<wal>.quarantine`, and every record before
//! the corruption survives ([`wal`]).
//!
//! Disk trouble at runtime degrades the service instead of killing it:
//! the store runs a Healthy → Degraded → Recovering state machine — while
//! degraded, mutations are shed with `503 + Retry-After` (the bundled
//! [`client`] honors it with capped, jittered backoff), reads are served
//! from memory, and a background probe re-verifies the WAL until two
//! consecutive successes restore Healthy. Sessions whose step panics
//! repeatedly are quarantined individually (structured 500) without
//! affecting their neighbors.
//!
//! Concurrency: a bounded accept loop feeds a fixed `muse-par` worker pool;
//! connections are persistent (HTTP/1.1 keep-alive) and parked between
//! requests on a dedicated poller thread, so an idle connection costs no
//! worker. The *resident-connection* cap sheds excess load with
//! `503 + Retry-After` ([`server`]). Request handling is panic-isolated,
//! budgeted per session via `muse_obs::Budget`, and observable through
//! `serve.*` metrics and the `serve.accept` / `serve.handle` /
//! `serve.wal.{open,append,fsync,compact}` / `serve.session.step` fault
//! points (the storage points accept sticky `io` faults — `x*` in the
//! plan grammar — which is how the degraded-mode paths are exercised).
//! Identical deterministic probes across sessions are memoized
//! process-wide (`serve.cache_hits` / `serve.cache_misses`).

pub mod client;
pub mod hist;
pub mod http;
pub mod oracle;
pub mod proto;
pub mod server;
pub mod store;
pub mod wal;

pub use client::Client;
pub use server::{Server, ServerConfig};
pub use store::SessionCfg;
