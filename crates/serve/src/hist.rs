//! A lock-free log₂-bucketed latency histogram. `muse_obs::Timer` records
//! count + total only; quantiles need a distribution, so the server keeps
//! one of these per measured path. Bucket `i` covers `[2^(i-1), 2^i)` ns
//! (bucket 0 is `0 ns`); a quantile reports its bucket's upper bound —
//! at most 2× the true value, plenty for a p50/p99 trend line.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use muse_obs::Json;

const BUCKETS: usize = 64;

/// A concurrent histogram of durations.
pub struct Hist {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        }
    }
}

fn bucket_of(ns: u64) -> usize {
    (64 - ns.leading_zeros() as usize).min(BUCKETS - 1)
}

fn upper_bound_ns(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        1u64 << bucket.min(62)
    }
}

impl Hist {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) as a duration; zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        let rank = ((count as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen > rank {
                return Duration::from_nanos(upper_bound_ns(i));
            }
        }
        Duration::from_nanos(upper_bound_ns(BUCKETS - 1))
    }

    /// Mean observation; zero when empty.
    pub fn mean(&self) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.total_ns.load(Ordering::Relaxed) / count)
    }

    /// `{count, mean_ms, p50_ms, p99_ms}` for `/metrics` and the bench.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::Int(self.count() as i64)),
            ("mean_ms", Json::Num(self.mean().as_secs_f64() * 1e3)),
            ("p50_ms", Json::Num(self.quantile(0.5).as_secs_f64() * 1e3)),
            ("p99_ms", Json::Num(self.quantile(0.99).as_secs_f64() * 1e3)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bracket_the_data() {
        let h = Hist::new();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // Upper bounds of log2 buckets: within 2x of the true value.
        assert!(p50 >= Duration::from_millis(50) && p50 <= Duration::from_millis(128));
        assert!(p99 >= Duration::from_millis(99) && p99 <= Duration::from_millis(256));
        assert!(p50 <= p99);
        assert_eq!(h.mean(), Duration::from_micros(50500));
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Hist::new();
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn zero_durations_land_in_bucket_zero() {
        let h = Hist::new();
        h.record(Duration::ZERO);
        h.record(Duration::ZERO);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
    }

    /// A single sample reports the same bucket upper bound at every
    /// quantile — p50 and p99 cannot disagree about one observation.
    #[test]
    fn single_sample_has_one_answer_for_every_quantile() {
        let h = Hist::new();
        h.record(Duration::from_nanos(1));
        // 1 ns lands in bucket 1 ([1, 2) ns), upper bound 2 ns.
        let expect = Duration::from_nanos(2);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), expect, "q={q}");
        }
    }

    /// Exact powers of two sit at bucket *lower* edges: `2^k` falls in
    /// bucket `k+1` (`[2^k, 2^(k+1))`), so the reported upper bound is
    /// exactly `2 * value` — the worst case of the documented ≤2×
    /// contract, never more.
    #[test]
    fn bucket_boundaries_stay_within_the_2x_contract() {
        for k in [0u32, 1, 5, 10, 20, 30] {
            let v = 1u64 << k;
            let h = Hist::new();
            h.record(Duration::from_nanos(v));
            let got = h.quantile(0.5).as_nanos() as u64;
            assert_eq!(got, 2 * v, "2^{k} must report its bucket's upper bound");
        }
        // One below a boundary stays in the lower bucket: reported bound
        // is the boundary itself, within 2x of the value.
        let h = Hist::new();
        h.record(Duration::from_nanos((1u64 << 10) - 1));
        assert_eq!(h.quantile(0.5).as_nanos() as u64, 1u64 << 10);
    }
}
