//! Strategy-oracle sessions: the server plays designer.
//!
//! `POST /sessions` with `"strategy": "g1"|"g2"|"g3"` asks the server to
//! answer its own questions the way `muse scenario --strategy` does: the
//! first interpretation of every ambiguity, inner joins, and the strategy's
//! grouping per nested set. Each oracle answer flows through the normal
//! answer path (WAL append included), so an oracle session replays after a
//! crash exactly like an interactive one — the oracle is never consulted
//! again.
//!
//! This is the CLI's `oracle_for` made `Result`-returning: a server must
//! turn a broken intention into a 500, not a panic.

use std::collections::BTreeMap;

use muse_cliogen::{desired_grouping, GroupingStrategy};
use muse_mapping::ambiguity::{or_groups, select_multi};
use muse_mapping::PathRef;
use muse_nr::SetPath;
use muse_wizard::{Answer, Designer, OracleDesigner, PendingQuestion, WizardError};

use crate::store::SessionCtx;

/// Parse `g1`/`g2`/`g3` (case-insensitive).
pub fn parse_strategy(name: &str) -> Result<GroupingStrategy, String> {
    match name.to_ascii_lowercase().as_str() {
        "g1" => Ok(GroupingStrategy::G1),
        "g2" => Ok(GroupingStrategy::G2),
        "g3" => Ok(GroupingStrategy::G3),
        other => Err(format!("unknown strategy `{other}` (expected g1|g2|g3)")),
    }
}

/// The canonical lowercase name of a strategy.
pub fn strategy_name(s: GroupingStrategy) -> &'static str {
    match s {
        GroupingStrategy::G1 => "g1",
        GroupingStrategy::G2 => "g2",
        GroupingStrategy::G3 => "g3",
    }
}

/// The owned intention maps of a strategy oracle — computed once per
/// session, then loaned to a borrowing [`OracleDesigner`] per question.
pub struct Intentions {
    groupings: BTreeMap<(String, SetPath), Vec<PathRef>>,
    choices: BTreeMap<String, Vec<Vec<usize>>>,
}

impl Intentions {
    /// What the strategy oracle wants for every (resolved) mapping of the
    /// context: first interpretation of each ambiguity, `strategy`
    /// groupings for every filled nested set.
    pub fn for_strategy(
        ctx: &SessionCtx,
        strategy: GroupingStrategy,
    ) -> Result<Intentions, String> {
        let mut intentions = Intentions {
            groupings: BTreeMap::new(),
            choices: BTreeMap::new(),
        };
        for m in &ctx.mappings {
            let resolved = if m.is_ambiguous() {
                let picks = vec![vec![0usize]; or_groups(m).len()];
                intentions.choices.insert(m.name.clone(), picks.clone());
                select_multi(m, &picks)
                    .map_err(|e| format!("{}: selecting interpretation: {e}", m.name))?
            } else {
                vec![m.clone()]
            };
            for sel in resolved {
                let sets = sel
                    .filled_target_sets(&ctx.scenario.target_schema)
                    .map_err(|e| format!("{}: filled target sets: {e}", sel.name))?;
                for sk in sets {
                    let desired = desired_grouping(
                        &sel,
                        &sk,
                        strategy,
                        &ctx.scenario.source_schema,
                        &ctx.scenario.target_schema,
                    )
                    .map_err(|e| format!("{}/{sk}: strategy grouping: {e}", sel.name))?;
                    intentions.groupings.insert((sel.name.clone(), sk), desired);
                }
            }
        }
        Ok(intentions)
    }

    /// Answer one pending question the way the oracle would.
    pub fn answer(&self, ctx: &SessionCtx, q: &PendingQuestion) -> Result<Answer, WizardError> {
        let mut oracle =
            OracleDesigner::new(&ctx.scenario.source_schema, &ctx.scenario.target_schema);
        oracle.intended_groupings = self.groupings.clone();
        oracle.intended_choices = self.choices.clone();
        match q {
            PendingQuestion::Grouping(g) => Ok(Answer::Scenario(oracle.pick_scenario(g)?)),
            PendingQuestion::Disambiguation(d) => Ok(Answer::Choices(oracle.fill_choices(d)?)),
            PendingQuestion::Join(j) => Ok(Answer::Join(oracle.pick_join(j)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{SessionCfg, SessionCtx};
    use muse_wizard::Step;

    #[test]
    fn oracle_drives_a_session_to_done() {
        let cfg = SessionCfg {
            scenario: "DBLP".to_owned(),
            use_instance: false,
            ..SessionCfg::default()
        };
        let ctx = SessionCtx::build(&cfg).unwrap();
        let intentions = Intentions::for_strategy(&ctx, GroupingStrategy::G1).unwrap();

        let session = muse_wizard::Session::new(
            &ctx.scenario.source_schema,
            &ctx.scenario.target_schema,
            &ctx.scenario.source_constraints,
        );
        let mut answers: Vec<Answer> = Vec::new();
        let report = loop {
            match session.step(&ctx.mappings, &answers).unwrap() {
                Step::Ask { question, .. } => {
                    answers.push(intentions.answer(&ctx, &question).unwrap());
                }
                Step::Done(report) => break report,
            }
        };
        assert!(report.total_questions() > 0);
        assert!(!report.mappings.is_empty());
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in [
            GroupingStrategy::G1,
            GroupingStrategy::G2,
            GroupingStrategy::G3,
        ] {
            assert_eq!(parse_strategy(strategy_name(s)).unwrap(), s);
        }
        assert!(parse_strategy("g4").is_err());
    }
}
