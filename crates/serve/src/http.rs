//! A deliberately small HTTP/1.1 subset: enough for a JSON request/response
//! protocol over persistent (keep-alive) connections, nothing more. No
//! chunked encoding, no percent-decoding — the wire format is fixed by
//! this crate's own client and documented in DESIGN.md.
//!
//! Keep-alive follows HTTP/1.1 defaults: connections persist unless the
//! request (or response) says `Connection: close`, or the request line
//! speaks HTTP/1.0 without an explicit `Connection: keep-alive`. [`Conn`]
//! carries the bytes read past the end of one request over to the next
//! (pipelined requests are rare from our own client but must not be
//! silently discarded).

use std::io::{self, Read, Write};
use std::net::TcpStream;

use muse_obs::Json;

/// Cap on the request head (request line + headers).
pub const MAX_HEAD: usize = 16 * 1024;
/// Cap on the request body.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// One server-side connection: the stream plus any bytes already read past
/// the previous request's body.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl Conn {
    /// Wrap a freshly-accepted stream.
    pub fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            carry: Vec::new(),
        }
    }

    /// The underlying stream (for timeouts and polling).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Mutable access to the underlying stream (for writing responses).
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// True when a pipelined request (or part of one) is already buffered —
    /// the connection is readable without touching the socket.
    pub fn has_buffered(&self) -> bool {
        !self.carry.is_empty()
    }
}

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// The request target, e.g. `/sessions/3/answer`.
    pub path: String,
    /// The raw body.
    pub body: Vec<u8>,
    /// Bytes of this request (head + body) consumed off the connection.
    pub bytes_read: usize,
    /// Whether the client allows the connection to persist after the
    /// response (HTTP/1.1 semantics of the `Connection` header).
    pub keep_alive: bool,
}

impl Request {
    /// The path split into non-empty segments.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

fn malformed(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

fn find_blank_line(data: &[u8]) -> Option<usize> {
    data.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Read and parse one request off a persistent connection.
///
/// `Ok(None)` is a clean close: the peer shut the connection down between
/// requests (the normal end of a keep-alive exchange). Errors of kind
/// `InvalidData` are protocol violations (respond 400); other kinds are
/// transport failures.
pub fn read_request(conn: &mut Conn) -> io::Result<Option<Request>> {
    let mut data = std::mem::take(&mut conn.carry);
    let mut buf = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_blank_line(&data) {
            break pos;
        }
        if data.len() > MAX_HEAD {
            return Err(malformed("request head exceeds 16 KiB"));
        }
        let n = conn.stream.read(&mut buf)?;
        if n == 0 {
            if data.is_empty() {
                return Ok(None);
            }
            return Err(malformed("connection closed mid-request"));
        }
        data.extend_from_slice(&buf[..n]);
    };

    let head = std::str::from_utf8(&data[..head_end])
        .map_err(|_| malformed("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(malformed("bad request line"));
    };
    if method.is_empty() || path.is_empty() {
        return Err(malformed("bad request line"));
    }
    let (method, path) = (method.to_owned(), path.to_owned());
    let version = parts.next().unwrap_or("HTTP/1.1").to_owned();
    let mut keep_alive = !version.eq_ignore_ascii_case("HTTP/1.0");

    let mut content_length = 0usize;
    let lines: Vec<String> = lines.map(str::to_owned).collect();
    for line in &lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| malformed("bad Content-Length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            let value = value.trim();
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(malformed("request body exceeds 4 MiB"));
    }

    let body_start = head_end + 4;
    let body_end = body_start + content_length;
    while data.len() < body_end {
        let n = conn.stream.read(&mut buf)?;
        if n == 0 {
            return Err(malformed("connection closed mid-body"));
        }
        data.extend_from_slice(&buf[..n]);
    }
    // Bytes past this request's body belong to the next one.
    conn.carry = data.split_off(body_end);
    let body = data.split_off(body_start);

    Ok(Some(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        body,
        bytes_read: body_end,
        keep_alive,
    }))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize a JSON body into a full response. `close` selects the
/// `Connection` header: the server closes after shedding, fatal errors,
/// the per-connection request cap, and during shutdown drain; otherwise
/// the connection persists.
pub fn render_response(
    status: u16,
    extra_headers: &[(&str, String)],
    body: &Json,
    close: bool,
) -> Vec<u8> {
    let payload = body.render();
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        payload.len(),
        if close { "close" } else { "keep-alive" },
    );
    for (name, value) in extra_headers {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(payload.as_bytes());
    bytes
}

/// Write a response; returns the bytes written.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &Json,
    close: bool,
) -> io::Result<usize> {
    let bytes = render_response(status, extra_headers, body, close);
    stream.write_all(&bytes)?;
    stream.flush()?;
    Ok(bytes.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn response_has_content_length_and_connection_header() {
        let bytes = render_response(200, &[], &Json::obj(vec![("ok", Json::Bool(true))]), true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        assert!(text.contains(&format!("Content-Length: {}\r\n", body.len())));
        assert_eq!(body, "{\"ok\":true}");

        let bytes = render_response(200, &[], &Json::Null, false);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
    }

    #[test]
    fn extra_headers_are_emitted() {
        let bytes = render_response(503, &[("Retry-After", "1".to_owned())], &Json::Null, true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable"));
    }

    /// A loopback pair carrying two pipelined requests: the second must be
    /// carried over intact, not discarded with the first read's surplus.
    #[test]
    fn pipelined_requests_are_carried_over() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut conn = Conn::new(server);

        client
            .write_all(
                b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
                  POST /b HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
            )
            .unwrap();
        client.flush().unwrap();

        let first = read_request(&mut conn).unwrap().expect("first request");
        assert_eq!(first.path, "/a");
        assert_eq!(first.body, b"hi");
        assert!(first.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(conn.has_buffered(), "second request must be carried over");

        let second = read_request(&mut conn).unwrap().expect("second request");
        assert_eq!(second.path, "/b");
        assert!(!second.keep_alive, "Connection: close must be honored");
    }

    /// EOF before any request bytes is the clean end of a keep-alive
    /// connection, not an error.
    #[test]
    fn clean_eof_between_requests_is_not_an_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut conn = Conn::new(server);
        drop(client);
        assert!(read_request(&mut conn).unwrap().is_none());
    }

    #[test]
    fn http_1_0_defaults_to_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut conn = Conn::new(server);
        client.write_all(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
        let req = read_request(&mut conn).unwrap().expect("request");
        assert!(!req.keep_alive);
    }
}
