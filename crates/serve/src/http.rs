//! A deliberately small HTTP/1.1 subset: enough for a JSON request/response
//! protocol over one-shot connections (`Connection: close`), nothing more.
//! No chunked encoding, no keep-alive, no percent-decoding — the wire
//! format is fixed by this crate's own client and documented in DESIGN.md.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use muse_obs::Json;

/// Cap on the request head (request line + headers).
pub const MAX_HEAD: usize = 16 * 1024;
/// Cap on the request body.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// The request target, e.g. `/sessions/3/answer`.
    pub path: String,
    /// The raw body.
    pub body: Vec<u8>,
    /// Total bytes read off the socket for this request.
    pub bytes_read: usize,
}

impl Request {
    /// The path split into non-empty segments.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

fn malformed(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

fn find_blank_line(data: &[u8]) -> Option<usize> {
    data.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Read and parse one request. Errors of kind `InvalidData` are protocol
/// violations (respond 400); other kinds are transport failures.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut data: Vec<u8> = Vec::with_capacity(1024);
    let mut buf = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_blank_line(&data) {
            break pos;
        }
        if data.len() > MAX_HEAD {
            return Err(malformed("request head exceeds 16 KiB"));
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(malformed("connection closed mid-request"));
        }
        data.extend_from_slice(&buf[..n]);
    };

    let head = std::str::from_utf8(&data[..head_end])
        .map_err(|_| malformed("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(malformed("bad request line"));
    };
    if method.is_empty() || path.is_empty() {
        return Err(malformed("bad request line"));
    }

    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| malformed("bad Content-Length"))?;
        }
    }
    if content_length > MAX_BODY {
        return Err(malformed("request body exceeds 4 MiB"));
    }

    let mut body = data[head_end + 4..].to_vec();
    let mut bytes_read = data.len();
    while body.len() < content_length {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(malformed("connection closed mid-body"));
        }
        bytes_read += n;
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        body,
        bytes_read,
    })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize a JSON body into a full response. Every response closes the
/// connection: one request per connection keeps the worker pool small
/// while still serving many concurrently *open* sessions.
pub fn render_response(status: u16, extra_headers: &[(&str, String)], body: &Json) -> Vec<u8> {
    let payload = body.render();
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        payload.len()
    );
    for (name, value) in extra_headers {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(payload.as_bytes());
    bytes
}

/// Write a response; returns the bytes written.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &Json,
) -> io::Result<usize> {
    let bytes = render_response(status, extra_headers, body);
    stream.write_all(&bytes)?;
    stream.flush()?;
    Ok(bytes.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_has_content_length_and_close() {
        let bytes = render_response(200, &[], &Json::obj(vec![("ok", Json::Bool(true))]));
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        assert!(text.contains(&format!("Content-Length: {}\r\n", body.len())));
        assert_eq!(body, "{\"ok\":true}");
    }

    #[test]
    fn extra_headers_are_emitted() {
        let bytes = render_response(503, &[("Retry-After", "1".to_owned())], &Json::Null);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable"));
    }
}
