//! A minimal blocking HTTP client for the session protocol — used by the
//! CLI tests, the crash/replay differential, and `serve_bench`. One TCP
//! connection per request (the server speaks `Connection: close`), with
//! optional retry on `503` backpressure.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use muse_obs::Json;

/// A client bound to one server address.
pub struct Client {
    addr: String,
    /// How many times a `503` is retried (with ~50 ms backoff) before it is
    /// surfaced. Zero means every `503` is returned to the caller.
    pub retries: u32,
}

impl Client {
    /// A client for `addr` (e.g. `127.0.0.1:7654`) retrying `503`s a few
    /// times.
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            retries: 20,
        }
    }

    /// Issue one request; returns `(status, body)`. `503` responses are
    /// retried up to `self.retries` times with a small backoff — the
    /// server's documented backpressure contract.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, Json), String> {
        let mut attempt = 0u32;
        loop {
            let result = self.request_once(method, path, body);
            match &result {
                Ok((503, _)) if attempt < self.retries => {
                    attempt += 1;
                    thread::sleep(Duration::from_millis(50));
                }
                _ => return result,
            }
        }
    }

    fn request_once(
        &self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, Json), String> {
        let mut stream =
            TcpStream::connect(&self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(60)));

        let payload = body.map(|j| j.render()).unwrap_or_default();
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
            self.addr,
            payload.len(),
        );
        stream
            .write_all(request.as_bytes())
            .map_err(|e| format!("send {method} {path}: {e}"))?;

        let mut raw = Vec::new();
        stream
            .read_to_end(&mut raw)
            .map_err(|e| format!("recv {method} {path}: {e}"))?;
        parse_response(&raw).map_err(|e| format!("{method} {path}: {e}"))
    }

    /// `POST /sessions`; returns the response body (`session`, `status`,
    /// maybe `question`). Non-200 statuses become errors.
    pub fn create_session(&self, cfg: &Json) -> Result<Json, String> {
        self.expect_200("POST", "/sessions", Some(cfg))
    }

    /// `GET /sessions/{id}/question`.
    pub fn question(&self, id: u64) -> Result<Json, String> {
        self.expect_200("GET", &format!("/sessions/{id}/question"), None)
    }

    /// `POST /sessions/{id}/answer`.
    pub fn answer(&self, id: u64, answer: &Json) -> Result<Json, String> {
        self.expect_200("POST", &format!("/sessions/{id}/answer"), Some(answer))
    }

    /// `GET /sessions/{id}/report`.
    pub fn report(&self, id: u64) -> Result<Json, String> {
        self.expect_200("GET", &format!("/sessions/{id}/report"), None)
    }

    /// `GET /metrics`.
    pub fn metrics(&self) -> Result<Json, String> {
        self.expect_200("GET", "/metrics", None)
    }

    /// `GET /healthz`.
    pub fn healthz(&self) -> Result<Json, String> {
        self.expect_200("GET", "/healthz", None)
    }

    /// `POST /admin/shutdown` — begins the drain.
    pub fn shutdown(&self) -> Result<Json, String> {
        self.expect_200("POST", "/admin/shutdown", None)
    }

    fn expect_200(&self, method: &str, path: &str, body: Option<&Json>) -> Result<Json, String> {
        let (status, body) = self.request(method, path, body)?;
        if status == 200 {
            Ok(body)
        } else {
            Err(format!("{method} {path}: HTTP {status}: {}", body.render()))
        }
    }
}

/// Poll `GET /healthz` until the server answers or `timeout` elapses.
/// Spawned-server tests call this instead of sleeping.
pub fn wait_ready(addr: &str, timeout: Duration) -> Result<(), String> {
    let client = Client {
        addr: addr.to_owned(),
        retries: 0,
    };
    let deadline = Instant::now() + timeout;
    loop {
        match client.request_once("GET", "/healthz", None) {
            Ok((200, _)) => return Ok(()),
            Ok((status, _)) => return Err(format!("healthz returned HTTP {status}")),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(format!("server not ready after {timeout:?}: {e}"));
                }
                thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn parse_response(raw: &[u8]) -> Result<(u16, Json), String> {
    let text = std::str::from_utf8(raw).map_err(|_| "response is not UTF-8".to_owned())?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or("response has no header/body separator")?;
    let status_line = head.lines().next().ok_or("empty response")?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line `{status_line}`"))?;
    let body = if body.trim().is_empty() {
        Json::obj(Vec::new())
    } else {
        Json::parse(body).map_err(|e| format!("bad response body: {e}"))?
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 12\r\n\r\n{\"error\":\"x\"}";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 503);
        assert_eq!(body.get("error").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n{}").is_err());
    }
}
