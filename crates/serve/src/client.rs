//! A minimal blocking HTTP client for the session protocol — used by the
//! CLI tests, the crash/replay differential, and `serve_bench`. The
//! client keeps its TCP connection alive across requests (HTTP/1.1
//! keep-alive) and falls back to a fresh connection when the server has
//! closed the cached one — the server is free to drop parked connections
//! at any time (idle timeout, per-connection request cap, drain).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use muse_obs::{Json, Rng};

/// The floor for the `503` retry backoff, in milliseconds.
const RETRY_FLOOR_MS: u64 = 50;

/// A client bound to one server address.
pub struct Client {
    addr: String,
    /// How many times a `503` is retried (with backoff) before it is
    /// surfaced. Zero means every `503` is returned to the caller.
    pub retries: u32,
    /// The cap on the per-attempt `503` backoff, in milliseconds. The
    /// server's `Retry-After` header (seconds) is honored up to this cap;
    /// without a header the backoff is the [`RETRY_FLOOR_MS`] floor.
    pub retry_cap_ms: u64,
    /// Jitter source for the retry backoff — desynchronizes clients that
    /// were all shed by the same degraded server.
    jitter: Mutex<Rng>,
    /// The cached keep-alive connection, if the last exchange left one.
    conn: Mutex<Option<TcpStream>>,
}

impl Client {
    /// A client for `addr` (e.g. `127.0.0.1:7654`) retrying `503`s a few
    /// times.
    pub fn new(addr: impl Into<String>) -> Client {
        let addr = addr.into();
        // Seed the jitter from the address so two clients hitting different
        // servers do not march in lockstep; determinism per-address keeps
        // test runs reproducible.
        let seed = addr.bytes().fold(0xC11E_4751u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3)
        });
        Client {
            addr,
            retries: 20,
            retry_cap_ms: 250,
            jitter: Mutex::new(Rng::new(seed)),
            conn: Mutex::new(None),
        }
    }

    /// Issue one request; returns `(status, body)`. `503` responses are
    /// retried up to `self.retries` times, sleeping a jittered backoff that
    /// honors the server's `Retry-After` header (capped at
    /// [`Client::retry_cap_ms`]) — the server's documented backpressure
    /// contract.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, Json), String> {
        let mut attempt = 0u32;
        loop {
            match self.request_once(method, path, body) {
                Ok((503, _, retry_after)) if attempt < self.retries => {
                    attempt += 1;
                    thread::sleep(Duration::from_millis(self.backoff_ms(retry_after)));
                }
                Ok((status, body, _)) => return Ok((status, body)),
                Err(e) => return Err(e),
            }
        }
    }

    /// The sleep before the next `503` retry: the server's `Retry-After`
    /// (seconds), clamped to `[RETRY_FLOOR_MS, retry_cap_ms]`, then jittered
    /// down to somewhere in `[base/2, base]`.
    fn backoff_ms(&self, retry_after_secs: Option<u64>) -> u64 {
        let cap = self.retry_cap_ms.max(RETRY_FLOOR_MS);
        let base = match retry_after_secs {
            Some(secs) => secs.saturating_mul(1000).clamp(RETRY_FLOOR_MS, cap),
            None => RETRY_FLOOR_MS,
        };
        let jitter = self
            .jitter
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .below(base / 2 + 1);
        base / 2 + jitter
    }

    pub(crate) fn request_once(
        &self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, Json, Option<u64>), String> {
        let bytes = encode_request(method, path, &self.addr, body);

        // First try the cached keep-alive connection. A transport failure
        // here is the normal stale-connection race — the server closed the
        // parked connection before reading our bytes, so the request was
        // never processed and a retry on a fresh connection is safe. A
        // protocol (`InvalidData`) failure is surfaced: the server *did*
        // respond, and retrying could double-apply a mutation.
        let cached = self.take_cached();
        if let Some(mut stream) = cached {
            match exchange(&mut stream, &bytes) {
                Ok((status, body, close, retry_after)) => {
                    if !close {
                        self.cache(stream);
                    }
                    return Ok((status, body, retry_after));
                }
                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                    return Err(format!("{method} {path}: {e}"));
                }
                Err(_) => {} // stale connection: fall through to a fresh one
            }
        }

        let mut stream =
            TcpStream::connect(&self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(60)));
        match exchange(&mut stream, &bytes) {
            Ok((status, body, close, retry_after)) => {
                if !close {
                    self.cache(stream);
                }
                Ok((status, body, retry_after))
            }
            Err(e) => Err(format!("{method} {path}: {e}")),
        }
    }

    fn take_cached(&self) -> Option<TcpStream> {
        self.conn.lock().unwrap_or_else(|e| e.into_inner()).take()
    }

    fn cache(&self, stream: TcpStream) {
        *self.conn.lock().unwrap_or_else(|e| e.into_inner()) = Some(stream);
    }

    /// `POST /sessions`; returns the response body (`session`, `status`,
    /// maybe `question`). Non-200 statuses become errors.
    pub fn create_session(&self, cfg: &Json) -> Result<Json, String> {
        self.expect_200("POST", "/sessions", Some(cfg))
    }

    /// `GET /sessions/{id}/question`.
    pub fn question(&self, id: u64) -> Result<Json, String> {
        self.expect_200("GET", &format!("/sessions/{id}/question"), None)
    }

    /// `POST /sessions/{id}/answer`.
    pub fn answer(&self, id: u64, answer: &Json) -> Result<Json, String> {
        self.expect_200("POST", &format!("/sessions/{id}/answer"), Some(answer))
    }

    /// `GET /sessions/{id}/report`.
    pub fn report(&self, id: u64) -> Result<Json, String> {
        self.expect_200("GET", &format!("/sessions/{id}/report"), None)
    }

    /// `GET /metrics`.
    pub fn metrics(&self) -> Result<Json, String> {
        self.expect_200("GET", "/metrics", None)
    }

    /// `GET /healthz`.
    pub fn healthz(&self) -> Result<Json, String> {
        self.expect_200("GET", "/healthz", None)
    }

    /// `POST /admin/shutdown` — begins the drain.
    pub fn shutdown(&self) -> Result<Json, String> {
        self.expect_200("POST", "/admin/shutdown", None)
    }

    fn expect_200(&self, method: &str, path: &str, body: Option<&Json>) -> Result<Json, String> {
        let (status, body) = self.request(method, path, body)?;
        if status == 200 {
            Ok(body)
        } else {
            Err(format!("{method} {path}: HTTP {status}: {}", body.render()))
        }
    }
}

/// Poll `GET /healthz` until the server answers or `timeout` elapses.
/// Spawned-server tests call this instead of sleeping.
pub fn wait_ready(addr: &str, timeout: Duration) -> Result<(), String> {
    let client = Client {
        addr: addr.to_owned(),
        retries: 0,
        retry_cap_ms: 250,
        jitter: Mutex::new(Rng::new(0xC11E_4751)),
        conn: Mutex::new(None),
    };
    let deadline = Instant::now() + timeout;
    loop {
        match client.request_once("GET", "/healthz", None) {
            Ok((200, _, _)) => return Ok(()),
            Ok((status, _, _)) => return Err(format!("healthz returned HTTP {status}")),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(format!("server not ready after {timeout:?}: {e}"));
                }
                thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn encode_request(method: &str, path: &str, addr: &str, body: Option<&Json>) -> Vec<u8> {
    let payload = body.map(|j| j.render()).unwrap_or_default();
    format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{payload}",
        payload.len(),
    )
    .into_bytes()
}

fn protocol(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Write one request and read one response off `stream`. Returns
/// `(status, body, close, retry_after)` where `close` reports whether the
/// server ended keep-alive (explicitly, or implicitly by omitting
/// `Content-Length`) and `retry_after` is the `Retry-After` header in
/// seconds, if present. Transport failures keep their original
/// `io::ErrorKind`; malformed responses are `InvalidData`.
fn exchange(stream: &mut TcpStream, request: &[u8]) -> io::Result<(u16, Json, bool, Option<u64>)> {
    stream.write_all(request)?;
    stream.flush()?;

    // Read the head incrementally: under keep-alive we must not read past
    // this response (there is no EOF delimiter any more).
    let mut data = Vec::new();
    let mut buf = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = data.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before a full response head",
            ));
        }
        data.extend_from_slice(&buf[..n]);
    };

    let head = std::str::from_utf8(&data[..head_end])
        .map_err(|_| protocol("response head is not UTF-8"))?;
    let (status, content_length, mut close, retry_after) = parse_head(head)?;

    let body_start = head_end + 4;
    let body = match content_length {
        Some(len) => {
            while data.len() < body_start + len {
                let n = stream.read(&mut buf)?;
                if n == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-body",
                    ));
                }
                data.extend_from_slice(&buf[..n]);
            }
            &data[body_start..body_start + len]
        }
        None => {
            // No length: the body runs to EOF, which also ends keep-alive.
            close = true;
            let mut rest = data.split_off(body_start);
            stream.read_to_end(&mut rest)?;
            data.extend_from_slice(&rest);
            &data[body_start..]
        }
    };
    let text = std::str::from_utf8(body).map_err(|_| protocol("response body is not UTF-8"))?;
    let json = if text.trim().is_empty() {
        Json::obj(Vec::new())
    } else {
        Json::parse(text).map_err(|e| protocol(format!("bad response body: {e}")))?
    };
    Ok((status, json, close, retry_after))
}

/// Parse a response head into `(status, content_length, close, retry_after)`.
fn parse_head(head: &str) -> io::Result<(u16, Option<usize>, bool, Option<u64>)> {
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| protocol(format!("bad status line `{status_line}`")))?;
    let mut content_length = None;
    let mut close = status_line.starts_with("HTTP/1.0");
    let mut retry_after = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = Some(
                value
                    .trim()
                    .parse()
                    .map_err(|_| protocol("bad Content-Length"))?,
            );
        } else if name.eq_ignore_ascii_case("connection") {
            let value = value.trim();
            if value.eq_ignore_ascii_case("close") {
                close = true;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                close = false;
            }
        } else if name.eq_ignore_ascii_case("retry-after") {
            // Advisory only — a malformed value falls back to the floor.
            retry_after = value.trim().parse().ok();
        }
    }
    Ok((status, content_length, close, retry_after))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_head() {
        let (status, len, close, retry_after) =
            parse_head("HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 13\r\nConnection: close")
                .unwrap();
        assert_eq!(status, 503);
        assert_eq!(len, Some(13));
        assert!(close);
        assert_eq!(retry_after, Some(1));

        let (status, len, close, retry_after) =
            parse_head("HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive").unwrap();
        assert_eq!(status, 200);
        assert_eq!(len, Some(2));
        assert!(!close);
        assert_eq!(retry_after, None);
    }

    #[test]
    fn malformed_retry_after_is_ignored() {
        let (status, _, _, retry_after) = parse_head(
            "HTTP/1.1 503 Service Unavailable\r\nRetry-After: soon\r\nContent-Length: 0",
        )
        .unwrap();
        assert_eq!(status, 503);
        assert_eq!(retry_after, None);
    }

    /// The backoff honors `Retry-After` but stays within
    /// `[RETRY_FLOOR_MS/2, retry_cap_ms]` whatever the server claims.
    #[test]
    fn backoff_is_capped_and_jittered() {
        let client = Client::new("127.0.0.1:1");
        for _ in 0..64 {
            // No header: the floor applies.
            let ms = client.backoff_ms(None);
            assert!((RETRY_FLOOR_MS / 2..=RETRY_FLOOR_MS).contains(&ms), "{ms}");
            // Header of 1s: capped at retry_cap_ms (250), jittered down.
            let ms = client.backoff_ms(Some(1));
            assert!((125..=250).contains(&ms), "{ms}");
            // Absurd header: still capped.
            let ms = client.backoff_ms(Some(3600));
            assert!((125..=250).contains(&ms), "{ms}");
        }
        // The jitter actually varies.
        let samples: Vec<u64> = (0..32).map(|_| client.backoff_ms(Some(1))).collect();
        assert!(samples.iter().any(|&s| s != samples[0]), "no jitter");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_head("not http").is_err());
        assert!(parse_head("HTTP/1.1 abc").is_err());
        assert!(parse_head("HTTP/1.1 200 OK\r\nContent-Length: x").is_err());
    }

    /// A loopback exchange: the client reads exactly one keep-alive
    /// response and reports the connection reusable.
    #[test]
    fn exchange_reads_one_keepalive_response() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut peer, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let _ = peer.read(&mut buf).unwrap();
            peer.write_all(
                b"HTTP/1.1 200 OK\r\nContent-Length: 11\r\nConnection: keep-alive\r\n\r\n{\"ok\":true}",
            )
            .unwrap();
            // Keep the socket open so the client cannot rely on EOF.
            std::thread::sleep(Duration::from_millis(100));
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let request = encode_request("GET", "/healthz", "test", None);
        let (status, body, close, _) = exchange(&mut stream, &request).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.get("ok"), Some(&Json::Bool(true)));
        assert!(!close, "keep-alive response must leave the conn reusable");
        server.join().unwrap();
    }
}
