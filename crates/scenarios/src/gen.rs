//! Seeded value generation helpers shared by the scenario generators.

use muse_nr::Value;
use muse_obs::Rng;

/// A deterministic generator.
pub struct Gen {
    rng: Rng,
}

impl Gen {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: Rng::new(seed),
        }
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.range(lo, hi)
    }

    /// Uniform pick from a slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        self.rng.pick(xs)
    }

    /// Uniform index below `n`.
    pub fn index(&mut self, n: usize) -> usize {
        self.rng.index(n)
    }

    /// Bernoulli.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }

    /// A unique string id `stem` + running number (uniqueness is the
    /// caller's responsibility via distinct numbers).
    pub fn id(stem: &str, n: usize) -> Value {
        Value::str(format!("{stem}{n}"))
    }

    /// A *low-diversity* string: one of `n_variants` variants of `stem`.
    /// Low-diversity columns are what make real differentiating examples
    /// findable (two tuples agreeing everywhere but the probed attribute).
    pub fn shared(&mut self, stem: &str, n_variants: usize) -> Value {
        let k = self.rng.index(n_variants.max(1));
        Value::str(format!("{stem}{k}"))
    }

    /// A bucketed integer: `bucket_size * k` for `1 <= k <= n_buckets`.
    pub fn bucketed(&mut self, bucket_size: i64, n_buckets: i64) -> Value {
        Value::int(bucket_size * self.rng.range(1, n_buckets + 1))
    }
}

/// Scale a base count, keeping at least `min`.
pub fn scaled(base: usize, scale: f64, min: usize) -> usize {
    ((base as f64 * scale).round() as usize).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Gen::new(9);
        let mut b = Gen::new(9);
        for _ in 0..50 {
            assert_eq!(a.range(0, 1000), b.range(0, 1000));
        }
    }

    #[test]
    fn shared_values_have_low_diversity() {
        let mut g = Gen::new(1);
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..100 {
            distinct.insert(g.shared("x", 5));
        }
        assert!(distinct.len() <= 5);
    }

    #[test]
    fn scaled_respects_minimum() {
        assert_eq!(scaled(100, 0.5, 1), 50);
        assert_eq!(scaled(100, 0.0001, 3), 3);
    }

    #[test]
    fn bucketed_values_are_multiples() {
        let mut g = Gen::new(2);
        for _ in 0..20 {
            let v = g.bucketed(500, 8);
            assert!(
                matches!(
                    v,
                    Value::Atom(muse_nr::Atom::Int(i)) if i % 500 == 0 && (500..=4000).contains(&i)
                ),
                "expected a bucketed int in 500..=4000, got {v:?}"
            );
        }
    }
}
