//! Seeded value generation helpers shared by the scenario generators.

use muse_nr::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic generator.
pub struct Gen {
    rng: StdRng,
}

impl Gen {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Gen { rng: StdRng::seed_from_u64(seed) }
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.gen_range(lo..hi)
    }

    /// Uniform pick from a slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        let i = self.rng.gen_range(0..xs.len());
        &xs[i]
    }

    /// Uniform index below `n`.
    pub fn index(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Bernoulli.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// A unique string id `stem` + running number (uniqueness is the
    /// caller's responsibility via distinct numbers).
    pub fn id(stem: &str, n: usize) -> Value {
        Value::str(format!("{stem}{n}"))
    }

    /// A *low-diversity* string: one of `n_variants` variants of `stem`.
    /// Low-diversity columns are what make real differentiating examples
    /// findable (two tuples agreeing everywhere but the probed attribute).
    pub fn shared(&mut self, stem: &str, n_variants: usize) -> Value {
        let k = self.rng.gen_range(0..n_variants.max(1));
        Value::str(format!("{stem}{k}"))
    }

    /// A bucketed integer: `bucket_size * k` for `k < n_buckets`.
    pub fn bucketed(&mut self, bucket_size: i64, n_buckets: i64) -> Value {
        Value::int(bucket_size * self.rng.gen_range(1..=n_buckets))
    }
}

/// Scale a base count, keeping at least `min`.
pub fn scaled(base: usize, scale: f64, min: usize) -> usize {
    ((base as f64 * scale).round() as usize).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Gen::new(9);
        let mut b = Gen::new(9);
        for _ in 0..50 {
            assert_eq!(a.range(0, 1000), b.range(0, 1000));
        }
    }

    #[test]
    fn shared_values_have_low_diversity() {
        let mut g = Gen::new(1);
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..100 {
            distinct.insert(g.shared("x", 5));
        }
        assert!(distinct.len() <= 5);
    }

    #[test]
    fn scaled_respects_minimum() {
        assert_eq!(scaled(100, 0.5, 1), 50);
        assert_eq!(scaled(100, 0.0001, 3), 3);
    }

    #[test]
    fn bucketed_values_are_multiples() {
        let mut g = Gen::new(2);
        for _ in 0..20 {
            let v = g.bucketed(500, 8);
            match v {
                Value::Atom(muse_nr::Atom::Int(i)) => assert_eq!(i % 500, 0),
                _ => panic!("expected int"),
            }
        }
    }
}
