//! Seeded value generation helpers shared by the scenario generators.

use muse_nr::Value;
use muse_obs::Rng;

/// A deterministic generator.
pub struct Gen {
    rng: Rng,
}

impl Gen {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: Rng::new(seed),
        }
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.range(lo, hi)
    }

    /// Uniform pick from a slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        self.rng.pick(xs)
    }

    /// Uniform index below `n`.
    pub fn index(&mut self, n: usize) -> usize {
        self.rng.index(n)
    }

    /// Bernoulli.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }

    /// A unique string id `stem` + running number (uniqueness is the
    /// caller's responsibility via distinct numbers).
    pub fn id(stem: &str, n: usize) -> Value {
        Value::str(format!("{stem}{n}"))
    }

    /// A *low-diversity* string: one of `n_variants` variants of `stem`.
    /// Low-diversity columns are what make real differentiating examples
    /// findable (two tuples agreeing everywhere but the probed attribute).
    pub fn shared(&mut self, stem: &str, n_variants: usize) -> Value {
        let k = self.rng.index(n_variants.max(1));
        Value::str(format!("{stem}{k}"))
    }

    /// A bucketed integer: `bucket_size * k` for `1 <= k <= n_buckets`.
    pub fn bucketed(&mut self, bucket_size: i64, n_buckets: i64) -> Value {
        Value::int(bucket_size * self.rng.range(1, n_buckets + 1))
    }
}

/// Scale a base count, keeping at least `min`.
///
/// The contract the fleet sweeps rely on: for a fixed `base`/`min` the
/// result is monotone non-decreasing in `scale`, never drops below `min`
/// (sub-`min` products clamp *to* `min`, they do not skip past it), equals
/// `base.max(min)` exactly at `scale == 1.0`, and degenerate scales
/// (non-finite, zero, negative) clamp to `min` instead of relying on the
/// float-to-int cast. Oversized products saturate at `usize::MAX`.
pub fn scaled(base: usize, scale: f64, min: usize) -> usize {
    if scale.is_nan() || scale <= 0.0 {
        return min;
    }
    let raw = (base as f64 * scale).round();
    if raw.is_nan() {
        // 0 * +inf
        return min;
    }
    if raw >= usize::MAX as f64 {
        return usize::MAX;
    }
    (raw as usize).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Gen::new(9);
        let mut b = Gen::new(9);
        for _ in 0..50 {
            assert_eq!(a.range(0, 1000), b.range(0, 1000));
        }
    }

    #[test]
    fn shared_values_have_low_diversity() {
        let mut g = Gen::new(1);
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..100 {
            distinct.insert(g.shared("x", 5));
        }
        assert!(distinct.len() <= 5);
    }

    #[test]
    fn scaled_respects_minimum() {
        assert_eq!(scaled(100, 0.5, 1), 50);
        assert_eq!(scaled(100, 0.0001, 3), 3);
    }

    #[test]
    fn scaled_is_monotone_over_a_scale_grid() {
        // Downsweeps (`scale < 1.0`) must shrink smoothly onto `min`:
        // never below it, never non-monotone, exact at 1.0.
        for &(base, min) in &[(100usize, 1usize), (9_000, 4), (40, 2), (7, 3), (2_500, 5)] {
            let mut prev = usize::MAX;
            for step in (0..=2_000u32).rev() {
                let scale = f64::from(step) / 1_000.0;
                let v = scaled(base, scale, min);
                assert!(v >= min, "scaled({base}, {scale}, {min}) = {v} < min");
                assert!(
                    v <= prev,
                    "scaled({base}, ·, {min}) not monotone: {v} at {scale} after {prev}"
                );
                prev = v;
            }
            assert_eq!(prev, min, "smallest scale must land exactly on min");
            assert_eq!(scaled(base, 1.0, min), base.max(min));
        }
    }

    #[test]
    fn scaled_handles_degenerate_scales() {
        assert_eq!(scaled(100, f64::NAN, 5), 5);
        assert_eq!(scaled(100, f64::NEG_INFINITY, 5), 5);
        assert_eq!(scaled(100, -1.0, 5), 5);
        assert_eq!(scaled(100, 0.0, 5), 5);
        assert_eq!(scaled(100, f64::INFINITY, 5), usize::MAX);
        assert_eq!(scaled(usize::MAX, 2.0, 1), usize::MAX);
    }

    #[test]
    fn bucketed_values_are_multiples() {
        let mut g = Gen::new(2);
        for _ in 0..20 {
            let v = g.bucketed(500, 8);
            assert!(
                matches!(
                    v,
                    Value::Atom(muse_nr::Atom::Int(i)) if i % 500 == 0 && (500..=4000).contains(&i)
                ),
                "expected a bucketed int in 500..=4000, got {v:?}"
            );
        }
    }
}
