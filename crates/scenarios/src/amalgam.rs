//! The Amalgam scenario: the bibliography integration benchmark.
//!
//! Source: a schema modeled on Amalgam's first (relational) schema — one
//! relation per publication kind (article, book, tech report, …), each with
//! the usual bibliographic attributes and an author reference, plus the
//! author relation itself. Target: a nested schema modeled on Amalgam's
//! third schema — authors with their publications, and venues with their
//! items. Two nested target sets, fourteen unambiguous mappings (one per
//! publication kind, the two venue chains, and the author relation itself),
//! matching the paper's Sec. VI row.

use muse_cliogen::Correspondence;
use muse_nr::{Constraints, Field, ForeignKey, Instance, Key, Schema, SetPath, Ty, Value};

use crate::gen::{scaled, Gen};
use crate::Scenario;

fn set(fields: Vec<Field>) -> Ty {
    Ty::set_of(fields)
}

fn f(label: &str, ty: Ty) -> Field {
    Field::new(label, ty)
}

/// Publication kinds: (relation, venue-ish attribute).
const PUB_RELS: [(&str, &str); 11] = [
    ("rarticle", "journal"),
    ("rbook", "publisher"),
    ("rtechreport", "institution"),
    ("rinproceedings", "booktitle"),
    ("rincollection", "bookname"),
    ("rmanual", "organization"),
    ("rmisc", "howpublished"),
    ("rmastersthesis", "school"),
    ("rphdthesis", "school"),
    ("rproceedings", "organizer"),
    ("runpublished", "archive"),
];

fn source_schema() -> Schema {
    let mut roots = vec![f(
        "author",
        set(vec![
            f("aid", Ty::Str),
            f("name", Ty::Str),
            f("affiliation", Ty::Str),
        ]),
    )];
    for (rel, venue) in PUB_RELS {
        roots.push(f(
            rel,
            set(vec![
                f("id", Ty::Str),
                f("author", Ty::Str),
                f("title", Ty::Str),
                f("year", Ty::Int),
                f("month", Ty::Str),
                f(venue, Ty::Str),
                f("volume", Ty::Int),
                f("number", Ty::Int),
                f("pages", Ty::Str),
                f("note", Ty::Str),
                f("annote", Ty::Str),
            ]),
        ));
    }
    Schema::new("AmalgamS1", roots).expect("valid Amalgam source schema")
}

fn source_constraints() -> Constraints {
    let author = SetPath::parse("author");
    let mut keys = vec![Key::new(author.clone(), vec!["aid"])];
    let mut fks = Vec::new();
    for (rel, _) in PUB_RELS {
        let p = SetPath::parse(rel);
        keys.push(Key::new(p.clone(), vec!["id"]));
        fks.push(ForeignKey::new(
            p,
            vec!["author"],
            author.clone(),
            vec!["aid"],
        ));
    }
    Constraints {
        keys,
        fds: vec![],
        fks,
    }
}

fn target_schema() -> Schema {
    Schema::new(
        "AmalgamS3",
        vec![
            f(
                "Authors",
                set(vec![
                    f("aid", Ty::Str),
                    f("name", Ty::Str),
                    f("affiliation", Ty::Str),
                    f(
                        "Publications",
                        set(vec![
                            f("pid", Ty::Str),
                            f("title", Ty::Str),
                            f("year", Ty::Int),
                            f("venue", Ty::Str),
                        ]),
                    ),
                ]),
            ),
            f(
                "Venues",
                set(vec![
                    f("vname", Ty::Str),
                    f("Items", set(vec![f("title", Ty::Str), f("year", Ty::Int)])),
                ]),
            ),
        ],
    )
    .expect("valid Amalgam target schema")
}

fn correspondences() -> Vec<Correspondence> {
    let mut out = vec![
        Correspondence::new("author.aid", "Authors.aid"),
        Correspondence::new("author.name", "Authors.name"),
        Correspondence::new("author.affiliation", "Authors.affiliation"),
    ];
    for (rel, venue) in PUB_RELS {
        out.push(Correspondence::new(
            &format!("{rel}.id"),
            "Authors.Publications.pid",
        ));
        out.push(Correspondence::new(
            &format!("{rel}.title"),
            "Authors.Publications.title",
        ));
        out.push(Correspondence::new(
            &format!("{rel}.year"),
            "Authors.Publications.year",
        ));
        out.push(Correspondence::new(
            &format!("{rel}.{venue}"),
            "Authors.Publications.venue",
        ));
    }
    // Only the journal and conference chains feed the Venues hierarchy.
    out.push(Correspondence::new("rarticle.journal", "Venues.vname"));
    out.push(Correspondence::new("rarticle.title", "Venues.Items.title"));
    out.push(Correspondence::new("rarticle.year", "Venues.Items.year"));
    out.push(Correspondence::new(
        "rinproceedings.booktitle",
        "Venues.vname",
    ));
    out.push(Correspondence::new(
        "rinproceedings.title",
        "Venues.Items.title",
    ));
    out.push(Correspondence::new(
        "rinproceedings.year",
        "Venues.Items.year",
    ));
    out
}

fn generate(schema: &Schema, scale: f64, seed: u64) -> Instance {
    let mut g = Gen::new(seed);
    let mut inst = Instance::new(schema);

    // Author names are drawn from a pool smaller than the author count, so
    // names repeat while aids stay unique — heavy value sharing is what
    // gives Amalgam the highest "% real Ie" in Fig. 5.
    let n_authors = scaled(1_800, scale, 4);
    let name_pool: Vec<String> = (0..scaled(700, scale, 2))
        .map(|i| format!("A. Uthor {i}"))
        .collect();
    let affiliation_pool: Vec<String> = (0..scaled(60, scale, 2))
        .map(|i| format!("University {i}"))
        .collect();
    let months = [
        "jan", "feb", "mar", "apr", "may", "jun", "jul", "aug", "sep", "oct", "nov", "dec",
    ];

    let authors = inst.root_id("author").unwrap();
    let mut aids = Vec::with_capacity(n_authors);
    for i in 0..n_authors {
        let aid = format!("au{i}");
        let name = Value::str(g.pick(&name_pool));
        let aff = Value::str(g.pick(&affiliation_pool));
        inst.insert(authors, vec![Value::str(&aid), name.clone(), aff.clone()]);
        aids.push(aid);
        if g.chance(0.3) {
            let twin = format!("au{i}b");
            inst.insert(authors, vec![Value::str(&twin), name, aff]);
            aids.push(twin);
        }
    }

    for (rel, _) in PUB_RELS {
        let root = inst.root_id(rel).unwrap();
        let venue_pool: Vec<String> = (0..scaled(40, scale, 2))
            .map(|i| format!("{rel}-venue{i}"))
            .collect();
        for i in 0..scaled(1_100, scale, 3) {
            // Amalgam integrates overlapping bibliographies: the same entry
            // frequently appears under several ids (the duplicate rate is
            // what gives Amalgam the highest "% real" in Fig. 5).
            let row = vec![
                Value::str(g.pick(&aids)),
                Value::str(format!("{rel} title {i}")),
                Value::int(1970 + g.range(0, 36)),
                Value::str(*g.pick(&months)),
                Value::str(g.pick(&venue_pool)),
                Value::int(g.range(1, 30)),
                Value::int(g.range(1, 10)),
                g.shared("pg-", 120),
                g.shared("note-", 25),
                g.shared("annote-", 25),
            ];
            let mut tuple = vec![Value::str(format!("{rel}{i}"))];
            tuple.extend(row.iter().cloned());
            inst.insert(root, tuple);
            if g.chance(0.35) {
                // Three of the integrated sources contain verbatim
                // duplicates; the others annotate their copies, so the twin
                // differs in `annote`.
                let full = matches!(rel, "rarticle" | "rinproceedings" | "rmisc");
                let mut twin = vec![Value::str(format!("{rel}{i}dup"))];
                if full {
                    twin.extend(row.iter().cloned());
                } else {
                    twin.extend(row[..row.len() - 1].iter().cloned());
                    twin.push(g.shared("annote-x", 25));
                }
                inst.insert(root, twin);
            }
        }
    }

    inst
}

/// The Amalgam scenario.
pub fn scenario() -> Scenario {
    Scenario {
        name: "Amalgam".into(),
        source_schema: source_schema(),
        source_constraints: source_constraints(),
        target_schema: target_schema(),
        target_constraints: Constraints::none(),
        correspondences: correspondences(),
        default_scale: 1.0,
        generator: std::sync::Arc::new(generate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_matches_the_paper() {
        let s = scenario();
        // Authors.Publications and Venues.Items: 2 grouped sets.
        assert_eq!(s.target_sets_with_grouping(), 2);
        let ms = s.mappings().unwrap();
        assert_eq!(
            ms.len(),
            14,
            "{:?}",
            ms.iter().map(|m| &m.name).collect::<Vec<_>>()
        );
        assert!(ms.iter().all(|m| !m.is_ambiguous()));
    }

    #[test]
    fn instance_has_paper_size_at_default_scale() {
        let s = scenario();
        let inst = s.instance_default(1);
        let mb = inst.approx_bytes() as f64 / 1_000_000.0;
        assert!((1.0..4.0).contains(&mb), "got {mb} MB");
    }

    #[test]
    fn generated_instance_satisfies_constraints() {
        let s = scenario();
        let inst = s.instance(0.05, 3);
        inst.validate(&s.source_schema).unwrap();
        s.source_constraints
            .validate_instance(&s.source_schema, &inst)
            .unwrap();
    }
}
