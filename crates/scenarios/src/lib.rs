//! The four mapping scenarios of the paper's evaluation (Sec. VI).
//!
//! Each scenario bundles a source schema (with keys and referential
//! constraints), a nested target schema, the designer's correspondences,
//! and a deterministic synthetic data generator whose *value-diversity
//! profile* mimics the original dataset — the property that drives the
//! "% real Ie" column of Fig. 5 (TPC-H keys are dense and unique, so real
//! differentiating examples are rare; Mondial and Amalgam share many
//! values, so they are common).
//!
//! The original instances (the Mondial download, a scaled-down DBLP dump,
//! `dbgen` output and the Amalgam distribution) are not redistributable
//! here; see DESIGN.md for the substitution rationale.

pub mod amalgam;
pub mod dblp;
pub mod gen;
pub mod mondial;
pub mod synth;
pub mod tpch;

use std::sync::Arc;

use muse_cliogen::{generate, Correspondence, ScenarioSpec};
use muse_mapping::{Mapping, MappingError};
use muse_nr::{Constraints, Instance, Schema};

/// A seeded instance generator: `(schema, scale, seed) -> instance`.
/// Shared (`Arc`) so cloning a scenario never clones a closure's captures.
pub(crate) type GeneratorFn = Arc<dyn Fn(&Schema, f64, u64) -> Instance + Send + Sync>;

/// A complete mapping scenario.
#[derive(Clone)]
pub struct Scenario {
    /// Scenario name (`Mondial`, `DBLP`, `TPCH`, `Amalgam`, or a synthetic
    /// `Synth-<seed>` fleet member).
    pub name: String,
    /// Source schema.
    pub source_schema: Schema,
    /// Source constraints (every nested set has at most one key, as the
    /// paper requires of all four scenarios).
    pub source_constraints: Constraints,
    /// Target schema.
    pub target_schema: Schema,
    /// Target constraints.
    pub target_constraints: Constraints,
    /// The designer's correspondences.
    pub correspondences: Vec<Correspondence>,
    /// Scale at which the generator approximates the paper's instance size
    /// (1 MB / 2.6 MB / 10 MB / 2 MB).
    pub default_scale: f64,
    generator: GeneratorFn,
}

impl Scenario {
    /// The generation spec for `muse_cliogen::generate`.
    pub fn spec(&self) -> ScenarioSpec<'_> {
        ScenarioSpec {
            source_schema: &self.source_schema,
            source_constraints: &self.source_constraints,
            target_schema: &self.target_schema,
            target_constraints: &self.target_constraints,
            correspondences: &self.correspondences,
        }
    }

    /// The Clio-generated candidate mappings of this scenario.
    pub fn mappings(&self) -> Result<Vec<Mapping>, MappingError> {
        generate(&self.spec())
    }

    /// A synthetic source instance at the given scale (1.0 ≈ the paper's
    /// size) and seed. The result satisfies all source constraints.
    pub fn instance(&self, scale: f64, seed: u64) -> Instance {
        (self.generator)(&self.source_schema, scale, seed)
    }

    /// An instance at the paper's size.
    pub fn instance_default(&self, seed: u64) -> Instance {
        self.instance(self.default_scale, seed)
    }

    /// Number of nested target sets (the "Target sets w/ grouping" column).
    pub fn target_sets_with_grouping(&self) -> usize {
        self.target_schema
            .set_paths_bfs()
            .iter()
            .filter(|p| p.depth() > 1)
            .count()
    }
}

/// All four scenarios, in the paper's order.
pub fn all_scenarios() -> Vec<Scenario> {
    vec![
        mondial::scenario(),
        dblp::scenario(),
        tpch::scenario(),
        amalgam::scenario(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_is_well_formed() {
        for s in all_scenarios() {
            assert!(s.source_schema.is_strictly_alternating(), "{}", s.name);
            assert!(s.target_schema.is_strictly_alternating(), "{}", s.name);
            s.source_constraints
                .validate_against_schema(&s.source_schema)
                .unwrap();
            s.target_constraints
                .validate_against_schema(&s.target_schema)
                .unwrap();
            for c in &s.correspondences {
                c.validate(&s.source_schema, &s.target_schema)
                    .unwrap_or_else(|e| panic!("{}: {c}: {e}", s.name));
            }
        }
    }

    #[test]
    fn every_scenario_has_single_keyed_sets() {
        // "In all source schemas, there is at most one key for each nested
        // set" (Sec. VI).
        use std::collections::BTreeMap;
        for s in all_scenarios() {
            let mut count: BTreeMap<String, usize> = BTreeMap::new();
            for k in &s.source_constraints.keys {
                *count.entry(k.set.to_string()).or_default() += 1;
            }
            assert!(count.values().all(|&c| c <= 1), "{}", s.name);
        }
    }

    #[test]
    fn mappings_generate_and_validate() {
        for s in all_scenarios() {
            let ms = s.mappings().unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(!ms.is_empty(), "{}", s.name);
            for m in &ms {
                m.validate(&s.source_schema, &s.target_schema)
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", s.name, m.name));
            }
        }
    }

    #[test]
    fn small_instances_satisfy_all_constraints() {
        for s in all_scenarios() {
            let inst = s.instance(0.02, 42);
            inst.validate(&s.source_schema)
                .unwrap_or_else(|e| panic!("{}: {e}", s.name));
            s.source_constraints
                .validate_instance(&s.source_schema, &inst)
                .unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(inst.total_tuples() > 0, "{}", s.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for s in all_scenarios() {
            let a = s.instance(0.01, 7);
            let b = s.instance(0.01, 7);
            assert_eq!(a.total_tuples(), b.total_tuples(), "{}", s.name);
            assert_eq!(a.approx_bytes(), b.approx_bytes(), "{}", s.name);
        }
    }

    #[test]
    fn schemas_round_trip_through_the_text_format() {
        use muse_nr::text::{parse_schema, print_schema};
        for s in all_scenarios() {
            for (schema, cons) in [
                (&s.source_schema, &s.source_constraints),
                (&s.target_schema, &s.target_constraints),
            ] {
                let text = print_schema(schema, cons);
                let (schema2, cons2) =
                    parse_schema(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", s.name));
                assert_eq!(schema, &schema2, "{}", s.name);
                assert_eq!(cons, &cons2, "{}", s.name);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let s = mondial::scenario();
        let a = s.instance(0.01, 1);
        let b = s.instance(0.01, 2);
        assert_ne!(a.approx_bytes(), b.approx_bytes());
    }
}
