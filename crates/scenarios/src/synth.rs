//! Seeded synthetic scenario generation — the scenario fleet.
//!
//! The four hand-built scenarios of Sec. VI are a 4-point sample; this
//! module turns them into a population. `SynthCfg` describes a scenario
//! *shape* (theme count, target nesting depth, key/FD/FK density, or-group
//! fan-out, base instance size) and [`Scenario::synthetic`] expands it into
//! a complete bundle — source/target schemas, constraints, correspondences,
//! and a deterministic scaled instance generator — indistinguishable, to
//! every consumer, from a hand-built scenario.
//!
//! Bundles are **lint-clean by construction** because every structural
//! element is one of the proven idioms of the hand-built four:
//!
//! - each *theme* is a flat source set with a single key (`k`), exactly the
//!   paper's "at most one key per nested set" regime, feeding a strictly
//!   alternating target chain of depth `depth` (the DBLP pattern — deeper
//!   candidate pairs subsume shallow ones under implication pruning);
//! - `source_nested` adds a child set (`Sub`) on both sides (the DBLP
//!   `Authors` pattern), which yields a second, more-covering mapping per
//!   theme rather than an ambiguity;
//! - `fk_themes` themes carry `or_fanout` parallel foreign keys into a
//!   private entity set (the Fig. 4 employee pattern): Clio closes the
//!   source association over the FKs, the entity payload corresponds to one
//!   contested target attribute, and an or-group with exactly `or_fanout`
//!   alternatives appears — bounded well under `MUSE-A002`'s 64-alternative
//!   warning and `MUSE-A004`'s 128-attribute error;
//! - `fd_pairs` adds non-key FDs (`fa_i → fb_i`) whose instance values are
//!   derived from a shared bucket index so the FD holds by construction and
//!   is not key-implied (no `MUSE-C00x` redundancy, no `MUSE-A005`).
//!
//! Instances keep the hand-built value-diversity profile: unique keys,
//! low-diversity payload values (so real differentiating examples exist),
//! nested sets grouped by the parent key, and a small twin-row rate.
//! `scale` multiplies every per-theme row count, so GB-class instances are
//! one `instance(1e4, seed)` call away.
//!
//! Everything is a pure function of `(SynthCfg, seed)` over the in-tree
//! SplitMix64 generator: two processes with the same inputs produce
//! byte-identical schemas, mappings, and rendered instances, which is what
//! makes seed-range sharding across CI workers sound.

use std::sync::Arc;

use muse_cliogen::Correspondence;
use muse_nr::{Constraints, Fd, Field, ForeignKey, Instance, Key, Schema, SetPath, Ty, Value};
use muse_obs::Rng;

use crate::gen::{scaled, Gen};
use crate::Scenario;

/// Shape knobs for one synthetic scenario. All counts are clamped to
/// lint-safe ranges by [`SynthCfg::clamped`] before use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthCfg {
    /// Seed naming the scenario (`Synth-<seed>`) and driving every shape
    /// and value decision.
    pub seed: u64,
    /// Independent source-set → target-chain themes (source fan-out).
    pub themes: usize,
    /// Nesting depth of each target chain (1 = flat).
    pub depth: usize,
    /// Give each theme a nested `Sub` child set on both sides.
    pub source_nested: bool,
    /// Unmapped filler attributes per source set.
    pub fillers: usize,
    /// Non-key `fa_i → fb_i` FD pairs per source set (FD density).
    pub fd_pairs: usize,
    /// How many themes carry foreign keys into an entity set (FK density).
    pub fk_themes: usize,
    /// Parallel FKs per FK theme — the or-group fan-out (alternatives per
    /// ambiguous mapping).
    pub or_fanout: usize,
    /// Source rows per theme at `scale == 1.0`.
    pub base_rows: usize,
}

impl Default for SynthCfg {
    fn default() -> Self {
        SynthCfg {
            seed: 0,
            themes: 2,
            depth: 2,
            source_nested: true,
            fillers: 1,
            fd_pairs: 1,
            fk_themes: 1,
            or_fanout: 2,
            base_rows: 64,
        }
    }
}

impl SynthCfg {
    /// Derive a full shape from a single seed — the unit of fleet sharding.
    /// Distinct seeds cover the knob grid; every knob stays in the clamped
    /// (lint-safe) range by construction.
    pub fn from_seed(seed: u64) -> Self {
        // Decorrelate the shape stream from the instance-value stream that
        // reuses the raw seed.
        let mut r = Rng::new(seed ^ 0x5EED_5CEA_011F_1EE7);
        let themes = 1 + r.index(3);
        SynthCfg {
            seed,
            themes,
            depth: 1 + r.index(3),
            source_nested: r.chance(0.6),
            fillers: r.index(3),
            fd_pairs: r.index(2),
            fk_themes: r.index(themes + 1),
            or_fanout: 2 + r.index(2),
            base_rows: 48 + 16 * r.index(4),
        }
    }

    /// Clamp every knob into the range the lint-clean argument covers.
    /// Idempotent; called by [`Scenario::synthetic`].
    pub fn clamped(mut self) -> Self {
        self.themes = self.themes.clamp(1, 8);
        self.depth = self.depth.clamp(1, 6);
        self.fillers = self.fillers.min(8);
        self.fd_pairs = self.fd_pairs.min(4);
        self.fk_themes = self.fk_themes.min(self.themes);
        // 1 FK is a plain lookup (no or-group); ≥2 makes an or-group. 6 keeps
        // the alternative product well under the MUSE-A002 warning limit.
        self.or_fanout = self.or_fanout.clamp(1, 6);
        self.base_rows = self.base_rows.max(4);
        self
    }

    fn is_fk_theme(&self, t: usize) -> bool {
        t < self.fk_themes
    }

    fn level_ty(j: usize) -> Ty {
        if j % 2 == 1 {
            Ty::Int
        } else {
            Ty::Str
        }
    }

    /// Dotted target path of chain level `j` for theme `t`:
    /// `Top<t>.L1.….L<j>`.
    fn level_path(&self, t: usize, j: usize) -> String {
        let mut p = format!("Top{t}");
        for l in 1..=j {
            p.push_str(&format!(".L{l}"));
        }
        p
    }

    fn leaf_path(&self, t: usize) -> String {
        self.level_path(t, self.depth - 1)
    }
}

fn set(fields: Vec<Field>) -> Ty {
    Ty::set_of(fields)
}

fn f(label: &str, ty: Ty) -> Field {
    Field::new(label, ty)
}

fn source_schema(cfg: &SynthCfg) -> Schema {
    let mut roots = Vec::new();
    for t in 0..cfg.themes {
        let mut fields = vec![f("k", Ty::Str)];
        for j in 0..cfg.depth {
            fields.push(f(&format!("lv{j}"), SynthCfg::level_ty(j)));
        }
        for i in 0..cfg.fillers {
            fields.push(f(&format!("f{i}"), Ty::Str));
        }
        for i in 0..cfg.fd_pairs {
            fields.push(f(&format!("fa{i}"), Ty::Str));
            fields.push(f(&format!("fb{i}"), Ty::Str));
        }
        if cfg.is_fk_theme(t) {
            for i in 0..cfg.or_fanout {
                fields.push(f(&format!("r{i}"), Ty::Str));
            }
        }
        if cfg.source_nested {
            fields.push(f("Sub", set(vec![f("sv", Ty::Str)])));
        }
        roots.push(f(&format!("src{t}"), set(fields)));
        if cfg.is_fk_theme(t) {
            roots.push(f(
                &format!("ent{t}"),
                set(vec![f("ek", Ty::Str), f("payload", Ty::Str)]),
            ));
        }
    }
    Schema::new("SynthSrc", roots).expect("synthetic source schema is valid by construction")
}

fn source_constraints(cfg: &SynthCfg) -> Constraints {
    let mut cons = Constraints::none();
    for t in 0..cfg.themes {
        let src = SetPath::parse(&format!("src{t}"));
        cons.keys.push(Key::new(src.clone(), vec!["k"]));
        for i in 0..cfg.fd_pairs {
            let (fa, fb) = (format!("fa{i}"), format!("fb{i}"));
            cons.fds.push(Fd::new(src.clone(), vec![&fa], vec![&fb]));
        }
        if cfg.is_fk_theme(t) {
            let ent = SetPath::parse(&format!("ent{t}"));
            cons.keys.push(Key::new(ent.clone(), vec!["ek"]));
            for i in 0..cfg.or_fanout {
                let r = format!("r{i}");
                cons.fks.push(ForeignKey::new(
                    src.clone(),
                    vec![&r],
                    ent.clone(),
                    vec!["ek"],
                ));
            }
        }
    }
    cons
}

fn target_level_fields(cfg: &SynthCfg, t: usize, j: usize) -> Vec<Field> {
    let mut fields = vec![f(&format!("a{j}"), SynthCfg::level_ty(j))];
    if j + 1 < cfg.depth {
        fields.push(f(
            &format!("L{}", j + 1),
            set(target_level_fields(cfg, t, j + 1)),
        ));
    } else {
        fields.push(f("key", Ty::Str));
        if cfg.is_fk_theme(t) {
            fields.push(f("refp", Ty::Str));
        }
        if cfg.source_nested {
            fields.push(f("Sub", set(vec![f("sv", Ty::Str)])));
        }
    }
    fields
}

fn target_schema(cfg: &SynthCfg) -> Schema {
    let roots = (0..cfg.themes)
        .map(|t| f(&format!("Top{t}"), set(target_level_fields(cfg, t, 0))))
        .collect();
    Schema::new("SynthTgt", roots).expect("synthetic target schema is valid by construction")
}

fn correspondences(cfg: &SynthCfg) -> Vec<Correspondence> {
    let mut corrs = Vec::new();
    for t in 0..cfg.themes {
        for j in 0..cfg.depth {
            corrs.push(Correspondence::new(
                &format!("src{t}.lv{j}"),
                &format!("{}.a{j}", cfg.level_path(t, j)),
            ));
        }
        let leaf = cfg.leaf_path(t);
        corrs.push(Correspondence::new(
            &format!("src{t}.k"),
            &format!("{leaf}.key"),
        ));
        if cfg.is_fk_theme(t) {
            corrs.push(Correspondence::new(
                &format!("ent{t}.payload"),
                &format!("{leaf}.refp"),
            ));
        }
        if cfg.source_nested {
            corrs.push(Correspondence::new(
                &format!("src{t}.Sub.sv"),
                &format!("{leaf}.Sub.sv"),
            ));
        }
    }
    corrs
}

fn generate(cfg: &SynthCfg, schema: &Schema, scale: f64, seed: u64) -> Instance {
    let mut g = Gen::new(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(cfg.seed),
    );
    let mut inst = Instance::new(schema);

    for t in 0..cfg.themes {
        // Entity pool first, so FK values always resolve.
        let mut ent_keys: Vec<String> = Vec::new();
        if cfg.is_fk_theme(t) {
            let ents = inst.root_id(&format!("ent{t}")).unwrap();
            for i in 0..scaled(cfg.base_rows / 4 + 4, scale, 2) {
                let ek = format!("e{t}-{i}");
                inst.insert(
                    ents,
                    vec![Value::str(&ek), g.shared(&format!("pay{t}-"), 7)],
                );
                ent_keys.push(ek);
            }
        }

        let src = inst.root_id(&format!("src{t}")).unwrap();
        let n = scaled(cfg.base_rows, scale, 2);
        for i in 0..n {
            let key = format!("s{t}-{i}");
            // Low-diversity payloads and bucketed ints keep the hand-built
            // value profile: duplicates exist, so real differentiating
            // examples are findable.
            let levels: Vec<Value> = (0..cfg.depth)
                .map(|j| {
                    if j % 2 == 1 {
                        g.bucketed(10, 5 + j as i64)
                    } else {
                        g.shared(&format!("v{t}x{j}-"), 3 + j)
                    }
                })
                .collect();
            let mut tuple = vec![Value::str(&key)];
            tuple.extend(levels.iter().cloned());
            for _ in 0..cfg.fillers {
                tuple.push(g.shared(&format!("fill{t}-"), 9));
            }
            for _ in 0..cfg.fd_pairs {
                // Both sides derive from one bucket index, so fa → fb holds
                // in every generated instance.
                let b = g.index(4);
                tuple.push(Value::str(format!("A{b}")));
                tuple.push(Value::str(format!("B{b}")));
            }
            if cfg.is_fk_theme(t) {
                for _ in 0..cfg.or_fanout {
                    tuple.push(Value::str(g.pick(&ent_keys)));
                }
            }
            if cfg.source_nested {
                let sub = inst.group(
                    SetPath::parse(&format!("src{t}.Sub")),
                    vec![Value::str(&key)],
                );
                for _ in 0..g.range(1, 3) {
                    inst.insert(sub, vec![g.shared(&format!("sub{t}-"), 11)]);
                }
                tuple.push(Value::Set(sub));
            }
            inst.insert(src, tuple.clone());

            // A ~10% twin rate: same payloads under a fresh key, the DBLP
            // duplicate-entry trick that surfaces real examples.
            if g.chance(0.10) {
                let twin_key = format!("s{t}-{i}bis");
                let mut twin = tuple;
                twin[0] = Value::str(&twin_key);
                if cfg.source_nested {
                    let sub = inst.group(
                        SetPath::parse(&format!("src{t}.Sub")),
                        vec![Value::str(&twin_key)],
                    );
                    inst.insert(sub, vec![g.shared(&format!("sub{t}-"), 11)]);
                    let last = twin.len() - 1;
                    twin[last] = Value::Set(sub);
                }
                inst.insert(src, twin);
            }
        }
    }
    inst
}

impl Scenario {
    /// A complete synthetic scenario bundle for `cfg` (clamped), behaving
    /// exactly like a hand-built scenario everywhere a [`Scenario`] is
    /// accepted.
    pub fn synthetic(cfg: SynthCfg) -> Scenario {
        let cfg = cfg.clamped();
        let name = format!("Synth-{}", cfg.seed);
        let source_schema = source_schema(&cfg);
        let source_constraints = source_constraints(&cfg);
        let target_schema = target_schema(&cfg);
        let correspondences = correspondences(&cfg);
        Scenario {
            name,
            source_schema,
            source_constraints,
            target_schema,
            target_constraints: Constraints::none(),
            correspondences,
            default_scale: 1.0,
            generator: Arc::new(move |schema, scale, seed| generate(&cfg, schema, scale, seed)),
        }
    }
}

/// `count` fleet scenarios derived from consecutive seeds starting at
/// `seed0` — the shard a CI worker runs.
pub fn fleet(count: usize, seed0: u64) -> Vec<Scenario> {
    (0..count as u64)
        .map(|i| Scenario::synthetic(SynthCfg::from_seed(seed0.wrapping_add(i))))
        .collect()
}

/// Parse a `<count>x<seed>` fleet spec (as taken by `--synth`), e.g.
/// `16x100` = 16 scenarios seeded 100..116.
pub fn parse_fleet_spec(spec: &str) -> Result<(usize, u64), String> {
    let (count, seed) = spec
        .split_once(['x', 'X'])
        .ok_or_else(|| format!("bad fleet spec {spec:?}: expected <count>x<seed>, e.g. 16x100"))?;
    let count: usize = count
        .trim()
        .parse()
        .map_err(|e| format!("bad fleet count {count:?}: {e}"))?;
    if count == 0 {
        return Err(format!("bad fleet spec {spec:?}: count must be >= 1"));
    }
    let seed: u64 = seed
        .trim()
        .parse()
        .map_err(|e| format!("bad fleet seed {seed:?}: {e}"))?;
    Ok((count, seed))
}

/// Parse a `Synth-<seed>` scenario name back into its config, so synthetic
/// scenarios can be resolved by name (serve WAL replay, CLI selection).
pub fn cfg_from_name(name: &str) -> Option<SynthCfg> {
    let seed = name
        .strip_prefix("Synth-")
        .or_else(|| name.strip_prefix("synth-"))?;
    seed.parse().ok().map(SynthCfg::from_seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_nr::display::render;
    use muse_nr::text::{parse_schema, print_schema};

    fn knob_grid() -> Vec<SynthCfg> {
        let mut grid = Vec::new();
        for depth in 1..=3 {
            for &source_nested in &[false, true] {
                for &fk_themes in &[0usize, 1] {
                    grid.push(SynthCfg {
                        seed: (depth * 100 + usize::from(source_nested) * 10 + fk_themes) as u64,
                        themes: 2,
                        depth,
                        source_nested,
                        fillers: 1,
                        fd_pairs: 1,
                        fk_themes,
                        or_fanout: 2,
                        base_rows: 24,
                    });
                }
            }
        }
        grid
    }

    #[test]
    fn knob_grid_bundles_are_well_formed() {
        for cfg in knob_grid() {
            let s = Scenario::synthetic(cfg.clone());
            assert!(s.source_schema.is_strictly_alternating(), "{}", s.name);
            assert!(s.target_schema.is_strictly_alternating(), "{}", s.name);
            s.source_constraints
                .validate_against_schema(&s.source_schema)
                .unwrap_or_else(|e| panic!("{:?}: {e}", cfg));
            for c in &s.correspondences {
                c.validate(&s.source_schema, &s.target_schema)
                    .unwrap_or_else(|e| panic!("{:?}: {c}: {e}", cfg));
            }
            let ms = s.mappings().unwrap_or_else(|e| panic!("{:?}: {e}", cfg));
            assert!(!ms.is_empty(), "{:?}", cfg);
            for m in &ms {
                m.validate(&s.source_schema, &s.target_schema)
                    .unwrap_or_else(|e| panic!("{:?}/{}: {e}", cfg, m.name));
            }
            // FK themes are what make or-groups: fan-out ≥ 2 ⇒ ambiguity.
            let ambiguous = ms.iter().filter(|m| m.is_ambiguous()).count();
            if cfg.fk_themes > 0 && cfg.or_fanout >= 2 {
                assert!(ambiguous > 0, "{:?}: expected an or-group", cfg);
            } else {
                assert_eq!(ambiguous, 0, "{:?}: unexpected ambiguity", cfg);
            }
        }
    }

    #[test]
    fn knob_grid_instances_satisfy_all_constraints() {
        for cfg in knob_grid() {
            let s = Scenario::synthetic(cfg.clone());
            let inst = s.instance(0.5, 42);
            inst.validate(&s.source_schema)
                .unwrap_or_else(|e| panic!("{:?}: {e}", cfg));
            s.source_constraints
                .validate_instance(&s.source_schema, &inst)
                .unwrap_or_else(|e| panic!("{:?}: {e}", cfg));
            assert!(inst.total_tuples() > 0);
        }
    }

    #[test]
    fn schemas_round_trip_through_the_text_format() {
        for seed in [0u64, 1, 7, 1042] {
            let s = Scenario::synthetic(SynthCfg::from_seed(seed));
            for (schema, cons) in [
                (&s.source_schema, &s.source_constraints),
                (&s.target_schema, &s.target_constraints),
            ] {
                let text = print_schema(schema, cons);
                let (schema2, cons2) =
                    parse_schema(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", s.name));
                assert_eq!(schema, &schema2, "{}", s.name);
                assert_eq!(cons, &cons2, "{}", s.name);
            }
        }
    }

    #[test]
    fn same_seed_is_byte_identical_in_process() {
        for seed in [3u64, 99] {
            let a = Scenario::synthetic(SynthCfg::from_seed(seed));
            let b = Scenario::synthetic(SynthCfg::from_seed(seed));
            assert_eq!(a.name, b.name);
            assert_eq!(a.source_schema, b.source_schema);
            assert_eq!(a.target_schema, b.target_schema);
            assert_eq!(
                render(&a.source_schema, &a.instance(0.2, 5)),
                render(&b.source_schema, &b.instance(0.2, 5))
            );
        }
    }

    #[test]
    fn seeds_cover_the_shape_space() {
        let cfgs: Vec<SynthCfg> = (0..64).map(SynthCfg::from_seed).collect();
        let depths: std::collections::BTreeSet<usize> = cfgs.iter().map(|c| c.depth).collect();
        let themes: std::collections::BTreeSet<usize> = cfgs.iter().map(|c| c.themes).collect();
        assert_eq!(depths.len(), 3, "depth knob unexplored: {depths:?}");
        assert_eq!(themes.len(), 3, "themes knob unexplored: {themes:?}");
        assert!(cfgs.iter().any(|c| c.fk_themes > 0));
        assert!(cfgs.iter().any(|c| c.fk_themes == 0));
        assert!(cfgs.iter().any(|c| c.source_nested));
        assert!(cfgs.iter().any(|c| !c.source_nested));
    }

    #[test]
    fn fleet_spec_parses() {
        assert_eq!(parse_fleet_spec("16x100").unwrap(), (16, 100));
        assert_eq!(parse_fleet_spec("1x0").unwrap(), (1, 0));
        assert!(parse_fleet_spec("16").is_err());
        assert!(parse_fleet_spec("0x5").is_err());
        assert!(parse_fleet_spec("x5").is_err());
        assert_eq!(fleet(3, 10).len(), 3);
        assert_eq!(fleet(2, 7)[1].name, "Synth-8");
    }

    #[test]
    fn names_round_trip() {
        let cfg = SynthCfg::from_seed(42);
        let s = Scenario::synthetic(cfg.clone());
        assert_eq!(cfg_from_name(&s.name), Some(cfg));
        assert_eq!(cfg_from_name("Mondial"), None);
    }

    #[test]
    fn scale_sweeps_grow_monotonically() {
        let s = Scenario::synthetic(SynthCfg::from_seed(11));
        let mut prev = 0;
        for scale in [0.05, 0.25, 1.0, 2.0] {
            let n = s.instance(scale, 1).total_tuples();
            assert!(n >= prev, "fleet instance shrank at scale {scale}");
            prev = n;
        }
    }
}
