//! The Mondial scenario: relational geographical source → nested target.
//!
//! Modeled on the Mondial database (relational distribution → DTD-style
//! nesting). The source has the country/province/city chain, per-country
//! fact tables (languages, religions, ethnic groups, mountains, rivers,
//! lakes, seas, islands, deserts, airports, economy, politics,
//! encompasses), organizations with memberships, and six *border* relations
//! that reference `country` **twice** (land borders plus rivers / lakes /
//! seas / mountains / deserts shared between two countries). The double
//! references make seven of the generated mappings ambiguous — six with
//! five binary `or`-groups and one with four — encoding
//! 6·32 + 16 = 208 interpretations, the paper's Sec. VI profile.

use muse_cliogen::Correspondence;
use muse_nr::{Constraints, Field, ForeignKey, Instance, Key, Schema, SetPath, Ty, Value};

use crate::gen::{scaled, Gen};
use crate::Scenario;

fn set(fields: Vec<Field>) -> Ty {
    Ty::set_of(fields)
}

fn f(label: &str, ty: Ty) -> Field {
    Field::new(label, ty)
}

/// The six relations that hold facts shared *between* two countries:
/// (relation, payload attribute, nested target set).
const BORDER_RELS: [(&str, &str, &str); 6] = [
    ("borders", "blength", "Neighbors"),
    ("riverborder", "river", "SharedRivers"),
    ("lakeborder", "lake", "SharedLakes"),
    ("seaborder", "sea", "SharedSeas"),
    ("mountainborder", "mountain", "SharedMountains"),
    ("desertborder", "desert", "SharedDeserts"),
];

/// Per-country fact relations feeding top-level target sets:
/// (relation, name attr, measure attr, target set).
const FACT_RELS: [(&str, &str, &str, &str); 9] = [
    ("language", "lname", "percentage", "Languages"),
    ("religion", "rname", "percentage", "Religions"),
    ("ethnicgroup", "gname", "percentage", "EthnicGroups"),
    ("mountain", "mname", "height", "Mountains"),
    ("river", "rivname", "rlength", "Rivers"),
    ("lake", "lakname", "larea", "Lakes"),
    ("sea", "seaname", "depth", "Seas"),
    ("island", "iname", "iarea", "Islands"),
    ("desert", "dname", "darea", "Deserts"),
];

fn source_schema() -> Schema {
    let mut roots = vec![
        f(
            "country",
            set(vec![
                f("code", Ty::Str),
                f("name", Ty::Str),
                f("capital", Ty::Str),
                f("population", Ty::Int),
                f("area", Ty::Int),
                f("continent", Ty::Str),
            ]),
        ),
        f(
            "province",
            set(vec![
                f("pname", Ty::Str),
                f("country", Ty::Str),
                f("capital", Ty::Str),
                f("population", Ty::Int),
                f("area", Ty::Int),
            ]),
        ),
        f(
            "city",
            set(vec![
                f("cname", Ty::Str),
                f("province", Ty::Str),
                f("population", Ty::Int),
                f("longitude", Ty::Int),
                f("latitude", Ty::Int),
            ]),
        ),
        f(
            "organization",
            set(vec![
                f("abbr", Ty::Str),
                f("oname", Ty::Str),
                f("established", Ty::Int),
                f("country", Ty::Str),
            ]),
        ),
        f(
            "ismember",
            set(vec![
                f("country", Ty::Str),
                f("organization", Ty::Str),
                f("mtype", Ty::Str),
            ]),
        ),
        f(
            "airport",
            set(vec![
                f("iata", Ty::Str),
                f("aname", Ty::Str),
                f("country", Ty::Str),
                f("elevation", Ty::Int),
            ]),
        ),
        f(
            "economy",
            set(vec![
                f("country", Ty::Str),
                f("gdp", Ty::Int),
                f("inflation", Ty::Int),
            ]),
        ),
        f(
            "politics",
            set(vec![
                f("country", Ty::Str),
                f("government", Ty::Str),
                f("independence", Ty::Int),
            ]),
        ),
        f(
            "encompasses",
            set(vec![
                f("country", Ty::Str),
                f("continent", Ty::Str),
                f("percentage", Ty::Int),
            ]),
        ),
    ];
    for (rel, payload, _) in BORDER_RELS {
        let payload_ty = if rel == "borders" { Ty::Int } else { Ty::Str };
        roots.push(f(
            rel,
            set(vec![
                f("country1", Ty::Str),
                f("country2", Ty::Str),
                f(payload, payload_ty),
            ]),
        ));
    }
    for (rel, name_attr, measure, _) in FACT_RELS {
        roots.push(f(
            rel,
            set(vec![
                f("country", Ty::Str),
                f(name_attr, Ty::Str),
                f(measure, Ty::Int),
            ]),
        ));
    }
    Schema::new("MondialRel", roots).expect("valid Mondial source schema")
}

fn source_constraints() -> Constraints {
    let country = SetPath::parse("country");
    let mut keys = vec![
        Key::new(country.clone(), vec!["code"]),
        Key::new(SetPath::parse("province"), vec!["pname"]),
        Key::new(SetPath::parse("city"), vec!["cname"]),
        Key::new(SetPath::parse("organization"), vec!["abbr"]),
        Key::new(SetPath::parse("ismember"), vec!["country", "organization"]),
        Key::new(SetPath::parse("airport"), vec!["iata"]),
        Key::new(SetPath::parse("economy"), vec!["country"]),
        Key::new(SetPath::parse("politics"), vec!["country"]),
        Key::new(SetPath::parse("encompasses"), vec!["country", "continent"]),
    ];
    let mut fks = vec![
        ForeignKey::new(
            SetPath::parse("province"),
            vec!["country"],
            country.clone(),
            vec!["code"],
        ),
        ForeignKey::new(
            SetPath::parse("city"),
            vec!["province"],
            SetPath::parse("province"),
            vec!["pname"],
        ),
        ForeignKey::new(
            SetPath::parse("organization"),
            vec!["country"],
            country.clone(),
            vec!["code"],
        ),
        ForeignKey::new(
            SetPath::parse("ismember"),
            vec!["country"],
            country.clone(),
            vec!["code"],
        ),
        ForeignKey::new(
            SetPath::parse("ismember"),
            vec!["organization"],
            SetPath::parse("organization"),
            vec!["abbr"],
        ),
        ForeignKey::new(
            SetPath::parse("airport"),
            vec!["country"],
            country.clone(),
            vec!["code"],
        ),
        ForeignKey::new(
            SetPath::parse("economy"),
            vec!["country"],
            country.clone(),
            vec!["code"],
        ),
        ForeignKey::new(
            SetPath::parse("politics"),
            vec!["country"],
            country.clone(),
            vec!["code"],
        ),
        ForeignKey::new(
            SetPath::parse("encompasses"),
            vec!["country"],
            country.clone(),
            vec!["code"],
        ),
    ];
    for (rel, _, _) in BORDER_RELS {
        let p = SetPath::parse(rel);
        keys.push(Key::new(p.clone(), vec!["country1", "country2"]));
        fks.push(ForeignKey::new(
            p.clone(),
            vec!["country1"],
            country.clone(),
            vec!["code"],
        ));
        fks.push(ForeignKey::new(
            p,
            vec!["country2"],
            country.clone(),
            vec!["code"],
        ));
    }
    for (rel, name_attr, _, _) in FACT_RELS {
        let p = SetPath::parse(rel);
        keys.push(Key::new(p.clone(), vec!["country", name_attr]));
        fks.push(ForeignKey::new(
            p,
            vec!["country"],
            country.clone(),
            vec!["code"],
        ));
    }
    Constraints {
        keys,
        fds: vec![],
        fks,
    }
}

fn target_schema() -> Schema {
    let mut country_fields = vec![
        f("code", Ty::Str),
        f("name", Ty::Str),
        f("capital", Ty::Str),
        f("population", Ty::Int),
        f("continent", Ty::Str),
        f(
            "Provinces",
            set(vec![
                f("name", Ty::Str),
                f("capital", Ty::Str),
                f("population", Ty::Int),
                f(
                    "Cities",
                    set(vec![
                        f("name", Ty::Str),
                        f("population", Ty::Int),
                        f("longitude", Ty::Int),
                        f("latitude", Ty::Int),
                    ]),
                ),
            ]),
        ),
    ];
    for (rel, payload, label) in BORDER_RELS {
        let payload_ty = if rel == "borders" { Ty::Int } else { Ty::Str };
        country_fields.push(f(
            label,
            set(vec![f("country", Ty::Str), f(payload, payload_ty)]),
        ));
    }
    let mut roots = vec![
        f("Countries", set(country_fields)),
        f(
            "Organizations",
            set(vec![
                f("abbr", Ty::Str),
                f("name", Ty::Str),
                f("established", Ty::Int),
                f("homecountry", Ty::Str),
                f("homecode", Ty::Str),
            ]),
        ),
        f(
            "Memberships",
            set(vec![
                f("country", Ty::Str),
                f("code", Ty::Str),
                f("capital", Ty::Str),
                f("population", Ty::Int),
                f("org", Ty::Str),
                f("mtype", Ty::Str),
            ]),
        ),
        f(
            "Airports",
            set(vec![
                f("iata", Ty::Str),
                f("name", Ty::Str),
                f("country", Ty::Str),
                f("elevation", Ty::Int),
            ]),
        ),
        f(
            "Economies",
            set(vec![
                f("country", Ty::Str),
                f("gdp", Ty::Int),
                f("inflation", Ty::Int),
            ]),
        ),
        f(
            "Politics",
            set(vec![
                f("country", Ty::Str),
                f("government", Ty::Str),
                f("independence", Ty::Int),
            ]),
        ),
        f(
            "Encompasses",
            set(vec![
                f("country", Ty::Str),
                f("continent", Ty::Str),
                f("percentage", Ty::Int),
            ]),
        ),
    ];
    for (_, _, measure, label) in FACT_RELS {
        roots.push(f(
            label,
            set(vec![
                f("name", Ty::Str),
                f(measure, Ty::Int),
                f("country", Ty::Str),
            ]),
        ));
    }
    Schema::new("MondialXml", roots).expect("valid Mondial target schema")
}

fn correspondences() -> Vec<Correspondence> {
    let mut out = vec![
        // Countries and the province/city chain.
        Correspondence::new("country.code", "Countries.code"),
        Correspondence::new("country.name", "Countries.name"),
        Correspondence::new("country.capital", "Countries.capital"),
        Correspondence::new("country.population", "Countries.population"),
        Correspondence::new("country.continent", "Countries.continent"),
        Correspondence::new("province.pname", "Countries.Provinces.name"),
        Correspondence::new("province.capital", "Countries.Provinces.capital"),
        Correspondence::new("province.population", "Countries.Provinces.population"),
        Correspondence::new("city.cname", "Countries.Provinces.Cities.name"),
        Correspondence::new("city.population", "Countries.Provinces.Cities.population"),
        Correspondence::new("city.longitude", "Countries.Provinces.Cities.longitude"),
        Correspondence::new("city.latitude", "Countries.Provinces.Cities.latitude"),
        // Organizations and memberships.
        Correspondence::new("organization.abbr", "Organizations.abbr"),
        Correspondence::new("organization.oname", "Organizations.name"),
        Correspondence::new("organization.established", "Organizations.established"),
        Correspondence::new("country.name", "Organizations.homecountry"),
        Correspondence::new("country.code", "Organizations.homecode"),
        Correspondence::new("country.name", "Memberships.country"),
        Correspondence::new("country.code", "Memberships.code"),
        Correspondence::new("country.capital", "Memberships.capital"),
        Correspondence::new("country.population", "Memberships.population"),
        Correspondence::new("ismember.organization", "Memberships.org"),
        Correspondence::new("ismember.mtype", "Memberships.mtype"),
        // Flat per-country tables.
        Correspondence::new("airport.iata", "Airports.iata"),
        Correspondence::new("airport.aname", "Airports.name"),
        Correspondence::new("airport.country", "Airports.country"),
        Correspondence::new("airport.elevation", "Airports.elevation"),
        Correspondence::new("economy.country", "Economies.country"),
        Correspondence::new("economy.gdp", "Economies.gdp"),
        Correspondence::new("economy.inflation", "Economies.inflation"),
        Correspondence::new("politics.country", "Politics.country"),
        Correspondence::new("politics.government", "Politics.government"),
        Correspondence::new("politics.independence", "Politics.independence"),
        Correspondence::new("encompasses.country", "Encompasses.country"),
        Correspondence::new("encompasses.continent", "Encompasses.continent"),
        Correspondence::new("encompasses.percentage", "Encompasses.percentage"),
    ];
    for (rel, payload, label) in BORDER_RELS {
        // The "other" country of the pair comes from the relation's own
        // second column; which of the two joined country tuples supplies
        // the Countries-level attributes is the ambiguity Muse-D untangles.
        out.push(Correspondence::new(
            &format!("{rel}.country2"),
            &format!("Countries.{label}.country"),
        ));
        out.push(Correspondence::new(
            &format!("{rel}.{payload}"),
            &format!("Countries.{label}.{payload}"),
        ));
    }
    for (rel, name_attr, measure, label) in FACT_RELS {
        out.push(Correspondence::new(
            &format!("{rel}.{name_attr}"),
            &format!("{label}.name"),
        ));
        out.push(Correspondence::new(
            &format!("{rel}.{measure}"),
            &format!("{label}.{measure}"),
        ));
        out.push(Correspondence::new(
            &format!("{rel}.country"),
            &format!("{label}.country"),
        ));
    }
    out
}

fn generate(schema: &Schema, scale: f64, seed: u64) -> Instance {
    let mut g = Gen::new(seed);
    let mut inst = Instance::new(schema);

    let n_countries = scaled(220, scale, 4);
    let continents = ["Europe", "Asia", "Africa", "America", "Oceania"];
    let capital_pool: Vec<String> = (0..scaled(50, scale, 3))
        .map(|i| format!("Cap{i}"))
        .collect();
    let governments = ["republic", "monarchy", "federation"];

    // Mondial is full of redundancy (shared capitals, bucketed figures,
    // historical code variants for one territory): ~30% of countries get a
    // "twin" that differs only in its code. These twins are what make real
    // differentiating examples findable ~40% of the time (Fig. 5).
    let countries = inst.root_id("country").unwrap();
    let mut codes = Vec::with_capacity(n_countries);
    for i in 0..n_countries {
        let code = format!("C{i:03}");
        let row = [
            Value::str(format!("Country{i}")),
            Value::str(g.pick(&capital_pool)),
            g.bucketed(1_000_000, 12),
            g.bucketed(10_000, 10),
            Value::str(*g.pick(&continents)),
        ];
        let mut tuple = vec![Value::str(&code)];
        tuple.extend(row.iter().cloned());
        inst.insert(countries, tuple);
        codes.push(code);
        if g.chance(0.3) {
            let twin = format!("C{i:03}b");
            let mut t = vec![Value::str(&twin)];
            t.extend(row.iter().cloned());
            inst.insert(countries, t);
            codes.push(twin);
        }
    }

    // Provinces and cities (unique names; shared capitals, bucketed sizes).
    let provinces = inst.root_id("province").unwrap();
    let cities = inst.root_id("city").unwrap();
    let mut pnames = Vec::new();
    for (i, code) in codes.iter().enumerate() {
        for j in 0..g.range(3, 9) {
            let pname = format!("Prov{i}x{j}");
            let row = [
                Value::str(code),
                Value::str(g.pick(&capital_pool)),
                g.bucketed(500_000, 10),
                g.bucketed(5_000, 8),
            ];
            let mut tuple = vec![Value::str(&pname)];
            tuple.extend(row.iter().cloned());
            inst.insert(provinces, tuple);
            pnames.push(pname);
            if g.chance(0.35) {
                let twin = format!("Prov{i}x{j}b");
                let mut t = vec![Value::str(&twin)];
                t.extend(row.iter().cloned());
                inst.insert(provinces, t);
                pnames.push(twin);
            }
        }
    }
    for (k, pname) in pnames.iter().enumerate() {
        for j in 0..g.range(2, 5) {
            let row = [
                Value::str(pname),
                g.bucketed(100_000, 15),
                Value::int(g.range(-18, 19) * 10),
                Value::int(g.range(-9, 10) * 10),
            ];
            let mut tuple = vec![Value::str(format!("City{k}x{j}"))];
            tuple.extend(row.iter().cloned());
            inst.insert(cities, tuple);
            if g.chance(0.3) {
                let mut t = vec![Value::str(format!("City{k}x{j}b"))];
                t.extend(row.iter().cloned());
                inst.insert(cities, t);
            }
        }
    }

    // Organizations and memberships.
    let orgs = inst.root_id("organization").unwrap();
    let members = inst.root_id("ismember").unwrap();
    let n_orgs = scaled(80, scale, 2);
    let mtypes = ["member", "observer", "associate"];
    for i in 0..n_orgs {
        let abbr = format!("ORG{i}");
        inst.insert(
            orgs,
            vec![
                Value::str(&abbr),
                Value::str(format!("Organization{i}")),
                Value::int(1900 + g.range(0, 12) * 10),
                Value::str(g.pick(&codes)),
            ],
        );
        let mut used = std::collections::BTreeSet::new();
        for _ in 0..g.range(5, 18) {
            let c = g.pick(&codes).clone();
            if used.insert(c.clone()) {
                inst.insert(
                    members,
                    vec![
                        Value::str(&c),
                        Value::str(&abbr),
                        Value::str(*g.pick(&mtypes)),
                    ],
                );
            }
        }
    }

    // Airports, economy, politics, encompasses.
    let airports = inst.root_id("airport").unwrap();
    for i in 0..scaled(400, scale, 2) {
        inst.insert(
            airports,
            vec![
                Value::str(format!("A{i:03}")),
                Value::str(format!("Airport{i}")),
                Value::str(g.pick(&codes)),
                g.bucketed(100, 12),
            ],
        );
    }
    let economies = inst.root_id("economy").unwrap();
    let politics = inst.root_id("politics").unwrap();
    let encompasses = inst.root_id("encompasses").unwrap();
    for code in &codes {
        inst.insert(
            economies,
            vec![Value::str(code), g.bucketed(1_000, 20), g.bucketed(1, 10)],
        );
        inst.insert(
            politics,
            vec![
                Value::str(code),
                Value::str(*g.pick(&governments)),
                Value::int(1800 + g.range(0, 20) * 10),
            ],
        );
        inst.insert(
            encompasses,
            vec![
                Value::str(code),
                Value::str(*g.pick(&continents)),
                g.bucketed(25, 4),
            ],
        );
    }

    // Border relations: unique (country1, country2) pairs per relation.
    for (rel, _, _) in BORDER_RELS {
        let root = inst.root_id(rel).unwrap();
        let n = scaled(500, scale, 3);
        let mut used = std::collections::BTreeSet::new();
        for _ in 0..n {
            let a = g.pick(&codes).clone();
            let b = g.pick(&codes).clone();
            if a == b || !used.insert((a.clone(), b.clone())) {
                continue;
            }
            let payload = if rel == "borders" {
                g.bucketed(50, 20)
            } else {
                // Shared geography names come from small pools so that real
                // differentiating examples exist.
                g.shared(&format!("{rel}-geo"), 25)
            };
            inst.insert(root, vec![Value::str(&a), Value::str(&b), payload.clone()]);
            if g.chance(0.3) {
                let b2 = g.pick(&codes).clone();
                if b2 != a && used.insert((a.clone(), b2.clone())) {
                    inst.insert(root, vec![Value::str(&a), Value::str(&b2), payload]);
                }
            }
        }
    }

    // Per-country fact relations: names from small pools, measures bucketed.
    for (rel, _, _, _) in FACT_RELS {
        let root = inst.root_id(rel).unwrap();
        for code in &codes {
            let mut used = std::collections::BTreeSet::new();
            for _ in 0..g.range(1, 5) {
                let name = g.shared(&format!("{rel}-n"), 18);
                let key = match &name {
                    Value::Atom(a) => a.to_string(),
                    _ => unreachable!(),
                };
                if !used.insert(key) {
                    continue;
                }
                inst.insert(root, vec![Value::str(code), name, g.bucketed(10, 10)]);
            }
        }
    }

    inst
}

/// The Mondial scenario.
pub fn scenario() -> Scenario {
    Scenario {
        name: "Mondial".into(),
        source_schema: source_schema(),
        source_constraints: source_constraints(),
        target_schema: target_schema(),
        target_constraints: Constraints::none(),
        correspondences: correspondences(),
        default_scale: 2.0,
        generator: std::sync::Arc::new(generate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_mapping::ambiguity::or_groups;

    #[test]
    fn profile_matches_the_paper() {
        let s = scenario();
        // 8 nested target sets with grouping functions.
        assert_eq!(s.target_sets_with_grouping(), 8);
        let ms = s.mappings().unwrap();
        let ambiguous: Vec<_> = ms.iter().filter(|m| m.is_ambiguous()).collect();
        let alts: usize = ambiguous
            .iter()
            .map(|m| {
                or_groups(m)
                    .iter()
                    .map(|(_, a)| a.len().max(1))
                    .product::<usize>()
            })
            .sum();
        // Paper: 26 mappings, 7 ambiguous, encoding 208 alternatives.
        assert_eq!(
            ms.len(),
            26,
            "mappings: {:?}",
            ms.iter().map(|m| &m.name).collect::<Vec<_>>()
        );
        assert_eq!(ambiguous.len(), 7);
        assert_eq!(alts, 208);
    }

    #[test]
    fn the_countries_mapping_exists() {
        let s = scenario();
        let ms = s.mappings().unwrap();
        assert!(ms.iter().any(|m| {
            m.source_vars.len() == 1
                && m.source_vars[0].set == SetPath::parse("country")
                && m.target_vars.len() == 1
                && m.target_vars[0].set == SetPath::parse("Countries")
        }));
    }

    #[test]
    fn instance_has_paper_size_at_default_scale() {
        let s = scenario();
        let inst = s.instance_default(1);
        let mb = inst.approx_bytes() as f64 / 1_000_000.0;
        assert!((0.5..2.0).contains(&mb), "got {mb} MB");
    }

    #[test]
    fn generated_instance_satisfies_constraints() {
        let s = scenario();
        let inst = s.instance(0.05, 3);
        inst.validate(&s.source_schema).unwrap();
        s.source_constraints
            .validate_instance(&s.source_schema, &inst)
            .unwrap();
    }
}
