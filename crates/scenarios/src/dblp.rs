//! The DBLP scenario: two nested bibliography schemas.
//!
//! Source: a DBLP-dump-like schema — flat lists of `article` and
//! `inproceedings` records, each with a nested `Authors` set. Target: the
//! Clio-repository-style reorganization — journals with volumes with
//! articles with authors, and conferences with editions with papers with
//! authors. Six nested target sets carry grouping functions; Clio generates
//! four mappings (one per source publication chain × target depth that
//! covers strictly more); nothing is ambiguous — matching the paper's
//! Sec. VI row (4 mappings, 6 grouping sets, 0 ambiguous).

use muse_cliogen::Correspondence;
use muse_nr::{Constraints, Field, Instance, Key, Schema, SetPath, Ty, Value};

use crate::gen::{scaled, Gen};
use crate::Scenario;

fn set(fields: Vec<Field>) -> Ty {
    Ty::set_of(fields)
}

fn f(label: &str, ty: Ty) -> Field {
    Field::new(label, ty)
}

fn source_schema() -> Schema {
    Schema::new(
        "DblpDump",
        vec![
            f(
                "article",
                set(vec![
                    f("key", Ty::Str),
                    f("title", Ty::Str),
                    f("year", Ty::Int),
                    f("month", Ty::Str),
                    f("journal", Ty::Str),
                    f("volume", Ty::Int),
                    f("number", Ty::Int),
                    f("pages", Ty::Str),
                    f("ee", Ty::Str),
                    f("cdrom", Ty::Str),
                    f("Authors", set(vec![f("name", Ty::Str)])),
                ]),
            ),
            f(
                "inproceedings",
                set(vec![
                    f("key", Ty::Str),
                    f("title", Ty::Str),
                    f("year", Ty::Int),
                    f("month", Ty::Str),
                    f("booktitle", Ty::Str),
                    f("pages", Ty::Str),
                    f("crossref", Ty::Str),
                    f("url", Ty::Str),
                    f("Authors", set(vec![f("name", Ty::Str)])),
                ]),
            ),
        ],
    )
    .expect("valid DBLP source schema")
}

fn source_constraints() -> Constraints {
    Constraints {
        keys: vec![
            Key::new(SetPath::parse("article"), vec!["key"]),
            Key::new(SetPath::parse("inproceedings"), vec!["key"]),
        ],
        fds: vec![],
        fks: vec![],
    }
}

fn target_schema() -> Schema {
    Schema::new(
        "DblpNested",
        vec![
            f(
                "Journals",
                set(vec![
                    f("jname", Ty::Str),
                    f(
                        "Volumes",
                        set(vec![
                            f("vol", Ty::Int),
                            f(
                                "Articles",
                                set(vec![
                                    f("dblpkey", Ty::Str),
                                    f("title", Ty::Str),
                                    f("year", Ty::Int),
                                    f("pages", Ty::Str),
                                    f("Authors", set(vec![f("name", Ty::Str)])),
                                ]),
                            ),
                        ]),
                    ),
                ]),
            ),
            f(
                "Conferences",
                set(vec![
                    f("cname", Ty::Str),
                    f(
                        "Editions",
                        set(vec![
                            f("year", Ty::Int),
                            f(
                                "Papers",
                                set(vec![
                                    f("dblpkey", Ty::Str),
                                    f("title", Ty::Str),
                                    f("pages", Ty::Str),
                                    f("Authors", set(vec![f("name", Ty::Str)])),
                                ]),
                            ),
                        ]),
                    ),
                ]),
            ),
        ],
    )
    .expect("valid DBLP target schema")
}

fn correspondences() -> Vec<Correspondence> {
    vec![
        Correspondence::new("article.journal", "Journals.jname"),
        Correspondence::new("article.volume", "Journals.Volumes.vol"),
        Correspondence::new("article.key", "Journals.Volumes.Articles.dblpkey"),
        Correspondence::new("article.title", "Journals.Volumes.Articles.title"),
        Correspondence::new("article.year", "Journals.Volumes.Articles.year"),
        Correspondence::new("article.pages", "Journals.Volumes.Articles.pages"),
        Correspondence::new(
            "article.Authors.name",
            "Journals.Volumes.Articles.Authors.name",
        ),
        Correspondence::new("inproceedings.booktitle", "Conferences.cname"),
        Correspondence::new("inproceedings.year", "Conferences.Editions.year"),
        Correspondence::new("inproceedings.key", "Conferences.Editions.Papers.dblpkey"),
        Correspondence::new("inproceedings.title", "Conferences.Editions.Papers.title"),
        Correspondence::new("inproceedings.pages", "Conferences.Editions.Papers.pages"),
        Correspondence::new(
            "inproceedings.Authors.name",
            "Conferences.Editions.Papers.Authors.name",
        ),
    ]
}

fn generate(schema: &Schema, scale: f64, seed: u64) -> Instance {
    let mut g = Gen::new(seed);
    let mut inst = Instance::new(schema);

    let author_pool: Vec<String> = (0..scaled(2_500, scale, 5))
        .map(|i| format!("Author {i}"))
        .collect();
    let journals: Vec<String> = (0..scaled(40, scale, 2))
        .map(|i| format!("Journal{i}"))
        .collect();
    let confs: Vec<String> = (0..scaled(80, scale, 2))
        .map(|i| format!("Conf{i}"))
        .collect();
    let months = [
        "jan", "feb", "mar", "apr", "may", "jun", "jul", "aug", "sep", "oct", "nov", "dec",
    ];

    // DBLP famously contains duplicate entries under distinct keys; the
    // ~12% twin rate is what lets some probes find real differentiating
    // examples (Fig. 5's 11-17% column).
    let articles = inst.root_id("article").unwrap();
    for i in 0..scaled(9_000, scale, 4) {
        let key = format!("journals/a{i}");
        let authors = inst.group(SetPath::parse("article.Authors"), vec![Value::str(&key)]);
        for _ in 0..g.range(1, 4) {
            inst.insert(authors, vec![Value::str(g.pick(&author_pool))]);
        }
        let row = vec![
            Value::str(format!("On the Theory of Topic {i}")),
            Value::int(1990 + g.range(0, 21)),
            Value::str(*g.pick(&months)),
            Value::str(g.pick(&journals)),
            Value::int(g.range(1, 40)),
            Value::int(g.range(1, 13)),
            g.shared("pp-", 250),
            g.shared("ee-", 250),
            g.shared("cdrom-", 60),
        ];
        let mut tuple = vec![Value::str(&key)];
        tuple.extend(row.iter().cloned());
        tuple.push(Value::Set(authors));
        inst.insert(articles, tuple);
        if g.chance(0.12) {
            // Duplicate entries typically differ in their electronic-edition
            // metadata, so the twin agrees on the bibliographic attributes
            // but not on ee/cdrom — real examples surface on mid-sequence
            // probes rather than on the very first (key) probe.
            let twin_key = format!("journals/a{i}bis");
            let twin_authors = inst.group(
                SetPath::parse("article.Authors"),
                vec![Value::str(&twin_key)],
            );
            inst.insert(twin_authors, vec![Value::str(g.pick(&author_pool))]);
            let mut twin = vec![Value::str(&twin_key)];
            twin.extend(row[..row.len() - 2].iter().cloned());
            twin.push(g.shared("ee-", 250));
            twin.push(g.shared("cdrom-", 60));
            twin.push(Value::Set(twin_authors));
            inst.insert(articles, twin);
        }
    }

    let inproc = inst.root_id("inproceedings").unwrap();
    for i in 0..scaled(11_000, scale, 4) {
        let key = format!("conf/p{i}");
        let authors = inst.group(
            SetPath::parse("inproceedings.Authors"),
            vec![Value::str(&key)],
        );
        for _ in 0..g.range(1, 5) {
            inst.insert(authors, vec![Value::str(g.pick(&author_pool))]);
        }
        inst.insert(
            inproc,
            vec![
                Value::str(&key),
                Value::str(format!("A Practical Study of Topic {i}")),
                Value::int(1990 + g.range(0, 21)),
                Value::str(*g.pick(&months)),
                Value::str(g.pick(&confs)),
                g.shared("pp-", 250),
                g.shared("xr-", 120),
                g.shared("url-", 250),
                Value::Set(authors),
            ],
        );
    }

    inst
}

/// The DBLP scenario.
pub fn scenario() -> Scenario {
    Scenario {
        name: "DBLP".into(),
        source_schema: source_schema(),
        source_constraints: source_constraints(),
        target_schema: target_schema(),
        target_constraints: Constraints::none(),
        correspondences: correspondences(),
        default_scale: 1.0,
        generator: std::sync::Arc::new(generate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_matches_the_paper() {
        let s = scenario();
        assert_eq!(s.target_sets_with_grouping(), 6);
        let ms = s.mappings().unwrap();
        assert_eq!(
            ms.len(),
            4,
            "{:?}",
            ms.iter().map(|m| &m.name).collect::<Vec<_>>()
        );
        assert!(ms.iter().all(|m| !m.is_ambiguous()));
    }

    #[test]
    fn instance_has_paper_size_at_default_scale() {
        let s = scenario();
        let inst = s.instance_default(1);
        let mb = inst.approx_bytes() as f64 / 1_000_000.0;
        assert!((1.5..4.0).contains(&mb), "got {mb} MB");
    }

    #[test]
    fn nested_source_authors_are_grouped_per_publication() {
        let s = scenario();
        let inst = s.instance(0.01, 5);
        inst.validate(&s.source_schema).unwrap();
        let author_sets = inst.set_ids_of(&SetPath::parse("article.Authors"));
        assert!(!author_sets.is_empty());
    }
}
