//! The TPC-H scenario: the relational TPC-H schema → a nested version.
//!
//! Source: the eight TPC-H relations with their standard keys and foreign
//! keys. Target: our nested reorganization (as the paper's authors created
//! one): nations containing customers containing orders containing line
//! items, plus suppliers per nation — four nested sets with grouping
//! functions. The line-item mapping joins through *both* the customer side
//! (orders → customer → nation) and the supplier side (partsupp → supplier
//! → nation), so the containing nation's name and key can come from either
//! party; together with two derived line-item elements that each received
//! two arrows (key date, status), the line-item mapping carries four binary
//! `or`-groups encoding 16 interpretations — the paper's Sec. VI row
//! (5 mappings, 1 ambiguous, 16 alternatives).
//!
//! The synthetic generator mimics `dbgen`'s value profile: keys, addresses,
//! prices and comments are dense and (near-)unique, which is why real
//! differentiating examples are almost never found on TPC-H (the 0–12%
//! column of Fig. 5).

use muse_cliogen::Correspondence;
use muse_nr::{Constraints, Field, ForeignKey, Instance, Key, Schema, SetPath, Ty, Value};

use crate::gen::{scaled, Gen};
use crate::Scenario;

fn set(fields: Vec<Field>) -> Ty {
    Ty::set_of(fields)
}

fn f(label: &str, ty: Ty) -> Field {
    Field::new(label, ty)
}

fn source_schema() -> Schema {
    Schema::new(
        "TpchRel",
        vec![
            f(
                "region",
                set(vec![
                    f("r_regionkey", Ty::Int),
                    f("r_name", Ty::Str),
                    f("r_comment", Ty::Str),
                ]),
            ),
            f(
                "nation",
                set(vec![
                    f("n_nationkey", Ty::Int),
                    f("n_name", Ty::Str),
                    f("n_regionkey", Ty::Int),
                    f("n_comment", Ty::Str),
                ]),
            ),
            f(
                "supplier",
                set(vec![
                    f("s_suppkey", Ty::Int),
                    f("s_name", Ty::Str),
                    f("s_address", Ty::Str),
                    f("s_nationkey", Ty::Int),
                    f("s_phone", Ty::Str),
                    f("s_acctbal", Ty::Int),
                    f("s_comment", Ty::Str),
                ]),
            ),
            f(
                "customer",
                set(vec![
                    f("c_custkey", Ty::Int),
                    f("c_name", Ty::Str),
                    f("c_address", Ty::Str),
                    f("c_nationkey", Ty::Int),
                    f("c_phone", Ty::Str),
                    f("c_acctbal", Ty::Int),
                    f("c_mktsegment", Ty::Str),
                    f("c_comment", Ty::Str),
                ]),
            ),
            f(
                "part",
                set(vec![
                    f("p_partkey", Ty::Int),
                    f("p_name", Ty::Str),
                    f("p_mfgr", Ty::Str),
                    f("p_brand", Ty::Str),
                    f("p_type", Ty::Str),
                    f("p_size", Ty::Int),
                    f("p_container", Ty::Str),
                    f("p_retailprice", Ty::Int),
                    f("p_comment", Ty::Str),
                ]),
            ),
            f(
                "partsupp",
                set(vec![
                    f("ps_partkey", Ty::Int),
                    f("ps_suppkey", Ty::Int),
                    f("ps_availqty", Ty::Int),
                    f("ps_supplycost", Ty::Int),
                    f("ps_comment", Ty::Str),
                ]),
            ),
            f(
                "orders",
                set(vec![
                    f("o_orderkey", Ty::Int),
                    f("o_custkey", Ty::Int),
                    f("o_orderstatus", Ty::Str),
                    f("o_totalprice", Ty::Int),
                    f("o_orderdate", Ty::Str),
                    f("o_orderpriority", Ty::Str),
                    f("o_clerk", Ty::Str),
                    f("o_shippriority", Ty::Int),
                    f("o_comment", Ty::Str),
                ]),
            ),
            f(
                "lineitem",
                set(vec![
                    f("l_orderkey", Ty::Int),
                    f("l_partkey", Ty::Int),
                    f("l_suppkey", Ty::Int),
                    f("l_linenumber", Ty::Int),
                    f("l_quantity", Ty::Int),
                    f("l_extendedprice", Ty::Int),
                    f("l_discount", Ty::Int),
                    f("l_tax", Ty::Int),
                    f("l_returnflag", Ty::Str),
                    f("l_linestatus", Ty::Str),
                    f("l_shipdate", Ty::Str),
                    f("l_commitdate", Ty::Str),
                    f("l_receiptdate", Ty::Str),
                    f("l_shipinstruct", Ty::Str),
                    f("l_shipmode", Ty::Str),
                    f("l_comment", Ty::Str),
                ]),
            ),
        ],
    )
    .expect("valid TPC-H source schema")
}

fn source_constraints() -> Constraints {
    Constraints {
        keys: vec![
            Key::new(SetPath::parse("region"), vec!["r_regionkey"]),
            Key::new(SetPath::parse("nation"), vec!["n_nationkey"]),
            Key::new(SetPath::parse("supplier"), vec!["s_suppkey"]),
            Key::new(SetPath::parse("customer"), vec!["c_custkey"]),
            Key::new(SetPath::parse("part"), vec!["p_partkey"]),
            Key::new(SetPath::parse("partsupp"), vec!["ps_partkey", "ps_suppkey"]),
            Key::new(SetPath::parse("orders"), vec!["o_orderkey"]),
            Key::new(
                SetPath::parse("lineitem"),
                vec!["l_orderkey", "l_linenumber"],
            ),
        ],
        fds: vec![],
        fks: vec![
            ForeignKey::new(
                SetPath::parse("nation"),
                vec!["n_regionkey"],
                SetPath::parse("region"),
                vec!["r_regionkey"],
            ),
            ForeignKey::new(
                SetPath::parse("supplier"),
                vec!["s_nationkey"],
                SetPath::parse("nation"),
                vec!["n_nationkey"],
            ),
            ForeignKey::new(
                SetPath::parse("customer"),
                vec!["c_nationkey"],
                SetPath::parse("nation"),
                vec!["n_nationkey"],
            ),
            ForeignKey::new(
                SetPath::parse("partsupp"),
                vec!["ps_partkey"],
                SetPath::parse("part"),
                vec!["p_partkey"],
            ),
            ForeignKey::new(
                SetPath::parse("partsupp"),
                vec!["ps_suppkey"],
                SetPath::parse("supplier"),
                vec!["s_suppkey"],
            ),
            ForeignKey::new(
                SetPath::parse("orders"),
                vec!["o_custkey"],
                SetPath::parse("customer"),
                vec!["c_custkey"],
            ),
            ForeignKey::new(
                SetPath::parse("lineitem"),
                vec!["l_orderkey"],
                SetPath::parse("orders"),
                vec!["o_orderkey"],
            ),
            ForeignKey::new(
                SetPath::parse("lineitem"),
                vec!["l_partkey", "l_suppkey"],
                SetPath::parse("partsupp"),
                vec!["ps_partkey", "ps_suppkey"],
            ),
        ],
    }
}

fn target_schema() -> Schema {
    Schema::new(
        "TpchNested",
        vec![f(
            "Nations",
            set(vec![
                f("nationkey", Ty::Int),
                f("name", Ty::Str),
                f(
                    "Customers",
                    set(vec![
                        f("custkey", Ty::Int),
                        f("name", Ty::Str),
                        f("address", Ty::Str),
                        f("phone", Ty::Str),
                        f("acctbal", Ty::Int),
                        f("mktsegment", Ty::Str),
                        f(
                            "Orders",
                            set(vec![
                                f("orderkey", Ty::Int),
                                f("orderdate", Ty::Str),
                                f("totalprice", Ty::Int),
                                f("status", Ty::Str),
                                f("priority", Ty::Str),
                                f(
                                    "Lineitems",
                                    set(vec![
                                        f("linenumber", Ty::Int),
                                        f("quantity", Ty::Int),
                                        f("extendedprice", Ty::Int),
                                        f("shipmode", Ty::Str),
                                        f("keydate", Ty::Str),
                                        f("status", Ty::Str),
                                        f("surcharge", Ty::Int),
                                    ]),
                                ),
                            ]),
                        ),
                    ]),
                ),
                f(
                    "Suppliers",
                    set(vec![
                        f("suppkey", Ty::Int),
                        f("name", Ty::Str),
                        f("address", Ty::Str),
                        f("phone", Ty::Str),
                        f("acctbal", Ty::Int),
                    ]),
                ),
            ]),
        )],
    )
    .expect("valid nested TPC-H target schema")
}

fn correspondences() -> Vec<Correspondence> {
    vec![
        Correspondence::new("nation.n_nationkey", "Nations.nationkey"),
        Correspondence::new("nation.n_name", "Nations.name"),
        Correspondence::new("customer.c_custkey", "Nations.Customers.custkey"),
        Correspondence::new("supplier.s_suppkey", "Nations.Suppliers.suppkey"),
        Correspondence::new("orders.o_orderkey", "Nations.Customers.Orders.orderkey"),
        Correspondence::new("customer.c_name", "Nations.Customers.name"),
        Correspondence::new("customer.c_address", "Nations.Customers.address"),
        Correspondence::new("customer.c_phone", "Nations.Customers.phone"),
        Correspondence::new("customer.c_acctbal", "Nations.Customers.acctbal"),
        Correspondence::new("customer.c_mktsegment", "Nations.Customers.mktsegment"),
        Correspondence::new("supplier.s_name", "Nations.Suppliers.name"),
        Correspondence::new("supplier.s_address", "Nations.Suppliers.address"),
        Correspondence::new("supplier.s_phone", "Nations.Suppliers.phone"),
        Correspondence::new("supplier.s_acctbal", "Nations.Suppliers.acctbal"),
        Correspondence::new("orders.o_orderdate", "Nations.Customers.Orders.orderdate"),
        Correspondence::new("orders.o_totalprice", "Nations.Customers.Orders.totalprice"),
        Correspondence::new("orders.o_orderstatus", "Nations.Customers.Orders.status"),
        // Unambiguous line-item attributes.
        Correspondence::new(
            "orders.o_orderpriority",
            "Nations.Customers.Orders.priority",
        ),
        Correspondence::new(
            "lineitem.l_linenumber",
            "Nations.Customers.Orders.Lineitems.linenumber",
        ),
        Correspondence::new(
            "lineitem.l_quantity",
            "Nations.Customers.Orders.Lineitems.quantity",
        ),
        Correspondence::new(
            "lineitem.l_extendedprice",
            "Nations.Customers.Orders.Lineitems.extendedprice",
        ),
        // The ambiguous block: the designer drew *two* arrows into each of
        // the four derived line-item elements (which date is the key date,
        // which flag is the status, which rate is the surcharge, which
        // instruction is the handling) — 2^4 = 16 interpretations, all
        // inside the single line-item mapping.
        Correspondence::new(
            "lineitem.l_shipdate",
            "Nations.Customers.Orders.Lineitems.keydate",
        ),
        Correspondence::new(
            "lineitem.l_receiptdate",
            "Nations.Customers.Orders.Lineitems.keydate",
        ),
        Correspondence::new(
            "lineitem.l_returnflag",
            "Nations.Customers.Orders.Lineitems.status",
        ),
        Correspondence::new(
            "lineitem.l_linestatus",
            "Nations.Customers.Orders.Lineitems.status",
        ),
        Correspondence::new(
            "lineitem.l_discount",
            "Nations.Customers.Orders.Lineitems.surcharge",
        ),
        Correspondence::new(
            "lineitem.l_shipmode",
            "Nations.Customers.Orders.Lineitems.shipmode",
        ),
    ]
}

fn generate(schema: &Schema, scale: f64, seed: u64) -> Instance {
    let mut g = Gen::new(seed);
    let mut inst = Instance::new(schema);

    let regions = inst.root_id("region").unwrap();
    let region_names = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
    for (i, name) in region_names.iter().enumerate() {
        inst.insert(
            regions,
            vec![
                Value::int(i as i64),
                Value::str(*name),
                Value::str(format!("rc{i}")),
            ],
        );
    }

    let nations = inst.root_id("nation").unwrap();
    let n_nations = 25;
    for i in 0..n_nations {
        inst.insert(
            nations,
            vec![
                Value::int(i),
                Value::str(format!("NATION{i:02}")),
                Value::int(i % region_names.len() as i64),
                Value::str(format!("nc{i}")),
            ],
        );
    }

    let suppliers = inst.root_id("supplier").unwrap();
    let n_supp = scaled(200, scale, 2) as i64;
    for i in 0..n_supp {
        inst.insert(
            suppliers,
            vec![
                Value::int(i),
                Value::str(format!("Supplier#{i:09}")),
                Value::str(format!("sa {i} main st")),
                Value::int(i % n_nations),
                Value::str(format!("27-{i:07}")),
                Value::int(1000 + i * 7 % 90000),
                Value::str(format!("sc{i}")),
            ],
        );
    }

    let customers = inst.root_id("customer").unwrap();
    let segments = [
        "BUILDING",
        "AUTOMOBILE",
        "MACHINERY",
        "HOUSEHOLD",
        "FURNITURE",
    ];
    let n_cust = scaled(1_200, scale, 3) as i64;
    for i in 0..n_cust {
        inst.insert(
            customers,
            vec![
                Value::int(i),
                Value::str(format!("Customer#{i:09}")),
                Value::str(format!("ca {i} oak ave")),
                Value::int(i % n_nations),
                Value::str(format!("13-{i:07}")),
                Value::int(500 + i * 13 % 99000),
                Value::str(segments[(i as usize) % segments.len()]),
                Value::str(format!("cc{i}")),
            ],
        );
    }

    let parts = inst.root_id("part").unwrap();
    let containers = ["SM CASE", "LG BOX", "MED BAG", "JUMBO JAR", "WRAP PKG"];
    let types = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
    let n_part = scaled(1_600, scale, 2) as i64;
    for i in 0..n_part {
        inst.insert(
            parts,
            vec![
                Value::int(i),
                Value::str(format!("part {i} azure")),
                Value::str(format!("Manufacturer#{}", i % 5)),
                Value::str(format!("Brand#{}", i % 25)),
                Value::str(types[(i as usize) % types.len()]),
                Value::int(1 + i % 50),
                Value::str(containers[(i as usize) % containers.len()]),
                Value::int(900 + i % 1100),
                Value::str(format!("pc{i}")),
            ],
        );
    }

    let partsupps = inst.root_id("partsupp").unwrap();
    let mut ps_pairs: Vec<(i64, i64)> = Vec::new();
    for p in 0..n_part {
        for k in 0..4 {
            let s = (p + k * 7) % n_supp.max(1);
            ps_pairs.push((p, s));
            inst.insert(
                partsupps,
                vec![
                    Value::int(p),
                    Value::int(s),
                    Value::int(1 + (p + k) % 9999),
                    Value::int(100 + (p * 3 + k) % 900),
                    Value::str(format!("psc{p}x{k}")),
                ],
            );
        }
    }

    let orders = inst.root_id("orders").unwrap();
    let lineitems = inst.root_id("lineitem").unwrap();
    let priorities = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
    let modes = ["TRUCK", "MAIL", "SHIP", "AIR", "RAIL", "FOB", "REG AIR"];
    let instructs = [
        "DELIVER IN PERSON",
        "COLLECT COD",
        "TAKE BACK RETURN",
        "NONE",
    ];
    let n_orders = scaled(8_000, scale, 3) as i64;
    for o in 0..n_orders {
        let date = format!("199{}-{:02}-{:02}", o % 8, 1 + o % 12, 1 + o % 28);
        inst.insert(
            orders,
            vec![
                Value::int(o),
                Value::int(o % n_cust),
                Value::str(if o % 2 == 0 { "O" } else { "F" }),
                Value::int(1000 + (o * 37) % 400000),
                Value::str(&date),
                Value::str(priorities[(o as usize) % priorities.len()]),
                Value::str(format!("Clerk#{:09}", o % 1000)),
                Value::int(0),
                Value::str(format!("oc{o}")),
            ],
        );
        for ln in 0..(1 + (g.range(0, 5))) {
            let (p, s) = ps_pairs[((o * 11 + ln * 3) as usize) % ps_pairs.len()];
            inst.insert(
                lineitems,
                vec![
                    Value::int(o),
                    Value::int(p),
                    Value::int(s),
                    Value::int(ln),
                    Value::int(1 + (o + ln) % 50),
                    Value::int(1000 + (o * 91 + ln * 17) % 90000),
                    Value::int((o + ln) % 11),
                    Value::int((o + 2 * ln) % 9),
                    Value::str(if (o + ln) % 4 == 0 { "R" } else { "N" }),
                    Value::str(if o % 2 == 0 { "O" } else { "F" }),
                    Value::str(&date),
                    Value::str(format!("199{}-{:02}-15", o % 8, 1 + (o + 1) % 12)),
                    Value::str(format!("199{}-{:02}-20", o % 8, 1 + (o + 1) % 12)),
                    Value::str(instructs[((o + ln) as usize) % instructs.len()]),
                    Value::str(modes[((o + ln) as usize) % modes.len()]),
                    Value::str(format!("lc{o}x{ln}")),
                ],
            );
        }
    }

    inst
}

/// The TPC-H scenario.
pub fn scenario() -> Scenario {
    Scenario {
        name: "TPCH".into(),
        source_schema: source_schema(),
        source_constraints: source_constraints(),
        target_schema: target_schema(),
        target_constraints: Constraints::none(),
        correspondences: correspondences(),
        default_scale: 2.2,
        generator: std::sync::Arc::new(generate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_mapping::ambiguity::or_groups;

    #[test]
    fn profile_matches_the_paper() {
        let s = scenario();
        // Customers, Orders, Lineitems, Suppliers: 4 grouped sets.
        assert_eq!(s.target_sets_with_grouping(), 4);
        let ms = s.mappings().unwrap();
        assert_eq!(
            ms.len(),
            5,
            "{:?}",
            ms.iter().map(|m| &m.name).collect::<Vec<_>>()
        );
        let ambiguous: Vec<_> = ms.iter().filter(|m| m.is_ambiguous()).collect();
        assert_eq!(ambiguous.len(), 1);
        let alts: usize = or_groups(ambiguous[0])
            .iter()
            .map(|(_, a)| a.len().max(1))
            .product();
        assert_eq!(alts, 16);
    }

    #[test]
    fn lineitem_mapping_joins_both_sides() {
        let s = scenario();
        let ms = s.mappings().unwrap();
        let li = ms.iter().find(|m| m.is_ambiguous()).unwrap();
        // The closed for-clause spans lineitem + both FK chains:
        // 10 variables (lineitem, orders, customer, nation, region,
        // partsupp, part, supplier, nation, region).
        assert_eq!(li.source_vars.len(), 10);
        // poss(m, SK) on this mapping is the paper-scale 68 references.
        let poss = muse_mapping::poss::all_source_refs(li, &s.source_schema).unwrap();
        assert_eq!(poss.len(), 68);
    }

    #[test]
    fn instance_has_paper_size_at_default_scale() {
        let s = scenario();
        let inst = s.instance_default(1);
        let mb = inst.approx_bytes() as f64 / 1_000_000.0;
        assert!((6.0..16.0).contains(&mb), "got {mb} MB");
    }

    #[test]
    fn generated_instance_satisfies_constraints() {
        let s = scenario();
        let inst = s.instance(0.02, 3);
        inst.validate(&s.source_schema).unwrap();
        s.source_constraints
            .validate_instance(&s.source_schema, &inst)
            .unwrap();
    }
}
