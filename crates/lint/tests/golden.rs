//! Golden-diagnostic tests: the analyzer's full JSON report for each of the
//! four evaluation scenarios, diffed byte-for-byte against the committed
//! files in `tests/golden/`. Any change to a pass — new codes, reworded
//! messages, different ordering — shows up as a readable diff here.
//!
//! Regenerate after an *intended* change with:
//!
//! ```text
//! MUSE_BLESS=1 cargo test -p muse-lint --test golden
//! ```

use std::path::PathBuf;

use muse_lint::{lint, LintInput};
use muse_scenarios::Scenario;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Diff `actual` against the committed golden file, or rewrite the file
/// when `MUSE_BLESS` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("MUSE_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {} ({e}); run with MUSE_BLESS=1 to create it",
            path.display()
        )
    });
    if actual != expected {
        let line = actual
            .lines()
            .zip(expected.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or_else(|| actual.lines().count().min(expected.lines().count()) + 1);
        panic!(
            "{name} diverges from its golden file at line {line}; \
             rerun with MUSE_BLESS=1 if the change is intended.\n\
             --- actual line ---\n{}\n--- expected line ---\n{}",
            actual.lines().nth(line - 1).unwrap_or("<eof>"),
            expected.lines().nth(line - 1).unwrap_or("<eof>"),
        );
    }
}

fn check(scenario: &Scenario) {
    let mappings = scenario.mappings().expect("scenario mappings generate");
    let input = LintInput {
        source_schema: &scenario.source_schema,
        source_constraints: &scenario.source_constraints,
        target_schema: &scenario.target_schema,
        target_constraints: &scenario.target_constraints,
        mappings: &mappings,
    };
    let report = lint(&input);
    assert!(
        report.is_clean(),
        "{} has lint errors:\n{}",
        scenario.name,
        report.render()
    );
    let name = format!("{}.json", scenario.name.to_ascii_lowercase());
    assert_golden(&name, &(report.to_json().render_pretty() + "\n"));
}

fn scenario(name: &str) -> Scenario {
    muse_scenarios::all_scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no scenario named {name}"))
}

#[test]
fn mondial_diagnostics_are_stable() {
    check(&scenario("Mondial"));
}

#[test]
fn dblp_diagnostics_are_stable() {
    check(&scenario("DBLP"));
}

#[test]
fn tpch_diagnostics_are_stable() {
    check(&scenario("TPCH"));
}

#[test]
fn amalgam_diagnostics_are_stable() {
    check(&scenario("Amalgam"));
}
