//! Pass 1 — well-formedness of the mappings against the two schemas.
//!
//! Codes:
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | `MUSE-W001` | error | variable bound to a set the schema doesn't have |
//! | `MUSE-W002` | error | nested variable whose parent binding is inconsistent |
//! | `MUSE-W003` | error | dangling reference: unknown variable or unknown/non-atomic attribute |
//! | `MUSE-W004` | error | type-incompatible equality (`Int` = `Str`) |
//! | `MUSE-W005` | warning | source variable that constrains nothing |
//! | `MUSE-W006` | warning | duplicate clause (same atom twice) |
//! | `MUSE-W007` | error | two `where` clauses assign the same target attribute |
//! | `MUSE-W008` | warning | degenerate `or`-group (fewer than two distinct alternatives) |

use std::collections::BTreeMap;

use muse_mapping::{Mapping, MappingVar, PathRef, WhereClause};
use muse_nr::{Schema, Ty};

use crate::diag::Diagnostic;
use crate::LintInput;

/// Run the pass over every mapping.
pub fn check(input: &LintInput, out: &mut Vec<Diagnostic>) {
    for m in input.mappings {
        check_mapping(m, input.source_schema, input.target_schema, out);
    }
}

/// Which variable space a reference lives in (the two index spaces are
/// independent).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Space {
    Source,
    Target,
}

impl Space {
    fn vars(self, m: &Mapping) -> &[MappingVar] {
        match self {
            Space::Source => &m.source_vars,
            Space::Target => &m.target_vars,
        }
    }

    fn schema<'a>(self, source: &'a Schema, target: &'a Schema) -> &'a Schema {
        match self {
            Space::Source => source,
            Space::Target => target,
        }
    }
}

fn check_mapping(m: &Mapping, source: &Schema, target: &Schema, out: &mut Vec<Diagnostic>) {
    check_vars(m, Space::Source, source, target, out);
    check_vars(m, Space::Target, source, target, out);
    check_refs(m, source, target, out);
    check_all_eq_types(m, source, target, out);
    check_unused_source_vars(m, out);
    check_duplicates(m, out);
    check_target_assignments(m, out);
}

/// W001 + W002: every variable binds an existing set, and nested bindings
/// agree with the parent variable's set.
fn check_vars(
    m: &Mapping,
    space: Space,
    source: &Schema,
    target: &Schema,
    out: &mut Vec<Diagnostic>,
) {
    let vars = space.vars(m);
    let schema = space.schema(source, target);
    for v in vars {
        let path = format!("mappings/{}/for/{}", m.name, v.name);
        if !schema.has_set(&v.set) {
            out.push(
                Diagnostic::error(
                    "MUSE-W001",
                    path.clone(),
                    format!(
                        "variable {} ranges over {}, which schema {} does not define",
                        v.name, v.set, schema.name
                    ),
                )
                .with_suggestion(format!(
                    "known sets: {}",
                    schema
                        .set_paths_bfs()
                        .iter()
                        .map(|p| p.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                )),
            );
            continue;
        }
        if let Some((parent_idx, field)) = &v.parent {
            let ok = vars
                .get(*parent_idx)
                .is_some_and(|p| p.set.child(field.clone()) == v.set);
            if !ok {
                out.push(Diagnostic::error(
                    "MUSE-W002",
                    path,
                    format!(
                        "variable {} claims to range over field {} of its parent, \
                         but the parent binding does not produce {}",
                        v.name, field, v.set
                    ),
                ));
            }
        }
    }
}

/// The atomic type of `set.attr`, if the attribute exists and is atomic.
fn atomic_ty<'a>(schema: &'a Schema, var: &MappingVar, attr: &str) -> Option<&'a Ty> {
    let rcd = schema.element_record(&var.set).ok()?;
    let ty = &rcd.field(attr)?.ty;
    ty.is_atomic().then_some(ty)
}

/// All references of the mapping, with the path of the clause that holds
/// them and their space.
fn all_refs(m: &Mapping) -> Vec<(String, Space, &PathRef)> {
    let mut refs = Vec::new();
    for (i, (a, b)) in m.source_eqs.iter().enumerate() {
        let p = format!("mappings/{}/satisfy/source[{}]", m.name, i);
        refs.push((p.clone(), Space::Source, a));
        refs.push((p, Space::Source, b));
    }
    for (i, (a, b)) in m.target_eqs.iter().enumerate() {
        let p = format!("mappings/{}/satisfy/target[{}]", m.name, i);
        refs.push((p.clone(), Space::Target, a));
        refs.push((p, Space::Target, b));
    }
    for (i, w) in m.wheres.iter().enumerate() {
        let p = format!("mappings/{}/where[{}]", m.name, i);
        match w {
            WhereClause::Eq { source, target } => {
                refs.push((p.clone(), Space::Source, source));
                refs.push((p, Space::Target, target));
            }
            WhereClause::OrGroup {
                target,
                alternatives,
            } => {
                refs.push((p.clone(), Space::Target, target));
                for alt in alternatives {
                    refs.push((p.clone(), Space::Source, alt));
                }
            }
        }
    }
    for (set, g) in &m.groupings {
        let p = format!("mappings/{}/group/{}", m.name, set);
        for arg in &g.args {
            refs.push((p.clone(), Space::Source, arg));
        }
    }
    refs
}

/// W003: every reference resolves to an atomic attribute of a bound
/// variable's set.
fn check_refs(m: &Mapping, source: &Schema, target: &Schema, out: &mut Vec<Diagnostic>) {
    for (path, space, r) in all_refs(m) {
        if path.contains("/group/") {
            continue; // grouping arguments are pass 4's territory (MUSE-G003)
        }
        let vars = space.vars(m);
        let Some(v) = vars.get(r.var) else {
            out.push(Diagnostic::error(
                "MUSE-W003",
                path,
                format!(
                    "reference .{} names variable #{}, but the mapping binds only {} \
                     variables in that space",
                    r.attr,
                    r.var,
                    vars.len()
                ),
            ));
            continue;
        };
        let schema = space.schema(source, target);
        if !schema.has_set(&v.set) {
            continue; // already reported as MUSE-W001
        }
        if atomic_ty(schema, v, &r.attr).is_none() {
            out.push(
                Diagnostic::error(
                    "MUSE-W003",
                    path,
                    format!(
                        "{}.{} is not an atomic attribute of {}",
                        v.name, r.attr, v.set
                    ),
                )
                .with_suggestion(format!(
                    "atomic attributes of {}: {}",
                    v.set,
                    schema
                        .element_record(&v.set)
                        .map(|rcd| rcd.atomic_labels().join(", "))
                        .unwrap_or_default()
                )),
            );
        }
    }
}

/// W004: equalities must connect same-typed atoms. Checked for
/// source/target `satisfy` equalities and every `where` correspondence
/// (including each alternative of an `or`-group).
fn check_eq_types(
    m: &Mapping,
    path: &str,
    a: (Space, &PathRef),
    b: (Space, &PathRef),
    source: &Schema,
    target: &Schema,
    out: &mut Vec<Diagnostic>,
) {
    let ty_of = |(space, r): (Space, &PathRef)| -> Option<(&Ty, String)> {
        let v = space.vars(m).get(r.var)?;
        let ty = atomic_ty(space.schema(source, target), v, &r.attr)?;
        Some((ty, format!("{}.{}", v.name, r.attr)))
    };
    let (Some((ta, na)), Some((tb, nb))) = (ty_of(a), ty_of(b)) else {
        return; // unresolved refs were reported by MUSE-W003
    };
    if ta != tb {
        out.push(Diagnostic::error(
            "MUSE-W004",
            path.to_string(),
            format!("equality {na} = {nb} relates incompatible types {ta:?} and {tb:?}"),
        ));
    }
}

fn check_unused_source_vars(m: &Mapping, out: &mut Vec<Diagnostic>) {
    let mut used = vec![false; m.source_vars.len()];
    for (_, space, r) in all_refs(m) {
        if space == Space::Source {
            if let Some(u) = used.get_mut(r.var) {
                *u = true;
            }
        }
    }
    // A variable that only exists to parent another bound variable is used.
    for v in &m.source_vars {
        if let Some((parent, _)) = &v.parent {
            if let Some(u) = used.get_mut(*parent) {
                *u = true;
            }
        }
    }
    for (i, v) in m.source_vars.iter().enumerate() {
        if !used[i] {
            out.push(
                Diagnostic::warning(
                    "MUSE-W005",
                    format!("mappings/{}/for/{}", m.name, v.name),
                    format!(
                        "source variable {} over {} constrains nothing: no equality, \
                         correspondence or grouping argument mentions it",
                        v.name, v.set
                    ),
                )
                .with_suggestion("remove the variable or join it to the rest of the mapping"),
            );
        }
    }
}

/// W006 + W008: duplicate atoms and degenerate `or`-groups.
fn check_duplicates(m: &Mapping, out: &mut Vec<Diagnostic>) {
    let mut seen_src: BTreeMap<(PathRef, PathRef), usize> = BTreeMap::new();
    for (i, (a, b)) in m.source_eqs.iter().enumerate() {
        let key = if a <= b {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        };
        if let Some(first) = seen_src.insert(key, i) {
            out.push(Diagnostic::warning(
                "MUSE-W006",
                format!("mappings/{}/satisfy/source[{}]", m.name, i),
                format!("duplicate source equality (same atom as satisfy/source[{first}])"),
            ));
        }
    }
    let mut seen_where: BTreeMap<String, usize> = BTreeMap::new();
    for (i, w) in m.wheres.iter().enumerate() {
        if let Some(first) = seen_where.insert(format!("{w:?}"), i) {
            out.push(Diagnostic::warning(
                "MUSE-W006",
                format!("mappings/{}/where[{}]", m.name, i),
                format!("duplicate where clause (same atom as where[{first}])"),
            ));
        }
        if let WhereClause::OrGroup { alternatives, .. } = w {
            let mut distinct = alternatives.clone();
            distinct.sort();
            distinct.dedup();
            if distinct.len() < 2 {
                out.push(
                    Diagnostic::warning(
                        "MUSE-W008",
                        format!("mappings/{}/where[{}]", m.name, i),
                        format!(
                            "or-group with {} distinct alternative(s) is not a real choice",
                            distinct.len()
                        ),
                    )
                    .with_suggestion("collapse it to a plain correspondence"),
                );
            }
        }
    }
}

/// W007: at most one `where` clause may assign a given target attribute.
fn check_target_assignments(m: &Mapping, out: &mut Vec<Diagnostic>) {
    let mut seen: BTreeMap<&PathRef, usize> = BTreeMap::new();
    for (i, w) in m.wheres.iter().enumerate() {
        if let Some(first) = seen.insert(w.target(), i) {
            let t = w.target();
            let name = m
                .target_vars
                .get(t.var)
                .map(|v| format!("{}.{}", v.name, t.attr))
                .unwrap_or_else(|| format!("#{}.{}", t.var, t.attr));
            out.push(
                Diagnostic::error(
                    "MUSE-W007",
                    format!("mappings/{}/where[{}]", m.name, i),
                    format!("target attribute {name} is already assigned by where[{first}]"),
                )
                .with_suggestion(
                    "merge the clauses into one or-group if both sources are intended",
                ),
            );
        }
    }
}

/// Hook for W004 over every equality-shaped clause. Separated from
/// [`check_refs`] so each equality is reported once, on its own path.
fn check_all_eq_types(m: &Mapping, source: &Schema, target: &Schema, out: &mut Vec<Diagnostic>) {
    for (i, (a, b)) in m.source_eqs.iter().enumerate() {
        let p = format!("mappings/{}/satisfy/source[{}]", m.name, i);
        check_eq_types(
            m,
            &p,
            (Space::Source, a),
            (Space::Source, b),
            source,
            target,
            out,
        );
    }
    for (i, (a, b)) in m.target_eqs.iter().enumerate() {
        let p = format!("mappings/{}/satisfy/target[{}]", m.name, i);
        check_eq_types(
            m,
            &p,
            (Space::Target, a),
            (Space::Target, b),
            source,
            target,
            out,
        );
    }
    for (i, w) in m.wheres.iter().enumerate() {
        let p = format!("mappings/{}/where[{}]", m.name, i);
        match w {
            WhereClause::Eq {
                source: s,
                target: t,
            } => {
                check_eq_types(
                    m,
                    &p,
                    (Space::Source, s),
                    (Space::Target, t),
                    source,
                    target,
                    out,
                );
            }
            WhereClause::OrGroup {
                target: t,
                alternatives,
            } => {
                for alt in alternatives {
                    check_eq_types(
                        m,
                        &p,
                        (Space::Source, alt),
                        (Space::Target, t),
                        source,
                        target,
                        out,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{self, OwnedInput};
    use muse_nr::SetPath;

    fn diags_for(m: Mapping) -> Vec<Diagnostic> {
        let owned = OwnedInput::fig1(vec![m]);
        let input = owned.as_input();
        let mut out = Vec::new();
        check(&input, &mut out);
        out
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_mapping_has_no_findings() {
        assert!(diags_for(fixtures::m2()).is_empty());
    }

    #[test]
    fn unknown_set_is_w001() {
        let mut m = fixtures::m2();
        m.source_vars[0].set = SetPath::parse("Nowhere");
        let diags = diags_for(m);
        assert!(codes(&diags).contains(&"MUSE-W001"), "{diags:?}");
    }

    #[test]
    fn bad_parent_binding_is_w002() {
        let mut m = fixtures::m2();
        // p1 ranges over Orgs.Projects via o; repoint its set elsewhere.
        let p1 = m
            .target_vars
            .iter()
            .position(|v| v.name == "p1")
            .expect("fixture has p1");
        m.target_vars[p1].set = SetPath::parse("Employees");
        let diags = diags_for(m);
        assert!(codes(&diags).contains(&"MUSE-W002"), "{diags:?}");
    }

    #[test]
    fn dangling_attr_is_w003() {
        let mut m = fixtures::m2();
        m.where_eq(PathRef::new(0, "no_such_attr"), PathRef::new(0, "oname"));
        let diags = diags_for(m);
        assert!(codes(&diags).contains(&"MUSE-W003"), "{diags:?}");
    }

    #[test]
    fn out_of_range_var_is_w003() {
        let mut m = fixtures::m2();
        m.where_eq(PathRef::new(99, "cname"), PathRef::new(0, "oname"));
        let diags = diags_for(m);
        assert!(codes(&diags).contains(&"MUSE-W003"), "{diags:?}");
    }

    #[test]
    fn int_str_equality_is_w004() {
        let mut m = fixtures::m2();
        // Companies.cid is Int; Orgs.oname is Str.
        m.where_eq(PathRef::new(0, "cid"), PathRef::new(0, "oname"));
        let diags = diags_for(m);
        assert!(codes(&diags).contains(&"MUSE-W004"), "{diags:?}");
    }

    #[test]
    fn unused_source_var_is_w005() {
        let mut m = fixtures::m2();
        m.source_var("zzz", SetPath::parse("Employees"));
        let diags = diags_for(m);
        let w5: Vec<_> = diags.iter().filter(|d| d.code == "MUSE-W005").collect();
        assert_eq!(w5.len(), 1, "{diags:?}");
        assert!(w5[0].path.ends_with("/for/zzz"));
    }

    #[test]
    fn duplicate_where_clause_is_w006() {
        let mut m = fixtures::m2();
        m.where_eq(PathRef::new(0, "cname"), PathRef::new(0, "oname"));
        let diags = diags_for(m);
        // The duplicated clause also re-assigns o.oname → W007 fires too.
        assert!(codes(&diags).contains(&"MUSE-W006"), "{diags:?}");
        assert!(codes(&diags).contains(&"MUSE-W007"), "{diags:?}");
    }

    #[test]
    fn conflicting_assignment_is_w007() {
        let mut m = fixtures::m2();
        // location also claims o.oname, with a different source.
        m.where_eq(PathRef::new(0, "location"), PathRef::new(0, "oname"));
        let diags = diags_for(m);
        assert!(codes(&diags).contains(&"MUSE-W007"), "{diags:?}");
        assert!(!codes(&diags).contains(&"MUSE-W006"), "{diags:?}");
    }

    #[test]
    fn degenerate_or_group_is_w008() {
        let mut m = fixtures::m2();
        m.or_group(
            PathRef::new(2, "ename"),
            vec![PathRef::new(2, "ename"), PathRef::new(2, "ename")],
        );
        let diags = diags_for(m);
        assert!(codes(&diags).contains(&"MUSE-W008"), "{diags:?}");
    }
}
