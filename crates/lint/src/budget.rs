//! Static Muse-G question budgets (`MUSE-A003`/`A004`/`A005`).
//!
//! Muse-G (paper Sec. III) designs one grouping function per nested target
//! set by probing attributes of `poss(m, SK)` with yes/no data examples,
//! pruning with the source keys/FDs: equality classes collapse to one
//! representative, candidate keys short-circuit the probe order
//! (Cor. 3.3), and FD-implied attributes are skipped (Thm. 3.2). This
//! module replays that accounting *statically* — no instance, no designer —
//! to bound the number of questions before a session starts:
//!
//! * **single candidate key** — the wizard probes the key's classes first.
//!   Accepting them all closes the probe early (lower bound = |key|);
//!   rejecting everything walks every class (upper bound = #classes).
//! * **multiple candidate keys** — one scenario question decides key vs.
//!   non-key grouping (lower bound = 1); the non-key branch then probes
//!   every non-key class (upper bound = 1 + #non-key classes).
//!
//! The same analysis statically predicts the two wizard failure modes:
//! `poss` wider than the 128-bit FD engine (`MUSE-A004` ↔
//! `WizardError::TooManyAttributes`) and non-key attributes determining
//! key attributes in the multi-key case (`MUSE-A005` ↔
//! `WizardError::UnsupportedGrouping`).
//!
//! The class/FD structure here deliberately mirrors the wizard's
//! `ClassSpace` (`muse-wizard` depends on this crate, so the replica lives
//! on this side); `tests/lint_property.rs` in the root suite
//! pins the two together.

use std::collections::BTreeMap;

use muse_mapping::poss::all_source_refs;
use muse_mapping::{Mapping, PathRef};
use muse_nr::constraints::fdset::{all_attrs, attrs, iter_attrs, AttrSet, FdSet};
use muse_nr::{Constraints, Schema, SetPath};

use crate::diag::Diagnostic;
use crate::LintInput;

/// Why a budget could not be computed — each variant maps to the
/// `WizardError` the session would die with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetIssue {
    /// `poss` has more than 128 references (`WizardError::TooManyAttributes`).
    TooManyAttributes(usize),
    /// Non-key attributes functionally determine key attributes
    /// (`WizardError::UnsupportedGrouping`).
    NonKeyDeterminesKey,
    /// A source variable's set is unknown — reported by pass 1 already.
    UnresolvedMapping,
}

/// The static question budget of one mapping (identical for every nested
/// set the mapping fills: `poss` spans the whole `for` clause).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuestionBudget {
    /// |poss(m, ·)|.
    pub poss_size: usize,
    /// Number of equality classes (probe candidates after class pruning).
    pub classes: usize,
    /// Number of canonical candidate keys of the poss FD engine.
    pub candidate_keys: usize,
    /// Fewest questions any designer-answer sequence can take.
    pub lower: usize,
    /// Most questions any designer-answer sequence can take.
    pub upper: usize,
}

/// The class/FD structure of one mapping's source side: `poss`, the
/// equality classes the `satisfy` clause induces, and the FD engine over
/// poss indices. A designer-free replica of the wizard's `ClassSpace`.
pub(crate) struct PossSpace {
    /// `poss(m, ·)` in canonical order.
    pub poss: Vec<PathRef>,
    /// Class representative per poss index.
    pub rep: Vec<usize>,
    /// Per-variable keys/FDs plus equality classes as two-way FDs.
    pub fdset: FdSet,
}

impl PossSpace {
    /// Index of a reference in `poss`.
    pub fn index_of(&self, r: &PathRef) -> Option<usize> {
        self.poss.iter().position(|p| p == r)
    }
}

/// Compute the Muse-G question budget for `m`.
pub fn question_budget(
    m: &Mapping,
    source_schema: &Schema,
    cons: &Constraints,
) -> Result<QuestionBudget, BudgetIssue> {
    let space = poss_space(m, source_schema, cons)?;
    let n = space.poss.len();
    if n == 0 {
        return Ok(QuestionBudget {
            poss_size: 0,
            classes: 0,
            candidate_keys: 0,
            lower: 0,
            upper: 0,
        });
    }
    let rep = &space.rep;
    let fdset = &space.fdset;

    let reps: Vec<usize> = (0..n).filter(|&i| rep[i] == i).collect();

    // Candidate keys canonicalized to class representatives, de-duplicated
    // — the wizard's `canonical_keys`.
    let keys: Vec<AttrSet> = {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for key in fdset.candidate_keys() {
            let canon: AttrSet = iter_attrs(key)
                .map(|i| attrs([rep[i]]))
                .fold(0, |a, b| a | b);
            if seen.insert(canon) {
                out.push(canon);
            }
        }
        out
    };

    let (lower, upper) = if keys.len() == 1 {
        // Cor. 3.3: probe the key classes first. All-yes answers close the
        // probe as soon as the key is chosen; all-no answers walk every
        // class.
        (iter_attrs(keys[0]).count(), reps.len())
    } else {
        // One scenario question decides key vs. non-key grouping; the
        // non-key branch probes each non-key class.
        let union_keys: AttrSet = keys.iter().fold(0, |a, k| a | k);
        let non_key = all_attrs(n) & !union_keys;
        if fdset.closure(non_key) & union_keys != 0 {
            return Err(BudgetIssue::NonKeyDeterminesKey);
        }
        let non_key_reps = reps.iter().filter(|&&i| non_key & attrs([i]) != 0).count();
        (1, 1 + non_key_reps)
    };

    Ok(QuestionBudget {
        poss_size: n,
        classes: reps.len(),
        candidate_keys: keys.len(),
        lower,
        upper,
    })
}

/// Build the [`PossSpace`] of `m` — the shared substrate of the question
/// budget (`MUSE-A003`) and the grouping-redundancy check (`MUSE-G005`).
pub(crate) fn poss_space(
    m: &Mapping,
    source_schema: &Schema,
    cons: &Constraints,
) -> Result<PossSpace, BudgetIssue> {
    let Ok(poss) = all_source_refs(m, source_schema) else {
        return Err(BudgetIssue::UnresolvedMapping);
    };
    let n = poss.len();
    if n > 128 {
        return Err(BudgetIssue::TooManyAttributes(n));
    }

    let mut index: BTreeMap<(usize, &str), usize> = BTreeMap::new();
    for (i, r) in poss.iter().enumerate() {
        index.insert((r.var, r.attr.as_str()), i);
    }
    let idx_of = |r: &PathRef| index.get(&(r.var, r.attr.as_str())).copied();

    // Union-find over poss indices, seeded by the satisfy equalities —
    // same structure as the wizard's ClassSpace.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    fn union(parent: &mut [usize], a: usize, b: usize) {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            parent[hi] = lo;
        }
    }
    for (a, b) in &m.source_eqs {
        if let (Some(ia), Some(ib)) = (idx_of(a), idx_of(b)) {
            union(&mut parent, ia, ib);
        }
    }

    // Per-set FDs (keys expanded to key → all attributes).
    type SetFds = Vec<(Vec<String>, Vec<String>)>;
    let mut per_set_fds: BTreeMap<&SetPath, SetFds> = BTreeMap::new();
    for v in &m.source_vars {
        if !per_set_fds.contains_key(&v.set) {
            let Ok(fds) = cons.all_fds_of(source_schema, &v.set) else {
                return Err(BudgetIssue::UnresolvedMapping);
            };
            per_set_fds.insert(&v.set, fds.into_iter().map(|f| (f.lhs, f.rhs)).collect());
        }
    }

    // Inter-variable FD propagation: two variables over one set whose FD
    // determinants are class-aligned must have the determined attributes
    // merged too.
    loop {
        let mut changed = false;
        for (vi, v) in m.source_vars.iter().enumerate() {
            for (wi, w) in m.source_vars.iter().enumerate() {
                if vi == wi || v.set != w.set {
                    continue;
                }
                for (lhs, rhs) in &per_set_fds[&v.set] {
                    let aligned = lhs.iter().all(|a| {
                        match (
                            idx_of(&PathRef::new(vi, a.clone())),
                            idx_of(&PathRef::new(wi, a.clone())),
                        ) {
                            (Some(x), Some(y)) => find(&mut parent, x) == find(&mut parent, y),
                            _ => false,
                        }
                    });
                    if !aligned {
                        continue;
                    }
                    for r in rhs {
                        if let (Some(x), Some(y)) = (
                            idx_of(&PathRef::new(vi, r.clone())),
                            idx_of(&PathRef::new(wi, r.clone())),
                        ) {
                            if find(&mut parent, x) != find(&mut parent, y) {
                                union(&mut parent, x, y);
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let rep: Vec<usize> = (0..n).map(|i| find(&mut parent, i)).collect();

    // FD engine: per-variable FDs plus the equality classes as two-way FDs.
    let mut fdset = FdSet::new(n);
    for (vi, v) in m.source_vars.iter().enumerate() {
        for (lhs, rhs) in &per_set_fds[&v.set] {
            let l: Vec<usize> = lhs
                .iter()
                .filter_map(|a| idx_of(&PathRef::new(vi, a.clone())))
                .collect();
            let r: Vec<usize> = rhs
                .iter()
                .filter_map(|a| idx_of(&PathRef::new(vi, a.clone())))
                .collect();
            if l.len() == lhs.len() && !r.is_empty() {
                fdset.add(attrs(l), attrs(r));
            }
        }
    }
    for (i, &r) in rep.iter().enumerate() {
        if r != i {
            fdset.add(attrs([i]), attrs([r]));
            fdset.add(attrs([r]), attrs([i]));
        }
    }

    Ok(PossSpace { poss, rep, fdset })
}

/// Emit A003/A004/A005 for one mapping.
pub(crate) fn check(m: &Mapping, input: &LintInput, out: &mut Vec<Diagnostic>) {
    let budget = match question_budget(m, input.source_schema, input.source_constraints) {
        Ok(b) => b,
        Err(BudgetIssue::TooManyAttributes(n)) => {
            out.push(
                Diagnostic::error(
                    "MUSE-A004",
                    format!("mappings/{}", m.name),
                    format!(
                        "poss(m, ·) has {n} source attribute references; the wizards' FD \
                         engine caps at 128 (the session would fail with TooManyAttributes)"
                    ),
                )
                .with_suggestion("split the mapping or drop unused source variables"),
            );
            return;
        }
        Err(BudgetIssue::NonKeyDeterminesKey) => {
            out.push(
                Diagnostic::error(
                    "MUSE-A005",
                    format!("mappings/{}", m.name),
                    "non-key source attributes functionally determine key attributes; \
                     Muse-G cannot build key-valid probe examples (UnsupportedGrouping)"
                        .to_string(),
                )
                .with_suggestion(
                    "revisit the declared FDs: a determinant of a key attribute \
                                  should itself be part of a key",
                ),
            );
            return;
        }
        // The source side doesn't resolve; pass 1 reported it.
        Err(BudgetIssue::UnresolvedMapping) => return,
    };
    let Ok(filled) = m.filled_target_sets(input.target_schema) else {
        return; // unresolved target side; pass 1 reported it
    };
    for sk in filled {
        out.push(Diagnostic::info(
            "MUSE-A003",
            format!("mappings/{}/group/{}", m.name, sk),
            format!(
                "Muse-G will ask between {} and {} question(s) to design the grouping of {} \
                 ({} poss references in {} equality classes, {} candidate key(s))",
                budget.lower,
                budget.upper,
                sk,
                budget.poss_size,
                budget.classes,
                budget.candidate_keys
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{self, OwnedInput};
    use muse_nr::Key;

    #[test]
    fn fig1_budget_matches_the_paper() {
        // m2: 10 poss references; key(Companies.cid) is the single
        // candidate key; classes: p.cid≡c.cid and e.eid≡p.manager merge.
        let b = question_budget(
            &fixtures::m2(),
            &fixtures::compdb(),
            &fixtures::compdb_constraints(),
        )
        .expect("budget computes");
        assert_eq!(b.poss_size, 10);
        assert_eq!(b.classes, 8);
        assert_eq!(b.candidate_keys, 1);
        // The key spans 6 classes (cid determines cname and location);
        // all-no answers probe all 8 classes.
        assert_eq!(b.lower, 6);
        assert_eq!(b.upper, 8);
    }

    #[test]
    fn no_constraints_means_every_class_is_a_key_question() {
        let b = question_budget(&fixtures::m2(), &fixtures::compdb(), &Constraints::none())
            .expect("budget computes");
        // Sole candidate key = all 8 classes.
        assert_eq!(b.candidate_keys, 1);
        assert_eq!(b.lower, 8);
        assert_eq!(b.upper, 8);
    }

    #[test]
    fn multi_key_budget_is_one_to_one_plus_non_key() {
        // One variable over Companies with two declared candidate keys:
        // one scenario question, then (at worst) the sole non-key class.
        let mut m = Mapping::new("m_companies");
        m.source_var("c", SetPath::parse("Companies"));
        let mut cons = Constraints::none();
        cons.keys
            .push(Key::new(SetPath::parse("Companies"), vec!["cid"]));
        cons.keys
            .push(Key::new(SetPath::parse("Companies"), vec!["cname"]));
        let b = question_budget(&m, &fixtures::compdb(), &cons).expect("budget computes");
        assert_eq!(b.candidate_keys, 2);
        assert_eq!(b.lower, 1);
        assert_eq!(b.upper, 2);
    }

    #[test]
    fn class_member_determining_a_key_is_a005() {
        // Two candidate keys on Companies *and* a second variable equated
        // with c.cid: the non-rep class member functionally determines a
        // key attribute, which Muse-G rejects as UnsupportedGrouping.
        let mut m = Mapping::new("m_pair");
        let c = m.source_var("c", SetPath::parse("Companies"));
        let p = m.source_var("p", SetPath::parse("Projects"));
        m.source_eq(
            muse_mapping::PathRef::new(p, "cid"),
            muse_mapping::PathRef::new(c, "cid"),
        );
        let mut cons = fixtures::compdb_constraints();
        cons.keys
            .push(Key::new(SetPath::parse("Companies"), vec!["cname"]));
        assert_eq!(
            question_budget(&m, &fixtures::compdb(), &cons),
            Err(BudgetIssue::NonKeyDeterminesKey)
        );
    }

    #[test]
    fn a003_emitted_per_filled_set() {
        let owned = OwnedInput::fig1(vec![fixtures::m2()]);
        let input = owned.as_input();
        let mut out = Vec::new();
        check(&fixtures::m2(), &input, &mut out);
        let a3: Vec<_> = out.iter().filter(|d| d.code == "MUSE-A003").collect();
        assert_eq!(a3.len(), 1, "{out:?}");
        assert!(a3[0].path.ends_with("/group/Orgs.Projects"));
    }

    #[test]
    fn empty_mapping_budget_is_zero() {
        let m = Mapping::new("empty");
        let b = question_budget(&m, &fixtures::compdb(), &Constraints::none())
            .expect("budget computes");
        assert_eq!((b.lower, b.upper), (0, 0));
    }
}
