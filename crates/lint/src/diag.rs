//! The diagnostic model: codes, severities, and the stable JSON form.
//!
//! Every finding of the analyzer is a [`Diagnostic`] — a stable machine
//! code, a severity, a slash-separated *path* locating the finding inside
//! the `(schemas, constraints, mappings)` bundle, a human message, and an
//! optional suggestion. The JSON rendering is part of the tool's contract:
//! golden tests pin it, and `muse lint --json` emits it for scripting.

use muse_obs::Json;

/// How bad a finding is.
///
/// `Error` findings make the bundle unusable (the chase or a wizard would
/// fail or silently misbehave); `Warning` findings are suspicious but
/// runnable; `Info` findings are analysis results (ambiguity counts,
/// question budgets) with no judgement attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Analysis output, not a defect.
    Info,
    /// Suspicious but not fatal.
    Warning,
    /// The bundle is defective.
    Error,
}

impl Severity {
    /// Stable lowercase name used in JSON and the human renderer.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine code, e.g. `MUSE-W003` (see DESIGN.md for the table).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Where the finding lives, e.g. `mappings/m2/where[1]` or
    /// `constraints/source/fd[0]`.
    pub path: String,
    /// Human-readable description.
    pub message: String,
    /// An actionable fix, when one is known.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(code: &'static str, path: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            path: path.into(),
            message: message.into(),
            suggestion: None,
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(
        code: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, path, message)
        }
    }

    /// An info-severity diagnostic.
    pub fn info(code: &'static str, path: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Info,
            ..Diagnostic::error(code, path, message)
        }
    }

    /// Attach a suggestion.
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }

    /// The stable JSON object form.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("code", Json::str(self.code)),
            ("severity", Json::str(self.severity.as_str())),
            ("path", Json::str(&self.path)),
            ("message", Json::str(&self.message)),
        ];
        if let Some(s) = &self.suggestion {
            fields.push(("suggestion", Json::str(s)));
        }
        Json::obj(fields)
    }

    /// One-finding human rendering, `rustc`-style.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}[{}] {}: {}",
            self.severity.as_str(),
            self.code,
            self.path,
            self.message
        );
        if let Some(s) = &self.suggestion {
            out.push_str("\n  help: ");
            out.push_str(s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_names() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::Error.as_str(), "error");
    }

    #[test]
    fn json_form_is_stable() {
        let d = Diagnostic::warning("MUSE-W005", "mappings/m/for/x", "unused variable")
            .with_suggestion("remove it");
        assert_eq!(
            d.to_json().render_pretty().replace(['\n', ' '], ""),
            r#"{"code":"MUSE-W005","severity":"warning","path":"mappings/m/for/x","message":"unusedvariable","suggestion":"removeit"}"#
        );
        let bare = Diagnostic::info("MUSE-A001", "p", "m");
        assert!(!bare.to_json().render_pretty().contains("suggestion"));
    }

    #[test]
    fn render_includes_help() {
        let d = Diagnostic::error("MUSE-W001", "mappings/m/for/x", "unknown set")
            .with_suggestion("check the schema");
        let text = d.render();
        assert!(text.starts_with("error[MUSE-W001]"));
        assert!(text.contains("help: check the schema"));
    }
}
