//! Pass 5 — join-graph shape and static evaluation plans.
//!
//! Codes:
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | `MUSE-P001` | warning | disconnected join graph: the `for` clause enumerates a cartesian product |
//! | `MUSE-P002` | warning | trivial self-equality (`x.a = x.a`): always true, dead predicate |
//! | `MUSE-P003` | error | always-empty predicate (`x.a ≠ x.a`, or an equality between two distinct constants): the mapping can never fire |
//! | `MUSE-P004` | info | plan step that full-scans its set mid-join (no parent, no probe attribute) |
//!
//! The *join graph* of a mapping's source query has one node per `for`
//! variable and an edge for every equality relating two variables and every
//! parent–child binding. A disconnected graph means the enumeration
//! multiplies unrelated sets — almost always a missing `satisfy` clause,
//! and quadratic (or worse) chase work even when intended.
//!
//! The pass also derives each mapping's static evaluation plan
//! ([`muse_query::plan_query`] under the source constraints' selectivity
//! hints) — both to flag mid-join full scans (`MUSE-P004`) and to publish
//! the plans as a machine-readable artifact ([`plans`], surfaced by
//! `muse lint --plans`). The published plan is exactly the one the chase
//! and the wizards execute, so the artifact doubles as an explain output.

use muse_obs::Json;
use muse_query::{plan_query, SelectivityHints};

use crate::diag::Diagnostic;
use crate::LintInput;

/// Run the pass over every mapping.
pub fn check(input: &LintInput, out: &mut Vec<Diagnostic>) {
    let hints = SelectivityHints::from_constraints(input.source_schema, input.source_constraints);
    for m in input.mappings {
        let q = m.source_query();
        let path = format!("mappings/{}/for", m.name);

        // Join graph connectivity (P001) over eq edges + parent edges.
        let n = q.vars.len();
        if n > 1 {
            let mut uf: Vec<usize> = (0..n).collect();
            for (i, v) in q.vars.iter().enumerate() {
                if let Some((p, _)) = &v.parent {
                    union(&mut uf, i, *p);
                }
            }
            for (a, b) in &q.eqs {
                if let (Some(va), Some(vb)) = (a.var(), b.var()) {
                    union(&mut uf, va, vb);
                }
            }
            let mut components: Vec<usize> = (0..n).map(|i| find(&mut uf, i)).collect();
            components.sort_unstable();
            components.dedup();
            if components.len() > 1 {
                let groups: Vec<String> = components
                    .iter()
                    .map(|&root| {
                        let members: Vec<&str> = (0..n)
                            .filter(|&i| find(&mut uf, i) == root)
                            .map(|i| q.vars[i].name.as_str())
                            .collect();
                        format!("{{{}}}", members.join(", "))
                    })
                    .collect();
                out.push(
                    Diagnostic::warning(
                        "MUSE-P001",
                        path.clone(),
                        format!(
                            "join graph is disconnected ({}): the for clause enumerates a \
                             cartesian product",
                            groups.join(" × ")
                        ),
                    )
                    .with_suggestion(
                        "add a satisfy equality relating the groups, or split the mapping",
                    ),
                );
            }
        }

        // Predicate triviality (P002/P003).
        for (i, (a, b)) in q.eqs.iter().enumerate() {
            if a == b {
                out.push(
                    Diagnostic::warning(
                        "MUSE-P002",
                        format!("mappings/{}/satisfy[{i}]", m.name),
                        "trivial self-equality: both sides are the same reference",
                    )
                    .with_suggestion("drop the predicate, or fix a copy-paste typo"),
                );
            }
            if let (muse_query::Operand::Const(x), muse_query::Operand::Const(y)) = (a, b) {
                if x != y {
                    out.push(Diagnostic::error(
                        "MUSE-P003",
                        format!("mappings/{}/satisfy[{i}]", m.name),
                        format!(
                            "equality between distinct constants ({x:?} = {y:?}) is always \
                                 false: the mapping can never fire"
                        ),
                    ));
                }
            }
        }
        for (i, (a, b)) in q.neqs.iter().enumerate() {
            if a == b {
                out.push(Diagnostic::error(
                    "MUSE-P003",
                    format!("mappings/{}/satisfy[{i}]", m.name),
                    "inequality of a reference with itself is always false: the mapping can \
                     never fire",
                ));
            }
        }

        // Plan-shape notes (P004): mid-join full scans.
        if let Ok(plan) = plan_query(input.source_schema, &q, Some(&hints)) {
            for (pos, step) in plan.steps.iter().enumerate().skip(1) {
                let v = &q.vars[step.var];
                if v.parent.is_none() && step.probe_attrs.is_empty() {
                    out.push(Diagnostic::info(
                        "MUSE-P004",
                        path.clone(),
                        format!(
                            "plan step {pos} full-scans {} for variable {}: no equality \
                             connects it to the variables bound before it",
                            v.set, v.name
                        ),
                    ));
                }
            }
        }
    }
}

/// The serialized static evaluation plans, one per mapping — the artifact
/// `muse lint --plans` prints. Unplannable mappings (reported by the other
/// passes) map to `null`.
pub fn plans(input: &LintInput) -> Json {
    let hints = SelectivityHints::from_constraints(input.source_schema, input.source_constraints);
    Json::Obj(
        input
            .mappings
            .iter()
            .map(|m| {
                let q = m.source_query();
                let body = plan_query(input.source_schema, &q, Some(&hints))
                    .map(|p| p.to_json(input.source_schema, &q))
                    .unwrap_or(Json::Null);
                (m.name.clone(), body)
            })
            .collect(),
    )
}

fn find(uf: &mut [usize], mut x: usize) -> usize {
    while uf[x] != x {
        uf[x] = uf[uf[x]];
        x = uf[x];
    }
    x
}

fn union(uf: &mut [usize], a: usize, b: usize) {
    let (ra, rb) = (find(uf, a), find(uf, b));
    if ra != rb {
        uf[ra.max(rb)] = ra.min(rb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{m2, OwnedInput};
    use muse_mapping::{Mapping, PathRef};
    use muse_nr::SetPath;

    #[test]
    fn fig1_is_plan_clean() {
        let owned = OwnedInput::fig1(vec![m2()]);
        let mut out = Vec::new();
        check(&owned.as_input(), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn cartesian_product_trips_p001_and_p004() {
        let mut m = Mapping::new("cart");
        m.source_var("c", SetPath::parse("Companies"));
        m.source_var("e", SetPath::parse("Employees"));
        let o = m.target_var("o", SetPath::parse("Orgs"));
        m.where_eq(PathRef::new(0, "cname"), PathRef::new(o, "oname"));
        let owned = OwnedInput::fig1(vec![m]);
        let mut out = Vec::new();
        check(&owned.as_input(), &mut out);
        assert!(out.iter().any(|d| d.code == "MUSE-P001"), "{out:?}");
        assert!(out.iter().any(|d| d.code == "MUSE-P004"), "{out:?}");
        let p1 = out.iter().find(|d| d.code == "MUSE-P001").unwrap();
        assert!(p1.message.contains("{c}"), "{}", p1.message);
        assert!(p1.message.contains("{e}"), "{}", p1.message);
    }

    #[test]
    fn self_equality_trips_p002() {
        let mut m = m2();
        m.source_eq(PathRef::new(0, "cname"), PathRef::new(0, "cname"));
        let owned = OwnedInput::fig1(vec![m]);
        let mut out = Vec::new();
        check(&owned.as_input(), &mut out);
        let codes: Vec<&str> = out.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"MUSE-P002"), "{out:?}");
        assert!(!codes.contains(&"MUSE-P001"), "{out:?}");
    }

    #[test]
    fn plans_artifact_names_every_mapping() {
        let owned = OwnedInput::fig1(vec![m2()]);
        let json = plans(&owned.as_input()).render();
        assert!(json.contains("\"m2\""), "{json}");
        assert!(json.contains("\"access\":\"probe\""), "{json}");
        assert!(json.contains("\"key_covered\""), "{json}");
    }
}
