//! **muse-lint** — static analysis over `(source schema, target schema,
//! constraints, mappings)` bundles.
//!
//! Muse's premise is that Clio-style generated mappings are ambiguous and
//! partially wrong *before* the wizard runs (Secs. I–IV of the paper).
//! Until now the repo discovered such defects at chase/wizard time, as
//! runtime `WizardError`s; this crate turns them into first-class
//! [`Diagnostic`]s a designer (or CI) can act on without running anything.
//!
//! Six passes, run in order over a [`LintInput`]:
//!
//! 1. [`wellformed`] — unbound/unused mapping variables, dangling schema
//!    paths, type-incompatible equalities, duplicate atoms (`MUSE-W…`);
//! 2. [`constraints`] — FDs redundant under closure, keys implied by the
//!    FD closure, referential constraints whose endpoints don't type-check,
//!    mappings not closed under the source constraints (`MUSE-C…`);
//! 3. [`ambiguity`] — per-target-attribute `or`-choice counts, the
//!    worst-case alternative-target-instance count that motivates Muse-D,
//!    and upper/lower bounds on Muse-G questions after key/FD pruning
//!    (`MUSE-A…`);
//! 4. [`grouping`] — grouping/Skolem safety: missing, misplaced, or
//!    ill-argumented grouping functions (`MUSE-G…`);
//! 5. [`plan`] — join-graph shape (cartesian products, dead or
//!    always-false predicates) and each mapping's static evaluation plan
//!    (`MUSE-P…`);
//! 6. [`termination`] — weak acyclicity of the position dependency graph
//!    and static chase-step bounds (`MUSE-T…`), the source of
//!    `Budget::auto` chase budgets.
//!
//! The crate also ships the workspace *self-check* binary
//! (`src/bin/selfcheck.rs`): a zero-dependency scanner enforcing the repo
//! rule that designer-reachable library code never panics
//! (`unwrap`/`expect`/`panic!`), with `// lint:allow(<code>)` as the escape
//! hatch for provably infallible sites.

pub mod ambiguity;
pub mod budget;
pub mod constraints;
pub mod diag;
pub mod explain;
pub mod grouping;
pub mod plan;
pub mod termination;
pub mod wellformed;

pub use diag::{Diagnostic, Severity};

use muse_mapping::Mapping;
use muse_nr::{Constraints, Schema};
use muse_obs::{Json, Metrics};

/// Everything the analyzer looks at: the two schemas, their constraints,
/// and the candidate mappings between them.
#[derive(Debug, Clone, Copy)]
pub struct LintInput<'a> {
    /// Source schema.
    pub source_schema: &'a Schema,
    /// Source keys / FDs / referential constraints.
    pub source_constraints: &'a Constraints,
    /// Target schema.
    pub target_schema: &'a Schema,
    /// Target constraints.
    pub target_constraints: &'a Constraints,
    /// The mappings under analysis.
    pub mappings: &'a [Mapping],
}

/// The analyzer's output: diagnostics in pass order, deterministic for a
/// given input.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of info-severity findings.
    pub fn infos(&self) -> usize {
        self.count(Severity::Info)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// True when the bundle has no error-severity findings.
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// Should a run gate fail? Errors always do; warnings only when
    /// `deny_warnings` is set.
    pub fn should_deny(&self, deny_warnings: bool) -> bool {
        self.errors() > 0 || (deny_warnings && self.warnings() > 0)
    }

    /// The stable JSON form: the diagnostics plus a severity tally.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "counts",
                Json::obj(vec![
                    ("error", Json::Int(self.errors() as i64)),
                    ("warning", Json::Int(self.warnings() as i64)),
                    ("info", Json::Int(self.infos() as i64)),
                ]),
            ),
            (
                "diagnostics",
                Json::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
        ])
    }

    /// Human rendering: one block per finding plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} info\n",
            self.errors(),
            self.warnings(),
            self.infos()
        ));
        out
    }
}

/// Run all four passes.
pub fn lint(input: &LintInput) -> LintReport {
    lint_with(input, Metrics::disabled_ref())
}

/// [`lint`] instrumented through `metrics` (the `lint.*` keys:
/// `lint.runs`, `lint.diagnostics`, `lint.errors`, `lint.warnings`, and the
/// `lint.analysis_time` timer).
pub fn lint_with(input: &LintInput, metrics: &Metrics) -> LintReport {
    let mut report = LintReport::default();
    {
        let _span = metrics.timer("lint.analysis_time").start();
        wellformed::check(input, &mut report.diagnostics);
        constraints::check(input, &mut report.diagnostics);
        ambiguity::check(input, &mut report.diagnostics);
        grouping::check(input, &mut report.diagnostics);
        plan::check(input, &mut report.diagnostics);
        termination::check(input, &mut report.diagnostics);
    }
    metrics.incr("lint.runs");
    metrics.add("lint.diagnostics", report.diagnostics.len() as u64);
    metrics.add("lint.errors", report.errors() as u64);
    metrics.add("lint.warnings", report.warnings() as u64);
    report
}

#[cfg(test)]
pub(crate) mod fixtures {
    use muse_mapping::{Mapping, PathRef};
    use muse_nr::{Constraints, Field, ForeignKey, Key, Schema, SetPath, Ty};

    /// The CompDB source schema of Fig. 1.
    pub fn compdb() -> Schema {
        Schema::new(
            "CompDB",
            vec![
                Field::new(
                    "Companies",
                    Ty::set_of(vec![
                        Field::new("cid", Ty::Int),
                        Field::new("cname", Ty::Str),
                        Field::new("location", Ty::Str),
                    ]),
                ),
                Field::new(
                    "Projects",
                    Ty::set_of(vec![
                        Field::new("pid", Ty::Str),
                        Field::new("pname", Ty::Str),
                        Field::new("cid", Ty::Int),
                        Field::new("manager", Ty::Str),
                    ]),
                ),
                Field::new(
                    "Employees",
                    Ty::set_of(vec![
                        Field::new("eid", Ty::Str),
                        Field::new("ename", Ty::Str),
                        Field::new("contact", Ty::Str),
                    ]),
                ),
            ],
        )
        .expect("fixture schema is valid")
    }

    /// The OrgDB target schema of Fig. 1.
    pub fn orgdb() -> Schema {
        Schema::new(
            "OrgDB",
            vec![
                Field::new(
                    "Orgs",
                    Ty::set_of(vec![
                        Field::new("oname", Ty::Str),
                        Field::new(
                            "Projects",
                            Ty::set_of(vec![
                                Field::new("pname", Ty::Str),
                                Field::new("manager", Ty::Str),
                            ]),
                        ),
                    ]),
                ),
                Field::new(
                    "Employees",
                    Ty::set_of(vec![
                        Field::new("eid", Ty::Str),
                        Field::new("ename", Ty::Str),
                    ]),
                ),
            ],
        )
        .expect("fixture schema is valid")
    }

    /// CompDB's constraints: `key(Companies.cid)` plus the two referential
    /// constraints `f1`, `f2` of Fig. 1.
    pub fn compdb_constraints() -> Constraints {
        Constraints {
            keys: vec![Key::new(SetPath::parse("Companies"), vec!["cid"])],
            fds: vec![],
            fks: vec![
                ForeignKey::new(
                    SetPath::parse("Projects"),
                    vec!["cid"],
                    SetPath::parse("Companies"),
                    vec!["cid"],
                ),
                ForeignKey::new(
                    SetPath::parse("Projects"),
                    vec!["manager"],
                    SetPath::parse("Employees"),
                    vec!["eid"],
                ),
            ],
        }
    }

    /// The mapping `m2` of Fig. 1 with the default grouping.
    pub fn m2() -> Mapping {
        let mut m = Mapping::new("m2");
        let c = m.source_var("c", SetPath::parse("Companies"));
        let p = m.source_var("p", SetPath::parse("Projects"));
        let e = m.source_var("e", SetPath::parse("Employees"));
        m.source_eq(PathRef::new(p, "cid"), PathRef::new(c, "cid"));
        m.source_eq(PathRef::new(e, "eid"), PathRef::new(p, "manager"));
        let o = m.target_var("o", SetPath::parse("Orgs"));
        let p1 = m.target_child_var("p1", o, "Projects");
        let e1 = m.target_var("e1", SetPath::parse("Employees"));
        m.target_eq(PathRef::new(p1, "manager"), PathRef::new(e1, "eid"));
        m.where_eq(PathRef::new(c, "cname"), PathRef::new(o, "oname"));
        m.where_eq(PathRef::new(e, "eid"), PathRef::new(e1, "eid"));
        m.where_eq(PathRef::new(e, "ename"), PathRef::new(e1, "ename"));
        m.where_eq(PathRef::new(p, "pname"), PathRef::new(p1, "pname"));
        m.ensure_default_groupings(&orgdb(), &compdb())
            .expect("fixture mapping fills Orgs.Projects");
        m
    }

    /// A [`super::LintInput`] over owned fixture parts.
    pub struct OwnedInput {
        pub source_schema: Schema,
        pub source_constraints: Constraints,
        pub target_schema: Schema,
        pub target_constraints: Constraints,
        pub mappings: Vec<Mapping>,
    }

    impl OwnedInput {
        pub fn fig1(mappings: Vec<Mapping>) -> Self {
            OwnedInput {
                source_schema: compdb(),
                source_constraints: compdb_constraints(),
                target_schema: orgdb(),
                target_constraints: Constraints::none(),
                mappings,
            }
        }

        pub fn as_input(&self) -> super::LintInput<'_> {
            super::LintInput {
                source_schema: &self.source_schema,
                source_constraints: &self.source_constraints,
                target_schema: &self.target_schema,
                target_constraints: &self.target_constraints,
                mappings: &self.mappings,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::OwnedInput;
    use super::*;

    #[test]
    fn fig1_bundle_is_clean() {
        let owned = OwnedInput::fig1(vec![fixtures::m2()]);
        let report = lint(&owned.as_input());
        assert!(report.is_clean(), "unexpected errors:\n{}", report.render());
        assert_eq!(report.warnings(), 0, "{}", report.render());
    }

    #[test]
    fn metrics_record_the_run() {
        let owned = OwnedInput::fig1(vec![fixtures::m2()]);
        let metrics = Metrics::enabled();
        let report = lint_with(&owned.as_input(), &metrics);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("lint.runs"), 1);
        assert_eq!(
            snap.counter("lint.diagnostics"),
            report.diagnostics.len() as u64
        );
        assert!(snap.timer("lint.analysis_time").count >= 1);
    }

    #[test]
    fn report_gates() {
        let mut r = LintReport::default();
        assert!(!r.should_deny(true));
        r.diagnostics
            .push(Diagnostic::warning("MUSE-W006", "p", "dup"));
        assert!(!r.should_deny(false));
        assert!(r.should_deny(true));
        r.diagnostics
            .push(Diagnostic::error("MUSE-W001", "p", "bad"));
        assert!(r.should_deny(false));
        assert!(!r.is_clean());
    }

    #[test]
    fn json_counts_match() {
        let owned = OwnedInput::fig1(vec![fixtures::m2()]);
        let report = lint(&owned.as_input());
        let json = report.to_json().render_pretty();
        let parsed = Json::parse(&json).expect("round-trips");
        match parsed {
            Json::Obj(fields) => {
                assert_eq!(fields[0].0, "counts");
                assert_eq!(fields[1].0, "diagnostics");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
