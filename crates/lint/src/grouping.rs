//! Pass 4 — grouping (Skolem) function safety.
//!
//! Codes:
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | `MUSE-G001` | error | nested set the mapping fills but declares no grouping for |
//! | `MUSE-G002` | error | grouping declared on a set the mapping does not fill |
//! | `MUSE-G003` | error | grouping argument that is not a bound atomic source attribute |
//! | `MUSE-G004` | info | empty argument list: one global group |
//! | `MUSE-G005` | info | arguments implied by the others under the source FDs |
//!
//! A grouping function `SK(args…)` decides which nested set a target tuple
//! lands in (paper Sec. III): its arguments must be attributes that are
//! actually bound by the `for` clause at that nesting level, or the chase
//! cannot evaluate the Skolem term — the static counterpart of
//! `MappingError::MissingGrouping` / `UselessGrouping` / `BadGroupingArg`.

use muse_nr::constraints::fdset::attrs;

use crate::budget::poss_space;
use crate::diag::Diagnostic;
use crate::LintInput;

/// Run the pass over every mapping.
pub fn check(input: &LintInput, out: &mut Vec<Diagnostic>) {
    for m in input.mappings {
        let Ok(filled) = m.filled_target_sets(input.target_schema) else {
            continue; // unresolved target side; pass 1 reported it
        };

        // G001: every filled nested set needs a grouping.
        for sk in &filled {
            if m.grouping(sk).is_none() {
                out.push(
                    Diagnostic::error(
                        "MUSE-G001",
                        format!("mappings/{}/group/{}", m.name, sk),
                        format!(
                            "mapping fills nested set {sk} but declares no grouping function \
                             for it; the chase cannot form its SetIDs"
                        ),
                    )
                    .with_suggestion("declare `group … by (…)` or call ensure_default_groupings"),
                );
            }
        }

        let space = poss_space(m, input.source_schema, input.source_constraints);
        for (sk, g) in &m.groupings {
            let path = format!("mappings/{}/group/{}", m.name, sk);
            // G002: a grouping on an unfilled set designs nothing.
            if !filled.contains(sk) {
                out.push(
                    Diagnostic::error(
                        "MUSE-G002",
                        path.clone(),
                        format!("grouping declared on {sk}, which the mapping does not fill"),
                    )
                    .with_suggestion("remove it, or add target variables that fill the set"),
                );
                continue;
            }
            // G003: every argument must be a bound atomic source attribute
            // — i.e. a member of poss(m, ·).
            let mut indices = Vec::new();
            let mut dangling = false;
            for arg in &g.args {
                let ix = space.as_ref().ok().and_then(|s| s.index_of(arg));
                match ix {
                    Some(i) => indices.push(i),
                    None => {
                        dangling = true;
                        let var = m
                            .source_vars
                            .get(arg.var)
                            .map(|v| v.name.clone())
                            .unwrap_or_else(|| format!("#{}", arg.var));
                        out.push(Diagnostic::error(
                            "MUSE-G003",
                            path.clone(),
                            format!(
                                "grouping argument {var}.{} is not an atomic attribute bound \
                                 by the for clause",
                                arg.attr
                            ),
                        ));
                    }
                }
            }
            if dangling {
                continue;
            }
            // G004: no arguments at all — a legal but drastic choice.
            if g.args.is_empty() {
                out.push(Diagnostic::info(
                    "MUSE-G004",
                    path.clone(),
                    format!("empty grouping: all tuples share one global {sk} set"),
                ));
                continue;
            }
            // G005: arguments the other arguments already determine.
            if let Ok(space) = &space {
                let all: u128 = attrs(indices.iter().copied());
                let redundant = indices
                    .iter()
                    .filter(|&&i| {
                        let others = all & !attrs([i]);
                        space.fdset.closure(others) & attrs([i]) != 0
                    })
                    .count();
                if redundant > 0 {
                    out.push(Diagnostic::info(
                        "MUSE-G005",
                        path,
                        format!(
                            "{redundant} of {} grouping argument(s) are implied by the others \
                             under the source constraints; the grouping is equivalent to the \
                             reduced one",
                            g.args.len()
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{self, OwnedInput};
    use muse_mapping::{Grouping, PathRef};
    use muse_nr::SetPath;

    fn diags(owned: &OwnedInput) -> Vec<Diagnostic> {
        let input = owned.as_input();
        let mut out = Vec::new();
        check(&input, &mut out);
        out
    }

    fn codes(ds: &[Diagnostic]) -> Vec<&'static str> {
        ds.iter().map(|d| d.code).collect()
    }

    #[test]
    fn default_grouping_reports_redundant_args_only() {
        // m2's default grouping takes all 10 poss attributes; cname and
        // location (implied by cid) and the class twins are redundant.
        let owned = OwnedInput::fig1(vec![fixtures::m2()]);
        let ds = diags(&owned);
        assert_eq!(codes(&ds), vec!["MUSE-G005"], "{ds:?}");
    }

    #[test]
    fn missing_grouping_is_g001() {
        let mut m = fixtures::m2();
        m.groupings.clear();
        let owned = OwnedInput::fig1(vec![m]);
        let ds = diags(&owned);
        assert!(codes(&ds).contains(&"MUSE-G001"), "{ds:?}");
    }

    #[test]
    fn grouping_on_unfilled_set_is_g002() {
        let mut m = fixtures::m2();
        m.set_grouping(SetPath::parse("Nowhere.Nested"), Grouping::default());
        let owned = OwnedInput::fig1(vec![m]);
        let ds = diags(&owned);
        assert!(codes(&ds).contains(&"MUSE-G002"), "{ds:?}");
    }

    #[test]
    fn dangling_grouping_arg_is_g003() {
        let mut m = fixtures::m2();
        m.set_grouping(
            SetPath::parse("Orgs.Projects"),
            Grouping::new(vec![PathRef::new(0, "ghost")]),
        );
        let owned = OwnedInput::fig1(vec![m]);
        let ds = diags(&owned);
        assert!(codes(&ds).contains(&"MUSE-G003"), "{ds:?}");
    }

    #[test]
    fn empty_grouping_is_g004() {
        let mut m = fixtures::m2();
        m.set_grouping(SetPath::parse("Orgs.Projects"), Grouping::default());
        let owned = OwnedInput::fig1(vec![m]);
        let ds = diags(&owned);
        assert_eq!(codes(&ds), vec!["MUSE-G004"], "{ds:?}");
    }

    #[test]
    fn irredundant_grouping_is_silent() {
        let mut m = fixtures::m2();
        // Group by the cid class representative alone.
        m.set_grouping(
            SetPath::parse("Orgs.Projects"),
            Grouping::new(vec![PathRef::new(0, "cid"), PathRef::new(1, "pid")]),
        );
        let owned = OwnedInput::fig1(vec![m]);
        let ds = diags(&owned);
        assert!(ds.is_empty(), "{ds:?}");
    }
}
