//! Workspace self-check: the repo's own panic-freedom lint.
//!
//! Scans every crate's library sources (`crates/*/src` plus the root
//! `src/`) and enforces:
//!
//! * `SC001` — no `.unwrap()` in designer-reachable library code,
//! * `SC002` — no `.expect("…")` (string-literal form only, so
//!   user-defined `expect` methods like the mapping parser's stay legal),
//! * `SC003` — no `panic!(` invocations,
//! * `SC004` — no `todo!(` / `unimplemented!(` anywhere in lib code,
//! * `SC005` — no bare `thread::spawn` (library parallelism must go
//!   through `muse-par`'s panic-isolated scoped pool),
//! * `SC006` — no `.join().unwrap()` (a panicking worker would take the
//!   caller down with it; `muse_par::try_scope_map` isolates instead),
//! * `SC007` — no iteration over a `HashMap`/`HashSet` in designer-
//!   reachable code (`.iter()`, `.keys()`, `.values()`, `.into_iter()`,
//!   `for … in`): hash order is nondeterministic per process, so anything
//!   it feeds — transcripts, diagnostics, WAL records — would differ
//!   between byte-identical runs. Iterate a `BTreeMap`/`BTreeSet`, or
//!   sort before use and waive the site.
//!
//! SC001–SC003 and SC007 apply to the crates whose code runs inside a
//! designer session (`mapping`, `wizard`, `chase` and this crate);
//! SC004–SC006 apply workspace-wide. Exempt: `bin/`, `tests/`, `benches/` directories,
//! `tests.rs` files, `#[cfg(test)]` modules, comments and string literals.
//! A finding is waived by `// lint:allow(SCxxx)` on the same or the
//! preceding line, which by convention states the invariant making the
//! site infallible.
//!
//! Zero dependencies, `std` only; exits non-zero listing `file:line` for
//! every finding so CI output is directly clickable.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose library code must never panic (a designer session runs
/// through them); SC004 applies to every scanned crate regardless.
const NO_PANIC_CRATES: &[&str] = &["mapping", "wizard", "chase", "lint", "serve"];

struct Finding {
    file: PathBuf,
    line: usize,
    code: &'static str,
    what: String,
}

fn main() -> ExitCode {
    // crates/lint/src/bin/selfcheck.rs → repo root is three levels up
    // from the manifest dir.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up");

    let mut findings = Vec::new();
    let mut scanned = 0usize;

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = match std::fs::read_dir(&crates_dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect(),
        Err(e) => {
            eprintln!("selfcheck: cannot read {}: {e}", crates_dir.display());
            return ExitCode::FAILURE;
        }
    };
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let no_panic = NO_PANIC_CRATES.contains(&name.as_str());
        scan_dir(&dir.join("src"), no_panic, &mut findings, &mut scanned);
    }
    // The root muse-suite package's lib code.
    scan_dir(&root.join("src"), false, &mut findings, &mut scanned);

    if findings.is_empty() {
        println!("selfcheck: {scanned} files clean");
        ExitCode::SUCCESS
    } else {
        findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        for f in &findings {
            println!("{}:{}: [{}] {}", f.file.display(), f.line, f.code, f.what);
        }
        println!(
            "selfcheck: {} finding(s) in {scanned} files (waive provably-infallible \
             sites with `// lint:allow(SCxxx)` and a one-line invariant)",
            findings.len()
        );
        ExitCode::FAILURE
    }
}

/// Recursively scan `.rs` files under `dir`, skipping exempt locations.
fn scan_dir(dir: &Path, no_panic: bool, findings: &mut Vec<Finding>, scanned: &mut usize) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = rd.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            if matches!(name.as_deref(), Some("bin" | "tests" | "benches")) {
                continue;
            }
            scan_dir(&path, no_panic, findings, scanned);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if path.file_name().is_some_and(|n| n == "tests.rs") {
                continue;
            }
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            *scanned += 1;
            scan_file(&path, &text, no_panic, findings);
        }
    }
}

fn scan_file(path: &Path, text: &str, no_panic: bool, findings: &mut Vec<Finding>) {
    let code_only = strip_non_code(text);
    let masked = mask_test_modules(&code_only);
    let src_lines: Vec<&str> = text.lines().collect();

    let mut checks: Vec<(&'static str, &'static str, &'static str)> = vec![
        ("SC004", "todo!(", "todo! in library code"),
        ("SC004", "unimplemented!(", "unimplemented! in library code"),
        (
            "SC005",
            "thread::spawn(",
            "bare thread::spawn in library code (use muse-par's panic-isolated pool)",
        ),
        (
            "SC006",
            ".join().unwrap()",
            "unwrapped join in library code (use muse_par::try_scope_map isolation)",
        ),
    ];
    if no_panic {
        checks.push(("SC001", ".unwrap()", "unwrap() in designer-reachable code"));
        checks.push(("SC002", ".expect(\"", "expect() in designer-reachable code"));
        checks.push(("SC003", "panic!(", "panic! in designer-reachable code"));
    }

    let hash_names = if no_panic {
        hash_idents(&masked)
    } else {
        Vec::new()
    };

    for (lineno, line) in masked.lines().enumerate() {
        for &(code, pat, what) in &checks {
            if !line.contains(pat) {
                continue;
            }
            let allow = format!("lint:allow({code})");
            let waived = src_lines.get(lineno).is_some_and(|l| l.contains(&allow))
                || (lineno > 0
                    && src_lines
                        .get(lineno - 1)
                        .is_some_and(|l| l.contains(&allow)));
            if !waived {
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line: lineno + 1,
                    code,
                    what: what.to_string(),
                });
            }
        }
        if let Some(name) = hash_iteration(line, &hash_names) {
            let waived = ["lint:allow(SC007)"].iter().any(|allow| {
                src_lines.get(lineno).is_some_and(|l| l.contains(allow))
                    || (lineno > 0 && src_lines.get(lineno - 1).is_some_and(|l| l.contains(allow)))
            });
            if !waived {
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line: lineno + 1,
                    code: "SC007",
                    what: format!(
                        "iteration over hash collection `{name}` in designer-reachable \
                         code (hash order is nondeterministic; use a BTree collection \
                         or sort before use)"
                    ),
                });
            }
        }
    }
}

/// Identifiers declared as `HashMap`/`HashSet` in this file. A declaration
/// is the identifier immediately left of a `: HashMap…` type annotation
/// (struct fields, fn parameters, `let` with annotation) or of an
/// `= HashMap::new()`-style initializer. Single-line heuristic — Muse code
/// declares hash collections with the type on the binding line. Uses on
/// `self.name` / `x.name` still match, the iteration patterns are
/// substring searches on the bare name.
fn hash_idents(masked: &str) -> Vec<String> {
    let mut names = Vec::new();
    for line in masked.lines() {
        for pat in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(at) = line[from..].find(pat) {
                let abs = from + at;
                from = abs + pat.len();
                // Walk left over the type-position syntax to the declared
                // identifier: `name: Hash…`, `name: &Hash…`, `name = Hash…`.
                let before = line[..abs].trim_end();
                let before = before
                    .trim_end_matches(['&', ' '])
                    .trim_end_matches("mut")
                    .trim_end();
                let Some(pre) = before
                    .strip_suffix(':')
                    .or_else(|| before.strip_suffix('='))
                else {
                    continue;
                };
                // `use std::collections::HashMap` leaves a trailing `:`.
                let pre = pre.trim_end();
                if pre.ends_with(':') {
                    continue;
                }
                let name: String = pre
                    .chars()
                    .rev()
                    .take_while(|ch| ch.is_ascii_alphanumeric() || *ch == '_')
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                if !name.is_empty()
                    && !name.starts_with(|c: char| c.is_ascii_digit())
                    && !names.contains(&name)
                {
                    names.push(name);
                }
            }
        }
    }
    names
}

/// Does `line` iterate one of `names` (order-sensitive hash traversal)?
/// Returns the offending identifier.
fn hash_iteration(line: &str, names: &[String]) -> Option<String> {
    for name in names {
        for suffix in [
            ".iter()",
            ".keys()",
            ".values()",
            ".into_iter()",
            ".drain()",
        ] {
            let pat = format!("{name}{suffix}");
            if let Some(at) = line.find(&pat) {
                let boundary = at == 0
                    || !line.as_bytes()[at - 1].is_ascii_alphanumeric()
                        && line.as_bytes()[at - 1] != b'_';
                if boundary {
                    return Some(name.clone());
                }
            }
        }
        for pat in [
            format!(" in &{name} "),
            format!(" in &{name} {{"),
            format!(" in &mut {name} {{"),
            format!(" in {name} {{"),
        ] {
            if line.contains(&pat) {
                return Some(name.clone());
            }
        }
    }
    None
}

/// Replace comments, string literals and char literals with spaces,
/// preserving line structure, so pattern checks only see real code.
fn strip_non_code(text: &str) -> String {
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let b = text.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match st {
            St::Code => match c {
                b'/' if b.get(i + 1) == Some(&b'/') => {
                    st = St::LineComment;
                    out.push(b' ');
                }
                b'/' if b.get(i + 1) == Some(&b'*') => {
                    st = St::BlockComment(1);
                    out.push(b' ');
                }
                b'"' => {
                    st = St::Str;
                    // Keep the quote itself so `.expect("` keeps its shape.
                    out.push(b'"');
                }
                b'r' if matches!(b.get(i + 1), Some(&b'"') | Some(&b'#')) => {
                    // Possible raw string r"…" / r#"…"#.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while b.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&b'"') {
                        st = St::RawStr(hashes);
                        out.extend(std::iter::repeat_n(b' ', j - i + 1));
                        i = j + 1;
                        continue;
                    }
                    out.push(c);
                }
                b'\'' => {
                    // Char literal vs. lifetime: a lifetime is 'ident not
                    // followed by a closing quote.
                    let is_lifetime = b
                        .get(i + 1)
                        .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_')
                        && b.get(i + 2) != Some(&b'\'');
                    if is_lifetime {
                        out.push(c);
                    } else {
                        st = St::Char;
                        out.push(b' ');
                    }
                }
                _ => out.push(c),
            },
            St::LineComment => {
                if c == b'\n' {
                    st = St::Code;
                    out.push(c);
                } else {
                    out.push(b' ');
                }
            }
            St::BlockComment(depth) => {
                if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                    continue;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::BlockComment(depth + 1);
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                    continue;
                } else if c == b'\n' {
                    out.push(c);
                } else {
                    out.push(b' ');
                }
            }
            St::Str => match c {
                b'\\' => {
                    out.push(b' ');
                    if b.get(i + 1).is_some() {
                        out.push(if b[i + 1] == b'\n' { b'\n' } else { b' ' });
                        i += 2;
                        continue;
                    }
                }
                b'"' => {
                    st = St::Code;
                    // Keep the closing quote so `.expect("` keeps its shape.
                    out.push(b'"');
                }
                b'\n' => out.push(c),
                _ => out.push(b' '),
            },
            St::RawStr(hashes) => {
                if c == b'"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if b.get(i + 1 + k) != Some(&b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        st = St::Code;
                        out.extend(std::iter::repeat_n(b' ', hashes + 1));
                        i += 1 + hashes;
                        continue;
                    }
                }
                out.push(if c == b'\n' { b'\n' } else { b' ' });
            }
            St::Char => match c {
                b'\\' => {
                    out.push(b' ');
                    if b.get(i + 1).is_some() {
                        out.push(b' ');
                        i += 2;
                        continue;
                    }
                }
                b'\'' => {
                    st = St::Code;
                    out.push(b' ');
                }
                _ => out.push(b' '),
            },
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Blank out `#[cfg(test)]`-guarded items (test modules and helpers) by
/// brace counting on comment/string-stripped text.
fn mask_test_modules(code: &str) -> String {
    let mut lines: Vec<String> = code.lines().map(str::to_owned).collect();
    let mut i = 0;
    while i < lines.len() {
        let trimmed = lines[i].trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            // Blank from here until the guarded item's braces balance.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                let line = std::mem::take(&mut lines[j]);
                for ch in line.bytes() {
                    match ch {
                        b'{' => {
                            depth += 1;
                            opened = true;
                        }
                        b'}' => depth -= 1,
                        _ => {}
                    }
                }
                // A brace-less guarded item (`#[cfg(test)] use …;`) ends at
                // its semicolon.
                let ends_item = !opened && line.trim_end().ends_with(';');
                j += 1;
                if (opened && depth <= 0) || ends_item {
                    break;
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_in(src: &str, no_panic: bool) -> Vec<(&'static str, usize)> {
        let mut out = Vec::new();
        scan_file(Path::new("test.rs"), src, no_panic, &mut out);
        out.into_iter().map(|f| (f.code, f.line)).collect()
    }

    #[test]
    fn sc007_flags_hash_iteration_in_no_panic_code() {
        let src = "fn f() {\n\
                   \x20   let mut seen: HashMap<String, u32> = HashMap::new();\n\
                   \x20   for (k, v) in seen.iter() {\n\
                   \x20       emit(k, v);\n\
                   \x20   }\n\
                   }\n";
        assert_eq!(findings_in(src, true), vec![("SC007", 3)]);
        // The same code outside a no-panic crate is not scanned for SC007.
        assert_eq!(findings_in(src, false), vec![]);
    }

    #[test]
    fn sc007_covers_fields_keys_values_and_for_loops() {
        let src = "struct S { pub index: HashSet<u32> }\n\
                   fn f(s: &S, m: HashMap<u32, u32>) {\n\
                   \x20   for x in s.index.keys() {}\n\
                   \x20   for v in m.values() {}\n\
                   \x20   for x in &m {}\n\
                   }\n";
        let hits = findings_in(src, true);
        assert!(hits.contains(&("SC007", 3)), "{hits:?}");
        assert!(hits.contains(&("SC007", 4)), "{hits:?}");
        assert!(hits.contains(&("SC007", 5)), "{hits:?}");
    }

    #[test]
    fn sc007_ignores_lookups_waivers_and_other_idents() {
        let src = "fn f() {\n\
                   \x20   let cache: HashMap<String, u32> = HashMap::new();\n\
                   \x20   let hit = cache.get(\"k\");\n\
                   \x20   // lint:allow(SC007) sorted right below\n\
                   \x20   let mut all: Vec<_> = cache.iter().collect();\n\
                   \x20   let rows: Vec<u32> = Vec::new();\n\
                   \x20   for r in rows.iter() {}\n\
                   \x20   my_cache.iter();\n\
                   }\n";
        assert_eq!(findings_in(src, true), vec![]);
    }
}
