//! `--explain`: the diagnostic-code registry.
//!
//! Every `MUSE-XXXX` code any pass can emit has an entry here — a one-line
//! summary, a longer explanation of what the finding means and why it
//! matters, and the usual fix. `muse lint --explain MUSE-XXXX` prints the
//! entry; the registry test (and a workspace-source scan in the CLI tests)
//! fails the build when a pass invents a code without documenting it.

/// One registry entry.
#[derive(Debug, Clone, Copy)]
pub struct Explanation {
    /// The stable code, e.g. `MUSE-P001`.
    pub code: &'static str,
    /// Default severity, as emitted (`error` / `warning` / `info`; a few
    /// codes escalate, noted in the text).
    pub severity: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// What it means and why it matters.
    pub detail: &'static str,
    /// The usual fix.
    pub fix: &'static str,
}

/// All documented diagnostic codes, in pass order.
pub const REGISTRY: &[Explanation] = &[
    // Pass 1 — well-formedness (MUSE-W…).
    Explanation {
        code: "MUSE-W001",
        severity: "error",
        summary: "variable bound to a set the schema doesn't have",
        detail: "A for/exists variable names a set path that does not resolve in its \
                 schema. Nothing downstream (chase, wizards) can evaluate the mapping.",
        fix: "fix the set path, or add the set to the schema",
    },
    Explanation {
        code: "MUSE-W002",
        severity: "error",
        summary: "nested variable whose parent binding is inconsistent",
        detail: "A child variable ('q in o.Projects') names a parent variable or field \
                 that doesn't exist, isn't set-typed, or is declared after the child.",
        fix: "declare the parent first and bind the child through one of its set fields",
    },
    Explanation {
        code: "MUSE-W003",
        severity: "error",
        summary: "dangling reference: unknown variable or unknown/non-atomic attribute",
        detail: "An equality or grouping argument projects an attribute that the \
                 variable's element record does not have (or that is itself a set).",
        fix: "fix the attribute name; only atomic attributes can be compared or grouped on",
    },
    Explanation {
        code: "MUSE-W004",
        severity: "error",
        summary: "type-incompatible equality",
        detail: "The two sides of an equality have different atomic types (Int vs Str): \
                 it can never hold, so the mapping never fires.",
        fix: "compare attributes of the same type, or fix the schema types",
    },
    Explanation {
        code: "MUSE-W005",
        severity: "warning",
        summary: "source variable that constrains nothing",
        detail: "A for variable appears in no equality, no where clause, and no grouping: \
                 it only multiplies the enumeration (a hidden cartesian factor).",
        fix: "remove the variable, or relate it to the rest of the mapping",
    },
    Explanation {
        code: "MUSE-W006",
        severity: "warning",
        summary: "duplicate clause (same atom twice)",
        detail: "The same equality or binding is stated twice; the duplicate is dead \
                 weight and usually a copy-paste slip.",
        fix: "remove the duplicate clause",
    },
    Explanation {
        code: "MUSE-W007",
        severity: "error",
        summary: "two where clauses assign the same target attribute",
        detail: "Conflicting assignments to one target attribute make the mapping's \
                 output ill-defined (the chase would have to pick one arbitrarily).",
        fix: "keep one assignment, or split into two mappings",
    },
    Explanation {
        code: "MUSE-W008",
        severity: "warning",
        summary: "degenerate or-group",
        detail: "An or-group with fewer than two distinct alternatives encodes no real \
                 choice — it is either redundant or a generator artifact.",
        fix: "collapse the group to a plain equality",
    },
    // Pass 2 — constraints (MUSE-C…).
    Explanation {
        code: "MUSE-C001",
        severity: "error",
        summary: "constraint names a set or attribute the schema doesn't have",
        detail: "A key, FD, or referential constraint points at a path that does not \
                 resolve; the constraint engine would silently ignore it.",
        fix: "fix the constraint's paths",
    },
    Explanation {
        code: "MUSE-C002",
        severity: "warning",
        summary: "FD implied by the closure of the other FDs and keys",
        detail: "The FD adds nothing: it already follows from the rest of the constraint \
                 set under Armstrong closure.",
        fix: "drop the redundant FD",
    },
    Explanation {
        code: "MUSE-C003",
        severity: "warning",
        summary: "key already implied by the declared FDs alone",
        detail: "The declared key is derivable from the FDs; declaring it twice invites \
                 drift between the two declarations.",
        fix: "drop the key or the implying FDs",
    },
    Explanation {
        code: "MUSE-C004",
        severity: "error",
        summary: "referential constraint whose endpoints don't type-check",
        detail: "The from/to attribute lists of a foreign key have incompatible types, \
                 so the inclusion can never be checked meaningfully.",
        fix: "align the attribute types on both endpoints",
    },
    Explanation {
        code: "MUSE-C005",
        severity: "error",
        summary: "referential constraint with mismatched attribute arity",
        detail: "A foreign key lists a different number of from- and to-attributes.",
        fix: "make both attribute lists the same length",
    },
    Explanation {
        code: "MUSE-C006",
        severity: "warning",
        summary: "mapping not closed under the source referential constraints",
        detail: "The mapping joins through attributes covered by a foreign key but does \
                 not include the referenced set, so semantically related tuples are \
                 exchanged without their context (Sec. II's association completeness).",
        fix: "extend the for clause along the foreign key, or accept the narrower exchange",
    },
    Explanation {
        code: "MUSE-C007",
        severity: "error",
        summary: "referential constraints form a cycle",
        detail: "The source foreign keys are cyclic, so chase-based association expansion \
                 would not terminate.",
        fix: "break the cycle (drop or reorient one constraint)",
    },
    // Pass 3 — ambiguity (MUSE-A…).
    Explanation {
        code: "MUSE-A001",
        severity: "info",
        summary: "a target attribute with an or-group of n alternatives",
        detail: "Generated mappings encode attribute-level ambiguity as or-groups; this \
                 reports each group's fan-out — the raw material of Muse-D.",
        fix: "run Muse-D (or muse design) to resolve the choice",
    },
    Explanation {
        code: "MUSE-A002",
        severity: "info",
        summary: "worst-case alternative-target-instance count (warning past 64)",
        detail: "The product of all or-group fan-outs: how many distinct target \
                 instances the ambiguous mapping set encodes. Past 64 it escalates to a \
                 warning — enumeration-based tooling will not scale there.",
        fix: "disambiguate with Muse-D before chasing",
    },
    Explanation {
        code: "MUSE-A003",
        severity: "info",
        summary: "Muse-G question budget per nested set, after key/FD pruning",
        detail: "Bounds on how many designer questions Muse-G needs for each grouping \
                 function, given the declared keys and FDs (paper Sec. III).",
        fix: "nothing to fix; add keys/FDs to shrink the budget",
    },
    Explanation {
        code: "MUSE-A004",
        severity: "error",
        summary: "poss exceeds the 128-attribute FD engine",
        detail: "The candidate-argument space of a grouping function has more than 128 \
                 attributes — beyond the bitset FD engine's capacity.",
        fix: "narrow the mapping (fewer bound attributes per nesting level)",
    },
    Explanation {
        code: "MUSE-A005",
        severity: "error",
        summary: "non-key attributes determine key attributes (multi-key case)",
        detail: "The declared constraints make a non-key set of attributes determine a \
                 key, which breaks the pruning lattice Muse-G's question strategy relies \
                 on.",
        fix: "review the declared keys/FDs; one of them is wrong",
    },
    // Pass 4 — grouping (MUSE-G…).
    Explanation {
        code: "MUSE-G001",
        severity: "error",
        summary: "nested set the mapping fills but declares no grouping for",
        detail: "Without a grouping (Skolem) function the chase cannot decide which \
                 nested set a tuple lands in.",
        fix: "declare `group … by (…)`, or call ensure_default_groupings",
    },
    Explanation {
        code: "MUSE-G002",
        severity: "error",
        summary: "grouping declared on a set the mapping does not fill",
        detail: "The grouping designs nothing: no target variable of the mapping feeds \
                 that nested set.",
        fix: "remove it, or add target variables that fill the set",
    },
    Explanation {
        code: "MUSE-G003",
        severity: "error",
        summary: "grouping argument that is not a bound atomic source attribute",
        detail: "Skolem arguments must be attributes the for clause actually binds at \
                 that nesting level, or the chase cannot evaluate the term.",
        fix: "use attributes from poss(m, SK)",
    },
    Explanation {
        code: "MUSE-G004",
        severity: "info",
        summary: "empty argument list: one global group",
        detail: "A legal but drastic choice — every tuple shares a single nested set.",
        fix: "confirm it is intended (Muse-G's scenario pair will show the difference)",
    },
    Explanation {
        code: "MUSE-G005",
        severity: "info",
        summary: "arguments implied by the others under the source FDs",
        detail: "Some grouping arguments are functionally determined by the rest: the \
                 grouping is equivalent to the reduced one.",
        fix: "drop the implied arguments (purely cosmetic)",
    },
    // Pass 5 — plans (MUSE-P…).
    Explanation {
        code: "MUSE-P001",
        severity: "warning",
        summary: "disconnected join graph: the for clause enumerates a cartesian product",
        detail: "No equality or parent binding relates one group of variables to the \
                 rest, so the enumeration multiplies unrelated sets — quadratic or worse \
                 chase and wizard work, and usually a missing satisfy clause.",
        fix: "add a satisfy equality relating the groups, or split the mapping",
    },
    Explanation {
        code: "MUSE-P002",
        severity: "warning",
        summary: "trivial self-equality: always true, dead predicate",
        detail: "Both sides of the equality are the same reference (x.a = x.a); the \
                 predicate filters nothing and usually marks a typo.",
        fix: "drop the predicate, or fix the intended reference",
    },
    Explanation {
        code: "MUSE-P003",
        severity: "error",
        summary: "always-empty predicate: the mapping can never fire",
        detail: "The predicate is unsatisfiable (x.a ≠ x.a, or an equality between two \
                 distinct constants), so the mapping's binding set is provably empty.",
        fix: "remove the mapping or repair the predicate",
    },
    Explanation {
        code: "MUSE-P004",
        severity: "info",
        summary: "plan step that full-scans its set mid-join",
        detail: "The static evaluation plan binds this variable with neither a parent \
                 nor a probe attribute: every tuple of its set is enumerated under every \
                 combination of the variables before it.",
        fix: "add an equality the planner can probe on (often a key attribute)",
    },
    // Pass 6 — termination (MUSE-T…).
    Explanation {
        code: "MUSE-T001",
        severity: "warning",
        summary: "not weakly acyclic: special-edge cycle in the position graph",
        detail: "A cycle through a special (existential) edge means a value-inventing \
                 chase can feed itself forever: no static step bound exists (Fagin et \
                 al.'s weak-acyclicity test fails).",
        fix: "assign the existential attribute from a source position, or drop the \
              circular referential constraint",
    },
    Explanation {
        code: "MUSE-T002",
        severity: "info",
        summary: "weakly acyclic: every chase sequence terminates",
        detail: "The position dependency graph has no special-edge cycle, so the chase \
                 terminates on every instance and a static chase-step bound is \
                 computable — Budget::auto (muse serve preflight, --auto-chase-budget) \
                 installs it as max_chase_steps.",
        fix: "nothing to fix; this is the good case",
    },
];

/// Look up a code (case-insensitive, `MUSE-` prefix optional).
pub fn lookup(code: &str) -> Option<&'static Explanation> {
    let norm = code.trim().to_ascii_uppercase();
    let norm = if norm.starts_with("MUSE-") {
        norm
    } else {
        format!("MUSE-{norm}")
    };
    REGISTRY.iter().find(|e| e.code == norm)
}

/// Render one entry the way `muse lint --explain` prints it.
pub fn render(e: &Explanation) -> String {
    format!(
        "{} ({})\n  {}\n\n  {}\n\n  fix: {}\n",
        e.code, e.severity, e.summary, e.detail, e.fix
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn lookup_is_forgiving() {
        assert_eq!(lookup("MUSE-P001").unwrap().code, "MUSE-P001");
        assert_eq!(lookup("p001").unwrap().code, "MUSE-P001");
        assert_eq!(lookup(" muse-t002 ").unwrap().code, "MUSE-T002");
        assert!(lookup("MUSE-Z999").is_none());
    }

    #[test]
    fn registry_has_no_duplicates_and_valid_severities() {
        let mut seen = BTreeSet::new();
        for e in REGISTRY {
            assert!(seen.insert(e.code), "duplicate registry entry {}", e.code);
            assert!(
                ["error", "warning", "info"].contains(&e.severity),
                "{}: bad severity {}",
                e.code,
                e.severity
            );
            assert!(!e.summary.is_empty() && !e.detail.is_empty() && !e.fix.is_empty());
        }
    }

    /// Every code the passes can emit is documented: scan this crate's pass
    /// sources for `"MUSE-XXXX"` literals and demand a registry entry.
    #[test]
    fn every_emitted_code_is_documented() {
        let sources = [
            include_str!("wellformed.rs"),
            include_str!("constraints.rs"),
            include_str!("ambiguity.rs"),
            include_str!("grouping.rs"),
            include_str!("plan.rs"),
            include_str!("termination.rs"),
        ];
        let mut emitted = BTreeSet::new();
        for src in sources {
            for (i, _) in src.match_indices("\"MUSE-") {
                let rest = &src[i + 1..];
                if let Some(end) = rest.find('"') {
                    let code = &rest[..end];
                    if code.len() == 9 {
                        emitted.insert(code.to_string());
                    }
                }
            }
        }
        assert!(!emitted.is_empty(), "scan found no codes — broken test?");
        for code in &emitted {
            assert!(
                lookup(code).is_some(),
                "{code} is emitted but has no --explain entry (add it to explain::REGISTRY)"
            );
        }
    }
}
