//! Pass 6 — chase termination: weak acyclicity and static step bounds.
//!
//! Codes:
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | `MUSE-T001` | warning | position dependency graph has a cycle through a special (existential) edge: the bundle is not weakly acyclic |
//! | `MUSE-T002` | info | bundle is weakly acyclic: every chase sequence terminates, and a static step bound exists |
//!
//! The *position dependency graph* (Fagin et al., weak acyclicity) has one
//! node per attribute position — `src:Set.attr` for source positions,
//! `tgt:Set.attr` for target positions — and, per dependency, a **regular**
//! edge from every premise position to every conclusion position it copies
//! into, plus a **special** edge from every premise position to every
//! *existential* conclusion position (one that gets an invented value). Two
//! dependency families contribute edges here:
//!
//! * the mappings (s-t tgds): a `where` assignment `s.a = t.b` draws a
//!   regular edge `src:….a → tgt:….b`; target attributes whose equivalence
//!   class (under the mapping's `target_eqs`) has no assignment are
//!   existential and receive special edges from every assigned source
//!   position of that mapping;
//! * the target referential constraints, read as target-side inclusion
//!   dependencies: `fk(From.f… ⊆ To.t…)` draws regular edges
//!   `tgt:From.fᵢ → tgt:To.tᵢ` and special edges from each `tgt:From.fᵢ`
//!   to every *other* attribute of `To` (the referenced tuple a repairing
//!   chase would have to invent).
//!
//! A cycle through a special edge means a repairing chase could invent
//! values forever (`MUSE-T001`). Without one, every chase terminates and
//! [`chase_step_bound`] computes a concrete per-instance step cap — the
//! number the engine's `chase.steps` counter can never exceed, and the one
//! `Budget::auto` (muse-serve preflight, `--auto-chase-budget`) installs as
//! `max_chase_steps`.

use std::collections::BTreeMap;

use muse_mapping::{Mapping, WhereClause};
use muse_nr::{Constraints, Instance, Schema, SetPath};
use muse_query::{plan_query, SelectivityHints};

use crate::diag::Diagnostic;
use crate::LintInput;

/// Run the pass over the whole bundle.
pub fn check(input: &LintInput, out: &mut Vec<Diagnostic>) {
    let g = PositionGraph::build(input);
    let mut special_cycles: Vec<String> = Vec::new();
    for &(u, v, special) in &g.edges {
        if special && g.reaches(v, u) {
            special_cycles.push(format!("{} → {}", g.names[u], g.names[v]));
        }
    }
    special_cycles.sort();
    special_cycles.dedup();
    if special_cycles.is_empty() {
        out.push(Diagnostic::info(
            "MUSE-T002",
            "termination",
            format!(
                "position dependency graph is weakly acyclic ({} positions, {} edges): \
                 every chase sequence terminates; a static chase-step bound is available \
                 (Budget::auto)",
                g.names.len(),
                g.edges.len()
            ),
        ));
    } else {
        for cycle in special_cycles {
            out.push(
                Diagnostic::warning(
                    "MUSE-T001",
                    "termination",
                    format!(
                        "position dependency graph has a cycle through the special edge \
                         {cycle}: the bundle is not weakly acyclic, so a value-inventing \
                         chase may not terminate"
                    ),
                )
                .with_suggestion(
                    "break the cycle: assign the existential attribute from a source \
                     position, or drop the circular referential constraint",
                ),
            );
        }
    }
}

/// Tuple counts per source set path — the instance statistics
/// [`chase_step_bound`] multiplies. Paths the instance does not populate
/// count as 0.
pub fn path_sizes(schema: &Schema, inst: &Instance) -> BTreeMap<SetPath, u64> {
    schema
        .set_paths_bfs()
        .into_iter()
        .map(|p| {
            let n = inst.tuples_of_path(&p).count() as u64;
            (p, n)
        })
        .collect()
}

/// The static chase-step upper bound for `mappings` over an instance with
/// the given per-path tuple counts (see [`path_sizes`]): the sum over
/// mappings of the product, over the variables of the mapping's static
/// evaluation plan, of the variable's worst-case match count — `1` when the
/// plan probes a declared key (at most one tuple per outer binding), the
/// path's tuple count otherwise. Saturating; `u64::MAX` means "unbounded as
/// computed", not non-termination.
///
/// The engine fires at most one chase step per enumerated binding, so its
/// `chase.steps` counter is always ≤ this bound.
pub fn chase_step_bound(
    source_schema: &Schema,
    source_constraints: &Constraints,
    mappings: &[Mapping],
    sizes: &BTreeMap<SetPath, u64>,
) -> u64 {
    let hints = SelectivityHints::from_constraints(source_schema, source_constraints);
    let mut total: u64 = 0;
    for m in mappings {
        let q = m.source_query();
        let mut product: u64 = 1;
        match plan_query(source_schema, &q, Some(&hints)) {
            Ok(plan) => {
                for step in &plan.steps {
                    let factor = if step.key_covered {
                        1
                    } else {
                        sizes.get(&q.vars[step.var].set).copied().unwrap_or(0)
                    };
                    product = product.saturating_mul(factor);
                }
            }
            Err(_) => {
                // Unplannable mapping (will be reported by pass 1): fall
                // back to the raw product of its variables' path sizes.
                for v in &q.vars {
                    product = product.saturating_mul(sizes.get(&v.set).copied().unwrap_or(0));
                }
            }
        }
        total = total.saturating_add(product);
    }
    total
}

/// The position dependency graph: node names plus `(from, to, special)`
/// edges.
struct PositionGraph {
    names: Vec<String>,
    ids: BTreeMap<String, usize>,
    edges: Vec<(usize, usize, bool)>,
    succ: Vec<Vec<usize>>,
}

impl PositionGraph {
    fn build(input: &LintInput) -> Self {
        let mut g = PositionGraph {
            names: Vec::new(),
            ids: BTreeMap::new(),
            edges: Vec::new(),
            succ: Vec::new(),
        };
        for m in input.mappings {
            g.add_mapping(input, m);
        }
        // Target referential constraints as t-t inclusion dependencies.
        for fk in &input.target_constraints.fks {
            let Ok(to_attrs) = input.target_schema.attributes(&fk.to) else {
                continue; // endpoint doesn't resolve; pass 2 reported it
            };
            for (f, t) in fk.from_attrs.iter().zip(&fk.to_attrs) {
                let from = g.node(format!("tgt:{}.{}", fk.from, f));
                let to = g.node(format!("tgt:{}.{}", fk.to, t));
                g.edge(from, to, false);
                for other in &to_attrs {
                    if !fk.to_attrs.contains(other) {
                        let o = g.node(format!("tgt:{}.{}", fk.to, other));
                        g.edge(from, o, true);
                    }
                }
            }
        }
        g
    }

    fn add_mapping(&mut self, input: &LintInput, m: &Mapping) {
        // Equivalence classes over (target var, attr) under target_eqs.
        let mut uf = UnionFind::default();
        for (a, b) in &m.target_eqs {
            let ia = uf.id((a.var, a.attr.clone()));
            let ib = uf.id((b.var, b.attr.clone()));
            uf.union(ia, ib);
        }
        let mut keys: Vec<(usize, String)> = Vec::new();
        for (tv_idx, tv) in m.target_vars.iter().enumerate() {
            let Ok(attrs) = input.target_schema.attributes(&tv.set) else {
                return; // unresolved target side; pass 1 reported it
            };
            for attr in attrs {
                let key = (tv_idx, attr);
                uf.id(key.clone());
                keys.push(key);
            }
        }
        // Which classes have a plain source assignment, and from where.
        let mut class_sources: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        let mut all_sources: Vec<String> = Vec::new();
        for w in &m.wheres {
            let WhereClause::Eq { source, target } = w else {
                continue; // or-groups are ambiguity; pass 3's domain
            };
            let Some(sv) = m.source_vars.get(source.var) else {
                continue;
            };
            let root = {
                let id = uf.id((target.var, target.attr.clone()));
                uf.find(id)
            };
            let name = format!("src:{}.{}", sv.set, source.attr);
            class_sources.entry(root).or_default().push(name.clone());
            all_sources.push(name);
        }
        all_sources.sort();
        all_sources.dedup();
        // Regular edges: assigned source position → every member of the
        // class. Special edges: every assigned source position → every
        // member of an unassigned (existential) class.
        for key in keys {
            let (tv_idx, attr) = &key;
            let root = {
                let id = uf.id((*tv_idx, attr.clone()));
                uf.find(id)
            };
            let tgt = self.node(format!("tgt:{}.{}", m.target_vars[*tv_idx].set, attr));
            match class_sources.get(&root) {
                Some(sources) => {
                    for s in sources {
                        let src = self.node(s.clone());
                        self.edge(src, tgt, false);
                    }
                }
                None => {
                    for s in &all_sources {
                        let src = self.node(s.clone());
                        self.edge(src, tgt, true);
                    }
                }
            }
        }
    }

    fn node(&mut self, name: String) -> usize {
        if let Some(&id) = self.ids.get(&name) {
            return id;
        }
        let id = self.names.len();
        self.ids.insert(name.clone(), id);
        self.names.push(name);
        self.succ.push(Vec::new());
        id
    }

    fn edge(&mut self, from: usize, to: usize, special: bool) {
        if self
            .edges
            .iter()
            .any(|&(f, t, s)| f == from && t == to && s == special)
        {
            return;
        }
        self.edges.push((from, to, special));
        self.succ[from].push(to);
    }

    /// Is `to` reachable from `from` (including `from == to` via a path of
    /// length ≥ 0)?
    fn reaches(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.names.len()];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(n) = stack.pop() {
            for &s in &self.succ[n] {
                if s == to {
                    return true;
                }
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        false
    }
}

#[derive(Default)]
struct UnionFind {
    ids: BTreeMap<(usize, String), usize>,
    parent: Vec<usize>,
}

impl UnionFind {
    fn id(&mut self, key: (usize, String)) -> usize {
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = self.parent.len();
        self.ids.insert(key, id);
        self.parent.push(id);
        id
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{m2, OwnedInput};
    use muse_mapping::PathRef;
    use muse_nr::{Field, ForeignKey, Key, Ty, Value};

    #[test]
    fn fig1_is_weakly_acyclic_with_t002() {
        let owned = OwnedInput::fig1(vec![m2()]);
        let mut out = Vec::new();
        check(&owned.as_input(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].code, "MUSE-T002");
    }

    #[test]
    fn circular_existential_fk_trips_t001() {
        // Target: A(x, y) with fk A.y ⊆ B.u and B(u, v) with fk B.v ⊆ A.x —
        // each referenced tuple invents the other set's remaining attribute,
        // closing a special cycle.
        let mut owned = OwnedInput::fig1(vec![m2()]);
        owned.target_schema = Schema::new(
            "T",
            vec![
                Field::new(
                    "A",
                    Ty::set_of(vec![Field::new("x", Ty::Str), Field::new("y", Ty::Str)]),
                ),
                Field::new(
                    "B",
                    Ty::set_of(vec![Field::new("u", Ty::Str), Field::new("v", Ty::Str)]),
                ),
            ],
        )
        .unwrap();
        owned.target_constraints = Constraints {
            keys: vec![],
            fds: vec![],
            fks: vec![
                ForeignKey::new(
                    SetPath::parse("A"),
                    vec!["y"],
                    SetPath::parse("B"),
                    vec!["u"],
                ),
                ForeignKey::new(
                    SetPath::parse("B"),
                    vec!["v"],
                    SetPath::parse("A"),
                    vec!["x"],
                ),
            ],
        };
        owned.mappings.clear();
        let mut out = Vec::new();
        check(&owned.as_input(), &mut out);
        assert!(
            out.iter().any(|d| d.code == "MUSE-T001"),
            "expected MUSE-T001, got {out:?}"
        );
    }

    #[test]
    fn step_bound_dominates_bindings() {
        // m2 joins Companies ⋈ Projects ⋈ Employees; with key(Companies.cid)
        // the company lookup is key-covered, so the bound is
        // |Projects| · |Employees| — and the actual binding count is ≤ that.
        let owned = OwnedInput::fig1(vec![m2()]);
        let input = owned.as_input();
        let mut inst = Instance::new(input.source_schema);
        let projects = SetPath::parse("Projects");
        let c_id = inst.root_id("Companies").unwrap();
        let p_id = inst.root_id("Projects").unwrap();
        let e_id = inst.root_id("Employees").unwrap();
        for i in 0..3i64 {
            inst.insert(
                c_id,
                vec![Value::int(i), Value::str(format!("c{i}")), Value::str("x")],
            );
            inst.insert(
                e_id,
                vec![
                    Value::str(format!("e{i}")),
                    Value::str(format!("n{i}")),
                    Value::str("@"),
                ],
            );
        }
        for i in 0..4i64 {
            inst.insert(
                p_id,
                vec![
                    Value::str(format!("p{i}")),
                    Value::str(format!("pn{i}")),
                    Value::int(i % 3),
                    Value::str(format!("e{}", i % 3)),
                ],
            );
        }
        let sizes = path_sizes(input.source_schema, &inst);
        assert_eq!(sizes[&projects], 4);
        let bound = chase_step_bound(
            input.source_schema,
            input.source_constraints,
            input.mappings,
            &sizes,
        );
        // Neither Projects nor Employees carries a key, but Companies does:
        // the plan probes it key-covered, so bound = 4 · 3 = 12.
        assert_eq!(bound, 12);
        let metrics = muse_obs::Metrics::enabled();
        muse_chase::chase_with(
            input.source_schema,
            input.target_schema,
            &inst,
            input.mappings,
            &metrics,
        )
        .unwrap();
        let observed = metrics.snapshot().counter("chase.steps");
        assert!(observed <= bound, "observed {observed} > bound {bound}");
        assert_eq!(observed, 4); // each project joins exactly once
    }

    #[test]
    fn keyed_joins_tighten_the_bound() {
        let owned = OwnedInput::fig1(vec![m2()]);
        let input = owned.as_input();
        let mut sizes = BTreeMap::new();
        sizes.insert(SetPath::parse("Companies"), 100u64);
        sizes.insert(SetPath::parse("Projects"), 10u64);
        sizes.insert(SetPath::parse("Employees"), 50u64);
        let with_keys = chase_step_bound(
            input.source_schema,
            input.source_constraints,
            input.mappings,
            &sizes,
        );
        let none = Constraints::none();
        let without = chase_step_bound(input.source_schema, &none, input.mappings, &sizes);
        assert_eq!(with_keys, 10 * 50); // Companies probe is key-covered
        assert_eq!(without, 100 * 10 * 50);
        assert!(with_keys < without);
    }

    #[test]
    fn grouping_key_doesnt_hide_unkeyed_cartesian() {
        // A two-variable mapping with no join at all: bound is the raw
        // product, whatever the constraints say about unrelated sets.
        let mut m = Mapping::new("cart");
        m.source_var("c", SetPath::parse("Companies"));
        m.source_var("e", SetPath::parse("Employees"));
        let o = m.target_var("o", SetPath::parse("Orgs"));
        m.where_eq(PathRef::new(0, "cname"), PathRef::new(o, "oname"));
        let owned = OwnedInput::fig1(vec![m]);
        let input = owned.as_input();
        let mut sizes = BTreeMap::new();
        sizes.insert(SetPath::parse("Companies"), 7u64);
        sizes.insert(SetPath::parse("Employees"), 5u64);
        let bound = chase_step_bound(
            input.source_schema,
            input.source_constraints,
            input.mappings,
            &sizes,
        );
        assert_eq!(bound, 35);
        let keys = Constraints {
            keys: vec![Key::new(SetPath::parse("Companies"), vec!["cid"])],
            fds: vec![],
            fks: vec![],
        };
        // The key never becomes usable — no equality binds Companies.cid.
        assert_eq!(
            chase_step_bound(input.source_schema, &keys, input.mappings, &sizes),
            35
        );
    }
}
