//! Pass 3 — ambiguity and question-budget analysis.
//!
//! Codes:
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | `MUSE-A001` | info | a target attribute with an `or`-group of n alternatives |
//! | `MUSE-A002` | info / warning | worst-case alternative-target-instance count (warning past 64) |
//! | `MUSE-A003` | info | Muse-G question budget per nested set, after key/FD pruning |
//! | `MUSE-A004` | error | `poss` exceeds the 128-attribute FD engine |
//! | `MUSE-A005` | error | non-key attributes determine key attributes (multi-key case) |
//!
//! `MUSE-A002` is the count the paper uses to motivate Muse-D (Sec. IV): an
//! ambiguous mapping with or-groups of sizes `n1…nk` stands for `Πni`
//! alternative target instances, and a naive tool would show them all. The
//! question budget of `MUSE-A003` is computed in [`crate::budget`] by
//! replaying Muse-G's pruning statically.

use muse_mapping::{Mapping, WhereClause};

use crate::budget;
use crate::diag::Diagnostic;
use crate::LintInput;

/// Or-group choice counts above this are escalated from info to warning:
/// past it, enumerating alternatives (what a designer without Muse-D would
/// face) stops being reviewable.
pub const ALTERNATIVES_WARN_LIMIT: usize = 64;

/// Number of alternative interpretations (Sec. IV): the product of the
/// or-group sizes. A mapping without or-groups has exactly one.
///
/// This subsumes the counting logic that used to live in
/// `mapping::ambiguity`; the enumeration/selection machinery
/// (`or_groups`, `select`, `interpretations`) remains there.
pub fn alternatives_count(m: &Mapping) -> usize {
    or_group_sizes(m).iter().map(|&(_, n)| n.max(1)).product()
}

/// The or-groups of `m` as `(where-clause index, alternative count)` pairs.
pub fn or_group_sizes(m: &Mapping) -> Vec<(usize, usize)> {
    m.wheres
        .iter()
        .enumerate()
        .filter_map(|(i, w)| match w {
            WhereClause::OrGroup { alternatives, .. } => Some((i, alternatives.len())),
            WhereClause::Eq { .. } => None,
        })
        .collect()
}

/// Run the pass over every mapping.
pub fn check(input: &LintInput, out: &mut Vec<Diagnostic>) {
    for m in input.mappings {
        check_or_groups(m, out);
        budget::check(m, input, out);
    }
}

fn check_or_groups(m: &Mapping, out: &mut Vec<Diagnostic>) {
    let sizes = or_group_sizes(m);
    for (i, n) in &sizes {
        let target = m.wheres[*i].target();
        let name = m
            .target_vars
            .get(target.var)
            .map(|v| format!("{}.{}", v.name, target.attr))
            .unwrap_or_else(|| format!("#{}.{}", target.var, target.attr));
        out.push(Diagnostic::info(
            "MUSE-A001",
            format!("mappings/{}/where[{}]", m.name, i),
            format!("target attribute {name} is ambiguous: {n} alternative source attributes"),
        ));
    }
    if sizes.is_empty() {
        return;
    }
    let total = alternatives_count(m);
    let d = if total > ALTERNATIVES_WARN_LIMIT {
        Diagnostic::warning(
            "MUSE-A002",
            format!("mappings/{}", m.name),
            format!(
                "mapping stands for {total} alternative target instances \
                 (past the reviewable limit of {ALTERNATIVES_WARN_LIMIT})"
            ),
        )
        .with_suggestion("run Muse-D: it disambiguates in at most ⌈log2⌉ questions per or-group")
    } else {
        Diagnostic::info(
            "MUSE-A002",
            format!("mappings/{}", m.name),
            format!("mapping stands for {total} alternative target instances"),
        )
    };
    out.push(d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{self, OwnedInput};
    use muse_mapping::PathRef;

    fn diags(owned: &OwnedInput) -> Vec<Diagnostic> {
        let input = owned.as_input();
        let mut out = Vec::new();
        check(&input, &mut out);
        out
    }

    /// m2 with `o.oname` contested by cname and location (the paper's m1/m2
    /// ambiguity, folded into one or-mapping).
    fn ambiguous_m2() -> Mapping {
        let mut m = fixtures::m2();
        m.wheres.remove(0); // drop the plain cname = oname clause
        m.or_group(
            PathRef::new(0, "oname"),
            vec![PathRef::new(0, "cname"), PathRef::new(0, "location")],
        );
        m
    }

    #[test]
    fn count_matches_or_group_product() {
        assert_eq!(alternatives_count(&fixtures::m2()), 1);
        assert_eq!(alternatives_count(&ambiguous_m2()), 2);
    }

    #[test]
    fn or_groups_report_a001_and_a002() {
        let owned = OwnedInput::fig1(vec![ambiguous_m2()]);
        let ds = diags(&owned);
        let a1: Vec<_> = ds.iter().filter(|d| d.code == "MUSE-A001").collect();
        assert_eq!(a1.len(), 1, "{ds:?}");
        assert!(a1[0].message.contains("2 alternative"));
        let a2: Vec<_> = ds.iter().filter(|d| d.code == "MUSE-A002").collect();
        assert_eq!(a2.len(), 1);
        assert_eq!(a2[0].severity, crate::Severity::Info);
    }

    #[test]
    fn unambiguous_mapping_has_no_a002() {
        let owned = OwnedInput::fig1(vec![fixtures::m2()]);
        let ds = diags(&owned);
        assert!(!ds.iter().any(|d| d.code == "MUSE-A002"), "{ds:?}");
    }

    #[test]
    fn huge_products_escalate_to_warning() {
        let mut m = fixtures::m2();
        // Seven independent 3-way choices: 3^7 = 2187 > 64. The groups are
        // artificial (conflicting targets are beside the point here).
        for i in 0..7 {
            m.or_group(
                PathRef::new(1, format!("a{i}")),
                vec![
                    PathRef::new(0, "cid"),
                    PathRef::new(0, "cname"),
                    PathRef::new(0, "location"),
                ],
            );
        }
        assert_eq!(alternatives_count(&m), 2187);
        let owned = OwnedInput::fig1(vec![m]);
        let ds = diags(&owned);
        let a2 = ds
            .iter()
            .find(|d| d.code == "MUSE-A002")
            .expect("A002 emitted");
        assert_eq!(a2.severity, crate::Severity::Warning);
    }
}
