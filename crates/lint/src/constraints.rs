//! Pass 2 — constraint analysis.
//!
//! Codes:
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | `MUSE-C001` | error | constraint names a set or attribute the schema doesn't have |
//! | `MUSE-C002` | warning | FD implied by the closure of the other FDs and keys |
//! | `MUSE-C003` | warning | key already implied by the declared FDs alone |
//! | `MUSE-C004` | error | referential constraint whose endpoints don't type-check |
//! | `MUSE-C005` | error | referential constraint with mismatched attribute arity |
//! | `MUSE-C006` | warning | mapping not closed under the source referential constraints |
//! | `MUSE-C007` | error | referential constraints form a cycle |
//!
//! Redundancy (C002/C003) is decided with the `u128`-bitset FD engine of
//! `nr::constraints::fdset` — the same closure machinery the wizards use
//! for key/FD pruning, so "redundant here" means "ignored there".

use std::collections::{BTreeMap, BTreeSet};

use muse_mapping::closure::is_closed_under_source_constraints;
use muse_nr::constraints::fdset::{attrs, AttrSet, FdSet};
use muse_nr::{Constraints, Fd, Key, Schema, SetPath};

use crate::diag::Diagnostic;
use crate::LintInput;

/// Run the pass over both constraint sets and every mapping.
pub fn check(input: &LintInput, out: &mut Vec<Diagnostic>) {
    check_side("source", input.source_schema, input.source_constraints, out);
    check_side("target", input.target_schema, input.target_constraints, out);
    for m in input.mappings {
        match is_closed_under_source_constraints(m, input.source_schema, input.source_constraints) {
            Ok(true) => {}
            Ok(false) => out.push(
                Diagnostic::warning(
                    "MUSE-C006",
                    format!("mappings/{}", m.name),
                    "the for clause is not closed under the source referential constraints; \
                     the chase will add variables the designer never sees"
                        .to_string(),
                )
                .with_suggestion(
                    "run mapping::closure::close_under_source_constraints before presenting it",
                ),
            ),
            // Cyclic constraint sets are reported once, as MUSE-C007 below.
            Err(_) => {}
        }
    }
}

fn check_side(side: &str, schema: &Schema, cons: &Constraints, out: &mut Vec<Diagnostic>) {
    check_resolution(side, schema, cons, out);
    check_fk_shapes(side, schema, cons, out);
    check_fk_cycles(side, cons, out);
    check_redundancy(side, schema, cons, out);
}

/// Does `set.attr` exist as an atomic attribute?
fn resolves(schema: &Schema, set: &SetPath, attr: &str) -> bool {
    schema.atomic_attr_index(set, attr).is_ok()
}

/// C001: every key/FD/FK names an existing set and existing atomic
/// attributes. A per-constraint reimplementation of
/// `Constraints::validate_against_schema`, which stops at the first defect.
fn check_resolution(side: &str, schema: &Schema, cons: &Constraints, out: &mut Vec<Diagnostic>) {
    let mut bad = |path: String, set: &SetPath, names: &[String]| {
        if !schema.has_set(set) {
            out.push(Diagnostic::error(
                "MUSE-C001",
                path,
                format!("schema {} has no set {}", schema.name, set),
            ));
            return;
        }
        for a in names {
            if !resolves(schema, set, a) {
                out.push(Diagnostic::error(
                    "MUSE-C001",
                    path.clone(),
                    format!("{set} has no atomic attribute {a}"),
                ));
            }
        }
    };
    for (i, k) in cons.keys.iter().enumerate() {
        bad(format!("constraints/{side}/key[{i}]"), &k.set, &k.attrs);
    }
    for (i, fd) in cons.fds.iter().enumerate() {
        let path = format!("constraints/{side}/fd[{i}]");
        let both: Vec<String> = fd.lhs.iter().chain(&fd.rhs).cloned().collect();
        bad(path, &fd.set, &both);
    }
    for (i, fk) in cons.fks.iter().enumerate() {
        let path = format!("constraints/{side}/fk[{i}]");
        bad(path.clone(), &fk.from, &fk.from_attrs);
        bad(path, &fk.to, &fk.to_attrs);
    }
}

/// C004 + C005: referential constraints must align positionally and relate
/// same-typed attributes.
fn check_fk_shapes(side: &str, schema: &Schema, cons: &Constraints, out: &mut Vec<Diagnostic>) {
    for (i, fk) in cons.fks.iter().enumerate() {
        let path = format!("constraints/{side}/fk[{i}]");
        if fk.from_attrs.len() != fk.to_attrs.len() {
            out.push(Diagnostic::error(
                "MUSE-C005",
                path,
                format!(
                    "referential constraint relates {} attribute(s) of {} to {} of {}",
                    fk.from_attrs.len(),
                    fk.from,
                    fk.to_attrs.len(),
                    fk.to
                ),
            ));
            continue;
        }
        let ty_of = |set: &SetPath, attr: &str| {
            schema
                .element_record(set)
                .ok()
                .and_then(|rcd| rcd.field(attr))
                .map(|f| f.ty.clone())
                .filter(|t| t.is_atomic())
        };
        for (a, b) in fk.from_attrs.iter().zip(&fk.to_attrs) {
            let (Some(ta), Some(tb)) = (ty_of(&fk.from, a), ty_of(&fk.to, b)) else {
                continue; // unresolved endpoints were reported as MUSE-C001
            };
            if ta != tb {
                out.push(Diagnostic::error(
                    "MUSE-C004",
                    path.clone(),
                    format!(
                        "{}.{} : {:?} cannot reference {}.{} : {:?}",
                        fk.from, a, ta, fk.to, b, tb
                    ),
                ));
            }
        }
    }
}

/// C007: the set-level referential graph must be acyclic, or the mapping
/// closure (`mapping::closure`, capped at 64 rounds) may never converge.
fn check_fk_cycles(side: &str, cons: &Constraints, out: &mut Vec<Diagnostic>) {
    let mut edges: BTreeMap<&SetPath, BTreeSet<&SetPath>> = BTreeMap::new();
    for fk in &cons.fks {
        edges.entry(&fk.from).or_default().insert(&fk.to);
    }
    // Iterative DFS three-coloring over the (tiny) set graph.
    let nodes: Vec<&SetPath> = edges.keys().copied().collect();
    let mut state: BTreeMap<&SetPath, u8> = BTreeMap::new(); // 1 = open, 2 = done
    for &start in &nodes {
        if state.contains_key(start) {
            continue;
        }
        let mut stack = vec![(start, false)];
        while let Some((node, leaving)) = stack.pop() {
            if leaving {
                state.insert(node, 2);
                continue;
            }
            match state.get(node) {
                Some(2) => continue,
                Some(1) => {
                    out.push(Diagnostic::error(
                        "MUSE-C007",
                        format!("constraints/{side}"),
                        format!("referential constraints form a cycle through {node}"),
                    ));
                    state.insert(node, 2);
                    continue;
                }
                _ => {}
            }
            state.insert(node, 1);
            stack.push((node, true));
            for &next in edges.get(node).into_iter().flatten() {
                stack.push((next, false));
            }
        }
    }
}

/// The attribute-index map of one set, or `None` when the set is unknown
/// or too wide for the `u128` engine.
fn index_of(schema: &Schema, set: &SetPath) -> Option<BTreeMap<String, usize>> {
    let names = schema.attributes(set).ok()?;
    if names.len() > 128 {
        return None;
    }
    Some(names.into_iter().enumerate().map(|(i, a)| (a, i)).collect())
}

fn mask(ix: &BTreeMap<String, usize>, names: &[String]) -> Option<AttrSet> {
    names
        .iter()
        .map(|a| ix.get(a).copied())
        .collect::<Option<Vec<_>>>()
        .map(attrs)
}

/// C002 + C003: redundancy under closure, per constrained set.
fn check_redundancy(side: &str, schema: &Schema, cons: &Constraints, out: &mut Vec<Diagnostic>) {
    let mut sets: BTreeSet<&SetPath> = BTreeSet::new();
    sets.extend(cons.keys.iter().map(|k| &k.set));
    sets.extend(cons.fds.iter().map(|fd| &fd.set));
    for set in sets {
        let Some(ix) = index_of(schema, set) else {
            continue; // unknown set (MUSE-C001) or > 128 attributes
        };
        let n = ix.len();
        let keys: Vec<(usize, &Key, AttrSet)> = cons
            .keys
            .iter()
            .enumerate()
            .filter(|(_, k)| &k.set == set)
            .filter_map(|(i, k)| mask(&ix, &k.attrs).map(|m| (i, k, m)))
            .collect();
        let fds: Vec<(usize, &Fd, AttrSet, AttrSet)> = cons
            .fds
            .iter()
            .enumerate()
            .filter(|(_, fd)| &fd.set == set)
            .filter_map(|(i, fd)| {
                let lhs = mask(&ix, &fd.lhs)?;
                let rhs = mask(&ix, &fd.rhs)?;
                Some((i, fd, lhs, rhs))
            })
            .collect();

        // C002: each FD against the closure of everything else.
        for (i, fd, lhs, rhs) in &fds {
            let mut rest = FdSet::new(n);
            for (j, _, l, r) in &fds {
                if j != i {
                    rest.add(*l, *r);
                }
            }
            for (_, _, k) in &keys {
                rest.add_key(*k);
            }
            if rest.implies(*lhs, *rhs) {
                out.push(
                    Diagnostic::warning(
                        "MUSE-C002",
                        format!("constraints/{side}/fd[{i}]"),
                        format!(
                            "FD {} → {} on {} is implied by the other declared constraints",
                            fd.lhs.join(","),
                            fd.rhs.join(","),
                            set
                        ),
                    )
                    .with_suggestion("drop the FD; the closure already enforces it"),
                );
            }
        }

        // C003: each key against the declared FDs alone (not other keys,
        // so legitimate multi-key sets stay silent).
        if !fds.is_empty() {
            let mut fd_only = FdSet::new(n);
            for (_, _, l, r) in &fds {
                fd_only.add(*l, *r);
            }
            for (i, key, kmask) in &keys {
                if fd_only.is_superkey(*kmask) {
                    out.push(
                        Diagnostic::warning(
                            "MUSE-C003",
                            format!("constraints/{side}/key[{i}]"),
                            format!(
                                "key({}) on {} is implied by the declared FDs alone",
                                key.attrs.join(","),
                                set
                            ),
                        )
                        .with_suggestion("the FDs already make these attributes a superkey"),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{self, OwnedInput};
    use muse_nr::ForeignKey;

    fn diags(owned: &OwnedInput) -> Vec<Diagnostic> {
        let input = owned.as_input();
        let mut out = Vec::new();
        check(&input, &mut out);
        out
    }

    fn codes(ds: &[Diagnostic]) -> Vec<&'static str> {
        ds.iter().map(|d| d.code).collect()
    }

    #[test]
    fn fig1_constraints_are_clean() {
        let owned = OwnedInput::fig1(vec![fixtures::m2()]);
        assert!(diags(&owned).is_empty(), "{:?}", diags(&owned));
    }

    #[test]
    fn dangling_constraint_is_c001() {
        let mut owned = OwnedInput::fig1(vec![]);
        owned
            .source_constraints
            .keys
            .push(Key::new(SetPath::parse("Companies"), vec!["ghost"]));
        owned
            .source_constraints
            .fds
            .push(Fd::new(SetPath::parse("Nowhere"), vec!["a"], vec!["b"]));
        let ds = diags(&owned);
        assert_eq!(
            codes(&ds).iter().filter(|c| **c == "MUSE-C001").count(),
            2,
            "{ds:?}"
        );
    }

    #[test]
    fn redundant_fd_is_c002() {
        let mut owned = OwnedInput::fig1(vec![]);
        // key(Companies.cid) already implies cid → cname.
        owned.source_constraints.fds.push(Fd::new(
            SetPath::parse("Companies"),
            vec!["cid"],
            vec!["cname"],
        ));
        let ds = diags(&owned);
        assert!(codes(&ds).contains(&"MUSE-C002"), "{ds:?}");
    }

    #[test]
    fn fd_implied_key_is_c003() {
        let mut owned = OwnedInput::fig1(vec![]);
        owned.source_constraints.fds.push(Fd::new(
            SetPath::parse("Employees"),
            vec!["eid"],
            vec!["ename", "contact"],
        ));
        owned
            .source_constraints
            .keys
            .push(Key::new(SetPath::parse("Employees"), vec!["eid"]));
        let ds = diags(&owned);
        assert!(codes(&ds).contains(&"MUSE-C003"), "{ds:?}");
    }

    #[test]
    fn two_candidate_keys_without_fds_are_silent() {
        let mut owned = OwnedInput::fig1(vec![]);
        owned
            .source_constraints
            .keys
            .push(Key::new(SetPath::parse("Companies"), vec!["cname"]));
        let ds = diags(&owned);
        assert!(!codes(&ds).contains(&"MUSE-C003"), "{ds:?}");
    }

    #[test]
    fn fk_type_mismatch_is_c004() {
        let mut owned = OwnedInput::fig1(vec![]);
        // Projects.pid : Str cannot reference Companies.cid : Int.
        owned.source_constraints.fks.push(ForeignKey::new(
            SetPath::parse("Projects"),
            vec!["pid"],
            SetPath::parse("Companies"),
            vec!["cid"],
        ));
        let ds = diags(&owned);
        assert!(codes(&ds).contains(&"MUSE-C004"), "{ds:?}");
    }

    #[test]
    fn fk_arity_mismatch_is_c005() {
        let mut owned = OwnedInput::fig1(vec![]);
        owned.source_constraints.fks.push(ForeignKey {
            from: SetPath::parse("Projects"),
            from_attrs: vec!["cid".into(), "manager".into()],
            to: SetPath::parse("Companies"),
            to_attrs: vec!["cid".into()],
        });
        let ds = diags(&owned);
        assert!(codes(&ds).contains(&"MUSE-C005"), "{ds:?}");
    }

    #[test]
    fn fk_cycle_is_c007() {
        let mut owned = OwnedInput::fig1(vec![]);
        owned.source_constraints.fks.push(ForeignKey::new(
            SetPath::parse("Companies"),
            vec!["cid"],
            SetPath::parse("Projects"),
            vec!["cid"],
        ));
        let ds = diags(&owned);
        assert!(codes(&ds).contains(&"MUSE-C007"), "{ds:?}");
    }

    #[test]
    fn unclosed_mapping_is_c006() {
        // A mapping over Projects alone: f1 and f2 require Companies and
        // Employees variables, so the closure would extend it.
        let mut m = muse_mapping::Mapping::new("m_open");
        let p = m.source_var("p", SetPath::parse("Projects"));
        let o = m.target_var("o", SetPath::parse("Orgs"));
        m.where_eq(
            muse_mapping::PathRef::new(p, "pname"),
            muse_mapping::PathRef::new(o, "oname"),
        );
        let owned = OwnedInput::fig1(vec![m]);
        let ds = diags(&owned);
        assert!(codes(&ds).contains(&"MUSE-C006"), "{ds:?}");
    }
}
