//! Integration tests of the `iso.*` instrumentation: the fingerprint
//! fast path and the full search must be counted exactly.

use muse_chase::isomorphic_with;
use muse_nr::{Field, Instance, InstanceBuilder, Schema, Ty, Value};
use muse_obs::Metrics;

fn schema() -> Schema {
    Schema::new(
        "T",
        vec![Field::new(
            "Orgs",
            Ty::set_of(vec![
                Field::new("oname", Ty::Str),
                Field::new("Projects", Ty::set_of(vec![Field::new("pname", Ty::Int)])),
            ]),
        )],
    )
    .unwrap()
}

fn build(groups: &[(u8, Vec<u8>)]) -> Instance {
    let s = schema();
    let mut b = InstanceBuilder::new(&s);
    for (i, (name, members)) in groups.iter().enumerate() {
        let id = b.group("Orgs.Projects", vec![Value::int(i as i64)]);
        for m in members {
            b.push(id, vec![Value::int(*m as i64)]);
        }
        b.push_top(
            "Orgs",
            vec![Value::str(format!("org{name}")), Value::Set(id)],
        );
    }
    b.finish().unwrap()
}

#[test]
fn fingerprint_mismatch_counts_as_reject() {
    // Different tuple counts ⇒ different fingerprints ⇒ no full search.
    let a = build(&[(1, vec![1, 2])]);
    let b = build(&[(1, vec![1, 2]), (2, vec![3])]);
    let metrics = Metrics::enabled();
    assert!(!isomorphic_with(&a, &b, &metrics));
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("iso.checks"), 1);
    assert_eq!(snap.counter("iso.fingerprint_reject"), 1);
    assert_eq!(snap.counter("iso.full_search"), 0);
    assert_eq!(
        snap.timer("iso.search_time").count,
        0,
        "fast path reads no clock"
    );
}

#[test]
fn matching_fingerprints_fall_through_to_full_search() {
    let a = build(&[(1, vec![1, 2]), (2, vec![3])]);
    let b = build(&[(1, vec![1, 2]), (2, vec![3])]);
    let metrics = Metrics::enabled();
    assert!(isomorphic_with(&a, &b, &metrics));
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("iso.checks"), 1);
    assert_eq!(snap.counter("iso.fingerprint_reject"), 0);
    assert_eq!(snap.counter("iso.full_search"), 1);
    assert_eq!(snap.timer("iso.search_time").count, 1);
}

#[test]
fn mixed_sequence_accumulates_both_paths() {
    let a = build(&[(1, vec![1])]);
    let same = build(&[(1, vec![1])]);
    let bigger = build(&[(1, vec![1]), (2, vec![2, 3])]);
    let metrics = Metrics::enabled();
    assert!(isomorphic_with(&a, &same, &metrics));
    assert!(!isomorphic_with(&a, &bigger, &metrics));
    assert!(!isomorphic_with(&bigger, &a, &metrics));
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("iso.checks"), 3);
    assert_eq!(snap.counter("iso.fingerprint_reject"), 2);
    assert_eq!(snap.counter("iso.full_search"), 1);
}
