//! Serial-vs-parallel differential harness for the chase.
//!
//! For every bundled scenario and a spread of generator seeds, the parallel
//! chase must agree with the serial chase at several thread counts. Two
//! levels of agreement are checked:
//!
//! * **Isomorphism** (the formal requirement): the instances are equal up
//!   to a renaming of SetIDs and labeled nulls, via the injective
//!   homomorphism search of `muse_chase::hom`.
//! * **Render equality** (what the merge actually guarantees): because the
//!   merge re-interns partial stores in unit order, the parallel result is
//!   not merely isomorphic but *identical* — same ids, same rendering.

use muse_chase::{chase, chase_par, isomorphic};
use muse_mapping::{ambiguity, Mapping};
use muse_nr::display;
use muse_scenarios::{all_scenarios, Scenario};

/// Scale factor over each scenario's default size: keeps the full
/// scenarios × seeds × thread-counts matrix fast while still producing
/// instances with hundreds of tuples.
const SCALE: f64 = 0.02;

/// Smaller scale for the isomorphism matrix: the injective homomorphism
/// search is superlinear in instance size, and the render-equality test
/// already covers [`SCALE`]-sized instances with a stricter check.
const ISO_SCALE: f64 = 0.005;

/// The injective homomorphism search recurses once per target tuple, which
/// overflows the default 2 MiB test-thread stack on chased scenario
/// instances. Run deep-recursion test bodies on a roomier stack.
fn with_big_stack(f: impl FnOnce() + Send + 'static) {
    std::thread::Builder::new()
        .stack_size(256 * 1024 * 1024)
        .spawn(f)
        .expect("spawn big-stack thread")
        .join()
        .expect("test body panicked");
}

/// Chase-ready mappings: ambiguous mappings resolved to their first
/// interpretation, missing groupings defaulted.
fn ready_mappings(s: &Scenario) -> Vec<Mapping> {
    s.mappings()
        .expect("scenario mappings generate")
        .iter()
        .map(|m| {
            let mut m = if m.is_ambiguous() {
                let picks = vec![0usize; ambiguity::or_groups(m).len()];
                ambiguity::select(m, &picks).expect("first interpretation")
            } else {
                m.clone()
            };
            m.ensure_default_groupings(&s.target_schema, &s.source_schema)
                .expect("default groupings");
            m
        })
        .collect()
}

#[test]
fn parallel_chase_is_isomorphic_to_serial() {
    with_big_stack(|| {
        for s in all_scenarios() {
            let mappings = ready_mappings(&s);
            for seed in 0..8u64 {
                let source = s.instance(s.default_scale * ISO_SCALE, seed);
                let serial = chase(&s.source_schema, &s.target_schema, &source, &mappings)
                    .unwrap_or_else(|e| panic!("{} seed {seed}: serial chase: {e}", s.name));
                assert!(
                    !serial.is_empty(),
                    "{} seed {seed}: differential test chased an empty instance",
                    s.name
                );
                for threads in [1, 2, 8] {
                    let par = chase_par(
                        &s.source_schema,
                        &s.target_schema,
                        &source,
                        &mappings,
                        threads,
                    )
                    .unwrap_or_else(|e| {
                        panic!(
                            "{} seed {seed} threads {threads}: parallel chase: {e}",
                            s.name
                        )
                    });
                    assert!(
                        isomorphic(&serial, &par),
                        "{} seed {seed} threads {threads}: parallel result not isomorphic to serial",
                        s.name
                    );
                }
            }
        }
    });
}

#[test]
fn parallel_chase_renders_identically_to_serial() {
    for s in all_scenarios() {
        let mappings = ready_mappings(&s);
        for seed in 0..3u64 {
            let source = s.instance(s.default_scale * SCALE, seed);
            let serial = chase(&s.source_schema, &s.target_schema, &source, &mappings).unwrap();
            let expected = display::render(&s.target_schema, &serial);
            for threads in [2, 8] {
                let par = chase_par(
                    &s.source_schema,
                    &s.target_schema,
                    &source,
                    &mappings,
                    threads,
                )
                .unwrap();
                let got = display::render(&s.target_schema, &par);
                assert_eq!(
                    got, expected,
                    "{} seed {seed} threads {threads}: parallel render differs from serial",
                    s.name
                );
            }
        }
    }
}

#[test]
fn parallel_chase_counts_match_serial() {
    use muse_obs::Metrics;

    let s = &all_scenarios()[0];
    let mappings = ready_mappings(s);
    let source = s.instance(s.default_scale * SCALE, 1);

    let serial_m = Metrics::enabled();
    let serial = muse_chase::chase_with(
        &s.source_schema,
        &s.target_schema,
        &source,
        &mappings,
        &serial_m,
    )
    .unwrap();
    let par_m = Metrics::enabled();
    let par = muse_chase::chase_par_with(
        &s.source_schema,
        &s.target_schema,
        &source,
        &mappings,
        4,
        &par_m,
    )
    .unwrap();

    assert_eq!(serial.total_tuples(), par.total_tuples());
    let (sm, pm) = (serial_m.snapshot(), par_m.snapshot());
    for key in [
        "chase.mappings",
        "chase.bindings",
        "chase.tuples_emitted",
        "chase.dedup_hits",
    ] {
        assert_eq!(sm.counter(key), pm.counter(key), "counter {key} diverged");
    }
    assert!(pm.counter("par.rounds") >= 1, "parallel path not exercised");
    assert!(pm.timers.contains_key("chase.par_time"));
}
