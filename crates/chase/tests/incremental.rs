//! Incremental-vs-scratch chase differentials (ROADMAP item 2).
//!
//! The [`muse_chase::DeltaStore`] contract is *byte identity*: whatever the
//! scratch chase produces — renderings, `Debug` state, `TermStore` null and
//! SetID numbering — the incremental path must reproduce exactly, across
//! materialization, retract/assert deltas, delete/rederive cycles, restored
//! snapshots and parallel re-fires. These tests drive all of that over the
//! four paper scenarios plus a hand-built high-volume scenario.

use muse_chase::{chase_one, DeltaStore};
use muse_mapping::Mapping;
use muse_nr::{display, Atom, Instance, Schema, Value};
use muse_obs::{Budget, Metrics, Outcome, Rng};
use muse_scenarios::{all_scenarios, Scenario};

/// Ambiguity resolved to the first interpretation, groupings defaulted —
/// the same normalization the bench drivers use.
fn ready_mappings(s: &Scenario) -> Vec<Mapping> {
    let mut ms: Vec<Mapping> = s
        .mappings()
        .expect("scenario mappings generate")
        .iter()
        .map(|m| {
            if m.is_ambiguous() {
                let picks = vec![0usize; muse_mapping::ambiguity::or_groups(m).len()];
                muse_mapping::ambiguity::select(m, &picks).expect("first interpretation")
            } else {
                m.clone()
            }
        })
        .collect();
    for m in &mut ms {
        m.ensure_default_groupings(&s.target_schema, &s.source_schema)
            .expect("default groupings");
    }
    ms
}

/// Byte-level identity: full `Debug` state (covers the `TermStore` id
/// numbering) plus the designer-facing rendering.
fn assert_identical(schema: &Schema, scratch: &Instance, incremental: &Instance, what: &str) {
    assert_eq!(
        display::render(schema, scratch),
        display::render(schema, incremental),
        "render mismatch: {what}"
    );
    assert_eq!(
        display::dump(scratch),
        display::dump(incremental),
        "byte mismatch: {what}"
    );
}

fn incremental_chase(
    store: &DeltaStore,
    s: &Scenario,
    inst: &Instance,
    m: &Mapping,
    metrics: &Metrics,
) -> Instance {
    match store
        .chase_one(
            &s.source_schema,
            &s.target_schema,
            inst,
            m,
            None,
            Budget::unlimited_ref(),
            metrics,
        )
        .expect("incremental chase")
    {
        Outcome::Complete(t) => t,
        Outcome::Truncated { .. } => panic!("unlimited budget truncated"),
    }
}

/// Perturb one flat root set: remove a seeded existing tuple and insert a
/// mutated copy of another. Returns false when the instance has no
/// populated root to mutate.
fn perturb(inst: &mut Instance, rng: &mut Rng) -> bool {
    let roots: Vec<_> = inst.roots().map(|(_, id)| id).collect();
    let populated: Vec<_> = roots
        .into_iter()
        .filter(|&id| inst.set_len(id) > 0)
        .collect();
    if populated.is_empty() {
        return false;
    }
    let id = *rng.pick(&populated);
    let tuples: Vec<_> = inst.tuples(id).cloned().collect();
    let victim = rng.pick(&tuples).clone();
    inst.remove(id, &victim);
    let mut mutated = rng.pick(&tuples).clone();
    let salt = rng.below(1 << 20) as i64;
    for v in &mut mutated {
        match v {
            Value::Atom(Atom::Int(i)) => *v = Value::int(*i + salt),
            Value::Atom(Atom::Str(s)) => *v = Value::str(format!("{s}-d{salt}")),
            _ => {}
        }
    }
    inst.insert(id, mutated);
    true
}

/// Every scenario, several seeds: materialize, then a run of retract/assert
/// deltas; after every step the incremental chase must be byte-identical to
/// a scratch chase of the same instance, and the counters must reconcile
/// (`steps + rederived == bindings == scratch steps`).
#[test]
fn incremental_matches_scratch_across_scenarios() {
    for s in all_scenarios() {
        for seed in [0u64, 7] {
            let mut inst = s.instance(0.02 * s.default_scale, seed);
            let store = DeltaStore::new();
            let mut rng = Rng::new(seed ^ 0xD31A);
            let mappings = ready_mappings(&s);
            for step in 0..3 {
                for m in &mappings {
                    let scratch_metrics = Metrics::enabled();
                    let scratch = muse_chase::chase_one_budget_planned_with(
                        &s.source_schema,
                        &s.target_schema,
                        &inst,
                        m,
                        None,
                        Budget::unlimited_ref(),
                        &scratch_metrics,
                    )
                    .expect("scratch chase")
                    .into_value();
                    let inc_metrics = Metrics::enabled();
                    let inc = incremental_chase(&store, &s, &inst, m, &inc_metrics);
                    assert_identical(
                        &s.target_schema,
                        &scratch,
                        &inc,
                        &format!("{}/{} seed {seed} step {step}", s.name, m.name),
                    );
                    let ss = scratch_metrics.snapshot();
                    let is = inc_metrics.snapshot();
                    if is.counter("chase.delta_fallbacks") == 0 {
                        assert_eq!(
                            is.counter("chase.steps") + is.counter("chase.rederived"),
                            ss.counter("chase.steps"),
                            "{}/{}: counter reconciliation",
                            s.name,
                            m.name
                        );
                        assert_eq!(is.counter("chase.bindings"), ss.counter("chase.bindings"));
                        assert_eq!(
                            is.counter("chase.tuples_emitted"),
                            ss.counter("chase.tuples_emitted")
                        );
                        assert_eq!(
                            is.counter("chase.dedup_hits"),
                            ss.counter("chase.dedup_hits")
                        );
                    }
                }
                if !perturb(&mut inst, &mut rng) {
                    break;
                }
            }
        }
    }
}

/// Delete/rederive property: retracting tuples and re-asserting the exact
/// same ones must land back on an instance byte-identical to the scratch
/// chase of the original — including `TermStore` null/SetID numbering.
#[test]
fn delete_rederive_roundtrip() {
    for s in all_scenarios() {
        for seed in [3u64] {
            let inst0 = s.instance(0.02 * s.default_scale, seed);
            let mut rng = Rng::new(seed.wrapping_mul(0x9E37_79B9));
            let mut scenario_retracted = 0u64;
            let mut scenario_fallbacks = 0u64;
            for m in ready_mappings(&s) {
                let store = DeltaStore::new();
                let metrics = Metrics::enabled();
                // Materialize on the original instance.
                let _ = incremental_chase(&store, &s, &inst0, &m, &metrics);
                // Retract a batch of source tuples from the roots the
                // mapping actually ranges over (so retractions can bite).
                let mut shrunk = inst0.clone();
                let mut retracted = Vec::new();
                for _ in 0..3 {
                    let populated: Vec<_> = m
                        .source_vars
                        .iter()
                        .filter(|v| v.parent.is_none())
                        .filter_map(|v| shrunk.root_id(v.set.label()))
                        .filter(|&id| shrunk.set_len(id) > 0)
                        .collect();
                    if populated.is_empty() {
                        break;
                    }
                    let id = *rng.pick(&populated);
                    let victim = rng
                        .pick(&shrunk.tuples(id).cloned().collect::<Vec<_>>())
                        .clone();
                    shrunk.remove(id, &victim);
                    retracted.push((id, victim));
                }
                let after_retract = incremental_chase(&store, &s, &shrunk, &m, &metrics);
                assert_identical(
                    &s.target_schema,
                    &chase_one(&s.source_schema, &s.target_schema, &shrunk, &m)
                        .expect("scratch chase of shrunk instance"),
                    &after_retract,
                    &format!("{}/{} after retract", s.name, m.name),
                );
                // Re-assert the same tuples: back to the original instance.
                let mut restored = shrunk;
                for (id, t) in retracted {
                    restored.insert(id, t);
                }
                let after_reassert = incremental_chase(&store, &s, &restored, &m, &metrics);
                assert_identical(
                    &s.target_schema,
                    &chase_one(&s.source_schema, &s.target_schema, &inst0, &m)
                        .expect("scratch chase of original"),
                    &after_reassert,
                    &format!("{}/{} after re-assert", s.name, m.name),
                );
                let snap = metrics.snapshot();
                scenario_retracted += snap.counter("chase.retracted");
                scenario_fallbacks += snap.counter("chase.delta_fallbacks");
            }
            // A single removed tuple may participate in no binding, but
            // across a scenario's mappings the retraction path must bite
            // (or every mapping legitimately fell back to scratch).
            assert!(
                scenario_retracted > 0 || scenario_fallbacks > 0,
                "{}: retraction path never exercised",
                s.name
            );
        }
    }
}

/// A flat two-relation scenario big enough to cross the parallel re-fire
/// threshold: `threads > 1` must stay byte-identical (unit-order merge).
#[test]
fn parallel_refire_is_byte_identical() {
    use muse_nr::{Field, Ty};
    let source = Schema::new(
        "Src",
        vec![Field::new(
            "items",
            Ty::set_of(vec![
                Field::new("k", Ty::Int),
                Field::new("name", Ty::Str),
                Field::new("grp", Ty::Int),
            ]),
        )],
    )
    .unwrap();
    let target = Schema::new(
        "Tgt",
        vec![Field::new(
            "Groups",
            Ty::set_of(vec![
                Field::new("grp", Ty::Int),
                Field::new(
                    "Items",
                    Ty::set_of(vec![Field::new("k", Ty::Int), Field::new("name", Ty::Str)]),
                ),
            ]),
        )],
    )
    .unwrap();
    let mut ms = muse_mapping::parse(
        "m: for i in Src.items
            exists g in Tgt.Groups, t in g.Items
            where i.grp = g.grp and i.k = t.k and i.name = t.name
            group g.Items by (i.grp)",
    )
    .unwrap();
    let m = ms.remove(0);
    let mut inst = Instance::new(&source);
    let root = inst.root_id("items").unwrap();
    for k in 0..600i64 {
        inst.insert(
            root,
            vec![
                Value::int(k),
                Value::str(format!("item-{k}")),
                Value::int(k % 13),
            ],
        );
    }
    let store = DeltaStore::with_threads(4);
    let metrics = Metrics::enabled();
    // Materialize, then force a delta so the parallel path re-fires a
    // large live set.
    let _ = store
        .chase_one(
            &source,
            &target,
            &inst,
            &m,
            None,
            Budget::unlimited_ref(),
            &metrics,
        )
        .unwrap();
    inst.remove(
        root,
        &vec![Value::int(17), Value::str("item-17"), Value::int(17 % 13)],
    );
    inst.insert(
        root,
        vec![Value::int(1000), Value::str("item-1000"), Value::int(5)],
    );
    let inc = match store
        .chase_one(
            &source,
            &target,
            &inst,
            &m,
            None,
            Budget::unlimited_ref(),
            &metrics,
        )
        .unwrap()
    {
        Outcome::Complete(t) => t,
        Outcome::Truncated { .. } => panic!("truncated"),
    };
    let scratch = chase_one(&source, &target, &inst, &m).unwrap();
    assert_identical(&target, &scratch, &inc, "parallel refire");
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("chase.delta_hits"), 1);
    assert_eq!(snap.counter("chase.retracted"), 1);
    assert_eq!(snap.counter("chase.delta_facts"), 1);
    assert!(snap.counter("par.rounds") > 0, "parallel refire never ran");
}

/// Export/import roundtrip: a restored store must answer the next chase as
/// a delta over the snapshot (a hit, not a rematerialization) and stay
/// byte-identical; a corrupted blob must be rejected wholesale.
#[test]
fn snapshot_roundtrip_restores_delta_state() {
    let s = all_scenarios().remove(0); // Mondial
    let mut inst = s.instance(0.02 * s.default_scale, 11);
    let m = ready_mappings(&s).remove(0);
    let store = DeltaStore::new();
    let metrics = Metrics::enabled();
    let _ = incremental_chase(&store, &s, &inst, &m, &metrics);
    let blob = store.export_json();

    let restored = DeltaStore::new();
    assert!(restored.import_json(&blob), "roundtrip import");
    assert_eq!(restored.len(), store.len());
    let mut rng = Rng::new(99);
    assert!(perturb(&mut inst, &mut rng));
    let restored_metrics = Metrics::enabled();
    let inc = incremental_chase(&restored, &s, &inst, &m, &restored_metrics);
    let scratch = chase_one(&s.source_schema, &s.target_schema, &inst, &m).unwrap();
    assert_identical(&s.target_schema, &scratch, &inc, "restored store chase");
    let snap = restored_metrics.snapshot();
    assert_eq!(
        snap.counter("chase.delta_hits"),
        1,
        "restored state not reused"
    );
    assert_eq!(snap.counter("chase.delta_misses"), 0);

    // Round-trip through text (what the WAL stores) and reject corruption.
    let reparsed = muse_obs::json::Json::parse(&blob.render()).unwrap();
    assert!(DeltaStore::new().import_json(&reparsed));
    assert!(
        !DeltaStore::new().import_json(&muse_obs::json::Json::obj(vec![(
            "v",
            muse_obs::json::Json::Int(2)
        )]))
    );
}
