//! Algebraic properties of homomorphisms and isomorphism over random
//! instances: reflexivity, symmetry of isomorphism, hom into supersets,
//! and behaviour on `Choice` values.

use muse_chase::{find_homomorphism, find_injective_homomorphism, isomorphic};
use muse_nr::{Field, Instance, InstanceBuilder, Schema, Ty, Value};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::new(
        "T",
        vec![Field::new(
            "Orgs",
            Ty::set_of(vec![
                Field::new("oname", Ty::Str),
                Field::new("Projects", Ty::set_of(vec![Field::new("pname", Ty::Int)])),
            ]),
        )],
    )
    .unwrap()
}

/// Random nested instances: up to 4 groups with up to 4 int members each.
fn instances() -> impl Strategy<Value = Vec<(u8, Vec<u8>)>> {
    prop::collection::vec((0u8..4, prop::collection::vec(0u8..5, 0..4)), 0..4)
}

fn build(groups: &[(u8, Vec<u8>)]) -> Instance {
    let s = schema();
    let mut b = InstanceBuilder::new(&s);
    for (i, (name, members)) in groups.iter().enumerate() {
        let id = b.group("Orgs.Projects", vec![Value::int(i as i64)]);
        for m in members {
            b.push(id, vec![Value::int(*m as i64)]);
        }
        b.push_top("Orgs", vec![Value::str(format!("org{name}")), Value::Set(id)]);
    }
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn isomorphism_is_reflexive(g in instances()) {
        let a = build(&g);
        prop_assert!(isomorphic(&a, &a));
        prop_assert!(find_homomorphism(&a, &a).is_some());
        prop_assert!(find_injective_homomorphism(&a, &a).is_some());
    }

    #[test]
    fn instances_map_into_their_supersets(g in instances(), extra in instances()) {
        let a = build(&g);
        let mut both = g.clone();
        both.extend(extra);
        let b = build(&both);
        prop_assert!(find_homomorphism(&a, &b).is_some());
    }

    #[test]
    fn isomorphism_is_symmetric(g in instances(), h in instances()) {
        let a = build(&g);
        let b = build(&h);
        prop_assert_eq!(isomorphic(&a, &b), isomorphic(&b, &a));
    }

    #[test]
    fn homomorphisms_compose(g in instances(), extra1 in instances(), extra2 in instances()) {
        // a ⊆ b ⊆ c: homs exist along the chain and transitively.
        let a = build(&g);
        let mut gb = g.clone();
        gb.extend(extra1);
        let b = build(&gb);
        let mut gc = gb.clone();
        gc.extend(extra2);
        let c = build(&gc);
        prop_assert!(find_homomorphism(&a, &b).is_some());
        prop_assert!(find_homomorphism(&b, &c).is_some());
        prop_assert!(find_homomorphism(&a, &c).is_some());
    }
}

#[test]
fn choice_values_must_match_label_and_inner() {
    let schema = Schema::new(
        "S",
        vec![Field::new(
            "A",
            Ty::set_of(vec![Field::new(
                "c",
                Ty::Choice(vec![Field::new("l", Ty::Int), Field::new("r", Ty::Str)]),
            )]),
        )],
    )
    .unwrap();
    let make = |v: Value| {
        let mut i = Instance::new(&schema);
        let root = i.root_id("A").unwrap();
        i.insert(root, vec![v]);
        i
    };
    let left1 = make(Value::Choice("l".into(), Box::new(Value::int(1))));
    let left1b = make(Value::Choice("l".into(), Box::new(Value::int(1))));
    let left2 = make(Value::Choice("l".into(), Box::new(Value::int(2))));
    let right = make(Value::Choice("r".into(), Box::new(Value::str("1"))));

    assert!(isomorphic(&left1, &left1b));
    assert!(find_homomorphism(&left1, &left2).is_none(), "different inner constants");
    assert!(find_homomorphism(&left1, &right).is_none(), "different labels");
}

#[test]
fn many_twin_sets_match_quickly() {
    // Regression test: two instances with ~30 pairs of content-identical
    // ("twin") sets used to blow up the old enumerate-all-set-assignments
    // search exponentially. The forced-propagation search must decide both
    // directions in well under a second.
    use std::time::Instant;
    let s = Schema::new(
        "W",
        vec![Field::new(
            "Root",
            Ty::set_of(vec![
                Field::new("k", Ty::Int),
                Field::new("Kids", Ty::set_of(vec![Field::new("x", Ty::Int)])),
            ]),
        )],
    )
    .unwrap();
    let make = |flip: bool| {
        let mut b = InstanceBuilder::new(&s);
        for i in 0..30i64 {
            // Twin sets: identical contents, distinguished only by their
            // grouping arguments and owning tuples.
            let id = b.group("Root.Kids", vec![Value::int(if flip { 1000 + i } else { i })]);
            b.push(id, vec![Value::int(7)]);
            b.push_top("Root", vec![Value::int(i), Value::Set(id)]);
        }
        b.finish().unwrap()
    };
    let a = make(false);
    let b = make(true);
    let t0 = Instant::now();
    assert!(isomorphic(&a, &b));
    assert!(find_homomorphism(&a, &b).is_some());
    assert!(t0.elapsed() < std::time::Duration::from_secs(2), "took {:?}", t0.elapsed());
}
