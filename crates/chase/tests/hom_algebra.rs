//! Algebraic properties of homomorphisms and isomorphism over random
//! instances: reflexivity, symmetry of isomorphism, hom into supersets,
//! and behaviour on `Choice` values. Driven by the deterministic SplitMix64
//! generator, so every run checks the same cases.

use muse_chase::{find_homomorphism, find_injective_homomorphism, isomorphic};
use muse_nr::{Field, Instance, InstanceBuilder, Schema, Ty, Value};
use muse_obs::Rng;

fn schema() -> Schema {
    Schema::new(
        "T",
        vec![Field::new(
            "Orgs",
            Ty::set_of(vec![
                Field::new("oname", Ty::Str),
                Field::new("Projects", Ty::set_of(vec![Field::new("pname", Ty::Int)])),
            ]),
        )],
    )
    .unwrap()
}

/// A random nested-instance shape: up to 4 groups with up to 4 int members
/// each.
fn random_groups(rng: &mut Rng) -> Vec<(u8, Vec<u8>)> {
    let n = rng.index(4);
    (0..n)
        .map(|_| {
            let name = rng.below(4) as u8;
            let members = (0..rng.index(4)).map(|_| rng.below(5) as u8).collect();
            (name, members)
        })
        .collect()
}

fn build(groups: &[(u8, Vec<u8>)]) -> Instance {
    let s = schema();
    let mut b = InstanceBuilder::new(&s);
    for (i, (name, members)) in groups.iter().enumerate() {
        let id = b.group("Orgs.Projects", vec![Value::int(i as i64)]);
        for m in members {
            b.push(id, vec![Value::int(*m as i64)]);
        }
        b.push_top(
            "Orgs",
            vec![Value::str(format!("org{name}")), Value::Set(id)],
        );
    }
    b.finish().unwrap()
}

#[test]
fn isomorphism_is_reflexive() {
    let mut rng = Rng::new(0x4EF1);
    for case in 0..64 {
        let a = build(&random_groups(&mut rng));
        assert!(isomorphic(&a, &a), "case {case}");
        assert!(find_homomorphism(&a, &a).is_some(), "case {case}");
        assert!(find_injective_homomorphism(&a, &a).is_some(), "case {case}");
    }
}

#[test]
fn instances_map_into_their_supersets() {
    let mut rng = Rng::new(0x50B5E7);
    for case in 0..64 {
        let g = random_groups(&mut rng);
        let extra = random_groups(&mut rng);
        let a = build(&g);
        let mut both = g.clone();
        both.extend(extra);
        let b = build(&both);
        assert!(find_homomorphism(&a, &b).is_some(), "case {case}");
    }
}

#[test]
fn isomorphism_is_symmetric() {
    let mut rng = Rng::new(0x5133);
    for case in 0..64 {
        let a = build(&random_groups(&mut rng));
        let b = build(&random_groups(&mut rng));
        assert_eq!(isomorphic(&a, &b), isomorphic(&b, &a), "case {case}");
    }
}

#[test]
fn homomorphisms_compose() {
    let mut rng = Rng::new(0xC0_3905E);
    for case in 0..64 {
        // a ⊆ b ⊆ c: homs exist along the chain and transitively.
        let g = random_groups(&mut rng);
        let a = build(&g);
        let mut gb = g.clone();
        gb.extend(random_groups(&mut rng));
        let b = build(&gb);
        let mut gc = gb.clone();
        gc.extend(random_groups(&mut rng));
        let c = build(&gc);
        assert!(find_homomorphism(&a, &b).is_some(), "case {case}");
        assert!(find_homomorphism(&b, &c).is_some(), "case {case}");
        assert!(find_homomorphism(&a, &c).is_some(), "case {case}");
    }
}

#[test]
fn choice_values_must_match_label_and_inner() {
    let schema = Schema::new(
        "S",
        vec![Field::new(
            "A",
            Ty::set_of(vec![Field::new(
                "c",
                Ty::Choice(vec![Field::new("l", Ty::Int), Field::new("r", Ty::Str)]),
            )]),
        )],
    )
    .unwrap();
    let make = |v: Value| {
        let mut i = Instance::new(&schema);
        let root = i.root_id("A").unwrap();
        i.insert(root, vec![v]);
        i
    };
    let left1 = make(Value::Choice("l".into(), Box::new(Value::int(1))));
    let left1b = make(Value::Choice("l".into(), Box::new(Value::int(1))));
    let left2 = make(Value::Choice("l".into(), Box::new(Value::int(2))));
    let right = make(Value::Choice("r".into(), Box::new(Value::str("1"))));

    assert!(isomorphic(&left1, &left1b));
    assert!(
        find_homomorphism(&left1, &left2).is_none(),
        "different inner constants"
    );
    assert!(
        find_homomorphism(&left1, &right).is_none(),
        "different labels"
    );
}

#[test]
fn many_twin_sets_match_quickly() {
    // Regression test: two instances with ~30 pairs of content-identical
    // ("twin") sets used to blow up the old enumerate-all-set-assignments
    // search exponentially. The forced-propagation search must decide both
    // directions in well under a second.
    use std::time::Instant;
    let s = Schema::new(
        "W",
        vec![Field::new(
            "Root",
            Ty::set_of(vec![
                Field::new("k", Ty::Int),
                Field::new("Kids", Ty::set_of(vec![Field::new("x", Ty::Int)])),
            ]),
        )],
    )
    .unwrap();
    let make = |flip: bool| {
        let mut b = InstanceBuilder::new(&s);
        for i in 0..30i64 {
            // Twin sets: identical contents, distinguished only by their
            // grouping arguments and owning tuples.
            let id = b.group(
                "Root.Kids",
                vec![Value::int(if flip { 1000 + i } else { i })],
            );
            b.push(id, vec![Value::int(7)]);
            b.push_top("Root", vec![Value::int(i), Value::Set(id)]);
        }
        b.finish().unwrap()
    };
    let a = make(false);
    let b = make(true);
    let t0 = Instant::now();
    assert!(isomorphic(&a, &b));
    assert!(find_homomorphism(&a, &b).is_some());
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(2),
        "took {:?}",
        t0.elapsed()
    );
}
