//! Chase tests beyond the paper's two-level examples: three-level target
//! nesting, several mappings sharing one nested set, grouping functions at
//! every depth, and source labeled nulls flowing into the target.

use muse_chase::{chase, chase_one, homomorphically_equivalent};
use muse_mapping::{parse, parse_one};
use muse_nr::{Field, Instance, InstanceBuilder, Schema, SetPath, Ty, Value};

fn source() -> Schema {
    Schema::new(
        "S",
        vec![Field::new(
            "facts",
            Ty::set_of(vec![
                Field::new("a", Ty::Str),
                Field::new("b", Ty::Str),
                Field::new("c", Ty::Str),
            ]),
        )],
    )
    .unwrap()
}

fn deep_target() -> Schema {
    Schema::new(
        "T",
        vec![Field::new(
            "L1",
            Ty::set_of(vec![
                Field::new("u", Ty::Str),
                Field::new(
                    "L2",
                    Ty::set_of(vec![
                        Field::new("v", Ty::Str),
                        Field::new("L3", Ty::set_of(vec![Field::new("w", Ty::Str)])),
                    ]),
                ),
            ]),
        )],
    )
    .unwrap()
}

fn facts(rows: &[(&str, &str, &str)]) -> Instance {
    let s = source();
    let mut b = InstanceBuilder::new(&s);
    for (a, bb, c) in rows {
        b.push_top(
            "facts",
            vec![Value::str(*a), Value::str(*bb), Value::str(*c)],
        );
    }
    b.finish().unwrap()
}

#[test]
fn three_level_nesting_groups_at_every_depth() {
    let (s, t) = (source(), deep_target());
    let m = parse_one(
        "m: for f in S.facts
            exists x in T.L1, y in x.L2, z in y.L3
            where f.a = x.u and f.b = y.v and f.c = z.w
            group x.L2 by (f.a)
            group y.L3 by (f.a, f.b)",
    )
    .unwrap();
    m.validate(&s, &t).unwrap();

    let i = facts(&[
        ("a1", "b1", "c1"),
        ("a1", "b1", "c2"),
        ("a1", "b2", "c3"),
        ("a2", "b1", "c4"),
    ]);
    let j = chase_one(&s, &t, &i, &m).unwrap();
    j.validate(&t).unwrap();

    // Two L1 tuples (a1, a2); a1's L2 set holds b1 and b2; the (a1, b1) L3
    // set holds c1 and c2.
    let l1 = j.root_id("L1").unwrap();
    assert_eq!(j.set_len(l1), 2);
    let l2_sets = j.set_ids_of(&SetPath::parse("L1.L2"));
    assert_eq!(l2_sets.len(), 2);
    let mut l2_sizes: Vec<usize> = l2_sets.iter().map(|&id| j.set_len(id)).collect();
    l2_sizes.sort_unstable();
    assert_eq!(l2_sizes, vec![1, 2]);
    let l3_sets = j.set_ids_of(&SetPath::parse("L1.L2.L3"));
    assert_eq!(l3_sets.len(), 3); // (a1,b1), (a1,b2), (a2,b1)
    let mut l3_sizes: Vec<usize> = l3_sets.iter().map(|&id| j.set_len(id)).collect();
    l3_sizes.sort_unstable();
    assert_eq!(l3_sizes, vec![1, 1, 2]);
}

#[test]
fn multiple_mappings_union_into_shared_groups() {
    // Two mappings feeding the same nested set with the same grouping
    // function: their tuples union inside shared SetIDs.
    let s = Schema::new(
        "S",
        vec![
            Field::new(
                "p",
                Ty::set_of(vec![Field::new("g", Ty::Str), Field::new("n", Ty::Str)]),
            ),
            Field::new(
                "q",
                Ty::set_of(vec![Field::new("g", Ty::Str), Field::new("n", Ty::Str)]),
            ),
        ],
    )
    .unwrap();
    let t = Schema::new(
        "T",
        vec![Field::new(
            "Groups",
            Ty::set_of(vec![
                Field::new("g", Ty::Str),
                Field::new("Items", Ty::set_of(vec![Field::new("n", Ty::Str)])),
            ]),
        )],
    )
    .unwrap();
    let ms = parse(
        "
        m1: for r in S.p exists o in T.Groups, i in o.Items
            where r.g = o.g and r.n = i.n
            group o.Items by (r.g)
        m2: for r in S.q exists o in T.Groups, i in o.Items
            where r.g = o.g and r.n = i.n
            group o.Items by (r.g)
        ",
    )
    .unwrap();

    let mut b = InstanceBuilder::new(&s);
    b.push_top("p", vec![Value::str("g1"), Value::str("from-p")]);
    b.push_top("q", vec![Value::str("g1"), Value::str("from-q")]);
    b.push_top("q", vec![Value::str("g2"), Value::str("solo")]);
    let i = b.finish().unwrap();

    let j = chase(&s, &t, &i, &ms).unwrap();
    // g1's Items set contains tuples from both mappings.
    let items = j.set_ids_of(&SetPath::parse("Groups.Items"));
    assert_eq!(items.len(), 2);
    let mut sizes: Vec<usize> = items.iter().map(|&id| j.set_len(id)).collect();
    sizes.sort_unstable();
    assert_eq!(sizes, vec![1, 2]);
    // And the Groups root holds exactly two tuples (g1 deduplicated).
    assert_eq!(j.set_len(j.root_id("Groups").unwrap()), 2);
}

#[test]
fn source_nulls_flow_into_the_target_as_nulls() {
    let s = source();
    let t = Schema::new(
        "T",
        vec![Field::new(
            "Out",
            Ty::set_of(vec![Field::new("u", Ty::Str), Field::new("v", Ty::Str)]),
        )],
    )
    .unwrap();
    let m =
        parse_one("m: for f in S.facts exists o in T.Out where f.a = o.u and f.b = o.v").unwrap();

    let mut i = Instance::new(&s);
    let root = i.root_id("facts").unwrap();
    let n = i.store_mut().fresh_null();
    i.insert(root, vec![Value::str("x"), Value::Null(n), Value::str("z")]);

    let j = chase_one(&s, &t, &i, &m).unwrap();
    let out = j.root_id("Out").unwrap();
    let tup = j.tuples(out).next().unwrap();
    assert_eq!(tup[0], Value::str("x"));
    assert!(
        matches!(tup[1], Value::Null(_)),
        "source null imported as target null"
    );
}

#[test]
fn grouping_by_everything_vs_by_key_same_effect_on_keyed_data() {
    // Keys unique per tuple: SK(a) ≡ SK(a,b,c) when a is unique.
    let (s, t) = (source(), deep_target());
    let m_small = parse_one(
        "m: for f in S.facts exists x in T.L1, y in x.L2, z in y.L3
            where f.a = x.u and f.b = y.v and f.c = z.w
            group x.L2 by (f.a) group y.L3 by (f.a, f.b)",
    )
    .unwrap();
    let m_big = parse_one(
        "m: for f in S.facts exists x in T.L1, y in x.L2, z in y.L3
            where f.a = x.u and f.b = y.v and f.c = z.w
            group x.L2 by (f.a, f.b, f.c) group y.L3 by (f.a, f.b)",
    )
    .unwrap();
    // `a` unique per row ⇒ grouping L2 by a vs by everything is NOT the same
    // (two rows share a below); with unique a it is.
    let unique = facts(&[("a1", "b1", "c1"), ("a2", "b2", "c2")]);
    let ja = chase_one(&s, &t, &unique, &m_small).unwrap();
    let jb = chase_one(&s, &t, &unique, &m_big).unwrap();
    assert!(homomorphically_equivalent(&ja, &jb));

    let shared = facts(&[("a1", "b1", "c1"), ("a1", "b2", "c2")]);
    let ja = chase_one(&s, &t, &shared, &m_small).unwrap();
    let jb = chase_one(&s, &t, &shared, &m_big).unwrap();
    assert!(!homomorphically_equivalent(&ja, &jb));
}
