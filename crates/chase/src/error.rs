//! Chase errors.

use std::fmt;

use muse_mapping::MappingError;
use muse_nr::NrError;
use muse_query::QueryError;

/// Errors raised by the chase engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaseError {
    /// The mapping is ambiguous (contains `or`-groups); disambiguate with
    /// Muse-D (or select an interpretation) before chasing.
    Ambiguous(String),
    /// Underlying mapping problem (validation, missing grouping, …).
    Mapping(MappingError),
    /// Underlying query problem while evaluating the `for` clause.
    Query(QueryError),
    /// Underlying instance problem.
    Nr(NrError),
    /// A grouping argument or correspondence projected a non-atomic source
    /// value (set references cannot flow into atomic target positions).
    NonAtomicSourceValue { mapping: String, what: String },
    /// A mapping fills a top-level target set the target instance has no
    /// root container for (schema/instance mismatch).
    MissingTargetRoot { mapping: String, root: String },
    /// A target set's element type is not a record, so tuples cannot be
    /// instantiated into it.
    NotARecordElement { mapping: String, set: String },
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::Ambiguous(m) => {
                write!(
                    f,
                    "mapping `{m}` is ambiguous; select an interpretation before chasing"
                )
            }
            ChaseError::Mapping(e) => write!(f, "mapping error: {e}"),
            ChaseError::Query(e) => write!(f, "query error: {e}"),
            ChaseError::Nr(e) => write!(f, "instance error: {e}"),
            ChaseError::NonAtomicSourceValue { mapping, what } => {
                write!(
                    f,
                    "mapping `{mapping}`: {what} projects a non-atomic source value"
                )
            }
            ChaseError::MissingTargetRoot { mapping, root } => {
                write!(f, "mapping `{mapping}` fills top-level set `{root}` but the target instance has no such root")
            }
            ChaseError::NotARecordElement { mapping, set } => {
                write!(
                    f,
                    "mapping `{mapping}`: element type of target set `{set}` is not a record"
                )
            }
        }
    }
}

impl std::error::Error for ChaseError {}

impl From<MappingError> for ChaseError {
    fn from(e: MappingError) -> Self {
        ChaseError::Mapping(e)
    }
}

impl From<QueryError> for ChaseError {
    fn from(e: QueryError) -> Self {
        ChaseError::Query(e)
    }
}

impl From<NrError> for ChaseError {
    fn from(e: NrError) -> Self {
        ChaseError::Nr(e)
    }
}
